//! Demand paging through a user-level memory manager.
//!
//! A child process touches memory nobody has backed yet. Each first touch
//! of a page becomes a *hard fault*: the kernel converts it into an
//! exception IPC to the region's keeper port, where an ordinary user
//! program — the pager — supplies a page with `region_populate` and
//! acknowledges. The child never knows; its faulting instruction simply
//! resumes (paper §4, Table 3).
//!
//! Run with: `cargo run --example user_pager`

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::pager::PagerSetup;
use fluke_user::proc::run_to_halt;

fn main() {
    let mut kernel = Kernel::new(Config::interrupt_np());

    // Boot the pager: it keeps a 4MB region and serves faults on a port.
    let pager = PagerSetup::boot(&mut kernel, 4 << 20, 12);
    println!(
        "pager thread {:?} keeping a {}KB region",
        pager.thread,
        pager.backing_size >> 10
    );

    // A child whose entire 1MB window is demand-paged from that region.
    let base = 0x0040_0000;
    let child = pager.paged_child(&mut kernel, base, 1 << 20, 0);

    // The child writes a pattern across 48 pages, then reads it back and
    // sums it.
    let mut a = Assembler::new("toucher");
    a.movi(Reg::Esi, base);
    a.movi(Reg::Ecx, 48);
    a.movi(Reg::Ebx, 7);
    a.label("write");
    a.storeb(Reg::Esi, 0, Reg::Ebx);
    a.addi(Reg::Esi, 4096);
    a.addi(Reg::Ebx, 1);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "write");
    a.movi(Reg::Esi, base);
    a.movi(Reg::Ecx, 48);
    a.movi(Reg::Edi, 0); // accumulator
    a.label("read");
    a.loadb(Reg::Edx, Reg::Esi, 0);
    a.add(Reg::Edi, Reg::Edx);
    a.addi(Reg::Esi, 4096);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "read");
    a.halt();
    let pid = kernel.register_program(a.finish());
    let t = kernel.spawn_thread(child, pid, fluke_arch::UserRegs::new(), 8);

    assert!(run_to_halt(&mut kernel, &[t], 1_000_000_000));

    let sum: u32 = (7..7 + 48).sum();
    println!(
        "checksum      : {} (expected {})",
        kernel.thread_regs(t).get(Reg::Edi),
        sum
    );
    println!(
        "hard faults   : {} (one per page, each a pager RPC)",
        kernel.stats.hard_faults
    );
    println!(
        "soft faults   : {} (PTE derivations after the pager supplied)",
        kernel.stats.soft_faults
    );
    let remedies: Vec<f64> = kernel
        .stats
        .fault_records
        .iter()
        .filter(|f| f.kind == fluke_core::FaultKind::Hard)
        .map(|f| fluke_arch::cycles_to_us(f.remedy_cycles))
        .collect();
    let avg = remedies.iter().sum::<f64>() / remedies.len().max(1) as f64;
    println!("avg hard-fault remedy: {avg:.1} µs (paper Table 3: ~118µs)");
    assert_eq!(kernel.thread_regs(t).get(Reg::Edi), sum);
    assert_eq!(kernel.stats.hard_faults, 48);
}

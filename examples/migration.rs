//! Process migration between two kernel instances — and between the two
//! *execution models*: the image checkpointed on a process-model kernel
//! restores onto an interrupt-model kernel, because the exported state is
//! model-independent by construction (paper §4.1, §5).
//!
//! Run with: `cargo run --example migration`

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::checkpoint::{checkpoint_space, identity_window, SyscallAgent};
use fluke_user::migrate::migrate_space;
use fluke_user::FlukeAsm;

const CHILD_BASE: u32 = 0x0040_0000;
const CHILD_LEN: u32 = 0x4000;
const COUNTER: u32 = CHILD_BASE + 0x1000;
const DONE: u32 = CHILD_BASE + 0x1004;
const TARGET: u32 = 300;
const MGR_MEM: u32 = 0x0010_0000;

fn worker() -> fluke_arch::Program {
    let mut a = Assembler::new("traveller");
    a.label("loop");
    a.movi(Reg::Ebp, COUNTER);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.addi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.compute(3_000);
    a.cmpi(Reg::Edx, TARGET);
    a.jcc(Cond::Lt, "loop");
    a.store_const(DONE, 0xBEEF);
    a.halt();
    a.finish()
}

fn make_world(kernel: &mut Kernel) -> (SyscallAgent, fluke_core::SpaceId, u32) {
    let manager = kernel.create_space();
    kernel.grant_pages(manager, MGR_MEM, 0x2000, true);
    let child = kernel.create_space();
    kernel.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    identity_window(
        kernel,
        manager,
        MGR_MEM + 0x1000,
        child,
        CHILD_BASE,
        CHILD_LEN,
    );
    let handle = MGR_MEM + 0x1800;
    kernel.loader_space_object(manager, handle, child);
    (SyscallAgent::new(kernel, manager, 20), child, handle)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Source machine: process-model kernel.
    let mut src = Kernel::new(Config::process_np());
    let (agent, child, handle) = make_world(&mut src);
    let pid = src.register_program(worker());
    let t = src.spawn_thread(child, pid, fluke_arch::UserRegs::new(), 8);
    src.loader_thread_object(child, CHILD_BASE + 64, t);

    src.run(Some(800_000));
    let mid = src.read_mem_u32(child, COUNTER);
    println!(
        "source ({}): froze the worker at {mid}/{TARGET}",
        src.cfg.label
    );
    let image = checkpoint_space(&mut src, &agent, handle, CHILD_BASE, CHILD_LEN, MGR_MEM)?;

    // Destination machine: *interrupt-model* kernel.
    let mut dst = Kernel::new(Config::interrupt_pp());
    let (dagent, dchild, dhandle) = make_world(&mut dst);
    migrate_space(&src, &mut dst, &dagent, image, dhandle, MGR_MEM)?;
    let dst_label = dst.cfg.label;
    let resumed_at = dst.read_mem_u32(dchild, COUNTER);
    println!("destination ({dst_label}): resumed at {resumed_at}");

    let deadline = dst.now() + 2_000_000_000;
    while dst.read_mem_u32(dchild, DONE) != 0xBEEF {
        if dst.run(Some(deadline)) != fluke_core::RunExit::TimeLimit {
            break;
        }
    }
    println!(
        "destination: worker completed at {} — migrated across execution models",
        dst.read_mem_u32(dchild, COUNTER)
    );
    assert_eq!(dst.read_mem_u32(dchild, COUNTER), TARGET);
    // The source's copy never finished (we froze and shipped it mid-run).
    assert!(src.read_mem_u32(child, COUNTER) >= mid);
    Ok(())
}

//! User-level checkpointing — the paper's flagship application (§4.1).
//!
//! A manager checkpoints a *running* child mid-computation using nothing
//! but the ordinary system-call API (`region_search`, `*_get_state`),
//! then rebuilds it from the image in a fresh space and lets the clone run
//! to completion. Because every kernel operation is atomic, the frozen
//! thread's registers are its complete continuation.
//!
//! Run with: `cargo run --example checkpoint_restore`

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::checkpoint::{checkpoint_space, identity_window, restore_space, SyscallAgent};
use fluke_user::FlukeAsm;

const CHILD_BASE: u32 = 0x0040_0000;
const CHILD_LEN: u32 = 0x4000;
const H_MUTEX: u32 = CHILD_BASE;
const COUNTER: u32 = CHILD_BASE + 0x1000;
const DONE: u32 = CHILD_BASE + 0x1004;
const TARGET: u32 = 500;

fn build_worker() -> fluke_arch::Program {
    let mut a = Assembler::new("worker");
    a.sys_h(fluke_api::Sys::MutexCreate, H_MUTEX);
    a.label("loop");
    a.mutex_lock(H_MUTEX);
    a.movi(Reg::Ebp, COUNTER);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.addi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.mutex_unlock(H_MUTEX);
    a.compute(4_000);
    a.movi(Reg::Ebp, COUNTER);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.cmpi(Reg::Edx, TARGET);
    a.jcc(Cond::Lt, "loop");
    a.store_const(DONE, 0xD00D);
    a.halt();
    a.finish()
}

/// Set up a (manager, child, agent) trio in `kernel`.
fn make_world(kernel: &mut Kernel, mgr_mem: u32) -> (SyscallAgent, fluke_core::SpaceId, u32) {
    let manager = kernel.create_space();
    kernel.grant_pages(manager, mgr_mem, 0x2000, true);
    let child = kernel.create_space();
    kernel.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    identity_window(
        kernel,
        manager,
        mgr_mem + 0x1000,
        child,
        CHILD_BASE,
        CHILD_LEN,
    );
    let handle = mgr_mem + 0x1800;
    kernel.loader_space_object(manager, handle, child);
    (SyscallAgent::new(kernel, manager, 20), child, handle)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(Config::process_np());
    let mgr_mem = 0x0010_0000;
    let (agent, child, child_handle) = make_world(&mut kernel, mgr_mem);

    let pid = kernel.register_program(build_worker());
    let worker = kernel.spawn_thread(child, pid, fluke_arch::UserRegs::new(), 8);
    kernel.loader_thread_object(child, CHILD_BASE + 64, worker);

    // Let the worker get partway through its 500 iterations.
    kernel.run(Some(1_000_000));
    let mid = kernel.read_mem_u32(child, COUNTER);
    println!("checkpointing at counter = {mid} / {TARGET}");

    let image = checkpoint_space(
        &mut kernel,
        &agent,
        child_handle,
        CHILD_BASE,
        CHILD_LEN,
        mgr_mem,
    )?;
    println!(
        "image: {} bytes of memory, {} kernel objects ({:?})",
        image.memory.len(),
        image.records.len(),
        image.records.iter().map(|r| r.ty).collect::<Vec<_>>()
    );

    // Build a second, fresh child and restore into it.
    let mgr2 = 0x0060_0000;
    let (agent2, child2, child2_handle) = make_world(&mut kernel, mgr2);
    restore_space(&mut kernel, &agent2, &image, child2_handle, mgr2)?;
    println!(
        "restored clone starts at counter = {}",
        kernel.read_mem_u32(child2, COUNTER)
    );

    // Run everything to completion: both the original and the clone finish.
    let deadline = kernel.now() + 2_000_000_000;
    while kernel.read_mem_u32(child2, DONE) != 0xD00D || kernel.read_mem_u32(child, DONE) != 0xD00D
    {
        if kernel.run(Some(deadline)) != fluke_core::RunExit::TimeLimit {
            break;
        }
    }
    println!(
        "original finished at {}, clone finished at {}",
        kernel.read_mem_u32(child, COUNTER),
        kernel.read_mem_u32(child2, COUNTER)
    );
    assert_eq!(kernel.read_mem_u32(child, COUNTER), TARGET);
    assert_eq!(kernel.read_mem_u32(child2, COUNTER), TARGET);
    println!("both reached {TARGET}: the clone resumed exactly where the snapshot froze it");
    Ok(())
}

//! Legacy process-model code under an interrupt-model kernel (paper §5.6).
//!
//! The Fluke trick: run the legacy code in **user mode but in the kernel's
//! address space**. The "driver" below is ordinary process-model code — it
//! blocks, loops, keeps state on its own stack-like memory — yet the core
//! kernel stays a pure interrupt-model kernel. Privileged operations
//! (allocating kernel memory, installing an interrupt binding) are
//! *exported* to such threads through a special system call; a thread in a
//! normal space is refused.
//!
//! "Hardware" interrupts are modeled by a device thread that fires one-way
//! messages at the driver's port on a timer.
//!
//! Run with: `cargo run --example legacy_driver`

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::cost::ms_to_cycles;
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel, RunState};
use fluke_user::proc::ChildProc;
use fluke_user::FlukeAsm;

const DRV_MEM: u32 = 0x0001_0000;
const H_PORT: u32 = DRV_MEM;
const MSG: u32 = DRV_MEM + 0x100;
const COUNT: u32 = DRV_MEM + 0x200;
const KMEM_AT: u32 = 0x0009_0000; // where the driver maps its kernel frame

fn main() {
    // A pure interrupt-model kernel — the configuration where legacy
    // process-model code is supposedly impossible to host.
    let mut kernel = Kernel::new(Config::interrupt_np());

    // The driver's space aliases the kernel: user-mode execution,
    // kernel-mode privileges via the exported facilities.
    let drv_space = kernel.create_kernel_alias_space();
    kernel.grant_pages(drv_space, DRV_MEM, 0x1000, true);
    let port = kernel.loader_create(drv_space, H_PORT, ObjType::Port);

    // The legacy driver: allocate a kernel frame, register its IRQ, then
    // serve interrupts forever (classic process-model service loop).
    let mut a = Assembler::new("legacy-driver");
    // kcall 0x100: allocate a kernel frame mapped at KMEM_AT.
    a.movi(ARG_HANDLE, 0x100);
    a.movi(ARG_SBUF, KMEM_AT);
    a.sys(Sys::SysStats);
    // kcall 0x101: install interrupt handler for IRQ 5.
    a.movi(ARG_HANDLE, 0x101);
    a.movi(ARG_VAL, 5);
    a.sys(Sys::SysStats);
    a.label("service");
    a.movi(ARG_HANDLE, H_PORT);
    a.movi(ARG_RBUF, MSG);
    a.movi(ARG_COUNT, 16);
    a.sys(Sys::IpcWaitReceiveOneway);
    // Count the interrupt in the kernel frame it allocated.
    a.movi(Reg::Ebp, KMEM_AT);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.addi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.store_const(COUNT, 0); // scratch
    a.jmp("service");
    let did = kernel.register_program(a.finish());
    let driver = kernel.spawn_thread(drv_space, did, fluke_arch::UserRegs::new(), 14);

    // A normal (non-alias) process trying the same privileged call is
    // refused — access control for the exported facilities.
    let mut probe = ChildProc::with_mem(&mut kernel, 0x0030_0000, 0x2000);
    let _ = probe.alloc_obj();
    let mut a = Assembler::new("unprivileged");
    a.movi(ARG_HANDLE, 0x100);
    a.movi(ARG_SBUF, 0x0031_0000);
    a.sys(Sys::SysStats);
    a.halt();
    let probe_t = probe.start(&mut kernel, a.finish(), 8);

    // The "device": fires 10 interrupts at 2ms intervals, as one-way
    // messages to the driver's port, sleeping in between.
    let mut dev = ChildProc::with_mem(&mut kernel, 0x0050_0000, 0x2000);
    let h_ref = dev.alloc_obj();
    kernel.loader_ref(dev.space, h_ref, port);
    let mut a = Assembler::new("device");
    a.movi(Reg::Ebp, dev.mem_base + 0x800);
    a.movi(Reg::Edx, 10);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.label("fire");
    a.movi(ARG_HANDLE, h_ref);
    a.movi(ARG_SBUF, dev.mem_base + 0x900);
    a.movi(ARG_COUNT, 4);
    a.sys(Sys::IpcSendOneway);
    a.sys(Sys::ThreadSleep); // woken by the timer below
    a.movi(Reg::Ebp, dev.mem_base + 0x800);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.subi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.cmpi(Reg::Edx, 0);
    a.jcc(Cond::Ne, "fire");
    a.halt();
    let dev_t = dev.start(&mut kernel, a.finish(), 10);
    // Timer wakes for the device's sleeps.
    for i in 1..=10u64 {
        kernel.wake_at(dev_t, ms_to_cycles(2 * i));
    }

    // Run until the device has fired everything.
    let deadline = kernel.now() + ms_to_cycles(100);
    while !kernel.thread_halted(dev_t) {
        if kernel.run(Some(deadline)) != fluke_core::RunExit::TimeLimit {
            break;
        }
    }
    kernel.run(Some(kernel.now() + ms_to_cycles(5)));

    let served = kernel.read_mem_u32(drv_space, KMEM_AT);
    println!(
        "kernel model          : {} (pure interrupt model)",
        kernel.cfg.label
    );
    println!("driver space          : kernel alias (user mode, kernel view)");
    println!("interrupts fired      : 10");
    println!("interrupts served     : {served}");
    println!(
        "privileged kcalls     : {:?} (driver) vs {:?} (normal process)",
        ErrorCode::Success,
        ErrorCode::from_u32(kernel.thread_regs(probe_t).get(Reg::Eax)).unwrap()
    );
    println!(
        "driver is now         : {:?} (a process-model loop, blocked in its receive)",
        kernel.thread_run_state(driver)
    );
    assert_eq!(served, 10);
    assert_eq!(
        kernel.thread_regs(probe_t).get(Reg::Eax),
        ErrorCode::PermissionDenied as u32
    );
    assert!(matches!(
        kernel.thread_run_state(driver),
        RunState::Blocked(_)
    ));
}

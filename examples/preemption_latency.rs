//! The Table 6 experiment, live: a 1ms high-priority kernel thread
//! measures preemption latency while flukeperf hammers the kernel, across
//! all five Table 4 configurations.
//!
//! Run with: `cargo run --release --example preemption_latency`

use fluke_core::Config;
use fluke_workloads::common::run_workload;
use fluke_workloads::latency::install_probe;
use fluke_workloads::{flukeperf, FlukeperfParams};

fn main() {
    let mut params = FlukeperfParams::quick();
    // Keep the latency-critical phases at full size so the maxima are
    // meaningful even in this fast demo.
    params.big_sends = 2;
    params.big_size = 1_536 << 10;
    params.searches = 20;
    params.search_pages = 300;
    params.medium_sends = 100;

    println!("config        avg(µs)   max(µs)    runs   miss");
    println!("------------------------------------------------");
    for cfg in Config::all_five() {
        let label = cfg.label;
        let mut run = flukeperf::build(cfg, &params);
        install_probe(&mut run.kernel, 1);
        let res = run_workload(run, 8_000_000_000);
        println!(
            "{:<13} {:>7.1} {:>9.0} {:>7} {:>6}",
            label,
            res.stats.probe_avg_us(),
            res.stats.probe_max_us(),
            res.stats.probe_runs,
            res.stats.probe_misses,
        );
    }
    println!();
    println!("Read the max column: no preemption is bounded by the largest IPC");
    println!("(~7.5ms); partial preemption by the longest kernel path without");
    println!("a preemption point (~1.2ms region_search); full preemption by the");
    println!("finest copy chunk (~20µs) — the paper's three orders of magnitude.");
}

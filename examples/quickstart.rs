//! Quickstart: boot a Fluke kernel, run two threads that synchronize with
//! a kernel mutex and exchange a message over IPC, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use fluke_api::{ErrorCode, ObjType};
use fluke_arch::{Assembler, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

fn main() {
    // Boot the kernel in the paper's baseline configuration (Table 4:
    // process model, no kernel preemption). Swap in any of the other four
    // configurations — the API behaves identically.
    let mut kernel = Kernel::new(Config::process_np());

    // A "server" process with an IPC port, and a "client" process holding
    // a Reference to that port. Kernel objects live *in* process memory:
    // their handles are the virtual addresses they were created at.
    let mut server = ChildProc::with_mem(&mut kernel, 0x0010_0000, 0x8000);
    let mut client = ChildProc::with_mem(&mut kernel, 0x0020_0000, 0x8000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = kernel.loader_create(server.space, h_port, ObjType::Port);
    kernel.loader_ref(client.space, h_ref, port);

    let sbuf = server.mem_base + 0x1000;
    let cbuf = client.mem_base + 0x1000;
    let crep = client.mem_base + 0x2000;

    // Server program: take one request, uppercase it (subtract 32 from
    // each of 5 bytes), send the reply, exit.
    let mut a = Assembler::new("server");
    a.server_wait_receive(h_port, sbuf, 64);
    for i in 0..5 {
        a.movi(Reg::Ebp, sbuf + i);
        a.loadb(Reg::Edx, Reg::Ebp, 0);
        a.subi(Reg::Edx, 32);
        a.storeb(Reg::Ebp, 0, Reg::Edx);
    }
    a.server_ack_send(sbuf, 5);
    a.halt();
    let server_t = server.start(&mut kernel, a.finish(), 8);

    // Client program: one RPC (connect + send + receive reply in a single
    // multi-stage system call), then exit.
    let mut a = Assembler::new("client");
    a.client_rpc(h_ref, cbuf, 5, crep, 64);
    a.halt();
    let client_t = client.start(&mut kernel, a.finish(), 8);

    kernel.write_mem(client.space, cbuf, b"fluke");
    assert!(run_to_halt(&mut kernel, &[server_t, client_t], 50_000_000));

    let reply = kernel.read_mem(client.space, crep, 5);
    println!("client sent   : {:?}", "fluke");
    println!("server replied: {:?}", String::from_utf8_lossy(&reply));
    println!(
        "client result : {:?}",
        ErrorCode::from_u32(kernel.thread_regs(client_t).get(Reg::Eax)).unwrap()
    );
    println!(
        "simulated time: {:.2} ms   (syscalls: {}, context switches: {})",
        fluke_arch::cycles_to_us(kernel.now()) / 1000.0,
        kernel.stats.syscalls,
        kernel.stats.ctx_switches,
    );
    // The entrypoint the client's registers carried through the multi-stage
    // call is part of the 107-entrypoint atomic API.
    println!(
        "API size      : {} entrypoints ({} multi-stage)",
        fluke_api::SYSCALLS.len(),
        fluke_api::SYSCALLS
            .iter()
            .filter(|d| d.class == fluke_api::SysClass::MultiStage)
            .count()
    );
    assert_eq!(&reply, b"FLUKE");
}

#![warn(missing_docs)]
//! `fluke` — facade crate for the reproduction of *Interface and Execution
//! Models in the Fluke Kernel* (OSDI 1999).
//!
//! Re-exports the workspace crates under one roof; see the README for the
//! architecture and EXPERIMENTS.md for the reproduced results. Start at
//! [`fluke_core::Kernel`] and [`fluke_core::Config`], or run
//! `cargo run --example quickstart`.

pub use fluke_api;
pub use fluke_arch;
pub use fluke_core;
pub use fluke_user;
pub use fluke_workloads;

//! Whole-API robustness: every one of the 107 entrypoints is invoked with
//! adversarial argument patterns under multiple configurations. The kernel
//! must never panic, never wedge the machine, and always leave the caller
//! either cleanly completed (with a decodable result code) or benignly
//! blocked at a restartable point.

use fluke_api::{ErrorCode, ObjType, Sys, SYSCALLS};
use fluke_arch::{Reg, UserRegs};
use fluke_core::{Config, Kernel, RunState};
use fluke_user::proc::ChildProc;

/// Argument patterns thrown at every entrypoint.
fn patterns(p: &ChildProc) -> Vec<[u32; 5]> {
    let m = p.mem_base;
    vec![
        // All zeroes.
        [0, 0, 0, 0, 0],
        // Wild pointers.
        [0xdead_beef, 0xffff_fff0, 0x8000_0000, 0x7fff_ffff, 1],
        // Valid-looking memory, no objects there.
        [m + 0x3000, 16, m + 0x3100, m + 0x3200, m + 0x3300],
        // Page-boundary-straddling buffer addresses.
        [m + 0xffe, u32::MAX, m + 0x1ffe, m + 0x2ffe, 4],
    ]
}

/// Run one entrypoint with one pattern; the machine must stay sane.
fn poke(cfg: &Config, sys: Sys, args: [u32; 5]) {
    let mut k = Kernel::new(cfg.clone());
    let mut p = ChildProc::new(&mut k);
    // Give the probe a couple of real objects so handle-shaped args can
    // also hit live objects of the wrong type.
    let h_mutex = p.alloc_obj();
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_mutex, ObjType::Mutex);
    k.loader_create(p.space, h_port, ObjType::Port);

    let mut a = fluke_arch::Assembler::new("poke");
    a.movi(Reg::Eax, sys.num());
    a.syscall();
    a.halt();
    let prog = k.register_program(a.finish());
    let mut regs = UserRegs::new();
    regs.set(Reg::Ebx, args[0]);
    regs.set(Reg::Ecx, args[1]);
    regs.set(Reg::Edx, args[2]);
    regs.set(Reg::Esi, args[3]);
    regs.set(Reg::Edi, args[4]);
    let t = k.spawn_thread(p.space, prog, regs, 8);

    // Bounded run: blocking forever is legal for Long/Multi calls.
    let exit = k.run(Some(5_000_000));
    let _ = exit;
    match k.thread_run_state(t) {
        RunState::Halted => {
            // Completed (or was destroyed for a fatal fault — also fine):
            // if it returned, the result code must decode.
            let eax = k.thread_regs(t).get(Reg::Eax);
            if k.thread_regs(t).eip > 1 {
                assert!(
                    ErrorCode::from_u32(eax).is_some(),
                    "{}: undecodable result {eax:#x} for args {args:x?}",
                    sys.name()
                );
            }
        }
        RunState::Blocked(_) | RunState::Ready | RunState::Running(_) | RunState::Stopped => {
            // Benignly parked; its registers must still be a plausible
            // continuation (eip within the 3-instruction program).
            assert!(
                k.thread_regs(t).eip <= 2,
                "{}: eip escaped the program for args {args:x?}",
                sys.name()
            );
        }
    }
}

#[test]
fn every_entrypoint_survives_adversarial_arguments() {
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        let mut k = Kernel::new(cfg.clone());
        let p = ChildProc::new(&mut k);
        for desc in SYSCALLS {
            for pat in patterns(&p) {
                poke(&cfg, desc.sys, pat);
            }
        }
    }
}

#[test]
fn every_entrypoint_survives_valid_handles_of_wrong_type() {
    // Point every handle-argument at a live Port when most calls want
    // something else — the type checks must fire, not panics.
    let cfg = Config::process_np();
    let mut probe_kernel = Kernel::new(cfg.clone());
    let mut p = ChildProc::new(&mut probe_kernel);
    let h = p.alloc_obj();
    for desc in SYSCALLS {
        poke(&cfg, desc.sys, [h, 4, h, h, h]);
    }
}

#[test]
fn invalid_entrypoint_number_is_rejected_cleanly() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let mut a = fluke_arch::Assembler::new("bad");
    a.movi(Reg::Eax, 9999);
    a.syscall();
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    k.run(Some(1_000_000));
    assert!(k.thread_halted(t));
    assert_eq!(
        k.thread_regs(t).get(Reg::Eax),
        ErrorCode::InvalidEntrypoint as u32
    );
}

//! Whole-system determinism: identical runs produce bit-identical
//! simulated outcomes. Every number in EXPERIMENTS.md depends on this.

use fluke_core::Config;
use fluke_workloads::common::run_workload;
use fluke_workloads::{flukeperf, gcc, memtest, FlukeperfParams, GccParams};

fn fingerprint(res: &fluke_workloads::RunResult) -> (u64, u64, u64, u64, u64, u64) {
    (
        res.elapsed,
        res.stats.syscalls,
        res.stats.ctx_switches,
        res.stats.ipc_bytes,
        res.stats.soft_faults,
        res.stats.hard_faults,
    )
}

#[test]
fn flukeperf_is_bit_deterministic() {
    let run = |cfg: Config| {
        fingerprint(&run_workload(
            flukeperf::build(cfg, &FlukeperfParams::quick()),
            8_000_000_000,
        ))
    };
    for cfg in Config::all_five() {
        assert_eq!(run(cfg.clone()), run(cfg.clone()), "{}", cfg.label);
    }
}

#[test]
fn memtest_is_bit_deterministic() {
    let a = fingerprint(&run_workload(
        memtest::build(Config::interrupt_pp(), 1),
        50_000_000_000,
    ));
    let b = fingerprint(&run_workload(
        memtest::build(Config::interrupt_pp(), 1),
        50_000_000_000,
    ));
    assert_eq!(a, b);
}

#[test]
fn gcc_is_bit_deterministic() {
    let a = fingerprint(&run_workload(
        gcc::build(Config::process_fp(), &GccParams::quick()),
        50_000_000_000,
    ));
    let b = fingerprint(&run_workload(
        gcc::build(Config::process_fp(), &GccParams::quick()),
        50_000_000_000,
    ));
    assert_eq!(a, b);
}

//! Property tests of the paper's central claims, quantified over random
//! workloads:
//!
//! * the five kernel configurations are **observationally equivalent** —
//!   identical user-visible results for identical programs;
//! * IPC transfers are byte-exact for arbitrary sizes and windows;
//! * checkpoint/restore at an arbitrary moment preserves behaviour.
//!
//! The container builds offline, so instead of an external property-test
//! framework these quantify over inputs drawn from a small deterministic
//! PRNG — same laws, reproducible cases.

use std::collections::BTreeSet;

use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Deterministic splitmix64 generator for test-case synthesis.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.next_u32() % (hi - lo)
    }

    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn random_ops(&mut self, lo: u32, hi: u32) -> Vec<(u8, u32)> {
        let len = self.range(lo, hi);
        (0..len)
            .map(|_| (self.range(0, 6) as u8, self.range(0, 10_000)))
            .collect()
    }
}

/// A small random "application": arithmetic, memory stores, mutex
/// sections, and trivial syscalls, ending with a checksum store.
fn random_app(ops: &[(u8, u32)], mem_base: u32, h_mutex: u32) -> fluke_arch::Program {
    let mut a = Assembler::new("prop-app");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.xor(Reg::Edi, Reg::Edi); // running checksum
    for (i, &(op, val)) in ops.iter().enumerate() {
        match op % 6 {
            0 => {
                a.movi(Reg::Edx, val);
                a.add(Reg::Edi, Reg::Edx);
            }
            1 => {
                // Store + reload through memory.
                let slot = mem_base + 0x1000 + ((i as u32 * 4) % 0x800);
                a.movi(Reg::Ebp, slot);
                a.movi(Reg::Edx, val);
                a.store(Reg::Ebp, 0, Reg::Edx);
                a.load(Reg::Ebx, Reg::Ebp, 0);
                a.add(Reg::Edi, Reg::Ebx);
            }
            2 => {
                a.mutex_lock(h_mutex);
                a.addi(Reg::Edi, 1);
                a.mutex_unlock(h_mutex);
            }
            3 => {
                a.sys(Sys::SysNull);
                a.addi(Reg::Edi, 3);
            }
            4 => {
                a.sys(Sys::ThreadSelf);
                a.addi(Reg::Edi, 5);
            }
            5 => {
                a.compute(val % 1000);
                a.addi(Reg::Edi, 7);
            }
            _ => unreachable!(),
        }
    }
    a.movi(Reg::Ebp, mem_base + 0x2000);
    a.store(Reg::Ebp, 0, Reg::Edi);
    a.halt();
    a.finish()
}

/// Run the app under `cfg`, returning (checksum, final edi).
fn run_app(cfg: Config, ops: &[(u8, u32)]) -> (u32, u32) {
    let mut k = Kernel::new(cfg);
    let mut p = ChildProc::new(&mut k);
    let h_mutex = p.alloc_obj();
    let prog = random_app(ops, p.mem_base, h_mutex);
    let t = p.start(&mut k, prog, 8);
    assert!(run_to_halt(&mut k, &[t], 5_000_000_000));
    (
        k.read_mem_u32(p.space, p.mem_base + 0x2000),
        k.thread_regs(t).get(Reg::Edi),
    )
}

/// The paper's configurability claim, as a law: for any program, all
/// five Table 4 configurations produce identical user-visible results.
#[test]
fn five_configurations_observationally_equivalent() {
    let mut rng = Rng(0xF1BE_0001);
    for _ in 0..24 {
        let ops = rng.random_ops(1, 30);
        let base = run_app(Config::process_np(), &ops);
        for cfg in Config::all_five().into_iter().skip(1) {
            let label = cfg.label;
            let got = run_app(cfg, &ops);
            assert_eq!(got, base, "config {label} diverged on {ops:?}");
        }
    }
}

/// IPC transfers are byte-exact for arbitrary message sizes, buffer
/// alignments, and receive windows, under both execution models.
#[test]
fn ipc_transfer_byte_exact() {
    let mut rng = Rng(0xF1BE_0002);
    for case in 0..24 {
        let len = rng.range(1, 20_000);
        let src_align = rng.range(0, 128);
        let dst_align = rng.range(0, 128);
        let window_slack = rng.range(0, 4096);
        let interrupt_model = rng.next_u64() & 1 == 1;

        let cfg = if interrupt_model {
            Config::interrupt_pp()
        } else {
            Config::process_pp()
        };
        let mut k = Kernel::new(cfg);
        let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x2000);
        let mut client = ChildProc::with_mem(&mut k, 0x0030_0000, 0x2000);
        k.grant_pages(server.space, 0x0011_0000, len + 4096 + dst_align, true);
        k.grant_pages(client.space, 0x0031_0000, len + 4096 + src_align, true);
        let h_port = server.alloc_obj();
        let h_ref = client.alloc_obj();
        let port = k.loader_create(server.space, h_port, ObjType::Port);
        k.loader_ref(client.space, h_ref, port);
        let sbuf = 0x0011_0000 + dst_align;
        let cbuf = 0x0031_0000 + src_align;
        let window = len + window_slack;

        let mut a = Assembler::new("rx");
        a.movi(fluke_api::abi::ARG_HANDLE, h_port);
        a.movi(fluke_api::abi::ARG_RBUF, sbuf);
        a.movi(fluke_api::abi::ARG_COUNT, window);
        a.sys(Sys::IpcServerWaitReceive);
        a.halt();
        let st = server.start(&mut k, a.finish(), 8);

        let mut a = Assembler::new("tx");
        a.client_connect_send(h_ref, cbuf, len);
        a.halt();
        let ct = client.start(&mut k, a.finish(), 8);

        let payload: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        k.write_mem(client.space, cbuf, &payload);
        assert!(run_to_halt(&mut k, &[st, ct], 5_000_000_000), "case {case}");
        assert_eq!(k.read_mem(server.space, sbuf, len), payload, "case {case}");
        // Window accounting: the server's remaining window is exact.
        assert_eq!(
            k.thread_regs(st).get(fluke_api::abi::ARG_COUNT),
            window - len
        );
        // Sender parameters advanced fully in place.
        assert_eq!(k.thread_regs(ct).get(fluke_api::abi::ARG_SBUF), cbuf + len);
    }
}

/// Interrupting a thread at an arbitrary moment and reading its state
/// never perturbs the final outcome (promptness is free).
#[test]
fn midrun_state_extraction_is_harmless() {
    let mut rng = Rng(0xF1BE_0003);
    for _ in 0..24 {
        let ops = rng.random_ops(5, 25);
        let probe_at = rng.range_u64(1_000, 200_000);

        let expected = run_app(Config::interrupt_np(), &ops);
        // Same run, but pause at an arbitrary cycle and snapshot the
        // thread's frame through the debugger (identical to get_state).
        let mut k = Kernel::new(Config::interrupt_np());
        let mut p = ChildProc::new(&mut k);
        let h_mutex = p.alloc_obj();
        let prog = random_app(&ops, p.mem_base, h_mutex);
        let t = p.start(&mut k, prog, 8);
        k.run(Some(probe_at));
        let _frame = k.thread_frame(t);
        assert!(run_to_halt(&mut k, &[t], 5_000_000_000));
        let got = (
            k.read_mem_u32(p.space, p.mem_base + 0x2000),
            k.thread_regs(t).get(Reg::Edi),
        );
        assert_eq!(got, expected, "probe at {probe_at} perturbed {ops:?}");
    }
}

/// `region_search` enumeration is complete and ordered for arbitrary
/// object placements.
#[test]
fn region_search_enumerates_all_objects() {
    let mut rng = Rng(0xF1BE_0004);
    for _ in 0..24 {
        let count = rng.range(1, 12);
        let mut slots = BTreeSet::new();
        while (slots.len() as u32) < count {
            slots.insert(rng.range(0, 200));
        }

        let mut k = Kernel::new(Config::process_np());
        let mut p = ChildProc::new(&mut k);
        let _ = p.alloc_obj();
        let mut expected = Vec::new();
        for &s in &slots {
            let vaddr = p.mem_base + 0x1000 + s * 32;
            k.loader_create(p.space, vaddr, ObjType::Mutex);
            expected.push(vaddr);
        }
        // Enumerate via the syscall from a scanning program.
        let rec = p.mem_base + 0x3000;
        let mut a = Assembler::new("scan");
        a.movi(Reg::Ebp, rec);
        a.movi(fluke_api::abi::ARG_VAL, p.mem_base + 0x1000);
        a.label("next");
        a.movi(fluke_api::abi::ARG_HANDLE, 0);
        a.movi(fluke_api::abi::ARG_COUNT, p.mem_base + 0x3000);
        a.sys(Sys::RegionSearch);
        a.cmpi(Reg::Eax, fluke_api::ErrorCode::NotFound as u32);
        a.jcc(Cond::Eq, "done");
        a.store(Reg::Ebp, 0, fluke_api::abi::ARG_SBUF);
        a.addi(Reg::Ebp, 4);
        a.jmp("next");
        a.label("done");
        a.movi(Reg::Edx, 0);
        a.store(Reg::Ebp, 0, Reg::Edx); // terminator
        a.halt();
        let t = p.start(&mut k, a.finish(), 8);
        assert!(run_to_halt(&mut k, &[t], 5_000_000_000));
        let mut got = Vec::new();
        let mut addr = rec;
        loop {
            let v = k.read_mem_u32(p.space, addr);
            if v == 0 {
                break;
            }
            got.push(v);
            addr += 4;
        }
        assert_eq!(got, expected);
    }
}

//! User-level checkpointing and migration (paper §4.1, [31]): the
//! applications the atomic API exists to enable.

use fluke_api::abi::ARG_HANDLE;
use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel, RunState, SpaceId, WaitReason};
use fluke_user::checkpoint::{checkpoint_space, restore_space, SyscallAgent};
use fluke_user::migrate::migrate_space;
use fluke_user::proc::run_to_halt;
use fluke_user::FlukeAsm;

const CHILD_BASE: u32 = 0x0040_0000;
const CHILD_LEN: u32 = 0x4000;
const MGR_MEM: u32 = 0x0010_0000;

/// Handles inside the child window (also visible to the manager via the
/// identity window).
const H_MUTEX: u32 = CHILD_BASE;
const H_COND: u32 = CHILD_BASE + 32;
const COUNTER: u32 = CHILD_BASE + 0x1000;
const DONE_FLAG: u32 = CHILD_BASE + 0x1004;

/// A worker that loops: lock, bump a counter, unlock, compute; halts when
/// the counter reaches a target. Checkpointable at any moment.
fn worker_program(target: u32) -> fluke_arch::Program {
    let mut a = Assembler::new("worker");
    a.sys_h(Sys::MutexCreate, H_MUTEX);
    a.sys_h(Sys::CondCreate, H_COND);
    a.label("loop");
    a.mutex_lock(H_MUTEX);
    a.movi(Reg::Ebp, COUNTER);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.addi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.mutex_unlock(H_MUTEX);
    a.compute(5_000);
    a.movi(Reg::Ebp, COUNTER);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.cmpi(Reg::Edx, target);
    a.jcc(Cond::Lt, "loop");
    a.store_const(DONE_FLAG, 0xD0E);
    a.halt();
    a.finish()
}

/// Set up a manager (with agent), a child space running `prog`, and the
/// identity window + Space object handle the checkpointer needs.
struct World {
    k: Kernel,
    agent: SyscallAgent,
    child_space: SpaceId,
    space_handle: u32,
    worker: fluke_core::ThreadId,
}

fn world(cfg: Config, target: u32) -> World {
    let mut k = Kernel::new(cfg);
    let manager = k.create_space();
    k.grant_pages(manager, MGR_MEM, 0x2000, true);
    let child_space = k.create_space();
    k.grant_pages(child_space, CHILD_BASE, CHILD_LEN, true);
    fluke_user::checkpoint::identity_window(
        &mut k,
        manager,
        MGR_MEM + 0x1000,
        child_space,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space_handle = MGR_MEM + 0x1800;
    k.loader_space_object(manager, space_handle, child_space);
    let agent = SyscallAgent::new(&mut k, manager, 20);
    let pid = k.register_program(worker_program(target));
    let worker = k.spawn_thread(child_space, pid, fluke_arch::UserRegs::new(), 8);
    // Register the worker as a Thread object inside the child window so
    // the checkpointer's enumeration finds it.
    k.loader_thread_object(child_space, CHILD_BASE + 64, worker);
    World {
        k,
        agent,
        child_space,
        space_handle,
        worker,
    }
}

#[test]
fn checkpoint_captures_objects_memory_and_thread() {
    let mut w = world(Config::process_np(), 1000);
    // Run partway.
    w.k.run(Some(2_000_000));
    let count_before = w.k.read_mem_u32(w.child_space, COUNTER);
    assert!(
        count_before > 0 && count_before < 1000,
        "mid-run checkpoint"
    );
    let image = checkpoint_space(
        &mut w.k,
        &w.agent,
        w.space_handle,
        CHILD_BASE,
        CHILD_LEN,
        MGR_MEM,
    )
    .expect("checkpoint window mapped");
    // Mutex, Cond, Thread objects plus the memory snapshot.
    let types: Vec<ObjType> = image.records.iter().map(|r| r.ty).collect();
    assert!(types.contains(&ObjType::Mutex));
    assert!(types.contains(&ObjType::Cond));
    assert!(types.contains(&ObjType::Thread));
    assert_eq!(image.memory.len(), CHILD_LEN as usize);
    let snap_counter = u32::from_le_bytes(image.memory[0x1000..0x1004].try_into().unwrap());
    assert_eq!(snap_counter, w.k.read_mem_u32(w.child_space, COUNTER));
}

/// Checkpoint a running child, let the original finish, then restore the
/// image into a fresh space: the clone resumes from the snapshot and also
/// runs to completion — the full state capture/rebuild cycle.
#[test]
fn restore_resumes_from_snapshot() {
    let mut w = world(Config::process_np(), 400);
    w.k.run(Some(1_200_000));
    let image = checkpoint_space(
        &mut w.k,
        &w.agent,
        w.space_handle,
        CHILD_BASE,
        CHILD_LEN,
        MGR_MEM,
    )
    .expect("checkpoint window mapped");
    let snap_counter = u32::from_le_bytes(image.memory[0x1000..0x1004].try_into().unwrap());
    assert!(snap_counter < 400);
    // Let the original finish.
    assert!(run_to_halt(&mut w.k, &[w.worker], 2_000_000_000));
    assert_eq!(w.k.read_mem_u32(w.child_space, DONE_FLAG), 0xD0E);

    // Build a fresh child space + window, restore, and run the clone.
    let manager2 = w.agent.space;
    let child2 = w.k.create_space();
    w.k.grant_pages(child2, CHILD_BASE, CHILD_LEN, true);
    // A second identity window would collide with the first at the same
    // addresses, so restore uses a second manager space instead.
    let mgr2_mem = 0x0060_0000;
    let manager3 = w.k.create_space();
    w.k.grant_pages(manager3, mgr2_mem, 0x2000, true);
    fluke_user::checkpoint::identity_window(
        &mut w.k,
        manager3,
        mgr2_mem + 0x1000,
        child2,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space2_handle = mgr2_mem + 0x1800;
    w.k.loader_space_object(manager3, space2_handle, child2);
    let agent2 = SyscallAgent::new(&mut w.k, manager3, 20);
    let _ = manager2;
    restore_space(&mut w.k, &agent2, &image, space2_handle, mgr2_mem)
        .expect("restore window mapped");

    // The clone picks up from snap_counter and finishes the remaining
    // iterations.
    let deadline = w.k.now() + 2_000_000_000;
    loop {
        let exit = w.k.run(Some(deadline));
        if w.k.read_mem_u32(child2, DONE_FLAG) == 0xD0E {
            break;
        }
        assert!(
            exit == fluke_core::RunExit::Deadlock || w.k.now() < deadline,
            "clone did not finish"
        );
        if exit != fluke_core::RunExit::TimeLimit {
            // Quiescent without the flag set would be a failure.
            assert_eq!(w.k.read_mem_u32(child2, DONE_FLAG), 0xD0E);
            break;
        }
    }
    assert_eq!(w.k.read_mem_u32(child2, COUNTER), 400);
}

/// A thread checkpointed while BLOCKED on a mutex is restored blocked:
/// the extracted frame says "about to mutex_lock", and the restored clone
/// re-queues itself, completing only when the restored mutex is unlocked.
#[test]
fn blocked_thread_restores_as_blocked() {
    let mut k = Kernel::new(Config::interrupt_np());
    let manager = k.create_space();
    k.grant_pages(manager, MGR_MEM, 0x2000, true);
    let child = k.create_space();
    k.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    fluke_user::checkpoint::identity_window(
        &mut k,
        manager,
        MGR_MEM + 0x1000,
        child,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space_handle = MGR_MEM + 0x1800;
    k.loader_space_object(manager, space_handle, child);
    let agent = SyscallAgent::new(&mut k, manager, 20);

    // Child: create mutex locked, then a second thread blocks on it.
    let mut a = Assembler::new("holder");
    a.sys_h(Sys::MutexCreate, H_MUTEX);
    a.mutex_lock(H_MUTEX);
    a.halt();
    let pid = k.register_program(a.finish());
    let holder = k.spawn_thread(child, pid, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[holder], 10_000_000));

    let mut a = Assembler::new("blocker");
    a.mutex_lock(H_MUTEX);
    a.store_const(DONE_FLAG, 0xB10C);
    a.halt();
    let pid = k.register_program(a.finish());
    let blocker = k.spawn_thread(child, pid, fluke_arch::UserRegs::new(), 8);
    k.loader_thread_object(child, CHILD_BASE + 64, blocker);
    k.run(Some(1_000_000));
    assert!(matches!(
        k.thread_run_state(blocker),
        RunState::Blocked(WaitReason::Mutex(_))
    ));

    // Checkpoint, then destroy the whole child.
    let image = checkpoint_space(&mut k, &agent, space_handle, CHILD_BASE, CHILD_LEN, MGR_MEM)
        .expect("checkpoint window mapped");
    let mut regs = fluke_arch::UserRegs::new();
    regs.set(ARG_HANDLE, CHILD_BASE + 64);
    agent.call_checked(&mut k, Sys::ThreadDestroy, regs);

    // Restore into a new child space.
    let child2 = k.create_space();
    k.grant_pages(child2, CHILD_BASE, CHILD_LEN, true);
    let mgr2_mem = 0x0060_0000;
    let manager2 = k.create_space();
    k.grant_pages(manager2, mgr2_mem, 0x2000, true);
    fluke_user::checkpoint::identity_window(
        &mut k,
        manager2,
        mgr2_mem + 0x1000,
        child2,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space2 = mgr2_mem + 0x1800;
    k.loader_space_object(manager2, space2, child2);
    let agent2 = SyscallAgent::new(&mut k, manager2, 20);
    restore_space(&mut k, &agent2, &image, space2, mgr2_mem).expect("restore window mapped");

    // The restored mutex is locked and the restored thread re-blocked.
    k.run(Some(2_000_000));
    assert_ne!(k.read_mem_u32(child2, DONE_FLAG), 0xB10C);

    // Unlock through the restored handle (agent2 sees the new child's
    // objects via its identity window).
    let mut regs = fluke_arch::UserRegs::new();
    regs.set(ARG_HANDLE, H_MUTEX);
    let (code, _) = agent2.call_checked(&mut k, Sys::MutexUnlock, regs);
    assert_eq!(code, fluke_api::ErrorCode::Success);
    k.run(Some(20_000_000));
    assert_eq!(k.read_mem_u32(child2, DONE_FLAG), 0xB10C);
}

/// Full migration: checkpoint on kernel A, ship to a *different kernel
/// instance* (different execution model, even), restore, and the program
/// completes there with identical results.
#[test]
fn migrate_between_kernels_and_models() {
    let mut w = world(Config::process_np(), 300);
    w.k.run(Some(900_000));
    let image = checkpoint_space(
        &mut w.k,
        &w.agent,
        w.space_handle,
        CHILD_BASE,
        CHILD_LEN,
        MGR_MEM,
    )
    .expect("checkpoint window mapped");
    let snap = u32::from_le_bytes(image.memory[0x1000..0x1004].try_into().unwrap());
    assert!(snap > 0 && snap < 300);

    // Destination: an interrupt-model kernel.
    let mut dst = Kernel::new(Config::interrupt_np());
    let manager = dst.create_space();
    dst.grant_pages(manager, MGR_MEM, 0x2000, true);
    let child = dst.create_space();
    dst.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    fluke_user::checkpoint::identity_window(
        &mut dst,
        manager,
        MGR_MEM + 0x1000,
        child,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space_handle = MGR_MEM + 0x1800;
    dst.loader_space_object(manager, space_handle, child);
    let agent = SyscallAgent::new(&mut dst, manager, 20);

    migrate_space(&w.k, &mut dst, &agent, image, space_handle, MGR_MEM)
        .expect("migrate window mapped");

    // The migrated worker finishes on the destination machine.
    let deadline = dst.now() + 2_000_000_000;
    while dst.read_mem_u32(child, DONE_FLAG) != 0xD0E {
        let exit = dst.run(Some(deadline));
        if exit != fluke_core::RunExit::TimeLimit {
            break;
        }
    }
    assert_eq!(dst.read_mem_u32(child, DONE_FLAG), 0xD0E);
    assert_eq!(dst.read_mem_u32(child, COUNTER), 300);
}

//! Tests of the paper's four atomic-API properties (§4.1–§4.3):
//! promptness, correctness, interruptibility and restartability.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_SBUF, ARG_VAL};
use fluke_api::state::{ThreadStateFrame, THREAD_FRAME_WORDS};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::{Assembler, Reg, UserRegs};
use fluke_core::{Config, Kernel, RunState, WaitReason};
use fluke_user::checkpoint::SyscallAgent;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// `cond_wait` is the paper's worked multi-stage example (§4.3): before
/// sleeping, the kernel rewrites the thread's entrypoint register to
/// `mutex_lock` with the mutex argument in place, so any wake or interrupt
/// retries only the re-lock stage.
#[test]
fn cond_wait_rewrites_continuation_to_mutex_lock() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_mutex = p.alloc_obj();
    let h_cond = p.alloc_obj();

    let mut a = Assembler::new("waiter");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.sys_h(Sys::CondCreate, h_cond);
    a.mutex_lock(h_mutex);
    a.cond_wait(h_cond, h_mutex);
    a.mutex_unlock(h_mutex);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);

    // Run until the waiter is asleep on the condition variable.
    k.run(Some(1_000_000));
    assert!(matches!(
        k.thread_run_state(t),
        RunState::Blocked(WaitReason::Cond(_))
    ));
    // THE paper's claim, verbatim: the blocked thread's user-visible state
    // is a pending `mutex_lock(mutex)` call.
    let regs = k.thread_regs(t);
    assert_eq!(regs.get(Reg::Eax), Sys::MutexLock.num());
    assert_eq!(regs.get(ARG_HANDLE), h_mutex);

    // A signal from a second thread completes the wait: the waiter
    // re-acquires the mutex and runs to completion.
    let mut a = Assembler::new("signaler");
    a.mutex_lock(h_mutex);
    a.cond_signal(h_cond);
    a.mutex_unlock(h_mutex);
    a.halt();
    let s = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t, s], 10_000_000));
}

/// Promptness: extracting the state of a thread blocked in a Long call
/// never waits on any user activity — the extractor runs and completes
/// while the target stays blocked.
#[test]
fn get_state_of_blocked_thread_is_prompt() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut p = ChildProc::new(&mut k);
    let h_mutex = p.alloc_obj();
    let h_thread = p.alloc_obj();
    let scratch = p.mem_base + 0x2000;

    // Victim: lock the mutex twice — the second lock blocks forever.
    let mut a = Assembler::new("victim");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.mutex_lock(h_mutex);
    a.mutex_lock(h_mutex);
    a.halt();
    let victim = p.start(&mut k, a.finish(), 8);
    k.run(Some(1_000_000));
    assert!(matches!(
        k.thread_run_state(victim),
        RunState::Blocked(WaitReason::Mutex(_))
    ));
    k.loader_thread_object(p.space, h_thread, victim);

    // Extractor: thread_get_state(victim) must complete promptly.
    let mut a = Assembler::new("extractor");
    a.movi(ARG_HANDLE, h_thread);
    a.movi(ARG_SBUF, scratch);
    a.movi(ARG_COUNT, THREAD_FRAME_WORDS as u32);
    a.sys(Sys::ThreadGetState);
    a.halt();
    let ex = p.start(&mut k, a.finish(), 8);
    assert!(
        run_to_halt(&mut k, &[ex], 5_000_000),
        "extraction not prompt"
    );
    assert_eq!(k.thread_regs(ex).get(Reg::Eax), ErrorCode::Success as u32);
    // The victim is still blocked, untouched.
    assert!(matches!(
        k.thread_run_state(victim),
        RunState::Blocked(WaitReason::Mutex(_))
    ));
    // The extracted frame shows a clean pending mutex_lock.
    let words: Vec<u32> = (0..THREAD_FRAME_WORDS as u32)
        .map(|i| k.read_mem_u32(p.space, scratch + i * 4))
        .collect();
    let frame = ThreadStateFrame::from_words(&words).unwrap();
    assert_eq!(frame.regs.get(Reg::Eax), Sys::MutexLock.num());
    assert_eq!(frame.regs.get(ARG_HANDLE), h_mutex);
    assert_eq!(frame.runnable, 1);
}

/// Correctness (the paper's defining experiment): extract a thread's state
/// at an arbitrary time, destroy the thread, create a fresh one, install
/// the extracted state — the new thread behaves indistinguishably.
#[test]
fn destroy_and_recreate_from_extracted_state() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_mutex = p.alloc_obj();
    let h_thread = p.alloc_obj();
    let h_thread2 = p.alloc_obj();
    let result_addr = p.mem_base + 0x3000;

    // Victim: block on a held mutex, then (when eventually unblocked)
    // write a sentinel and halt.
    let mut a = Assembler::new("victim");
    a.mutex_lock(h_mutex); // blocks: mutex pre-locked below
    a.store_const(result_addr, 0xC0FFEE);
    a.halt();
    let victim_prog = k.register_program(a.finish());

    // Setup: create + pre-lock the mutex from a setup thread.
    let mut a = Assembler::new("setup");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.mutex_lock(h_mutex);
    a.halt();
    let setup = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[setup], 5_000_000));

    let victim = p.start_registered(&mut k, victim_prog, UserRegs::new(), 8);
    k.run(Some(2_000_000));
    assert!(matches!(
        k.thread_run_state(victim),
        RunState::Blocked(WaitReason::Mutex(_))
    ));
    k.loader_thread_object(p.space, h_thread, victim);

    // Host-side manager: extract, destroy, re-create, install.
    let agent = SyscallAgent::new(&mut k, p.space, 20);
    let scratch = p.mem_base + 0x3800;
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, h_thread);
    regs.set(ARG_SBUF, scratch);
    regs.set(ARG_COUNT, THREAD_FRAME_WORDS as u32);
    let (code, _) = agent.call_checked(&mut k, Sys::ThreadGetState, regs);
    assert_eq!(code, ErrorCode::Success);

    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, h_thread);
    let (code, _) = agent.call_checked(&mut k, Sys::ThreadDestroy, regs);
    assert_eq!(code, ErrorCode::Success);
    assert!(k.thread_halted(victim));

    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, h_thread2);
    let (code, _) = agent.call_checked(&mut k, Sys::ThreadCreate, regs);
    assert_eq!(code, ErrorCode::Success);
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, h_thread2);
    regs.set(ARG_SBUF, scratch);
    regs.set(ARG_COUNT, THREAD_FRAME_WORDS as u32);
    let (code, _) = agent.call_checked(&mut k, Sys::ThreadSetState, regs);
    assert_eq!(code, ErrorCode::Success);

    // The clone is blocked exactly where the original was: re-executing
    // mutex_lock and waiting.
    k.run(Some(1_000_000));
    let clone = match k.object_at(p.space, h_thread2).map(|_| ()) {
        Some(()) => {
            // find the re-created thread by scanning: it is the only
            // non-halted thread blocked on the mutex
            (0..64)
                .map(fluke_core::ThreadId)
                .find(|t| {
                    !k.thread_halted(*t)
                        && matches!(
                            k.thread_run_state(*t),
                            RunState::Blocked(WaitReason::Mutex(_))
                        )
                })
                .expect("clone re-blocked on the mutex")
        }
        None => panic!("thread object missing"),
    };

    // Unlock the mutex: the clone must resume and write the sentinel —
    // indistinguishable from the original's future behaviour.
    let mut a = Assembler::new("unlocker");
    a.mutex_unlock(h_mutex);
    a.halt();
    let u = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[u, clone], 10_000_000));
    assert_eq!(k.read_mem_u32(p.space, result_addr), 0xC0FFEE);
}

/// `thread_interrupt` breaks a target out of a Long sleep with a visible
/// `Interrupted` result, leaving a valid continuation for re-issue.
#[test]
fn interrupt_breaks_out_of_long_call() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_thread = p.alloc_obj();
    let rec = p.mem_base + 0x3000;

    let mut a = Assembler::new("sleeper");
    a.sys(Sys::ThreadSleep);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    let sleeper = p.start(&mut k, a.finish(), 8);
    k.run(Some(1_000_000));
    assert!(matches!(
        k.thread_run_state(sleeper),
        RunState::Blocked(WaitReason::Sleep)
    ));
    k.loader_thread_object(p.space, h_thread, sleeper);

    let mut a = Assembler::new("interruptor");
    a.sys_h(Sys::ThreadInterrupt, h_thread);
    a.halt();
    let i = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[i, sleeper], 10_000_000));
    assert_eq!(k.read_mem_u32(p.space, rec), ErrorCode::Interrupted as u32);
}

/// Restartability of Short calls: naming an object whose page is not yet
/// derived in the caller's space page-faults, resolves through the
/// hierarchy, and the call restarts transparently (paper §4.3's
/// `port_reference` example).
#[test]
fn short_call_restarts_after_handle_fault() {
    let mut k = Kernel::new(Config::interrupt_np());
    // Parent owns the memory holding a mutex object.
    let mut parent = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
    let h_mutex = parent.alloc_obj();
    k.loader_create(parent.space, h_mutex, ObjType::Mutex);
    // Child imports the parent's page lazily (no PTEs yet): its first
    // *naming* of the mutex faults and soft-resolves.
    let child_space = k.create_space();
    let region = k.loader_region_at(
        parent.space,
        parent.mem_base + 0x2000,
        parent.space,
        parent.mem_base,
        0x4000,
        None,
    );
    k.loader_mapping(
        parent.space,
        parent.mem_base + 0x2020,
        child_space,
        parent.mem_base,
        0x4000,
        region,
        0,
        true,
    );
    let mut a = Assembler::new("child");
    a.sys_h(Sys::MutexTrylock, h_mutex);
    a.halt();
    let pid = k.register_program(a.finish());
    let t = k.spawn_thread(child_space, pid, UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[t], 10_000_000));
    assert_eq!(k.thread_regs(t).get(Reg::Eax), ErrorCode::Success as u32);
    assert!(k.stats.soft_faults >= 1, "handle naming should soft-fault");
}

/// The `*_move` rename operation re-keys an object; the old handle stops
/// resolving and the new one works.
#[test]
fn object_move_rekeys_handle() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_old = p.alloc_obj();
    let h_new = p.alloc_obj() + 0x1000; // elsewhere in the window
    let rec = p.mem_base + 0x3000;

    let mut a = Assembler::new("mover");
    a.sys_h(Sys::MutexCreate, h_old);
    a.sys_hv(Sys::MutexMove, h_old, h_new);
    // Old handle must now be invalid; new must work.
    a.sys_h(Sys::MutexTrylock, h_old);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.sys_h(Sys::MutexTrylock, h_new);
    a.store(Reg::Ebp, 4, Reg::Eax);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t], 10_000_000));
    assert_eq!(
        k.read_mem_u32(p.space, rec),
        ErrorCode::InvalidHandle as u32
    );
    assert_eq!(k.read_mem_u32(p.space, rec + 4), ErrorCode::Success as u32);
}

/// Destroying a mutex wakes its waiters, whose restarted `mutex_lock`
/// observes the absence — teardown needs no special-case state.
#[test]
fn destroy_mutex_wakes_waiters_with_invalid_handle() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_mutex = p.alloc_obj();
    let rec = p.mem_base + 0x3000;

    let mut a = Assembler::new("waiter");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.mutex_lock(h_mutex);
    a.mutex_lock(h_mutex); // blocks
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    let w = p.start(&mut k, a.finish(), 8);
    k.run(Some(1_000_000));
    assert!(matches!(
        k.thread_run_state(w),
        RunState::Blocked(WaitReason::Mutex(_))
    ));

    let mut a = Assembler::new("destroyer");
    a.sys_h(Sys::MutexDestroy, h_mutex);
    a.halt();
    let d = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[d, w], 10_000_000));
    assert_eq!(
        k.read_mem_u32(p.space, rec),
        ErrorCode::InvalidHandle as u32
    );
}

/// Trivial calls return without ever faulting or sleeping, and yield the
/// documented values.
#[test]
fn trivial_calls_complete_immediately() {
    let mut k = Kernel::new(Config::interrupt_pp());
    let mut p = ChildProc::new(&mut k);
    let rec = p.mem_base + 0x3000;
    let _ = p.alloc_obj();

    let mut a = Assembler::new("trivial");
    a.sys(Sys::ThreadSelf);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, ARG_VAL);
    a.sys(Sys::SysVersion);
    a.store(Reg::Ebp, 4, ARG_VAL);
    a.sys(Sys::SysCpuId);
    a.store(Reg::Ebp, 8, ARG_VAL);
    a.sys(Sys::SysNull);
    a.store(Reg::Ebp, 12, Reg::Eax);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t], 10_000_000));
    assert_eq!(k.read_mem_u32(p.space, rec), t.0); // thread_self ordinal
    assert_eq!(k.read_mem_u32(p.space, rec + 4), 0x0001_0000); // version
    assert_eq!(k.read_mem_u32(p.space, rec + 8), 0); // cpu id
    assert_eq!(k.read_mem_u32(p.space, rec + 12), 0); // null: Success
    assert_eq!(k.stats.soft_faults, 0);
    assert_eq!(k.stats.hard_faults, 0);
}

/// `thread_wait` joins a child; `space_wait_threads` reaps a space.
#[test]
fn join_and_space_wait() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_thread = p.alloc_obj();

    let mut a = Assembler::new("short-lived");
    a.compute(10_000);
    a.halt();
    let worker = p.start(&mut k, a.finish(), 8);
    k.loader_thread_object(p.space, h_thread, worker);

    let mut a = Assembler::new("joiner");
    a.sys_h(Sys::ThreadWait, h_thread);
    a.halt();
    let j = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[worker, j], 10_000_000));
    assert_eq!(k.thread_regs(j).get(Reg::Eax), ErrorCode::Success as u32);
}

/// `region_search` enumerates the objects of a space in address order —
/// the primitive the user-level checkpointer is built on.
#[test]
fn region_search_enumerates_objects() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_a = p.alloc_obj();
    let h_b = p.alloc_obj();
    let h_c = p.alloc_obj();
    let rec = p.mem_base + 0x3000;

    let mut a = Assembler::new("searcher");
    a.sys_h(Sys::MutexCreate, h_a);
    a.sys_h(Sys::CondCreate, h_b);
    a.sys_h(Sys::PortCreate, h_c);
    // Search self-space (handle 0) from mem_base.
    a.movi(ARG_HANDLE, 0);
    a.movi(ARG_VAL, p.mem_base);
    a.movi(ARG_COUNT, p.mem_base + 0x8000);
    a.sys(Sys::RegionSearch);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, ARG_SBUF); // first object's vaddr
    a.store(Reg::Ebp, 4, fluke_api::abi::ARG_RBUF); // its type
                                                    // Continue from the advanced cursor (still in edx).
    a.movi(ARG_HANDLE, 0);
    a.movi(ARG_COUNT, p.mem_base + 0x8000);
    a.sys(Sys::RegionSearch);
    a.store(Reg::Ebp, 8, ARG_SBUF);
    a.store(Reg::Ebp, 12, fluke_api::abi::ARG_RBUF);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t], 50_000_000));
    assert_eq!(k.read_mem_u32(p.space, rec), h_a);
    assert_eq!(k.read_mem_u32(p.space, rec + 4), ObjType::Mutex as u32);
    assert_eq!(k.read_mem_u32(p.space, rec + 8), h_b);
    assert_eq!(k.read_mem_u32(p.space, rec + 12), ObjType::Cond as u32);
}

//! Faults in the middle of reliable IPC transfers — the Table 3 scenarios.
//!
//! Each test arranges for a specific side of an
//! `ipc_client_connect_send_over_receive` to fault at a specific severity:
//!
//! * **soft** — the backing page exists higher in the mapping hierarchy
//!   (the pager's space) but the faulting space has no PTE yet;
//! * **hard** — nobody has the page; the kernel must RPC the user-level
//!   pager through the region's keeper port.
//!
//! In every case the transfer completes with byte-exact data, and the
//! fault records show the expected side/severity.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF};
use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Reg, UserRegs};
use fluke_core::{Config, FaultKind, FaultSide, Kernel, SpaceId};
use fluke_user::pager::PagerSetup;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

const CLIENT_BUF: u32 = 0x0040_0000;
const SERVER_BUF: u32 = 0x0050_0000;
const N: u32 = 12_000; // spans 3-4 pages

struct FaultRig {
    k: Kernel,
    pager: PagerSetup,
    client_space: SpaceId,
    server_space: SpaceId,
    client: ChildProc,
    server: ChildProc,
    h_ref: u32,
    h_port: u32,
}

/// Build the rig. `client_paged`/`server_paged` select which side's buffer
/// is demand-paged from the pager's region; `prefill` pre-populates the
/// pager's backing (making faults soft instead of hard).
fn rig(cfg: Config, client_paged: bool, server_paged: bool, prefill: bool) -> FaultRig {
    let mut k = Kernel::new(cfg);
    let pager = PagerSetup::boot(&mut k, 1 << 22, 12);
    // Client and server control pages (code-side objects + results).
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x4000);
    let mut server = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    // Buffers: paged sides map the pager's region; unpaged sides get
    // direct grants.
    if client_paged {
        let mut slot = 0x1900;
        while k.object_at(pager.space, slot).is_some() {
            slot += 32;
        }
        k.loader_mapping(
            pager.space,
            slot,
            client.space,
            CLIENT_BUF,
            1 << 20,
            pager.region,
            0,
            true,
        );
    } else {
        k.grant_pages(client.space, CLIENT_BUF, 1 << 20, true);
    }
    if server_paged {
        let mut slot = 0x1900;
        while k.object_at(pager.space, slot).is_some() {
            slot += 32;
        }
        k.loader_mapping(
            pager.space,
            slot,
            server.space,
            SERVER_BUF,
            1 << 20,
            pager.region,
            1 << 21, // a distinct window of the backing region
            true,
        );
    } else {
        k.grant_pages(server.space, SERVER_BUF, 1 << 20, true);
    }
    if prefill {
        // Populate the pager's backing pages directly (boot grant), so
        // importer faults are derivable = soft.
        k.grant_pages(pager.space, pager.backing_base, 1 << 20, true);
        k.grant_pages(pager.space, pager.backing_base + (1 << 21), 1 << 20, true);
    }
    FaultRig {
        client_space: client.space,
        server_space: server.space,
        k,
        pager,
        client,
        server,
        h_ref,
        h_port,
    }
}

/// Run the canonical Table 3 exchange: client sends N bytes, server echoes
/// them back. The client's send buffer must be written via the kernel
/// debugger only when the pages exist; for paged client buffers the client
/// program writes a pattern itself (faulting pages in as user accesses).
fn run_exchange(r: &mut FaultRig, client_writes_pattern: bool) {
    let crep = r.client.mem_base + 0x2000;
    // Server: receive all N, echo first 64 back.
    let mut a = Assembler::new("server");
    a.movi(ARG_HANDLE, r.h_port);
    a.movi(ARG_RBUF, SERVER_BUF);
    a.movi(ARG_COUNT, N);
    a.sys(Sys::IpcServerWaitReceive);
    a.server_ack_send(SERVER_BUF, 64);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let mut a = Assembler::new("client");
    if client_writes_pattern {
        // Fill the (possibly unmapped) buffer with index bytes.
        a.movi(Reg::Ebp, CLIENT_BUF);
        a.movi(Reg::Ecx, N);
        a.label("fill");
        a.mov(Reg::Edx, Reg::Ecx);
        a.storeb(Reg::Ebp, 0, Reg::Edx);
        a.addi(Reg::Ebp, 1);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(fluke_arch::Cond::Ne, "fill");
    }
    a.client_rpc(r.h_ref, CLIENT_BUF, N, crep, 64);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    assert!(
        run_to_halt(&mut r.k, &[st, ct], 2_000_000_000),
        "exchange did not complete"
    );
    // Byte-exact: the server received what the client's buffer held.
    let got = r.k.read_mem(r.server_space, SERVER_BUF, N);
    let want = r.k.read_mem(r.client_space, CLIENT_BUF, N);
    assert_eq!(got, want, "transfer corrupted");
    // And the echo reply landed.
    assert_eq!(
        r.k.read_mem(r.client_space, crep, 64),
        r.k.read_mem(r.server_space, SERVER_BUF, 64)
    );
}

/// IPC-time fault records of a given side/kind.
fn ipc_faults(k: &Kernel, side: FaultSide, kind: FaultKind) -> usize {
    k.stats
        .fault_records
        .iter()
        .filter(|f| f.during_ipc && f.side == side && f.kind == kind)
        .count()
}

#[test]
fn client_side_soft_faults_resolve_inline() {
    // Client buffer paged + prefilled backing: the client's fill loop
    // faults softly per page (user-mode faults), and any remaining
    // derivations during the send are client-side soft IPC faults.
    let mut r = rig(Config::process_np(), true, false, true);
    run_exchange(&mut r, true);
    assert_eq!(r.k.stats.hard_faults, 0);
    assert!(r.k.stats.soft_faults >= 3);
    // Client-side soft faults during IPC never force a rollback.
    for f in
        r.k.stats
            .fault_records
            .iter()
            .filter(|f| f.during_ipc && f.side == FaultSide::Client && f.kind == FaultKind::Soft)
    {
        assert_eq!(f.rollback_cycles, 0, "client soft fault must not roll back");
    }
}

#[test]
fn server_side_soft_faults_restart_the_transfer() {
    // Server receive buffer paged + prefilled: the pump faults writing
    // into the server's space while the client is current.
    let mut r = rig(Config::process_np(), false, true, true);
    run_exchange(&mut r, false);
    r.k.write_mem(r.client_space, CLIENT_BUF, &[0; 8]); // touch to ensure mapped
    assert_eq!(r.k.stats.hard_faults, 0);
    let n = ipc_faults(&r.k, FaultSide::Server, FaultKind::Soft);
    assert!(n >= 3, "expected server-side soft IPC faults, got {n}");
    // Server-side soft faults restart the operation: rollback > 0.
    let rolled: u64 =
        r.k.stats
            .fault_records
            .iter()
            .filter(|f| f.during_ipc && f.side == FaultSide::Server)
            .map(|f| f.rollback_cycles)
            .sum();
    assert!(rolled > 0, "server-side faults must record rollback work");
}

#[test]
fn client_side_hard_faults_rpc_the_pager() {
    // Client buffer paged, backing NOT prefilled: the client's own fill
    // loop hard-faults (user instructions), and the send path reads are
    // then soft/present. To force hard faults *during* the send itself,
    // skip the fill: send uninitialized (zero) pages.
    let mut r = rig(Config::process_np(), true, false, false);
    run_exchange(&mut r, false);
    assert!(
        ipc_faults(&r.k, FaultSide::Client, FaultKind::Hard) >= 3,
        "expected client-side hard faults during the send"
    );
    // Remedy (the pager round trip) dwarfs rollback — Table 3's headline.
    for f in
        r.k.stats
            .fault_records
            .iter()
            .filter(|f| f.during_ipc && f.side == FaultSide::Client && f.kind == FaultKind::Hard)
    {
        assert!(f.remedy_cycles > 0);
        assert!(
            f.rollback_cycles < f.remedy_cycles,
            "rollback {} should be far below remedy {}",
            f.rollback_cycles,
            f.remedy_cycles
        );
    }
}

#[test]
fn server_side_hard_faults_block_both_then_resume() {
    let mut r = rig(Config::process_np(), false, true, false);
    run_exchange(&mut r, false);
    assert!(
        ipc_faults(&r.k, FaultSide::Server, FaultKind::Hard) >= 3,
        "expected server-side hard faults during the receive"
    );
}

/// The full matrix also completes under the interrupt model.
#[test]
fn hard_faults_complete_under_interrupt_model() {
    let mut r = rig(Config::interrupt_np(), true, true, false);
    run_exchange(&mut r, false);
    assert!(r.k.stats.hard_faults >= 6);
}

/// Identical transfer content regardless of which side faults or the
/// execution model: the fault machinery is invisible to the data.
#[test]
fn fault_matrix_is_data_transparent() {
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        for (cp, sp, pre) in [
            (true, false, true),
            (false, true, true),
            (true, false, false),
            (false, true, false),
            (true, true, false),
        ] {
            let label = format!("{} cp={cp} sp={sp} pre={pre}", cfg.label);
            let mut r = rig(cfg.clone(), cp, sp, pre);
            run_exchange(&mut r, cp); // paged client fills its own buffer
            let got = r.k.read_mem(r.server_space, SERVER_BUF, N);
            let want = r.k.read_mem(r.client_space, CLIENT_BUF, N);
            assert_eq!(got, want, "corruption in {label}");
        }
    }
}

/// User-mode instruction faults (not IPC) also resolve through the same
/// pager, and a `RepMovsB` interrupted by a hard fault resumes mid-copy.
#[test]
fn string_instruction_resumes_across_hard_fault() {
    let mut r = rig(Config::process_np(), true, false, false);
    // Source: granted pages with a pattern; destination: demand-paged.
    let src = r.client.mem_base + 0x1000;
    let pattern: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
    r.k.write_mem(r.client_space, src, &pattern);
    let mut a = Assembler::new("repmovs");
    a.movi(Reg::Esi, src);
    a.movi(Reg::Edi, CLIENT_BUF + 4000); // crosses a page boundary
    a.movi(Reg::Ecx, 2000);
    a.emit(fluke_arch::Instr::RepMovsB);
    a.halt();
    let t = r.client.start(&mut r.k, a.finish(), 8);
    assert!(run_to_halt(&mut r.k, &[t], 500_000_000));
    assert_eq!(
        r.k.read_mem(r.client_space, CLIENT_BUF + 4000, 2000),
        pattern
    );
    assert!(r.k.stats.hard_faults >= 1);
}

// Silence unused-field warnings for rig components kept for completeness.
impl FaultRig {
    #[allow(dead_code)]
    fn pager_thread(&self) -> fluke_core::ThreadId {
        self.pager.thread
    }
}

// UserRegs is used indirectly by helpers; keep the import honest.
#[allow(dead_code)]
fn _unused(_r: UserRegs) {}

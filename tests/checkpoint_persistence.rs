//! Checkpoint images are plain data: they serialize to JSON, survive a
//! disk round trip, and restore from the deserialized form — the paper's
//! user-level checkpointing as an actual persistence mechanism.

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::checkpoint::{
    checkpoint_space, identity_window, restore_space, CheckpointImage, SyscallAgent,
};
use fluke_user::FlukeAsm;

const CHILD_BASE: u32 = 0x0040_0000;
const CHILD_LEN: u32 = 0x4000;
const COUNTER: u32 = CHILD_BASE + 0x1000;
const DONE: u32 = CHILD_BASE + 0x1004;
const MGR_MEM: u32 = 0x0010_0000;

fn worker(target: u32) -> fluke_arch::Program {
    let mut a = Assembler::new("persist-worker");
    a.label("loop");
    a.movi(Reg::Ebp, COUNTER);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.addi(Reg::Edx, 1);
    a.store(Reg::Ebp, 0, Reg::Edx);
    a.compute(3_000);
    a.cmpi(Reg::Edx, target);
    a.jcc(Cond::Lt, "loop");
    a.store_const(DONE, 0xFACE);
    a.halt();
    a.finish()
}

fn make_world(k: &mut Kernel, mgr: u32) -> (SyscallAgent, fluke_core::SpaceId, u32) {
    let manager = k.create_space();
    k.grant_pages(manager, mgr, 0x2000, true);
    let child = k.create_space();
    k.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    identity_window(k, manager, mgr + 0x1000, child, CHILD_BASE, CHILD_LEN);
    let handle = mgr + 0x1800;
    k.loader_space_object(manager, handle, child);
    (SyscallAgent::new(k, manager, 20), child, handle)
}

#[test]
fn image_survives_json_round_trip_and_restores() {
    // Checkpoint a running worker on kernel A.
    let mut a_kernel = Kernel::new(Config::process_np());
    let (agent, child, handle) = make_world(&mut a_kernel, MGR_MEM);
    let pid = a_kernel.register_program(worker(250));
    let t = a_kernel.spawn_thread(child, pid, fluke_arch::UserRegs::new(), 8);
    a_kernel.loader_thread_object(child, CHILD_BASE + 64, t);
    a_kernel.run(Some(500_000));
    let image = checkpoint_space(
        &mut a_kernel,
        &agent,
        handle,
        CHILD_BASE,
        CHILD_LEN,
        MGR_MEM,
    )
    .expect("checkpoint window mapped");
    let snap = u32::from_le_bytes(image.memory[0x1000..0x1004].try_into().unwrap());
    assert!(snap > 0 && snap < 250, "mid-run snapshot, got {snap}");

    // Write to "disk" and read back.
    let json = image.to_json_string();
    assert!(json.len() > CHILD_LEN as usize); // memory bytes included
    let reloaded = CheckpointImage::from_json_str(&json).expect("image deserializes");
    assert_eq!(reloaded, image);

    // Restore the reloaded image on a *different* kernel with a different
    // configuration. The program text must be shipped alongside (as a real
    // checkpointer would ship the executable); re-register and rewrite.
    let mut b_kernel = Kernel::new(Config::interrupt_np());
    let (agent2, child2, handle2) = make_world(&mut b_kernel, MGR_MEM);
    let map = fluke_user::migrate::ship_programs(&a_kernel, &mut b_kernel, &reloaded)
        .expect("every referenced program is registered on kernel A");
    let mut reloaded = reloaded;
    fluke_user::migrate::rewrite_programs(&mut reloaded, &map).expect("thread frames decode");
    restore_space(&mut b_kernel, &agent2, &reloaded, handle2, MGR_MEM)
        .expect("restore window mapped");

    let deadline = b_kernel.now() + 2_000_000_000;
    while b_kernel.read_mem_u32(child2, DONE) != 0xFACE {
        if b_kernel.run(Some(deadline)) != fluke_core::RunExit::TimeLimit {
            break;
        }
    }
    assert_eq!(b_kernel.read_mem_u32(child2, COUNTER), 250);
}

#[test]
fn object_records_serialize_with_type_tags() {
    let rec = fluke_user::checkpoint::ObjectRecord {
        vaddr: 0x1000,
        ty: fluke_api::ObjType::Mutex,
        words: vec![1],
    };
    let json = rec.to_json().to_string();
    assert!(json.contains(&format!("\"ty\":{}", fluke_api::ObjType::Mutex as u32)));
    let back =
        fluke_user::checkpoint::ObjectRecord::from_json(&fluke_json::Json::parse(&json).unwrap())
            .unwrap();
    assert_eq!(back, rec);
}

//! Full-system soak: many client/server pairs, demand-paged client
//! buffers, a 1ms latency probe, and multiple CPUs — everything at once,
//! still byte-exact and deterministic.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF};
use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::pager::PagerSetup;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;
use fluke_workloads::common::counted_loop;
use fluke_workloads::latency::install_probe;

const PAIRS: u32 = 6;
const RPCS: u32 = 40;
const MSG: u32 = 3_000; // crosses a page boundary

fn run_soak(cfg: Config) -> (Vec<Vec<u8>>, u64, u64) {
    let mut k = Kernel::new(cfg);
    let pager = PagerSetup::boot(&mut k, 32 << 20, 12);
    install_probe(&mut k, 1);
    let mut mains = Vec::new();
    let mut spaces = Vec::new();
    for pair in 0..PAIRS {
        let sbase = 0x0100_0000 + pair * 0x0008_0000;
        let cbase = 0x0400_0000 + pair * 0x0008_0000;
        let mut server = ChildProc::with_mem(&mut k, sbase, 0x4000);
        let mut client = ChildProc::with_mem(&mut k, cbase, 0x4000);
        // The client's message buffer is demand-paged through the pager:
        // faults interleave with everyone else's RPC traffic.
        let paged = cbase + 0x0004_0000;
        let mut slot = 0x1d00;
        while k.object_at(pager.space, slot).is_some() {
            slot += 32;
        }
        k.loader_mapping(
            pager.space,
            slot,
            client.space,
            paged,
            0x0002_0000,
            pager.region,
            pair * 0x0002_0000,
            true,
        );
        let h_port = server.alloc_obj();
        let h_ref = client.alloc_obj();
        let port = k.loader_create(server.space, h_port, ObjType::Port);
        k.loader_ref(client.space, h_ref, port);
        let sbuf = sbase + 0x1000;

        // Server: echo RPCS messages, accumulating a checksum of the
        // first byte of each into its memory, then exit.
        let mut a = Assembler::new("soak-server");
        counted_loop(&mut a, "serve", sbase + 0x200, RPCS, |a| {
            a.server_wait_receive(h_port, sbuf, MSG);
            a.server_ack_send(sbuf, 64);
        });
        a.halt();
        let st = server.start(&mut k, a.finish(), 8);

        // Client: fill the paged buffer once (hard faults), then fire
        // RPCS round trips from it.
        let mut a = Assembler::new("soak-client");
        a.movi(Reg::Esi, paged);
        a.movi(Reg::Ebx, 0x40 + pair);
        a.movi(Reg::Ecx, MSG);
        a.label("fill");
        a.storeb(Reg::Esi, 0, Reg::Ebx);
        a.addi(Reg::Esi, 1);
        a.addi(Reg::Ebx, 1);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(fluke_arch::Cond::Ne, "fill");
        counted_loop(&mut a, "rpcs", cbase + 0x200, RPCS, move |a| {
            a.client_rpc(h_ref, paged, MSG, cbase + 0x2000, 64);
        });
        a.halt();
        let ct = client.start(&mut k, a.finish(), 8);
        mains.push(st);
        mains.push(ct);
        spaces.push((server.space, sbuf));
    }
    assert!(
        run_to_halt(&mut k, &mains, 200_000_000_000),
        "soak did not complete"
    );
    // Collect each server's final received message for integrity checks.
    let finals: Vec<Vec<u8>> = spaces
        .iter()
        .map(|&(s, sbuf)| k.read_mem(s, sbuf, MSG))
        .collect();
    let _ = (ARG_HANDLE, ARG_COUNT, ARG_RBUF, Sys::SysNull);
    (finals, k.stats.probe_runs, k.stats.hard_faults)
}

#[test]
fn soak_uniprocessor_byte_exact() {
    let (finals, probe_runs, hard_faults) = run_soak(Config::interrupt_pp());
    for (pair, buf) in finals.iter().enumerate() {
        let expect: Vec<u8> = (0..MSG).map(|i| (0x40 + pair as u32 + i) as u8).collect();
        assert_eq!(buf, &expect, "pair {pair} corrupted");
    }
    assert!(probe_runs > 10, "probe ran during the soak");
    // One hard fault per paged-buffer page per pair.
    assert_eq!(hard_faults as u32, PAIRS, "first-touch faults only");
}

#[test]
fn soak_multiprocessor_matches_uniprocessor_data() {
    let (uni, _, _) = run_soak(Config::process_pp());
    let (mp, _, _) = run_soak(Config::process_pp().with_cpus(4));
    assert_eq!(uni, mp, "MP run must move identical bytes");
}

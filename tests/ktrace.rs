//! Integration tests of the `ktrace` flight recorder:
//!
//! * determinism — two runs of the same configuration produce
//!   bit-identical traces;
//! * bounded rings — overflow drops the oldest records with an explicit
//!   counter, never silently;
//! * zero cost when off — a run with tracing disabled records nothing
//!   and allocates nothing for rings.

use fluke_core::{Config, Kernel, RunExit, TraceRecord};
use fluke_workloads::common::WorkloadRun;
use fluke_workloads::{flukeperf, FlukeperfParams};

/// Run a built workload to completion, returning the kernel.
fn run_done(mut w: WorkloadRun) -> Kernel {
    let deadline = w.kernel.now() + 8_000_000_000;
    loop {
        let exit = w.kernel.run(Some((w.kernel.now() + 50_000).min(deadline)));
        if w.main_threads.iter().all(|&t| w.kernel.thread_halted(t)) {
            return w.kernel;
        }
        assert!(
            exit == RunExit::TimeLimit && w.kernel.now() < deadline,
            "workload wedged: {exit:?}"
        );
    }
}

fn traced_flukeperf(cfg: Config) -> Kernel {
    run_done(flukeperf::build(cfg, &FlukeperfParams::quick()))
}

#[test]
fn identical_runs_produce_identical_traces() {
    let a = traced_flukeperf(Config::process_np().with_tracing(1 << 20));
    let b = traced_flukeperf(Config::process_np().with_tracing(1 << 20));
    assert_eq!(a.trace.dropped_total(), 0);
    let ra: Vec<TraceRecord> = a.trace.merged();
    let rb: Vec<TraceRecord> = b.trace.merged();
    assert!(!ra.is_empty(), "flukeperf must generate events");
    assert_eq!(ra, rb, "same config + workload must trace identically");
    // Same for the interrupt model.
    let c = traced_flukeperf(Config::interrupt_np().with_tracing(1 << 20));
    let d = traced_flukeperf(Config::interrupt_np().with_tracing(1 << 20));
    assert_eq!(c.trace.merged(), d.trace.merged());
}

#[test]
fn ring_overflow_drops_oldest_and_counts() {
    // A tiny ring under a real workload: the ring stays at capacity and
    // every displaced record is accounted for.
    let k = traced_flukeperf(Config::process_np().with_tracing(64));
    let ring = k.trace.ring(0).expect("cpu 0 ring");
    assert_eq!(ring.len(), 64);
    assert!(ring.dropped > 0, "expected overflow");
    assert_eq!(ring.total_recorded(), ring.dropped + ring.len() as u64);
    // The survivors are the *newest* records: their sequence numbers are
    // exactly the tail of the recorded range.
    let first_seq = ring.records().next().unwrap().seq;
    assert_eq!(first_seq, ring.dropped);
    // A full-capacity run of the same workload records the same total.
    let full = traced_flukeperf(Config::process_np().with_tracing(1 << 20));
    assert_eq!(
        full.trace.ring(0).unwrap().total_recorded(),
        ring.total_recorded(),
        "capacity must not change what gets recorded"
    );
}

#[test]
fn disabled_tracing_records_and_allocates_nothing() {
    let k = traced_flukeperf(Config::process_np());
    assert!(!k.trace.enabled);
    assert_eq!(k.trace.len(), 0);
    assert_eq!(
        k.trace.allocated_capacity(),
        0,
        "no ring allocation when off"
    );
    assert_eq!(k.trace.dropped_total(), 0);
    assert!(k.trace.merged().is_empty());
    // The run itself is unaffected: stats match a traced run's.
    let traced = traced_flukeperf(Config::process_np().with_tracing(1 << 20));
    assert_eq!(k.stats.syscalls, traced.stats.syscalls);
    assert_eq!(k.stats.ctx_switches, traced.stats.ctx_switches);
    assert_eq!(k.now(), traced.now(), "tracing must not perturb timing");
}

//! Integration tests for the IPC engine: connections, data transfer,
//! direction reversal, windows, one-way messages, and alerts.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::{Assembler, Reg};
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Shared setup: a server space with a port/pset and a client space, the
/// client holding a Reference to the port.
struct Rig {
    k: Kernel,
    server: ChildProc,
    client: ChildProc,
    h_port: u32,
    h_pset: u32,
    h_ref: u32,
}

fn rig(cfg: Config) -> Rig {
    let mut k = Kernel::new(cfg);
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x8000);
    let h_port = server.alloc_obj();
    let h_pset = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    let pset = k.loader_create(server.space, h_pset, ObjType::Portset);
    k.loader_join_pset(port, pset);
    k.loader_ref(client.space, h_ref, port);
    Rig {
        k,
        server,
        client,
        h_port,
        h_pset,
        h_ref,
    }
}

/// Client RPC round trip: request bytes reach the server, the reply comes
/// back, both through `connect_send_over_receive` / `ack_send`.
#[test]
fn rpc_round_trip_moves_bytes_both_ways() {
    let mut r = rig(Config::process_np());
    let sreq = r.server.mem_base + 0x1000; // server's receive buffer
    let creq = r.client.mem_base + 0x1000; // client's request
    let crep = r.client.mem_base + 0x2000; // client's reply buffer

    // Server: wait for a request, add 1 to each of 8 bytes, reply.
    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_pset, sreq, 64);
    for i in 0..8 {
        a.movi(Reg::Ebp, sreq + i);
        a.loadb(Reg::Edx, Reg::Ebp, 0);
        a.addi(Reg::Edx, 1);
        a.storeb(Reg::Ebp, 0, Reg::Edx);
    }
    a.server_ack_send(sreq, 8);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    // Client: send 8 bytes, receive 8 back.
    let mut a = Assembler::new("client");
    a.client_rpc(r.h_ref, creq, 8, crep, 64);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client.space, creq, &[10, 20, 30, 40, 50, 60, 70, 80]);
    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(
        r.k.read_mem(r.server.space, sreq, 8),
        vec![11, 21, 31, 41, 51, 61, 71, 81]
    );
    assert_eq!(
        r.k.read_mem(r.client.space, crep, 8),
        vec![11, 21, 31, 41, 51, 61, 71, 81]
    );
    // Client got Success and its receive window shrank by 8.
    assert_eq!(r.k.thread_regs(ct).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(r.k.thread_regs(ct).get(ARG_COUNT), 64 - 8);
    assert!(r.k.stats.ipc_messages >= 2);
}

/// The same RPC runs identically under every Table 4 configuration.
#[test]
fn rpc_identical_across_all_five_configurations() {
    let mut outputs = Vec::new();
    for cfg in Config::all_five() {
        let label = cfg.label;
        let mut r = rig(cfg);
        let sreq = r.server.mem_base + 0x1000;
        let creq = r.client.mem_base + 0x1000;
        let crep = r.client.mem_base + 0x2000;
        let mut a = Assembler::new("server");
        a.server_wait_receive(r.h_pset, sreq, 16);
        a.server_ack_send(sreq, 16);
        a.halt();
        let st = r.server.start(&mut r.k, a.finish(), 8);
        let mut a = Assembler::new("client");
        a.client_rpc(r.h_ref, creq, 16, crep, 16);
        a.halt();
        let ct = r.client.start(&mut r.k, a.finish(), 8);
        let payload: Vec<u8> = (1..=16).collect();
        r.k.write_mem(r.client.space, creq, &payload);
        assert!(
            run_to_halt(&mut r.k, &[st, ct], 50_000_000),
            "config {label} hung"
        );
        outputs.push((label, r.k.read_mem(r.client.space, crep, 16)));
    }
    let expected: Vec<u8> = (1..=16).collect();
    for (label, out) in outputs {
        assert_eq!(out, expected, "config {label} corrupted the transfer");
    }
}

/// A large transfer (multiple pages, multiple preemption chunks) arrives
/// intact, exercising the chunked pump.
#[test]
fn large_transfer_is_byte_exact() {
    let mut k = Kernel::new(Config::process_pp());
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x2_0000);
    let mut client = ChildProc::with_mem(&mut k, 0x0030_0000, 0x2_0000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);

    const N: u32 = 40_000; // ~10 pages, crosses several 8K preempt chunks
    let sbuf = server.mem_base + 0x10_000;
    let cbuf = client.mem_base + 0x10_000;

    let mut a = Assembler::new("server");
    a.movi(ARG_HANDLE, h_port);
    a.movi(ARG_RBUF, sbuf);
    a.movi(ARG_COUNT, N);
    a.sys(Sys::IpcServerWaitReceive);
    a.halt();
    let st = server.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("client");
    a.client_connect_send(h_ref, cbuf, N);
    a.halt();
    let ct = client.start(&mut k, a.finish(), 8);

    let payload: Vec<u8> = (0..N).map(|i| (i * 7 + 3) as u8).collect();
    k.write_mem(client.space, cbuf, &payload);
    assert!(run_to_halt(&mut k, &[st, ct], 200_000_000));
    assert_eq!(k.read_mem(server.space, sbuf, N), payload);
    assert_eq!(k.thread_regs(ct).get(ARG_COUNT), 0, "client sent all bytes");
    // The client's send pointer advanced in place across the transfer —
    // the string-instruction discipline.
    assert_eq!(k.thread_regs(ct).get(ARG_SBUF), cbuf + N);
}

/// A receive window smaller than the message yields Truncated, and
/// `receive_more` picks up the rest — the multi-stage restart entrypoint
/// used as a plain continuation.
#[test]
fn window_exhaustion_truncated_then_receive_more() {
    let mut r = rig(Config::process_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;

    // Server: receive 16 into a 10-byte window, expect Truncated, then
    // receive the remaining 6.
    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_pset, sbuf, 10);
    a.movi(Reg::Ebp, r.server.mem_base + 0x4000);
    a.store(Reg::Ebp, 0, Reg::Eax); // record first result code
    a.movi(ARG_RBUF, sbuf + 10);
    a.movi(ARG_COUNT, 6);
    a.sys(Sys::IpcServerReceiveMore);
    a.store(Reg::Ebp, 4, Reg::Eax); // record second result code
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let mut a = Assembler::new("client");
    a.client_connect_send(r.h_ref, cbuf, 16);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    let payload: Vec<u8> = (100..116).collect();
    r.k.write_mem(r.client.space, cbuf, &payload);
    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(r.k.read_mem(r.server.space, sbuf, 16), payload);
    let rec = r.server.mem_base + 0x4000;
    assert_eq!(
        r.k.read_mem_u32(r.server.space, rec),
        ErrorCode::Truncated as u32
    );
    assert_eq!(
        r.k.read_mem_u32(r.server.space, rec + 4),
        ErrorCode::Success as u32
    );
}

/// One-way messages rendezvous on a port without a connection.
#[test]
fn oneway_send_receive() {
    let mut r = rig(Config::interrupt_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;

    let mut a = Assembler::new("rx");
    a.movi(ARG_HANDLE, r.h_port);
    a.movi(ARG_RBUF, sbuf);
    a.movi(ARG_COUNT, 32);
    a.sys(Sys::IpcWaitReceiveOneway);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let mut a = Assembler::new("tx");
    a.movi(ARG_HANDLE, r.h_ref);
    a.movi(ARG_SBUF, cbuf);
    a.movi(ARG_COUNT, 5);
    a.sys(Sys::IpcSendOneway);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client.space, cbuf, b"fluke");
    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(r.k.read_mem(r.server.space, sbuf, 5), b"fluke".to_vec());
    assert_eq!(r.k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
}

/// `ipc_client_alert` promptly interrupts a server blocked in receive;
/// the server's operation completes with Interrupted.
#[test]
fn alert_interrupts_blocked_peer() {
    let mut r = rig(Config::process_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;

    // Server: accept + receive; the client sends 4 then alerts while the
    // server waits for more.
    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_pset, sbuf, 4);
    a.movi(ARG_RBUF, sbuf + 4);
    a.movi(ARG_COUNT, 64);
    a.sys(Sys::IpcServerReceiveMore); // will be alerted out of this wait
    a.halt();
    // Higher priority: the server re-enters its receive before the client
    // continues, so the alert targets a blocked operation.
    let st = r.server.start(&mut r.k, a.finish(), 10);

    let mut a = Assembler::new("client");
    a.client_connect_send(r.h_ref, cbuf, 4);
    a.sys(Sys::IpcClientAlert);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client.space, cbuf, &[1, 2, 3, 4]);
    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(
        r.k.thread_regs(st).get(Reg::Eax),
        ErrorCode::Interrupted as u32
    );
}

/// Disconnect wakes a blocked peer with PeerDisconnected.
#[test]
fn disconnect_unblocks_peer_with_error() {
    let mut r = rig(Config::process_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;

    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_pset, sbuf, 4);
    // Wait for a second message that will never come.
    a.movi(ARG_RBUF, sbuf);
    a.movi(ARG_COUNT, 4);
    a.sys(Sys::IpcServerReceiveMore);
    a.halt();
    // Higher priority: the server is parked in its second receive before
    // the client tears the connection down.
    let st = r.server.start(&mut r.k, a.finish(), 10);

    let mut a = Assembler::new("client");
    a.client_connect_send(r.h_ref, cbuf, 4);
    a.client_disconnect();
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(
        r.k.thread_regs(st).get(Reg::Eax),
        ErrorCode::PeerDisconnected as u32
    );
}

/// `port_wait` accepts a connection without transferring data; the
/// connect-only client entrypoint is a pure Long call.
#[test]
fn connect_only_rendezvous() {
    let mut r = rig(Config::process_np());
    let mut a = Assembler::new("server");
    a.sys_h(Sys::PortWait, r.h_port);
    a.sys(Sys::IpcServerDisconnect);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let mut a = Assembler::new("client");
    a.sys_h(Sys::IpcClientConnect, r.h_ref);
    a.movi(Reg::Ebp, r.client.mem_base + 0x4000);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    // Higher priority: the client observes the accepted connection before
    // the server disconnects it again.
    let ct = r.client.start(&mut r.k, a.finish(), 10);

    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(
        r.k.read_mem_u32(r.client.space, r.client.mem_base + 0x4000),
        ErrorCode::Success as u32
    );
}

/// An RPC against a port with no server parks the client; a server
/// arriving later completes it (tests the connect queue).
#[test]
fn client_waits_for_late_server() {
    let mut r = rig(Config::interrupt_pp());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;

    // Client starts FIRST (higher priority so it definitely runs first).
    let mut a = Assembler::new("client");
    a.client_connect_send(r.h_ref, cbuf, 4);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 10);

    let mut a = Assembler::new("server");
    // Burn some time so the client is already parked.
    a.compute(50_000);
    a.server_wait_receive(r.h_pset, sbuf, 4);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client.space, cbuf, &[9, 9, 9, 9]);
    assert!(run_to_halt(&mut r.k, &[st, ct], 50_000_000));
    assert_eq!(r.k.read_mem(r.server.space, sbuf, 4), vec![9, 9, 9, 9]);
}

//! The `kfuzz` campaign driver: coverage-guided differential fuzzing
//! versus the fixed-seed baseline, under identical budgets.
//!
//! One [`FuzzReport`] pits two [`fluke_core::kfuzz::campaign`] runs
//! against each other per tier — same seed, same case budget, same
//! kernel — differing only in feedback: the baseline synthesizes every
//! program fresh from the seed stream (exactly the discipline of the
//! fixed-seed `diff_fuzz` suite), while the guided run mutates and
//! splices its corpus of minimized signature-earning programs. The
//! committed `corpus/` seeds the guided run, so CI replays are
//! deterministic.
//!
//! The [`check`] gate enforces the two hard claims of the kfuzz PR:
//! the guided run must reach **strictly more** coverage signatures than
//! the baseline under the same budget, and **no findings** may survive
//! — every divergence, panic, hang, or flow violation a campaign can
//! reach is supposed to be fixed and pinned as a regression test, so a
//! finding here is a new kernel bug with a minimized reproducer
//! attached.

use fluke_core::kfuzz::{campaign, corpus_to_text, Campaign, FuzzProgram, Tier};
use fluke_json::Json;

/// Both fuzzing tiers, in report order.
pub const ALL_TIERS: [Tier; 2] = [Tier::Differential, Tier::Robustness];

/// Stable report label for a tier.
pub fn tier_label(tier: Tier) -> &'static str {
    match tier {
        Tier::Differential => "differential",
        Tier::Robustness => "robustness",
    }
}

/// One tier's baseline-versus-guided comparison.
#[derive(Debug)]
pub struct FuzzReport {
    /// Tier label (`differential` / `robustness`).
    pub tier: &'static str,
    /// Campaign seed.
    pub seed: u64,
    /// Case budget given to *each* campaign.
    pub cases: u64,
    /// Corpus entries used to seed the guided run.
    pub seeded: u64,
    /// The fixed-seed baseline campaign (no feedback).
    pub baseline: Campaign,
    /// The coverage-guided campaign.
    pub guided: Campaign,
}

impl FuzzReport {
    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<13} seed={:<3} cases={:<5} seeded={:<3} baseline={:<5} guided={:<5} \
             corpus={:<3} findings={}",
            self.tier,
            self.seed,
            self.cases,
            self.seeded,
            self.baseline.sigs.len(),
            self.guided.sigs.len(),
            self.guided.corpus.len(),
            self.baseline.findings.len() + self.guided.findings.len(),
        )
    }

    /// Deterministic reproducer blocks for every finding, minimized
    /// program included.
    pub fn reproducers(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (mode, c) in [("baseline", &self.baseline), ("guided", &self.guided)] {
            for f in &c.findings {
                out.push(format!(
                    "kfuzz repro: tier={} mode={mode} seed={} class={:?}\n{}",
                    self.tier,
                    self.seed,
                    f.class(),
                    fluke_core::kfuzz::program_to_text(&f.program)
                ));
            }
        }
        out
    }
}

/// Run the baseline and guided campaigns for one tier under identical
/// budgets. `initial` seeds only the guided corpus (the baseline is by
/// definition corpus-free).
pub fn compare(tier: Tier, seed: u64, cases: u64, initial: &[FuzzProgram]) -> FuzzReport {
    let baseline = campaign(seed, cases, false, tier, &[]);
    let guided = campaign(seed, cases, true, tier, initial);
    FuzzReport {
        tier: tier_label(tier),
        seed,
        cases,
        seeded: initial.len() as u64,
        baseline,
        guided,
    }
}

/// Downsample a coverage-growth curve to at most `max` points (always
/// keeping the last), so committed reports stay small while preserving
/// the curve's shape.
pub fn sample_curve(curve: &[(u64, u64)], max: usize) -> Vec<(u64, u64)> {
    if curve.len() <= max || max < 2 {
        return curve.to_vec();
    }
    let stride = curve.len().div_ceil(max - 1);
    let mut out: Vec<(u64, u64)> = curve.iter().copied().step_by(stride).collect();
    if out.last() != curve.last() {
        out.push(*curve.last().unwrap());
    }
    out
}

fn curve_json(curve: &[(u64, u64)]) -> Json {
    Json::Arr(
        sample_curve(curve, 33)
            .iter()
            .map(|&(x, y)| Json::Arr(vec![Json::from_u64(x), Json::from_u64(y)]))
            .collect(),
    )
}

/// Serialize reports into the committed-benchmark JSON shape. Everything
/// here is deterministic from `(seed, cases, corpus)` — signature
/// counts, curves, and corpus digests are bit-stable across hosts.
pub fn to_json(reports: &[FuzzReport]) -> Json {
    let mut root = Json::obj();
    root.set("bench", Json::Str("kfuzz".to_string()));
    let mut arr = Vec::new();
    for r in reports {
        let mut o = Json::obj();
        o.set("tier", Json::Str(r.tier.to_string()));
        o.set("seed", Json::from_u64(r.seed));
        o.set("cases", Json::from_u64(r.cases));
        o.set("seeded", Json::from_u64(r.seeded));
        o.set(
            "baseline_signatures",
            Json::from_u64(r.baseline.sigs.len() as u64),
        );
        o.set(
            "guided_signatures",
            Json::from_u64(r.guided.sigs.len() as u64),
        );
        o.set(
            "corpus_entries",
            Json::from_u64(r.guided.corpus.len() as u64),
        );
        o.set(
            "findings",
            Json::from_u64((r.baseline.findings.len() + r.guided.findings.len()) as u64),
        );
        o.set("baseline_curve", curve_json(&r.baseline.curve));
        o.set("guided_curve", curve_json(&r.guided.curve));
        o.set(
            "corpus_fnv",
            Json::Str(format!(
                "{:#018x}",
                fluke_core::kfuzz::text_digest(&corpus_to_text(&r.guided.corpus))
            )),
        );
        arr.push(o);
    }
    root.set("campaigns", Json::Arr(arr));
    root
}

/// Regression-gate fresh reports, optionally against a committed
/// `BENCH_fuzz.json`. Hard failures:
///
/// * any finding (all reachable kernel bugs are supposed to be fixed
///   and pinned — a finding is a new one, reproducer attached);
/// * a guided campaign that does not reach **strictly more** signatures
///   than its same-budget baseline (the coverage-guidance claim);
/// * a tier present in the committed baseline but not re-run, or whose
///   guided coverage collapsed below 80% of the committed count.
pub fn check(committed: &Json, reports: &[FuzzReport]) -> Vec<String> {
    let mut errs = Vec::new();
    for r in reports {
        let findings = r.baseline.findings.len() + r.guided.findings.len();
        if findings > 0 {
            errs.push(format!("{}: {} unfixed finding(s)", r.tier, findings));
        }
        if r.guided.sigs.len() <= r.baseline.sigs.len() {
            errs.push(format!(
                "{}: guided coverage {} does not dominate baseline {}",
                r.tier,
                r.guided.sigs.len(),
                r.baseline.sigs.len()
            ));
        }
    }
    let Some(campaigns) = committed.get("campaigns").and_then(|s| s.items()) else {
        errs.push("committed baseline has no \"campaigns\" array".to_string());
        return errs;
    };
    for c in campaigns {
        let Some(tier) = c.get("tier").and_then(|j| j.as_str()) else {
            continue;
        };
        let Some(f) = reports.iter().find(|r| r.tier == tier) else {
            errs.push(format!("{tier}: in committed baseline but not re-run"));
            continue;
        };
        if let Some(n) = c.get("guided_signatures").and_then(|j| j.as_u64()) {
            let floor = n * 4 / 5;
            if (f.guided.sigs.len() as u64) < floor {
                errs.push(format!(
                    "{tier}: guided coverage collapsed {} → {} (< 80% of committed)",
                    n,
                    f.guided.sigs.len()
                ));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded comparison: the guided campaign strictly dominates the
    /// baseline's signature count under the same small budget, with no
    /// findings. (The full budget runs in the dedicated bin and CI's
    /// kfuzz-smoke step.)
    #[test]
    fn guided_dominates_baseline_on_a_bounded_budget() {
        let r = compare(Tier::Differential, 7, 40, &[]);
        assert!(
            r.guided.sigs.len() > r.baseline.sigs.len(),
            "guided {} <= baseline {}",
            r.guided.sigs.len(),
            r.baseline.sigs.len()
        );
        assert!(r.reproducers().is_empty(), "{:?}", r.reproducers());
        assert!(!r.guided.corpus.is_empty());
    }

    /// The JSON gate catches non-domination, findings-free-ness, and a
    /// committed tier that wasn't re-run.
    #[test]
    fn check_gates_domination_and_coverage() {
        let r = compare(Tier::Differential, 7, 24, &[]);
        let committed = to_json(std::slice::from_ref(&r));
        assert!(check(&committed, std::slice::from_ref(&r)).is_empty());

        // A committed tier that wasn't re-run is flagged.
        assert!(!check(&committed, &[]).is_empty());

        // Swapping the campaigns fakes a guided run that lost to its
        // baseline; the gate must refuse it.
        let mut swapped = compare(Tier::Differential, 7, 24, &[]);
        std::mem::swap(&mut swapped.baseline, &mut swapped.guided);
        assert!(!check(&committed, std::slice::from_ref(&swapped)).is_empty());
    }

    /// Curve sampling keeps endpoints and bounds the length.
    #[test]
    fn curve_sampling_preserves_shape() {
        let curve: Vec<(u64, u64)> = (1..=100).map(|i| (i, i / 2)).collect();
        let s = sample_curve(&curve, 33);
        assert!(s.len() <= 33, "{}", s.len());
        assert_eq!(s.first(), curve.first());
        assert_eq!(s.last(), curve.last());
        assert_eq!(sample_curve(&curve, 200), curve);
    }
}

#![warn(missing_docs)]
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each producing the same rows the paper reports.
//!
//! Binaries under `src/bin/` print the tables; the modules here compute
//! them, so tests can assert the reproduced *shapes* (who wins, by what
//! factor, where the orders of magnitude fall) without parsing text.

pub mod ablation;
pub mod kfault_sweep;
pub mod kfuzz;
pub mod krec_sweep;
pub mod memfast;
pub mod mp_scaling;
pub mod observability;
pub mod report;
pub mod server_consolidation;
pub mod table1;
pub mod table3;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod trace_export;
pub mod tracediff;

pub use report::TextTable;

/// Scale selector for the measurement tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized runs (seconds of simulated time per cell).
    Paper,
    /// Scaled-down runs for tests and smoke checks.
    Quick,
}

impl Scale {
    /// Read the scale from the `FLUKE_BENCH_SCALE` environment variable
    /// (`quick` selects [`Scale::Quick`]; anything else is paper-sized).
    pub fn from_env() -> Scale {
        match std::env::var("FLUKE_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }
}

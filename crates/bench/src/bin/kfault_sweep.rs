//! Run the `kfault` adversarial-injection sweep and report per-combination
//! results.
//!
//! Environment:
//!
//! * `FLUKE_KFAULT_SITES` — per-(workload, config, kind) site budget;
//!   unset or `0` sweeps *every* site. CI uses a bounded budget; the
//!   acceptance run uses the full space.
//! * `FLUKE_KFAULT_WORKLOADS` — `echo`, `checkpoint`, or `all` (default).
//!
//! Exits nonzero if any combination diverges from its golden run, printing
//! one deterministic reproducer line per divergence.

use fluke_bench::kfault_sweep::{sweep, sweep_configs, SweepWorkload};
use fluke_core::KfaultKind;

fn main() {
    let budget = std::env::var("FLUKE_KFAULT_SITES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&b| b > 0);
    let workloads: Vec<SweepWorkload> = match std::env::var("FLUKE_KFAULT_WORKLOADS").as_deref() {
        Ok("echo") => vec![SweepWorkload::IpcEcho],
        Ok("checkpoint") => vec![SweepWorkload::Checkpoint],
        _ => vec![SweepWorkload::IpcEcho, SweepWorkload::Checkpoint],
    };
    match budget {
        Some(b) => println!("kfault sweep: budget {b} sites per combination"),
        None => println!("kfault sweep: full site space per combination"),
    }
    let mut failures: Vec<String> = Vec::new();
    let mut total_runs = 0;
    for w in workloads {
        for cfg in sweep_configs() {
            for kind in KfaultKind::ALL {
                match sweep(w, &cfg, kind, budget) {
                    Ok(r) => {
                        println!("{}", r.summary());
                        total_runs += r.sites_run;
                        failures.extend(r.reproducers());
                    }
                    Err(e) => {
                        let line = format!(
                            "kfault sweep setup failed: {} {} {}: {e}",
                            w.label(),
                            cfg.label,
                            kind.name()
                        );
                        println!("{line}");
                        failures.push(line);
                    }
                }
            }
        }
    }
    println!(
        "kfault sweep: {total_runs} perturbed runs, {} divergences",
        failures.len()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}

//! Regenerate the paper's Table 3.
fn main() {
    println!("{}", fluke_bench::table3::render());
}

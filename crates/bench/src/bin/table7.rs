//! Regenerate the paper's Table 7 (per-thread kernel memory overhead).
fn main() {
    println!("{}", fluke_bench::table7::render());
}

//! Benchmark the software-TLB + bulk-memory fast path against the
//! per-byte reference implementation (host wall-clock), and write the
//! results to `BENCH_memfast.json`.
//!
//! Usage: `memfast [output.json]` — scale via `FLUKE_BENCH_SCALE`.

fn main() {
    let scale = fluke_bench::Scale::from_env();
    let rows = fluke_bench::memfast::run_memfast(scale);
    println!("memfast: host wall-clock, fast path vs per-byte reference");
    println!("{}", fluke_bench::memfast::table(&rows).render());
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_memfast.json".to_string());
    let doc = fluke_bench::memfast::to_json(scale, &rows);
    std::fs::write(&out, format!("{doc}\n")).expect("write benchmark report");
    println!("wrote {out}");
}

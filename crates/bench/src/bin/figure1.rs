//! Regenerate the paper's Figure 1: the kernel execution-model and
//! API-model continuums, as a 2x2 text chart.
fn main() {
    println!("Figure 1: The kernel execution and API model continuums.");
    println!("(V was originally pure interrupt-model, later partly process-model;");
    println!(" Mach was pure process-model, later partly interrupt-model; Fluke");
    println!(" supports either execution model via a build-time option.)\n");
    println!("                      Execution Model");
    println!("                Interrupt            Process");
    println!("             +--------------------+--------------------+");
    println!("   Atomic    |  Fluke (interrupt) |  Fluke (process)   |");
    println!("             |  V (original)      |  ITS               |");
    println!("  API        +--------------------+--------------------+");
    println!("   Conven-   |  Mach (Draves,     |  BSD, Linux, NT    |");
    println!("   tional    |   continuations)   |  Mach (original)   |");
    println!("             |  QNX, exokernels   |  V (Carter)        |");
    println!("             +--------------------+--------------------+");
}

//! Regenerate the paper's Table 6.
fn main() {
    println!(
        "{}",
        fluke_bench::table6::render(fluke_bench::Scale::from_env())
    );
}

//! The server-consolidation headline: up to 10240 concurrent connections
//! multiplexed onto portset frontends routed to sharded worker pools,
//! plus the `ipc_submit` batching echo tier, written to
//! `BENCH_server.json`.
//!
//! Usage: `server_consolidation [--quick] [--check] [output.json]`
//!
//! * Default: run the sweep at both paper and quick scale and write the
//!   combined artifact (the committed baseline carries both, so the CI
//!   quick smoke can gate against a same-scale reference).
//! * `--quick` restricts the sweep to the quick scale.
//! * `--check` gates against the *committed* `BENCH_server.json`
//!   instead of writing: fails on >10% p99 or throughput regression in
//!   any row, or if batching no longer cuts kernel entries per message
//!   by at least 4x on the echo tier.

use fluke_bench::{server_consolidation, Scale};
use fluke_json::Json;

fn main() {
    let mut quick_only = false;
    let mut check = false;
    let mut out = "BENCH_server.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick_only = true,
            "--check" => check = true,
            other => out = other.to_string(),
        }
    }
    let scales: &[Scale] = if quick_only {
        &[Scale::Quick]
    } else {
        &[Scale::Paper, Scale::Quick]
    };

    let mut runs = Vec::new();
    for &scale in scales {
        let rows = server_consolidation::run_server_consolidation(scale);
        println!(
            "Server consolidation ({:?}): connection scale, worker pools, batched submission",
            scale
        );
        println!("{}", server_consolidation::table(&rows).render());
        println!(
            "echo-tier kernel-entry reduction: {:.1}x",
            server_consolidation::echo_entry_reduction(&rows)
        );
        runs.push((scale, rows));
    }

    if check {
        let baseline = std::fs::read_to_string("BENCH_server.json")
            .expect("--check needs the committed BENCH_server.json");
        let baseline = Json::parse(&baseline).expect("committed baseline parses");
        for (scale, rows) in &runs {
            match server_consolidation::check(&baseline, *scale, rows) {
                Ok(()) => {
                    println!("check ({scale:?}): OK (tails and throughput held, ≥4x batching)")
                }
                Err(e) => {
                    eprintln!("check ({scale:?}): FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let mut doc = Json::obj();
    doc.set("bench", Json::Str("server_consolidation".to_string()));
    doc.set(
        "runs",
        Json::Arr(
            runs.iter()
                .map(|(scale, rows)| server_consolidation::to_json(*scale, rows))
                .collect(),
        ),
    );
    std::fs::write(&out, format!("{doc}\n")).expect("write benchmark report");
    println!("wrote {out}");
}

//! `kfuzz`: coverage-guided differential kernel fuzzing — run the
//! baseline and guided campaigns for both tiers under identical budgets
//! and write `BENCH_fuzz.json`.
//!
//! Usage: `kfuzz [--check] [--out FILE] [--write-corpus]`.
//!
//! * `FLUKE_KFUZZ_SEED=N` sets the campaign seed (default 1).
//! * `FLUKE_KFUZZ_CASES=N` sets the per-campaign case budget
//!   (default 96).
//! * `FLUKE_KFUZZ_CORPUS=DIR` locates the committed corpus directory
//!   (default `corpus`); `<tier>.kfz` files found there seed the guided
//!   campaigns.
//! * `--write-corpus` writes each guided campaign's minimized corpus
//!   back to the corpus directory.
//! * `--check` exits non-zero on any finding, on a guided campaign that
//!   fails to strictly dominate its baseline, and — when a committed
//!   report exists at the output path — on coverage collapse against it.
//!
//! Malformed knobs are structured, fatal errors (never silent
//! defaults): `FLUKE_KFUZZ_CASES=lots` exits 2 naming the knob and the
//! rejected value.

use fluke_bench::kfuzz::{self, tier_label, FuzzReport, ALL_TIERS};
use fluke_core::kfuzz::{corpus_from_text, corpus_to_text, env_knob, FuzzProgram};
use fluke_json::Json;

fn knob(name: &'static str, default: u64, lo: u64, hi: u64) -> u64 {
    env_knob(name, default, lo, hi).unwrap_or_else(|e| {
        eprintln!("kfuzz: {e}");
        std::process::exit(2);
    })
}

fn load_corpus(dir: &str, tier: &str) -> Vec<FuzzProgram> {
    let path = format!("{dir}/{tier}.kfz");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    match corpus_from_text(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kfuzz: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut check = false;
    let mut write_corpus = false;
    let mut out = "BENCH_fuzz.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--write-corpus" => write_corpus = true,
            "--out" => out = args.next().expect("--out needs a file name"),
            other => {
                eprintln!("usage: kfuzz [--check] [--out FILE] [--write-corpus] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let seed = knob("FLUKE_KFUZZ_SEED", 1, 0, u64::MAX);
    let cases = knob("FLUKE_KFUZZ_CASES", 96, 1, 1 << 20);
    let corpus_dir = std::env::var("FLUKE_KFUZZ_CORPUS").unwrap_or_else(|_| "corpus".to_string());

    // Read the committed report *before* overwriting it: `--check` diffs
    // the fresh run against it below.
    let committed = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| Json::parse(&s).ok());

    println!("=== kfuzz: guided vs fixed-seed campaigns (seed {seed}, {cases} cases) ===\n");
    let mut reports: Vec<FuzzReport> = Vec::new();
    for tier in ALL_TIERS {
        let initial = load_corpus(&corpus_dir, tier_label(tier));
        let r = kfuzz::compare(tier, seed, cases, &initial);
        println!("{}", r.summary());
        for block in r.reproducers() {
            eprintln!("  {block}");
        }
        reports.push(r);
    }
    let total_findings: usize = reports
        .iter()
        .map(|r| r.baseline.findings.len() + r.guided.findings.len())
        .sum();
    println!(
        "\n{} campaigns, {} signatures reached (guided), {total_findings} findings",
        2 * reports.len(),
        reports.iter().map(|r| r.guided.sigs.len()).sum::<usize>(),
    );

    if write_corpus {
        std::fs::create_dir_all(&corpus_dir).expect("create corpus dir");
        for r in &reports {
            let path = format!("{corpus_dir}/{}.kfz", r.tier);
            std::fs::write(&path, corpus_to_text(&r.guided.corpus)).expect("write corpus");
            println!("wrote {path} ({} programs)", r.guided.corpus.len());
        }
    }

    let doc = kfuzz::to_json(&reports);
    std::fs::write(&out, format!("{doc}\n")).expect("write fuzz report");
    println!("wrote {out}");

    if check {
        let baseline = committed.unwrap_or_else(|| {
            // First run ever: gate findings and domination only, against
            // the fresh doc.
            doc.clone()
        });
        let errs = kfuzz::check(&baseline, &reports);
        if errs.is_empty() {
            println!("kfuzz gates (no findings, guided > baseline) vs committed report: OK");
        } else {
            for e in &errs {
                eprintln!("kfuzz regression: {e}");
            }
            std::process::exit(1);
        }
    } else if total_findings > 0 {
        std::process::exit(1);
    }
}

//! Cross-model trace diff: run flukeperf under the process and interrupt
//! execution models with `ktrace` enabled and verify the user-visible
//! event sequences are identical.
//!
//! Usage: `trace_diff [--chrome PREFIX] [--since-cycle N] [--until-cycle N]`
//!
//! `--chrome PREFIX` additionally writes `PREFIX-process.json` and
//! `PREFIX-interrupt.json` Chrome trace-event files (open in
//! `chrome://tracing` or Perfetto). `--since-cycle`/`--until-cycle`
//! restrict the text summaries and Chrome exports to an inclusive
//! simulated-cycle window (the user-visible diff always covers the whole
//! run). `FLUKE_BENCH_SCALE=quick` selects the scaled-down workload.
//!
//! Exits non-zero if the models diverge.

use fluke_bench::trace_export::{chrome_trace, cycle_window, text_summary_window};
use fluke_bench::tracediff::{diff_user_visible, run_traced_flukeperf};
use fluke_bench::Scale;
use fluke_core::Config;

fn main() {
    let mut chrome_prefix: Option<String> = None;
    let mut since: Option<u64> = None;
    let mut until: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    let cycle_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} requires a cycle count");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => {
                chrome_prefix = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--chrome requires a path prefix");
                    std::process::exit(2);
                }));
            }
            "--since-cycle" => since = Some(cycle_arg(&mut args, "--since-cycle")),
            "--until-cycle" => until = Some(cycle_arg(&mut args, "--until-cycle")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();

    println!("running flukeperf under Process NP (traced)…");
    let process = run_traced_flukeperf(Config::process_np(), scale);
    println!("running flukeperf under Interrupt NP (traced)…");
    let interrupt = run_traced_flukeperf(Config::interrupt_np(), scale);

    println!(
        "\n== Process NP ==\n{}",
        text_summary_window(&process.trace, since, until)
    );
    println!(
        "== Interrupt NP ==\n{}",
        text_summary_window(&interrupt.trace, since, until)
    );

    if let Some(prefix) = chrome_prefix {
        for (kernel, model) in [(&process, "process"), (&interrupt, "interrupt")] {
            let path = format!("{prefix}-{model}.json");
            let windowed = cycle_window(&kernel.trace.merged(), since, until);
            std::fs::write(&path, chrome_trace(&windowed))
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote {path}");
        }
    }

    let div = diff_user_visible(&process, &interrupt);
    if div.is_empty() {
        println!(
            "\nVERDICT: execution models are user-visibly identical \
             ({} threads compared)",
            process.trace.user_visible().len()
        );
    } else {
        println!("\nVERDICT: models DIVERGED at {} positions:", div.len());
        for d in div.iter().take(20) {
            println!("  {d}");
        }
        std::process::exit(1);
    }
}

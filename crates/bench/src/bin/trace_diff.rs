//! Cross-model trace diff: run flukeperf under the process and interrupt
//! execution models with `ktrace` enabled and verify the user-visible
//! event sequences are identical.
//!
//! Usage: `trace_diff [--chrome PREFIX]`
//!
//! `--chrome PREFIX` additionally writes `PREFIX-process.json` and
//! `PREFIX-interrupt.json` Chrome trace-event files (open in
//! `chrome://tracing` or Perfetto). `FLUKE_BENCH_SCALE=quick` selects the
//! scaled-down workload.
//!
//! Exits non-zero if the models diverge.

use fluke_bench::trace_export::{chrome_trace, text_summary};
use fluke_bench::tracediff::{diff_user_visible, run_traced_flukeperf};
use fluke_bench::Scale;
use fluke_core::Config;

fn main() {
    let mut chrome_prefix: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => {
                chrome_prefix = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--chrome requires a path prefix");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();

    println!("running flukeperf under Process NP (traced)…");
    let process = run_traced_flukeperf(Config::process_np(), scale);
    println!("running flukeperf under Interrupt NP (traced)…");
    let interrupt = run_traced_flukeperf(Config::interrupt_np(), scale);

    println!("\n== Process NP ==\n{}", text_summary(&process.trace));
    println!("== Interrupt NP ==\n{}", text_summary(&interrupt.trace));

    if let Some(prefix) = chrome_prefix {
        for (kernel, model) in [(&process, "process"), (&interrupt, "interrupt")] {
            let path = format!("{prefix}-{model}.json");
            std::fs::write(&path, chrome_trace(&kernel.trace.merged()))
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote {path}");
        }
    }

    let div = diff_user_visible(&process, &interrupt);
    if div.is_empty() {
        println!(
            "\nVERDICT: execution models are user-visibly identical \
             ({} threads compared)",
            process.trace.user_visible().len()
        );
    } else {
        println!("\nVERDICT: models DIVERGED at {} positions:", div.len());
        for d in div.iter().take(20) {
            println!("  {d}");
        }
        std::process::exit(1);
    }
}

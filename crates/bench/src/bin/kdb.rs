//! `kdb`: the time-travel kernel debugger. Records a workload with the
//! `krec` snapshot engine armed, then restores the nearest earlier
//! snapshot and deterministically re-executes to any simulated cycle,
//! verifying along the way that the re-executed ktrace window is
//! bit-identical to the original recording (a divergence is a hard error
//! with a first-divergent-event reproducer).
//!
//! Usage:
//!   kdb [--workload W] [--config C] [--stride N] COMMANDS
//!
//! Recording selection:
//!   --workload W     ipc-echo | checkpoint | submit-ring   (default ipc-echo)
//!   --config C       process-np | interrupt-np | process-pp | interrupt-pp
//!   --stride N       snapshot every Nth dispatch site       (default 2)
//!
//! Time travel and inspection:
//!   --at CYCLE       restore + re-execute to CYCLE, then inspect
//!   --threads        thread table: registers, run state, export frame
//!   --spaces         per-space memory map (contiguous runs + mappings)
//!   --kstat          non-zero kstat counters at the stop point
//!   --kstat-delta A B  counter deltas between cycles A and B (two replays)
//!   --kspan          request tracer state at the stop point (arms kspan)
//!   --chrome FILE    Chrome trace of the replayed window
//!   --since-cycle N / --until-cycle N  tighten the --chrome window
//!
//! Watchpoints (stop replay before --at when one trips):
//!   --watch-event NAME       first ktrace event named NAME (e.g. soft_fault)
//!   --watch-kstat CTR:DELTA  counter CTR grew by ≥ DELTA since restore
//!
//! Whole-recording check:
//!   --verify         replay every snapshot to its epoch end

use fluke_bench::krec_sweep::KrecWorkload;
use fluke_bench::trace_export::{chrome_trace, cycle_window};
use fluke_core::{
    trace_suffix_digest, Config, Kernel, KrecConfig, Recording, ReplayError, Replayer, Snap,
    SnapWriter, TraceRecord,
};

fn die(msg: &str) -> ! {
    eprintln!("kdb: {msg}");
    std::process::exit(2);
}

fn parse_config(s: &str) -> Config {
    match s.to_ascii_lowercase().replace('_', "-").as_str() {
        "process-np" => Config::process_np(),
        "interrupt-np" => Config::interrupt_np(),
        "process-pp" => Config::process_pp(),
        "interrupt-pp" => Config::interrupt_pp(),
        _ => die(&format!(
            "unknown config {s:?} (want process-np, interrupt-np, process-pp, interrupt-pp)"
        )),
    }
}

/// What stopped a replay.
enum Stop {
    AtCycle,
    EpochEnd,
    Event(TraceRecord),
    KstatDelta { name: String, delta: u64 },
}

struct Watch {
    event: Option<String>,
    kstat: Option<(String, u64)>,
}

/// FNV digest over the records in `[since, until]` (both inclusive).
fn window_digest(records: &[TraceRecord], since: u64, until: u64) -> u64 {
    let mut w = SnapWriter::hash_only();
    for r in cycle_window(records, Some(since), Some(until)) {
        r.snap(&mut w);
    }
    w.digest()
}

/// Print the first event at which the replayed trace diverges from the
/// original, looking only at records in `[since, until]`.
fn report_first_divergent_event(orig: &Kernel, replayed: &Kernel, since: u64, until: Option<u64>) {
    let a = cycle_window(&orig.trace.merged(), Some(since), until);
    let b = cycle_window(&replayed.trace.merged(), Some(since), until);
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            eprintln!("first divergent event (index {i} after restore point):");
            eprintln!("  recorded: cycle {} cpu {} {:?}", x.at, x.cpu, x.event);
            eprintln!("  replayed: cycle {} cpu {} {:?}", y.at, y.cpu, y.event);
            return;
        }
    }
    eprintln!(
        "traces agree event-for-event up to the shorter side \
         (recorded {} vs replayed {} events after restore)",
        a.len(),
        b.len()
    );
}

/// Restore the nearest snapshot at or before `target` and re-execute to
/// it (or to a tripped watchpoint). Returns the replayed kernel, the
/// restore-point cycle, and what stopped us.
fn replay_to(
    rec: &Recording,
    target: u64,
    watch: &Watch,
) -> Result<(Kernel, u64, Stop), ReplayError> {
    let idx = rec
        .snapshot_at_or_before(target)
        .unwrap_or_else(|| die(&format!("no snapshot at or before cycle {target}")));
    let snap = &rec.snapshots[idx];
    let since = snap.at_cycle;
    let mut rp = Replayer::start(rec, idx)?;
    let baseline = watch
        .kstat
        .as_ref()
        .map(|(name, _)| rp.kernel.kstat().scalar(name).unwrap_or(0));
    let mut scanned = 0usize;
    loop {
        if rp.kernel.now() >= target {
            return Ok((rp.kernel, since, Stop::AtCycle));
        }
        if rp.done() {
            return Ok((rp.kernel, since, Stop::EpochEnd));
        }
        let next = (rp.kernel.now() + 2_000).min(target);
        rp.run_to_cycle(next)?;
        if let Some(name) = &watch.event {
            let merged = rp.kernel.trace.merged();
            if let Some(r) = merged[scanned.min(merged.len())..]
                .iter()
                .find(|r| r.at >= since && r.event.name() == name)
            {
                let hit = *r;
                return Ok((rp.kernel, since, Stop::Event(hit)));
            }
            scanned = merged.len();
        }
        if let (Some((name, want)), Some(base)) = (&watch.kstat, baseline) {
            let cur = rp.kernel.kstat().scalar(name).unwrap_or(0);
            if cur.saturating_sub(base) >= *want {
                return Ok((
                    rp.kernel,
                    since,
                    Stop::KstatDelta {
                        name: name.clone(),
                        delta: cur.saturating_sub(base),
                    },
                ));
            }
        }
    }
}

fn print_threads(k: &Kernel) {
    use fluke_arch::Reg;
    println!("\nthreads:");
    println!(
        "  {:<4} {:<22} {:<28} {:>10} {:>10} {:>10} {:>10}  frame",
        "id", "program", "state", "eax", "ebx", "edx", "edi"
    );
    for (t, name) in k.debug_threads() {
        let r = k.thread_regs(t);
        let f = k.thread_frame(t);
        println!(
            "  {:<4} {:<22} {:<28} {:>10x} {:>10x} {:>10x} {:>10x}  pri={} runnable={} ipc={}",
            t.0,
            name,
            format!("{:?}", k.thread_run_state(t)),
            r.get(Reg::Eax),
            r.get(Reg::Ebx),
            r.get(Reg::Edx),
            r.get(Reg::Edi),
            f.priority,
            f.runnable,
            f.ipc_phase
        );
    }
}

fn print_spaces(k: &Kernel) {
    println!("\nspaces:");
    for s in k.debug_spaces() {
        let Some((runs, mappings)) = k.debug_space_map(s) else {
            continue;
        };
        println!("  space {} ({} mapping objects):", s.0, mappings);
        for (base, len, w) in runs {
            println!(
                "    {base:#010x}..{:#010x}  {} {}",
                base + len,
                if w { "rw" } else { "ro" },
                human_bytes(len)
            );
        }
    }
}

fn human_bytes(n: u32) -> String {
    if n >= 1 << 20 {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 {
        format!("{}K", n >> 10)
    } else {
        format!("{n}B")
    }
}

fn main() {
    let mut workload = KrecWorkload::IpcEcho;
    let mut cfg = Config::process_np();
    let mut stride = 2u64;
    let mut at: Option<u64> = None;
    let mut threads = false;
    let mut spaces = false;
    let mut kstat = false;
    let mut kspan = false;
    let mut kstat_delta: Option<(u64, u64)> = None;
    let mut chrome: Option<String> = None;
    let mut since_cycle: Option<u64> = None;
    let mut until_cycle: Option<u64> = None;
    let mut watch = Watch {
        event: None,
        kstat: None,
    };
    let mut verify = false;

    let mut args = std::env::args().skip(1);
    let next_or = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    let num = |v: String, flag: &str| -> u64 {
        v.parse()
            .unwrap_or_else(|_| die(&format!("{flag}: not a number: {v:?}")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => {
                let w = next_or(&mut args, "--workload");
                workload = KrecWorkload::parse(&w)
                    .unwrap_or_else(|| die(&format!("unknown workload {w:?}")));
            }
            "--config" => cfg = parse_config(&next_or(&mut args, "--config")),
            "--stride" => stride = num(next_or(&mut args, "--stride"), "--stride").max(1),
            "--at" => at = Some(num(next_or(&mut args, "--at"), "--at")),
            "--threads" => threads = true,
            "--spaces" => spaces = true,
            "--kstat" => kstat = true,
            "--kspan" => kspan = true,
            "--kstat-delta" => {
                let a = num(next_or(&mut args, "--kstat-delta"), "--kstat-delta");
                let b = num(next_or(&mut args, "--kstat-delta"), "--kstat-delta");
                kstat_delta = Some((a.min(b), a.max(b)));
            }
            "--chrome" => chrome = Some(next_or(&mut args, "--chrome")),
            "--since-cycle" => {
                since_cycle = Some(num(next_or(&mut args, "--since-cycle"), "--since-cycle"))
            }
            "--until-cycle" => {
                until_cycle = Some(num(next_or(&mut args, "--until-cycle"), "--until-cycle"))
            }
            "--watch-event" => watch.event = Some(next_or(&mut args, "--watch-event")),
            "--watch-kstat" => {
                let v = next_or(&mut args, "--watch-kstat");
                let (name, d) = v
                    .rsplit_once(':')
                    .unwrap_or_else(|| die("--watch-kstat wants COUNTER:DELTA"));
                watch.kstat = Some((name.to_string(), num(d.to_string(), "--watch-kstat")));
            }
            "--verify" => verify = true,
            other => die(&format!(
                "unknown argument {other:?} (see kdb source header)"
            )),
        }
    }
    if at.is_none() && !verify && kstat_delta.is_none() {
        die("nothing to do: pass --at CYCLE, --kstat-delta A B, or --verify");
    }

    // Record: run the workload once with the snapshot engine armed.
    let mut rcfg = cfg
        .clone()
        .with_krec(KrecConfig::every_sites(stride).with_ring(4096));
    if kspan {
        rcfg = rcfg.with_kspan();
    }
    println!(
        "recording {} under {} (snapshot every {stride} sites)…",
        workload.label(),
        cfg.label
    );
    let (_, mut orig) = workload
        .run(&rcfg)
        .unwrap_or_else(|e| die(&format!("recording failed: {e}")));
    let end_cycle = orig.now();
    let rec = orig.take_recording().expect("recorder armed");
    println!(
        "recorded {} snapshots, {} run windows, final cycle {end_cycle}",
        rec.snapshots.len(),
        rec.windows.len()
    );

    if verify {
        let mut bad = 0;
        for i in 0..rec.snapshots.len() {
            let s = &rec.snapshots[i];
            let r = Replayer::start(&rec, i).and_then(|mut rp| {
                let n = rp.run_to_epoch_end()?;
                Ok((n, rp))
            });
            match r {
                Ok((n, rp)) => {
                    let full = rp.epoch_end() == rec.windows.len();
                    let mut tail = String::new();
                    if full {
                        let want = trace_suffix_digest(&orig, s.at_cycle);
                        let got = trace_suffix_digest(&rp.kernel, s.at_cycle);
                        if got != want {
                            bad += 1;
                            tail = format!("  TRACE SUFFIX DIVERGED {got:#018x} != {want:#018x}");
                            report_first_divergent_event(&orig, &rp.kernel, s.at_cycle, None);
                        } else {
                            tail = "  trace suffix ok".to_string();
                        }
                    }
                    println!(
                        "snapshot {i:>3} @ cycle {:>10} site {:>4}: {n} windows verified{tail}",
                        s.at_cycle, s.site
                    );
                }
                Err(e) => {
                    bad += 1;
                    eprintln!(
                        "snapshot {i:>3} @ cycle {:>10}: REPLAY FAILED: {e}",
                        s.at_cycle
                    );
                    eprintln!(
                        "  reproducer: kdb --workload {} --config {} --stride {stride} \
                         --at {} --verify",
                        workload.label(),
                        cfg.label.to_ascii_lowercase().replace(' ', "-"),
                        s.at_cycle
                    );
                }
            }
        }
        if bad > 0 {
            eprintln!("\n{bad} snapshot(s) failed to replay faithfully");
            std::process::exit(1);
        }
        println!("\nall {} snapshots replay faithfully", rec.snapshots.len());
    }

    if let Some((a, b)) = kstat_delta {
        let w = Watch {
            event: None,
            kstat: None,
        };
        let (ka, _, _) = replay_to(&rec, a, &w).unwrap_or_else(|e| die(&format!("{e}")));
        let (kb, _, _) = replay_to(&rec, b, &w).unwrap_or_else(|e| die(&format!("{e}")));
        let ra = ka.kstat();
        let rb = kb.kstat();
        println!(
            "\nkstat deltas, cycle {} → {} (counters that moved):",
            ka.now(),
            kb.now()
        );
        for (name, _) in rb.iter() {
            let (va, vb) = (ra.scalar(name).unwrap_or(0), rb.scalar(name).unwrap_or(0));
            if vb != va {
                let sign = if vb >= va { '+' } else { '-' };
                println!(
                    "  {name:<44} {va:>12} → {vb:>12}  ({sign}{})",
                    vb.abs_diff(va)
                );
            }
        }
    }

    if let Some(target) = at {
        let (k, since, stop) = replay_to(&rec, target, &watch).unwrap_or_else(|e| {
            eprintln!("kdb: replay failed: {e}");
            std::process::exit(1);
        });
        let now = k.now();
        match &stop {
            Stop::AtCycle => println!("\nstopped at cycle {now} (target {target})"),
            Stop::EpochEnd => println!(
                "\nstopped at cycle {now}: epoch ends before target {target} \
                 (host mutated state here; pick a later snapshot)"
            ),
            Stop::Event(r) => println!(
                "\nwatchpoint hit at cycle {}: event {} on cpu {} ({:?})",
                r.at,
                r.event.name(),
                r.cpu,
                r.event
            ),
            Stop::KstatDelta { name, delta } => {
                println!("\nwatchpoint hit at cycle {now}: {name} grew by {delta}")
            }
        }
        // The replayed trace window must be bit-identical to the original
        // recording's — time travel that rewrites history is a hard error.
        // Compare only up to the replay's *horizon* (the slowest CPU's
        // clock, minus the stop cycle itself): events there are final on
        // both sides; the original run kept emitting past it.
        let horizon = k.debug_cycle_horizon().saturating_sub(1);
        let want = window_digest(&orig.trace.merged(), since, horizon);
        let got = window_digest(&k.trace.merged(), since, horizon);
        if want != got {
            eprintln!(
                "kdb: REPLAY DIVERGED from recording over cycles {since}..{horizon}: \
                 trace digest {got:#018x} != {want:#018x}"
            );
            report_first_divergent_event(&orig, &k, since, Some(horizon));
            std::process::exit(1);
        }
        println!("replayed window {since}..{horizon} is bit-identical to the recording ✓");

        if threads {
            print_threads(&k);
        }
        if spaces {
            print_spaces(&k);
        }
        if kstat {
            println!("\nkstat at cycle {now}:");
            print!("{}", k.kstat().dump_text(false));
        }
        if kspan {
            println!(
                "\nkspan at cycle {now}: {} requests in flight, {} completed, {} aborted",
                k.kspan.open_count(),
                k.kspan.completed().len(),
                k.kspan.aborted()
            );
            for (obj, c) in k.kspan.top_contended(5) {
                println!(
                    "  contended {obj}: {} waits, {} cycles",
                    c.waits, c.wait_cycles
                );
            }
        }
        if let Some(path) = chrome {
            let lo = since_cycle.unwrap_or(since);
            let hi = until_cycle.unwrap_or(now);
            let recs = cycle_window(&k.trace.merged(), Some(lo), Some(hi));
            let n = recs.len();
            std::fs::write(&path, chrome_trace(&recs))
                .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            println!("wrote {path} ({n} events, cycles {lo}..{hi})");
        }
    }
}

//! Regenerate the paper's Table 1 (syscall classification).
fn main() {
    println!("{}", fluke_bench::table1::render());
}

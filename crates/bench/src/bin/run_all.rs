//! Regenerate every table and figure of the paper in one run
//! (set FLUKE_BENCH_SCALE=quick for a fast smoke pass).
use fluke_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("=== Fluke reproduction: full experiment sweep ({scale:?} scale) ===\n");
    println!("{}\n", fluke_bench::table1::render());
    println!("{}\n", fluke_bench::table3::render());
    println!("{}\n", fluke_bench::table5::render(scale));
    println!("{}\n", fluke_bench::table6::render(scale));
    println!("{}\n", fluke_bench::table7::render());
    println!("=== Observability (kmon) ===\n");
    let obs = fluke_bench::observability::run_sweep(scale);
    println!("{}", fluke_bench::observability::render_dashboard(&obs));
}

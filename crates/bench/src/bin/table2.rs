//! Regenerate the paper's Table 2 (the nine primitive object types).
use fluke_api::ObjType;
use fluke_bench::TextTable;

fn main() {
    let mut t = TextTable::new(&["Object", "Description"]);
    for ty in ObjType::ALL {
        t.row(&[ty.name().to_string(), ty.description().to_string()]);
    }
    println!("Table 2: The primitive object types exported by the Fluke kernel.\n");
    println!("{t}");
}

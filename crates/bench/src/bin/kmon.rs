//! `kmon`: the kernel observability dashboard. Runs `flukeperf` under
//! every valid Table 4 configuration with the `kprof` profiler enabled
//! and the latency probe installed, prints the cycle-attribution tree,
//! preemption-latency and memory-gauge summaries, and writes
//! `BENCH_observability.json`.
//!
//! Usage: `kmon [--check] [--out FILE]` — scale via `FLUKE_BENCH_SCALE`.
//! `--check` additionally verifies the quick-scale preemption-latency
//! maxima against the blessed CI bounds and exits nonzero on regression.

use fluke_bench::{observability, Scale};

fn main() {
    let mut check = false;
    let mut out = "BENCH_observability.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a file name"),
            other => {
                eprintln!("usage: kmon [--check] [--out FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();
    if check && scale != Scale::Quick {
        eprintln!("kmon --check gates quick-scale bounds; set FLUKE_BENCH_SCALE=quick");
        std::process::exit(2);
    }
    println!("=== kmon: kernel observability dashboard ({scale:?} scale) ===\n");
    let runs = observability::run_sweep(scale);
    print!("{}", observability::render_dashboard(&runs));
    let doc = observability::to_json(scale, &runs);
    std::fs::write(&out, format!("{doc}\n")).expect("write observability report");
    println!("wrote {out}");
    if check {
        match observability::check_regression(&runs) {
            Ok(()) => println!("preemption-latency bounds: OK"),
            Err(e) => {
                eprintln!("preemption-latency regression:\n{e}");
                std::process::exit(1);
            }
        }
    }
}

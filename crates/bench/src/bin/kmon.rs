//! `kmon`: the kernel observability dashboard. Runs `flukeperf` under
//! every valid Table 4 configuration with the `kprof` profiler and the
//! `kspan` request tracer enabled and the latency probe installed, prints
//! the cycle-attribution tree, per-request critical-path and contention
//! summaries, preemption-latency and memory-gauge summaries, and writes
//! `BENCH_observability.json`.
//!
//! Usage: `kmon [--check] [--out FILE] [--flame FILE]` — scale via
//! `FLUKE_BENCH_SCALE`. `--check` additionally verifies the quick-scale
//! preemption-latency maxima against the blessed CI bounds, and — when a
//! committed report exists at the output path — fails if any config's
//! kspan end-to-end p99 regressed by more than 10%. `--flame` writes the
//! per-request-class collapsed flamegraph (one `class;path cycles` line
//! per frame, all configs concatenated) for `flamegraph.pl`-style tools.

use fluke_bench::{observability, Scale};
use fluke_json::Json;

fn main() {
    let mut check = false;
    let mut out = "BENCH_observability.json".to_string();
    let mut flame: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a file name"),
            "--flame" => flame = Some(args.next().expect("--flame needs a file name")),
            other => {
                eprintln!("usage: kmon [--check] [--out FILE] [--flame FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();
    if check && scale != Scale::Quick {
        eprintln!("kmon --check gates quick-scale bounds; set FLUKE_BENCH_SCALE=quick");
        std::process::exit(2);
    }
    // Read the committed report *before* overwriting it: `--check` diffs
    // the fresh run against it below.
    let committed = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| Json::parse(&s).ok());
    println!("=== kmon: kernel observability dashboard ({scale:?} scale) ===\n");
    let runs = observability::run_sweep(scale);
    print!("{}", observability::render_dashboard(&runs));
    let doc = observability::to_json(scale, &runs);
    std::fs::write(&out, format!("{doc}\n")).expect("write observability report");
    println!("wrote {out}");
    if let Some(f) = flame {
        let mut lines = Vec::new();
        for o in &runs {
            for line in observability::collapsed_spans(&o.kernel) {
                lines.push(format!("{};{line}", o.label().replace(' ', "_")));
            }
        }
        std::fs::write(&f, lines.join("\n") + "\n").expect("write flamegraph");
        println!("wrote {f} ({} frames)", lines.len());
    }
    if check {
        let mut failed = false;
        match observability::check_regression(&runs) {
            Ok(()) => println!("preemption-latency bounds: OK"),
            Err(e) => {
                eprintln!("preemption-latency regression:\n{e}");
                failed = true;
            }
        }
        match committed {
            None => println!("kspan e2e p99: no committed report to diff against"),
            Some(c) => match observability::check_e2e_regression(&c, &doc) {
                Ok(()) => println!("kspan e2e p99 vs committed report: OK"),
                Err(e) => {
                    eprintln!("kspan e2e p99 regression:\n{e}");
                    failed = true;
                }
            },
        }
        if failed {
            std::process::exit(1);
        }
    }
}

//! Multiprocessor scaling: compute-bound and syscall-bound workloads on
//! 1, 2, 4 and 8 simulated processors (beyond the paper's uniprocessor
//! measurements; the abstract's MP claim made measurable).
use fluke_arch::{Assembler, Cond, Reg, UserRegs};
use fluke_bench::TextTable;
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

fn run_mix(cpus: usize, syscall_heavy: bool) -> (u64, u64) {
    let mut k = Kernel::new(Config::process_np().with_cpus(cpus));
    let p = ChildProc::new(&mut k);
    let mut a = Assembler::new("worker");
    a.movi(Reg::Ecx, 3_000);
    a.label("top");
    if syscall_heavy {
        a.sys(fluke_api::Sys::SysNull);
        a.compute(200);
    } else {
        a.compute(2_000);
    }
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "top");
    a.halt();
    let prog = k.register_program(a.finish());
    let ts: Vec<_> = (0..8)
        .map(|_| k.spawn_thread(p.space, prog, UserRegs::new(), 8))
        .collect();
    assert!(run_to_halt(&mut k, &ts, 200_000_000_000));
    (k.now(), k.stats.klock_cycles)
}

fn main() {
    let mut t = TextTable::new(&[
        "CPUs",
        "compute-bound (ms)",
        "speedup",
        "syscall-bound (ms)",
        "speedup",
        "lock wait (ms)",
    ]);
    let (c1, _) = run_mix(1, false);
    let (s1, _) = run_mix(1, true);
    for cpus in [1usize, 2, 4, 8] {
        let (c, _) = run_mix(cpus, false);
        let (s, lw) = run_mix(cpus, true);
        t.row(&[
            cpus.to_string(),
            format!("{:.1}", c as f64 / 200_000.0),
            format!("{:.2}x", c1 as f64 / c as f64),
            format!("{:.1}", s as f64 / 200_000.0),
            format!("{:.2}x", s1 as f64 / s as f64),
            format!("{:.1}", lw as f64 / 200_000.0),
        ]);
    }
    println!(
        "Multiprocessor scaling, 8 worker threads (big-kernel-lock MP kernel):\n\
         compute scales nearly linearly; syscall-heavy work serializes on\n\
         the kernel lock — the reason Table 4's NP/PP rows are uniprocessor\n\
         designs.\n"
    );
    println!("{t}");
}

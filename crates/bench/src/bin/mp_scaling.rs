//! The MP scaling headline: IPC-echo and flukeperf throughput on 1–64
//! simulated processors, fine-grained locking vs the legacy big kernel
//! lock, written to `BENCH_mp_scaling.json`.
//!
//! Usage: `mp_scaling [--quick] [--check] [output.json]`
//!
//! * Default: run the sweep at both paper and quick scale and write the
//!   combined artifact (the committed baseline carries both, so the CI
//!   quick smoke can gate against a same-scale reference).
//! * `--quick` restricts the sweep to the quick scale.
//! * `--check` gates against the *committed* `BENCH_mp_scaling.json`
//!   instead of writing: fails if the fresh 16-CPU fine-grained ipc-echo
//!   throughput fell more than 10% below the same-scale baseline, or if
//!   fine-grained locking no longer beats the big lock on lock-wait
//!   share.

use fluke_bench::{mp_scaling, Scale};
use fluke_json::Json;

fn main() {
    let mut quick_only = false;
    let mut check = false;
    let mut out = "BENCH_mp_scaling.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick_only = true,
            "--check" => check = true,
            other => out = other.to_string(),
        }
    }
    let scales: &[Scale] = if quick_only {
        &[Scale::Quick]
    } else {
        &[Scale::Paper, Scale::Quick]
    };

    let mut runs = Vec::new();
    for &scale in scales {
        let rows = mp_scaling::run_mp_scaling(scale);
        println!(
            "MP scaling ({:?}): throughput vs processors, fine-grained vs big kernel lock",
            scale
        );
        println!("{}", mp_scaling::table(&rows).render());
        runs.push((scale, rows));
    }

    if check {
        let baseline = std::fs::read_to_string("BENCH_mp_scaling.json")
            .expect("--check needs the committed BENCH_mp_scaling.json");
        let baseline = Json::parse(&baseline).expect("committed baseline parses");
        for (scale, rows) in &runs {
            match mp_scaling::check(&baseline, *scale, rows) {
                Ok(()) => {
                    println!("check ({scale:?}): OK (throughput held, lock-wait share dropped)")
                }
                Err(e) => {
                    eprintln!("check ({scale:?}): FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let mut doc = Json::obj();
    doc.set("bench", Json::Str("mp_scaling".to_string()));
    doc.set(
        "runs",
        Json::Arr(
            runs.iter()
                .map(|(scale, rows)| mp_scaling::to_json(*scale, rows))
                .collect(),
        ),
    );
    std::fs::write(&out, format!("{doc}\n")).expect("write benchmark report");
    println!("wrote {out}");
}

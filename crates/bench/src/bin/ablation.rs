//! Ablation report: which cost drives which table.
fn main() {
    println!("{}", fluke_bench::ablation::render());
}

//! Regenerate the paper's Table 5.
fn main() {
    println!(
        "{}",
        fluke_bench::table5::render(fluke_bench::Scale::from_env())
    );
}

//! `krec_sweep`: record, restore, and re-execute whole-kernel snapshots
//! across every workload × configuration combination, proving zero
//! recording perturbation and bit-identical replay everywhere, and write
//! `BENCH_snapshot.json`.
//!
//! Usage: `krec_sweep [--check] [--out FILE]`.
//!
//! * `FLUKE_KREC_STRIDE=N` snapshots every Nth dispatch-boundary site
//!   (default 5; smaller = denser sweep).
//! * `FLUKE_KREC_WORKLOADS=ipc-echo,checkpoint,submit-ring` filters the
//!   workload set (default: all three).
//! * `--check` exits non-zero on any replay divergence and, when a
//!   committed report exists at the output path, on snapshot-size
//!   blowups or lost replay coverage against it.

use fluke_bench::krec_sweep::{self, KrecWorkload, ALL_WORKLOADS};
use fluke_json::Json;

fn main() {
    let mut check = false;
    let mut out = "BENCH_snapshot.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a file name"),
            other => {
                eprintln!("usage: krec_sweep [--check] [--out FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let stride = std::env::var("FLUKE_KREC_STRIDE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let workloads: Vec<KrecWorkload> = match std::env::var("FLUKE_KREC_WORKLOADS") {
        Ok(s) => s
            .split(',')
            .map(str::trim)
            .filter(|w| !w.is_empty())
            .map(|w| {
                KrecWorkload::parse(w).unwrap_or_else(|| {
                    eprintln!("unknown workload {w:?} (want ipc-echo, checkpoint, submit-ring)");
                    std::process::exit(2);
                })
            })
            .collect(),
        Err(_) => ALL_WORKLOADS.to_vec(),
    };

    // Read the committed report *before* overwriting it: `--check` diffs
    // the fresh run against it below.
    let committed = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| Json::parse(&s).ok());

    println!("=== krec_sweep: snapshot / replay fidelity (stride {stride}) ===\n");
    let reports = match krec_sweep::sweep_all(&workloads, stride) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    for r in &reports {
        println!("{}", r.summary());
        for line in r.reproducers() {
            eprintln!("  {line}");
        }
    }
    let total_div: usize = reports.iter().map(|r| r.divergences.len()).sum();
    let total_snaps: u64 = reports.iter().map(|r| r.snapshots).sum();
    let total_windows: u64 = reports.iter().map(|r| r.windows_verified).sum();
    println!(
        "\n{} sweeps, {total_snaps} snapshots replayed, {total_windows} windows verified, \
         {total_div} divergences",
        reports.len()
    );

    let doc = krec_sweep::to_json(&reports);
    std::fs::write(&out, format!("{doc}\n")).expect("write snapshot report");
    println!("wrote {out}");

    if check {
        let baseline = committed.unwrap_or_else(|| {
            // First run ever: gate divergences only, against the fresh doc.
            doc.clone()
        });
        let errs = krec_sweep::check(&baseline, &reports);
        if errs.is_empty() {
            println!("krec replay fidelity vs committed report: OK");
        } else {
            for e in &errs {
                eprintln!("krec regression: {e}");
            }
            std::process::exit(1);
        }
    } else if total_div > 0 {
        std::process::exit(1);
    }
}

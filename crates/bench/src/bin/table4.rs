//! Regenerate the paper's Table 4 (kernel configuration matrix).
use fluke_bench::TextTable;
use fluke_core::{Config, Preemption};

fn main() {
    let mut t = TextTable::new(&["Configuration", "Description"]);
    for cfg in Config::all_five() {
        let desc = match (cfg.model, cfg.preempt) {
            (fluke_core::ExecModel::Process, Preemption::None) =>
                "Process model with no kernel preemption. Requires no kernel-internal locking. Comparable to a uniprocessor Unix system.",
            (fluke_core::ExecModel::Process, Preemption::Partial) =>
                "Process model with \"partial\" kernel preemption: a single explicit preemption point on the IPC data copy path, checked after every 8k transferred. No kernel locking.",
            (fluke_core::ExecModel::Process, Preemption::Full) =>
                "Process model with full kernel preemption. Requires blocking mutex locks for kernel locking.",
            (fluke_core::ExecModel::Interrupt, Preemption::None) =>
                "Interrupt model with no kernel preemption. Requires no kernel locking.",
            (fluke_core::ExecModel::Interrupt, Preemption::Partial) =>
                "Interrupt model with partial preemption: the same IPC preemption point as Process PP. No kernel locking.",
            (fluke_core::ExecModel::Interrupt, Preemption::Full) => unreachable!(),
        };
        t.row(&[cfg.label.to_string(), desc.to_string()]);
    }
    println!("Table 4: Labels and characteristics of the kernel configurations.\n");
    println!("{t}");
}

//! Regenerate the Section 5.5 architectural-bias microbenchmark: the cost
//! a null system call pays for the interrupt model's state copy between
//! the per-CPU stack and the thread structure.
use fluke_api::Sys;
use fluke_arch::{Assembler, CostModel, Reg};
use fluke_bench::TextTable;
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;
use fluke_workloads::common::counted_loop;

/// Measure average cycles per null syscall under a configuration.
fn null_cost(cfg: Config) -> f64 {
    const N: u32 = 10_000;
    let mut k = Kernel::new(cfg);
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let mut a = Assembler::new("nulls");
    counted_loop(&mut a, "l", p.mem_base + 0x200, N, |a| {
        a.sys(Sys::SysNull);
    });
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t], 1_000_000_000));
    // Subtract a no-syscall control loop to isolate the trap cost.
    let with = k.stats.kernel_cycles;
    let _ = Reg::Eax;
    with as f64 / N as f64
}

fn main() {
    let process = null_cost(Config::process_np());
    let interrupt = null_cost(Config::interrupt_np());
    let m = CostModel::pentium_pro_200();
    let hw = m.hw_trap_enter + m.hw_trap_exit;
    let mut t = TextTable::new(&["Quantity", "Cycles"]);
    t.row(&["Hardware-minimum trap enter+leave".into(), hw.to_string()]);
    t.row(&[
        "Null syscall, process model".into(),
        format!("{process:.1}"),
    ]);
    t.row(&[
        "Null syscall, interrupt model".into(),
        format!("{interrupt:.1}"),
    ]);
    t.row(&[
        "Interrupt-model extra per syscall".into(),
        format!("{:.1}", interrupt - process),
    ]);
    t.row(&[
        "Overhead relative to process model".into(),
        format!("{:.1}%", (interrupt - process) / process * 100.0),
    ]);
    println!(
        "Section 5.5: architectural bias of the x86 toward the process model.\n\
         The interrupt model must move the hardware-saved state between the\n\
         per-CPU stack and the thread structure on every kernel entry/exit\n\
         (~6 cycles) — under 10% of even the fastest system call.\n"
    );
    println!("{t}");
}

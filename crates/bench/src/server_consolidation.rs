//! Server consolidation at scale: many concurrent connections multiplexed
//! onto a few frontend spaces, routed over reliable IPC to sharded
//! backend worker pools — Tables 5/6 extended to server scale.
//!
//! Three tiers drive the numbers:
//!
//! * **echo** — one producer/consumer pair moving a fixed message count,
//!   once with plain one-way sends and receives (two kernel entries per
//!   message) and once with `ipc_submit` descriptor rings; the headline
//!   is kernel entries per message, which batching must cut by ≥4x.
//! * **scale** — `conns` connection ports (up to 10240) spread across
//!   frontend spaces, every port a member of its frontend's portset.
//!   Client threads sweep their connections with connect-send-over-receive
//!   RPCs carrying a skewed shard key (five of eight requests hit shard
//!   0); frontends route each request to a backend worker pool with a
//!   one-way send before acknowledging. Cycles per message must stay flat
//!   as the connection count grows — the O(1) port namespace at work.
//! * **pool** — fixed traffic against worker pools of 1, 4 and 16
//!   threads per shard: wake cost must not depend on how many waiters sit
//!   parked on the shard port's wait queue.
//!
//! Connection churn rides along: each client, on the tail eighth of its
//! connection range, creates and destroys a scratch port per request, so
//! the namespace index is mutated while lookups stream through it.
//!
//! Latency is read from `kspan`: p50/p95/p99 of the client RPC class for
//! the server tiers (end-to-end request cycles), of the overall span
//! histogram for the echo tier. kspan is zero-perturbation, so the
//! throughput numbers are the same with or without it.
//!
//! The binary `server_consolidation` prints the table, writes
//! `BENCH_server.json`, and with `--check` gates against the committed
//! baseline (>10% p99 or throughput regression fails, and the echo-tier
//! entry reduction must hold at ≥4x).

use fluke_api::abi::{
    ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL, PORT_BUF_MSGS, SUBMIT_OP_RECV,
};
use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Histogram, Kernel};
use fluke_json::Json;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

use crate::{Scale, TextTable};

/// Request/response payload bytes.
const LEN: u32 = 64;

/// Frontend→backend routing notification bytes.
const FWD_LEN: u32 = 16;

/// Safety budget per run (simulated cycles).
const BUDGET: u64 = 200_000_000_000;

/// Processors for every tier.
const CPUS: usize = 8;

/// Backend shards (worker pools).
const SHARDS: usize = 4;

/// Frontend spaces the connections are consolidated onto.
const FRONTENDS: usize = 2;

/// Server threads per frontend space, all waiting on one portset.
const FE_THREADS: usize = 2;

/// Client threads driving the connections.
const CLIENTS: usize = 4;

/// Hot-key skew: five of eight requests route to shard 0.
const SKEW: [u8; 8] = [0, 0, 0, 0, 0, 1, 2, 3];

/// Connection counts swept by the scale tier.
pub fn scale_points(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![256, 1024, 4096, 10240],
        Scale::Quick => vec![64, 1024],
    }
}

/// Worker-pool sizes swept by the pool tier.
fn pool_points(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![1, 4, 16],
        Scale::Quick => vec![1, 16],
    }
}

/// Rounds over the connection range, keeping total requests near a floor
/// so small-connection runs are not dominated by startup.
fn rounds_for(conns: usize, scale: Scale) -> u32 {
    let floor = match scale {
        Scale::Paper => 2048,
        Scale::Quick => 256,
    };
    (floor / conns).max(1) as u32
}

/// Messages moved by the echo tier (multiple of the 16-deep port buffer).
fn echo_msgs(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 2048,
        Scale::Quick => 256,
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ServerRow {
    /// Tier label: "echo-plain", "echo-batched", "scale" or "pool".
    pub tier: &'static str,
    /// Live connection ports (1 for the echo tiers).
    pub conns: usize,
    /// Workers per backend shard (0 for the echo tiers).
    pub workers: usize,
    /// Requests (scale/pool) or messages (echo) completed.
    pub msgs: u64,
    /// Simulated wall-clock cycles for the whole run.
    pub elapsed: u64,
    /// System calls dispatched (kernel entries).
    pub syscalls: u64,
    /// Request-latency percentiles, simulated cycles.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Handle-table lookups performed.
    pub port_lookups: u64,
    /// Reference chains chased during lookups.
    pub ref_chases: u64,
    /// Wait-queue wakes.
    pub waitq_wakes: u64,
    /// Wait-queue enqueues.
    pub waitq_enqueues: u64,
    /// `ipc_submit` kernel entries (echo-batched only).
    pub submit_batches: u64,
}

impl ServerRow {
    /// Messages per simulated second (the clock runs at 200 cycles/µs).
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 * 200e6 / self.elapsed.max(1) as f64
    }

    /// Simulated cycles of wall-clock time per message.
    pub fn cycles_per_msg(&self) -> f64 {
        self.elapsed as f64 / self.msgs.max(1) as f64
    }

    /// Kernel entries per message — what batching drives down.
    pub fn entries_per_msg(&self) -> f64 {
        self.syscalls as f64 / self.msgs.max(1) as f64
    }

    /// Handle lookups per message (flat when the namespace is O(1)).
    pub fn lookups_per_msg(&self) -> f64 {
        self.port_lookups as f64 / self.msgs.max(1) as f64
    }
}

fn row_from(
    tier: &'static str,
    conns: usize,
    workers: usize,
    msgs: u64,
    hist: &Histogram,
    k: &Kernel,
) -> ServerRow {
    ServerRow {
        tier,
        conns,
        workers,
        msgs,
        elapsed: k.now(),
        syscalls: k.stats.syscalls,
        p50: hist.percentile(50.0),
        p95: hist.percentile(95.0),
        p99: hist.percentile(99.0),
        port_lookups: k.stats.port_lookups,
        ref_chases: k.stats.port_ref_chases,
        waitq_wakes: k.stats.waitq.wakes,
        waitq_enqueues: k.stats.waitq.enqueues,
        submit_batches: k.stats.ipc_submit_batches,
    }
}

/// Base configuration every tier runs under.
fn base_cfg() -> Config {
    Config::process_pp().with_cpus(CPUS).with_kspan()
}

// ---------------------------------------------------------------------------
// Echo tier: plain entries-per-message vs batched descriptor rings.
// ---------------------------------------------------------------------------

/// Run the echo tier and return the finished kernel. `msgs` one-way
/// messages move from a producer thread to a consumer thread in one
/// space, either as individual send/receive system calls or as
/// `ipc_submit` rings of 16.
pub fn run_echo(batched: bool, msgs: u64) -> Kernel {
    assert_eq!(msgs % PORT_BUF_MSGS as u64, 0, "msgs must fill whole rings");
    let mut k = Kernel::new(base_cfg());
    let mut p = ChildProc::with_mem(&mut k, 0x0100_0000, 0x0002_0000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let sring = p.mem_base + 0x1000;
    let rring = p.mem_base + 0x1800;
    let sbufs = p.mem_base + 0x2000;
    let rbufs = p.mem_base + 0x4000;
    for i in 0..PORT_BUF_MSGS as u32 {
        k.write_mem(p.space, sbufs + i * LEN, &vec![0x5a; LEN as usize]);
    }

    let (producer, consumer) = if batched {
        // Pre-written rings: 16 send descriptors, 16 receive descriptors.
        // Result words preserve the low opflag bits, so the rings are
        // reused by every batch without guest rewrites.
        let mut simg = Vec::new();
        let mut rimg = Vec::new();
        for i in 0..PORT_BUF_MSGS as u32 {
            for w in [0u32, h_port, sbufs + i * LEN, LEN] {
                simg.extend(w.to_le_bytes());
            }
            for w in [SUBMIT_OP_RECV, h_port, rbufs + i * LEN, LEN] {
                rimg.extend(w.to_le_bytes());
            }
        }
        k.write_mem(p.space, sring, &simg);
        k.write_mem(p.space, rring, &rimg);
        let batches = (msgs / PORT_BUF_MSGS as u64) as u32;
        (
            submit_loop("echo-producer", sring, batches),
            submit_loop("echo-consumer", rring, batches),
        )
    } else {
        let mut a = Assembler::new("echo-producer");
        a.movi(Reg::Ebp, msgs as u32);
        a.label("send");
        a.movi(ARG_HANDLE, h_port);
        a.movi(ARG_SBUF, sbufs);
        a.movi(ARG_COUNT, LEN);
        a.sys(Sys::IpcSendOneway);
        a.subi(Reg::Ebp, 1);
        a.cmpi(Reg::Ebp, 0);
        a.jcc(Cond::Ne, "send");
        a.halt();
        let mut b = Assembler::new("echo-consumer");
        b.movi(Reg::Ebp, msgs as u32);
        b.label("recv");
        b.movi(ARG_HANDLE, h_port);
        b.movi(ARG_RBUF, rbufs);
        b.movi(ARG_COUNT, LEN);
        b.sys(Sys::IpcWaitReceiveOneway);
        b.subi(Reg::Ebp, 1);
        b.cmpi(Reg::Ebp, 0);
        b.jcc(Cond::Ne, "recv");
        b.halt();
        (a, b)
    };

    let pt = p.start(&mut k, producer.finish(), 8);
    let ct = p.start(&mut k, consumer.finish(), 8);
    assert!(
        run_to_halt(&mut k, &[pt, ct], BUDGET),
        "echo tier hung (batched={batched})"
    );
    // Delivery sanity only: the oneway rendezvous path historically
    // counts a message at both the pump and its caller, the buffered
    // path once at delivery, so the exact counter value differs by path.
    assert!(k.stats.ipc_messages >= msgs, "echo tier lost messages");
    k
}

/// A batch loop over one pre-written 16-descriptor ring: submit, and when
/// a descriptor spilled to its plain equivalent (the syscall returned
/// with `edx < 16`, the spilled slot completed through the plain path),
/// advance the cursor past it and resubmit the rest.
pub(crate) fn submit_loop(name: &str, ring: u32, batches: u32) -> Assembler {
    let n = PORT_BUF_MSGS as u32;
    let mut a = Assembler::new(name);
    a.movi(Reg::Esp, batches);
    a.label("batch");
    a.movi(ARG_VAL, 0);
    a.label("again");
    a.movi(ARG_SBUF, ring);
    a.movi(ARG_COUNT, n);
    a.sys(Sys::IpcSubmit);
    a.cmpi(ARG_VAL, n);
    a.jcc(Cond::Eq, "done");
    a.addi(ARG_VAL, 1);
    a.cmpi(ARG_VAL, n);
    a.jcc(Cond::Ne, "again");
    a.label("done");
    a.subi(Reg::Esp, 1);
    a.cmpi(Reg::Esp, 0);
    a.jcc(Cond::Ne, "batch");
    a.halt();
    a
}

// ---------------------------------------------------------------------------
// Scale and pool tiers: consolidated frontends over sharded worker pools.
// ---------------------------------------------------------------------------

/// Run the consolidated-server workload: `conns` connection ports across
/// [`FRONTENDS`] frontend spaces, `workers` threads per backend shard,
/// every client sweeping its connection range `rounds` times. Returns
/// the finished kernel and the total request count.
pub fn run_server(conns: usize, workers: usize, rounds: u32) -> (Kernel, u64) {
    assert_eq!(conns % (FRONTENDS * CLIENTS), 0, "conns must split evenly");
    let mut k = Kernel::new(base_cfg());

    // Backend: one space per shard, `workers` threads parked on the
    // shard port in a receive loop. The pool never drains the port dry
    // and never halts; it simply absorbs routed notifications. Handles
    // are user addresses of 32-byte object slots in each space's memory.
    let mut shard_ports = Vec::new();
    for s in 0..SHARDS {
        let space = ChildProc::with_mem(&mut k, 0x6000_0000 + (s as u32) * 0x0100_0000, 0x4000);
        let h_port = space.mem_base + 0x3000;
        let port = k.loader_create(space.space, h_port, ObjType::Port);
        shard_ports.push(port);
        for w in 0..workers {
            let wbuf = space.mem_base + 0x1000 + (w as u32) * 0x100;
            let mut a = Assembler::new("shard-worker");
            a.label("drain");
            a.movi(ARG_HANDLE, h_port);
            a.movi(ARG_RBUF, wbuf);
            a.movi(ARG_COUNT, FWD_LEN);
            a.sys(Sys::IpcWaitReceiveOneway);
            a.jmp("drain");
            space.start(&mut k, a.finish(), 10);
        }
    }

    // Frontends: each space owns a portset, its share of the connection
    // ports (all portset members, 32-byte slots from +0x10000), and
    // references to every shard port (slots from +0x2020). Each server
    // thread waits on the portset, routes the request's key byte to its
    // shard, then acknowledges and waits for the next request in a
    // single entrypoint.
    let cpf = conns / FRONTENDS;
    let mut conn_ports = Vec::new();
    for f in 0..FRONTENDS {
        let space = ChildProc::with_mem(
            &mut k,
            0x4000_0000 + (f as u32) * 0x0100_0000,
            0x1_0000 + 32 * cpf.next_power_of_two().max(128) as u32,
        );
        let h_pset = space.mem_base + 0x2000;
        let h_shard0 = space.mem_base + 0x2020;
        let pset = k.loader_create(space.space, h_pset, ObjType::Portset);
        for (s, &port) in shard_ports.iter().enumerate() {
            k.loader_ref(space.space, h_shard0 + 32 * s as u32, port);
        }
        for i in 0..cpf {
            let h = space.mem_base + 0x1_0000 + 32 * i as u32;
            let port = k.loader_create(space.space, h, ObjType::Port);
            k.loader_join_pset(port, pset);
            conn_ports.push(port);
        }
        for t in 0..FE_THREADS {
            let fbuf = space.mem_base + 0x1000 + (t as u32) * 0x200;
            let mut a = Assembler::new("frontend");
            a.server_wait_receive(h_pset, fbuf, LEN);
            a.label("serve");
            a.movi(Reg::Ebp, fbuf);
            a.loadb(Reg::Eax, Reg::Ebp, 0);
            a.mov(ARG_HANDLE, Reg::Eax);
            a.emit(fluke_arch::Instr::ShlI(ARG_HANDLE, 5));
            a.addi(ARG_HANDLE, h_shard0);
            a.movi(ARG_SBUF, fbuf);
            a.movi(ARG_COUNT, FWD_LEN);
            a.sys(Sys::IpcSendOneway);
            a.server_ack_send_wait_receive(h_pset, fbuf, LEN, fbuf, LEN);
            a.jmp("serve");
            space.start(&mut k, a.finish(), 9);
        }
    }

    // Clients: each thread owns references to its connection slice
    // (32-byte slots from +0x10000) and a host-written key table (one
    // skewed shard byte per connection). Per request: stamp the key into
    // the send buffer, RPC the connection, and on the tail eighth of the
    // range churn a scratch port through create/destroy.
    let cpc = conns / CLIENTS;
    let churn_start = (cpc - cpc / 8) as u32;
    let mut mains = Vec::new();
    for c in 0..CLIENTS {
        let space = ChildProc::with_mem(
            &mut k,
            0x1000_0000 + (c as u32) * 0x0100_0000,
            0x1_0000 + 32 * cpc.next_power_of_two().max(128) as u32,
        );
        let keytab = space.mem_base + 0x1000;
        let sbuf = space.mem_base + 0x3000;
        let rbuf = space.mem_base + 0x3800;
        let h_scratch = space.mem_base + 0x4000;
        let h_ref0 = space.mem_base + 0x1_0000;
        let keys: Vec<u8> = (0..cpc).map(|j| SKEW[(c * cpc + j) % SKEW.len()]).collect();
        k.write_mem(space.space, keytab, &keys);
        k.write_mem(space.space, sbuf, &vec![0x42; LEN as usize]);
        for j in 0..cpc {
            k.loader_ref(space.space, h_ref0 + 32 * j as u32, conn_ports[c * cpc + j]);
        }

        let mut a = Assembler::new("client");
        a.movi(Reg::Esp, rounds);
        a.label("round");
        a.movi(Reg::Ebp, 0);
        a.label("conn");
        a.mov(ARG_VAL, Reg::Ebp);
        a.addi(ARG_VAL, keytab);
        a.loadb(Reg::Eax, ARG_VAL, 0);
        a.movi(ARG_SBUF, sbuf);
        a.storeb(ARG_SBUF, 0, Reg::Eax);
        a.mov(ARG_HANDLE, Reg::Ebp);
        a.emit(fluke_arch::Instr::ShlI(ARG_HANDLE, 5));
        a.addi(ARG_HANDLE, h_ref0);
        a.movi(ARG_COUNT, LEN);
        a.movi(ARG_RBUF, rbuf);
        a.movi(ARG_VAL, LEN);
        a.sys(Sys::IpcClientConnectSendOverReceive);
        a.cmpi(Reg::Ebp, churn_start);
        a.jcc(Cond::Lt, "next");
        a.sys_h(Sys::PortCreate, h_scratch);
        a.sys_h(Sys::PortDestroy, h_scratch);
        a.label("next");
        a.addi(Reg::Ebp, 1);
        a.cmpi(Reg::Ebp, cpc as u32);
        a.jcc(Cond::Ne, "conn");
        a.subi(Reg::Esp, 1);
        a.cmpi(Reg::Esp, 0);
        a.jcc(Cond::Ne, "round");
        a.halt();
        mains.push(space.start(&mut k, a.finish(), 8));
    }

    assert!(
        run_to_halt(&mut k, &mains, BUDGET),
        "server tier hung ({conns} conns, {workers} workers/shard)"
    );
    let msgs = (conns as u64) * (rounds as u64);
    (k, msgs)
}

/// The client-RPC latency histogram of a finished server run.
fn rpc_hist(k: &Kernel) -> Histogram {
    k.kspan
        .class_histograms()
        .get(Sys::IpcClientConnectSendOverReceive.name())
        .cloned()
        .unwrap_or_default()
}

/// Run the full sweep: the two echo rows, the connection-scale sweep and
/// the worker-pool sweep.
pub fn run_server_consolidation(scale: Scale) -> Vec<ServerRow> {
    let mut rows = Vec::new();
    let msgs = echo_msgs(scale);
    for (tier, batched) in [("echo-plain", false), ("echo-batched", true)] {
        let k = run_echo(batched, msgs);
        rows.push(row_from(tier, 1, 0, msgs, k.kspan.e2e_histogram(), &k));
    }
    for conns in scale_points(scale) {
        let (k, msgs) = run_server(conns, 4, rounds_for(conns, scale));
        rows.push(row_from("scale", conns, 4, msgs, &rpc_hist(&k), &k));
    }
    let pool_conns = match scale {
        Scale::Paper => 512,
        Scale::Quick => 128,
    };
    for workers in pool_points(scale) {
        let (k, msgs) = run_server(pool_conns, workers, rounds_for(pool_conns, scale));
        rows.push(row_from(
            "pool",
            pool_conns,
            workers,
            msgs,
            &rpc_hist(&k),
            &k,
        ));
    }
    rows
}

/// Render the sweep as a text table.
pub fn table(rows: &[ServerRow]) -> TextTable {
    let mut t = TextTable::new(&[
        "tier",
        "conns",
        "workers",
        "msgs",
        "msgs/sec",
        "cycles/msg",
        "entries/msg",
        "p50",
        "p95",
        "p99",
        "lookups/msg",
        "wakes",
    ]);
    for r in rows {
        t.row(&[
            r.tier.to_string(),
            r.conns.to_string(),
            r.workers.to_string(),
            r.msgs.to_string(),
            format!("{:.0}", r.msgs_per_sec()),
            format!("{:.0}", r.cycles_per_msg()),
            format!("{:.2}", r.entries_per_msg()),
            r.p50.to_string(),
            r.p95.to_string(),
            r.p99.to_string(),
            format!("{:.1}", r.lookups_per_msg()),
            r.waitq_wakes.to_string(),
        ]);
    }
    t
}

/// Ratio of the worst to the best cycles-per-message among `rows`.
fn spread(rows: &[&ServerRow]) -> f64 {
    let mut lo = f64::MAX;
    let mut hi: f64 = 0.0;
    for r in rows {
        lo = lo.min(r.cycles_per_msg());
        hi = hi.max(r.cycles_per_msg());
    }
    if rows.is_empty() {
        1.0
    } else {
        hi / lo
    }
}

/// Kernel-entry reduction factor of the echo tier (plain over batched).
pub fn echo_entry_reduction(rows: &[ServerRow]) -> f64 {
    let per = |tier| {
        rows.iter()
            .find(|r| r.tier == tier)
            .map(|r| r.entries_per_msg())
            .unwrap_or(f64::NAN)
    };
    per("echo-plain") / per("echo-batched")
}

/// Build the `BENCH_server.json` document for one scale.
pub fn to_json(scale: Scale, rows: &[ServerRow]) -> Json {
    let mut doc = Json::obj();
    doc.set("bench", Json::Str("server_consolidation".to_string()));
    doc.set(
        "scale",
        Json::Str(
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            }
            .to_string(),
        ),
    );
    let items = rows
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("tier", Json::Str(r.tier.to_string()));
            o.set("conns", Json::from_u64(r.conns as u64));
            o.set("workers", Json::from_u64(r.workers as u64));
            o.set("msgs", Json::from_u64(r.msgs));
            o.set("elapsed_cycles", Json::from_u64(r.elapsed));
            o.set("syscalls", Json::from_u64(r.syscalls));
            o.set("msgs_per_sec", Json::Num(r.msgs_per_sec()));
            o.set("cycles_per_msg", Json::Num(r.cycles_per_msg()));
            o.set("entries_per_msg", Json::Num(r.entries_per_msg()));
            o.set("p50", Json::from_u64(r.p50));
            o.set("p95", Json::from_u64(r.p95));
            o.set("p99", Json::from_u64(r.p99));
            o.set("port_lookups", Json::from_u64(r.port_lookups));
            o.set("ref_chases", Json::from_u64(r.ref_chases));
            o.set("waitq_wakes", Json::from_u64(r.waitq_wakes));
            o.set("waitq_enqueues", Json::from_u64(r.waitq_enqueues));
            o.set("submit_batches", Json::from_u64(r.submit_batches));
            o
        })
        .collect();
    doc.set("rows", Json::Arr(items));

    let scale_rows: Vec<&ServerRow> = rows.iter().filter(|r| r.tier == "scale").collect();
    let pool_rows: Vec<&ServerRow> = rows.iter().filter(|r| r.tier == "pool").collect();
    let mut summary = Json::obj();
    summary.set(
        "echo_entry_reduction",
        Json::Num(echo_entry_reduction(rows)),
    );
    summary.set(
        "scale_cycles_per_msg_spread",
        Json::Num(spread(&scale_rows)),
    );
    summary.set("pool_cycles_per_msg_spread", Json::Num(spread(&pool_rows)));
    summary.set(
        "max_conns",
        Json::from_u64(scale_rows.iter().map(|r| r.conns as u64).max().unwrap_or(0)),
    );
    doc.set("summary", summary);
    doc
}

/// The CI regression gate. Every fresh row is matched to the committed
/// same-scale baseline row by (tier, conns, workers); a p99 more than 10%
/// above the baseline or a throughput more than 10% below it fails. The
/// echo-tier entry reduction must also hold at ≥4x in the fresh run,
/// independent of the baseline.
pub fn check(baseline: &Json, scale: Scale, fresh: &[ServerRow]) -> Result<(), String> {
    let want = match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    };
    let baseline = match baseline.get("runs").and_then(|r| r.items()) {
        Some(runs) => runs
            .iter()
            .find(|r| r.get("scale").and_then(|s| s.as_str()) == Some(want))
            .ok_or_else(|| format!("baseline has no {want}-scale run"))?,
        None if baseline.get("scale").and_then(|s| s.as_str()) == Some(want) => baseline,
        None => return Err(format!("baseline is not a {want}-scale run")),
    };
    let rows = baseline
        .get("rows")
        .and_then(|r| r.items())
        .ok_or("baseline JSON has no rows")?;

    for f in fresh {
        let base = rows
            .iter()
            .find(|r| {
                r.get("tier").and_then(|v| v.as_str()) == Some(f.tier)
                    && r.get("conns").and_then(|v| v.as_u64()) == Some(f.conns as u64)
                    && r.get("workers").and_then(|v| v.as_u64()) == Some(f.workers as u64)
            })
            .ok_or_else(|| {
                format!(
                    "baseline missing row {}/{}c/{}w",
                    f.tier, f.conns, f.workers
                )
            })?;
        let base_p99 = base.get("p99").and_then(|v| v.as_u64()).unwrap_or(0);
        if base_p99 > 0 && f.p99 as f64 > 1.1 * base_p99 as f64 {
            return Err(format!(
                "{}/{}c/{}w: p99 regressed >10%: {} cycles vs baseline {}",
                f.tier, f.conns, f.workers, f.p99, base_p99
            ));
        }
        let base_tp = base
            .get("msgs_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or("baseline row has no msgs_per_sec")?;
        if f.msgs_per_sec() < 0.9 * base_tp {
            return Err(format!(
                "{}/{}c/{}w: throughput regressed >10%: {:.0} msgs/sec vs baseline {:.0}",
                f.tier,
                f.conns,
                f.workers,
                f.msgs_per_sec(),
                base_tp
            ));
        }
    }

    let reduction = echo_entry_reduction(fresh);
    if reduction.is_nan() || reduction < 4.0 {
        return Err(format!(
            "echo-tier kernel-entry reduction fell below 4x: {reduction:.2}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The batching headline in miniature: descriptor rings must cut
    /// kernel entries per message by at least 4x against plain one-way
    /// send/receive, moving the same messages.
    #[test]
    fn batching_cuts_kernel_entries_fourfold() {
        let msgs = 256;
        let plain = run_echo(false, msgs);
        let batched = run_echo(true, msgs);
        assert!(batched.stats.ipc_submit_batches > 0, "no batches ran");
        let plain_epm = plain.stats.syscalls as f64 / msgs as f64;
        let batched_epm = batched.stats.syscalls as f64 / msgs as f64;
        assert!(
            plain_epm >= 4.0 * batched_epm,
            "entries/msg: plain {plain_epm:.2} !>= 4x batched {batched_epm:.2}"
        );
    }

    /// Consolidation scales flat: growing the connection count 8x moves
    /// cycles per message by well under the gate's tolerance, and the
    /// latency histogram covers every request.
    #[test]
    fn consolidation_scales_flat_with_connection_count() {
        let mut rows = Vec::new();
        for conns in [64, 512] {
            let rounds = rounds_for(conns, Scale::Quick);
            let (k, msgs) = run_server(conns, 4, rounds);
            let hist = rpc_hist(&k);
            assert_eq!(hist.count(), msgs, "{conns} conns: histogram != requests");
            assert!(k.stats.waitq.wakes > 0, "{conns} conns: no waitq wakes");
            rows.push(row_from("scale", conns, 4, msgs, &hist, &k));
        }
        assert!(rows.iter().all(|r| r.p99 > 0));
        let refs: Vec<&ServerRow> = rows.iter().collect();
        let s = spread(&refs);
        assert!(
            s < 1.35,
            "cycles/msg spread {s:.2} across connection counts"
        );
    }

    /// Wake cost does not depend on how many workers sit parked on the
    /// shard port: a 16x larger pool moves cycles per message only
    /// marginally.
    #[test]
    fn wake_cost_independent_of_pool_size() {
        let mut rows = Vec::new();
        for workers in [1, 16] {
            let (k, msgs) = run_server(128, workers, 2);
            rows.push(row_from("pool", 128, workers, msgs, &rpc_hist(&k), &k));
        }
        let refs: Vec<&ServerRow> = rows.iter().collect();
        let s = spread(&refs);
        assert!(s < 1.35, "cycles/msg spread {s:.2} across pool sizes");
    }

    #[test]
    fn json_and_check_round_trip() {
        let mk =
            |tier: &'static str, conns: usize, workers: usize, elapsed: u64, sys: u64| ServerRow {
                tier,
                conns,
                workers,
                msgs: 1000,
                elapsed,
                syscalls: sys,
                p50: 2000,
                p95: 4000,
                p99: 6000,
                port_lookups: 3000,
                ref_chases: 1000,
                waitq_wakes: 2000,
                waitq_enqueues: 2000,
                submit_batches: 0,
            };
        let rows = vec![
            mk("echo-plain", 1, 0, 4_000_000, 2000),
            mk("echo-batched", 1, 0, 3_000_000, 200),
            mk("scale", 1024, 4, 5_000_000, 5000),
        ];
        let doc = to_json(Scale::Quick, &rows);
        let parsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
        check(&parsed, Scale::Quick, &rows).expect("identical fresh run must pass");

        // The gate refuses to compare across scales.
        assert!(check(&parsed, Scale::Paper, &rows).is_err());

        // >10% p99 growth trips the gate.
        let mut slow = rows.clone();
        slow[2].p99 = 7000;
        assert!(check(&parsed, Scale::Quick, &slow).is_err());

        // >10% throughput loss trips the gate.
        let mut starved = rows.clone();
        starved[2].elapsed = 6_000_000;
        assert!(check(&parsed, Scale::Quick, &starved).is_err());

        // Losing the 4x echo entry reduction trips the gate.
        let mut unbatched = rows.clone();
        unbatched[1].syscalls = 1500;
        assert!(check(&parsed, Scale::Quick, &unbatched).is_err());

        // The combined multi-run artifact shape resolves by scale.
        let mut combined = Json::obj();
        combined.set("bench", Json::Str("server_consolidation".to_string()));
        combined.set("runs", Json::Arr(vec![to_json(Scale::Quick, &rows)]));
        let combined = Json::parse(&combined.to_string()).unwrap();
        check(&combined, Scale::Quick, &rows).expect("combined artifact must resolve");
        assert!(check(&combined, Scale::Paper, &rows).is_err());
    }
}

//! Table 1: breakdown of the number and types of system calls in the
//! Fluke API.

use fluke_api::sysnum::{class_counts, SysClass, SYSCALLS};

use crate::report::TextTable;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The class.
    pub class: SysClass,
    /// An example entrypoint of that class (the paper's choices).
    pub example: &'static str,
    /// Number of entrypoints.
    pub count: usize,
    /// Percentage of the API.
    pub percent: f64,
}

/// Compute the four rows of Table 1. Extensions beyond the paper's API
/// (`Sys::is_extension`) are excluded: this table reproduces the
/// paper's 107-entrypoint breakdown.
pub fn rows() -> Vec<Row> {
    let (mut t, mut s, mut l, mut m) = class_counts();
    for d in SYSCALLS.iter().filter(|d| d.sys.is_extension()) {
        match d.class {
            SysClass::Trivial => t -= 1,
            SysClass::Short => s -= 1,
            SysClass::Long => l -= 1,
            SysClass::MultiStage => m -= 1,
        }
    }
    let total = (t + s + l + m) as f64;
    let mk = |class, example, count: usize| Row {
        class,
        example,
        count,
        percent: (count as f64 / total * 100.0).round(),
    };
    vec![
        mk(SysClass::Trivial, "thread_self", t),
        mk(SysClass::Short, "mutex_trylock", s),
        mk(SysClass::Long, "mutex_lock", l),
        mk(SysClass::MultiStage, "cond_wait, IPC", m),
    ]
}

/// Render Table 1 like the paper.
pub fn render() -> String {
    let mut t = TextTable::new(&["Type", "Examples", "Count", "Percent"]);
    let rows = rows();
    let total: usize = rows.iter().map(|r| r.count).sum();
    for r in rows {
        t.row(&[
            r.class.name().to_string(),
            r.example.to_string(),
            r.count.to_string(),
            format!("{:.0}%", r.percent),
        ]);
    }
    t.row(&[
        "Total".into(),
        String::new(),
        total.to_string(),
        "100%".into(),
    ]);
    format!("Table 1: Breakdown of the number and types of system calls in the Fluke API.\n\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_counts_exactly() {
        // Paper Table 1: 8 / 68 / 8 / 23 of 107 (7% / 64% / 7% / 22%).
        let r = rows();
        assert_eq!(r[0].count, 8);
        assert_eq!(r[1].count, 68);
        assert_eq!(r[2].count, 8);
        assert_eq!(r[3].count, 23);
        assert_eq!(r[0].percent, 7.0);
        assert_eq!(r[1].percent, 64.0);
        assert_eq!(r[2].percent, 7.0);
        assert_eq!(r[3].percent, 21.0); // 23/107 = 21.5 → paper rounds to 22
    }

    #[test]
    fn render_contains_total() {
        let s = render();
        assert!(s.contains("107"));
        assert!(s.contains("Multi-stage"));
    }
}

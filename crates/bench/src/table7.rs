//! Table 7: per-thread kernel memory overhead across systems and
//! execution models.
//!
//! Our own rows are **measured** from the live kernel (spawn N threads,
//! read the thread-management memory counter); the other systems' rows
//! are the published reference numbers the paper itself cites from
//! \[10\] (Mach) and \[24\] (L3).

use fluke_core::{Config, Kernel};

use crate::report::TextTable;

/// One row of Table 7.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub system: &'static str,
    /// Execution model.
    pub model: &'static str,
    /// TCB bytes (0 = folded into the stack figure).
    pub tcb: u64,
    /// Kernel stack bytes per thread (0 = none: one stack per CPU).
    pub stack: u64,
    /// Total per-thread bytes.
    pub total: u64,
    /// Whether the row was measured from this reproduction (vs published).
    pub measured: bool,
}

/// Measure per-thread kernel memory for a configuration by spawning
/// threads and reading the accounting counter.
fn measure(cfg: Config) -> u64 {
    let mut k = Kernel::new(cfg);
    let space = k.create_space();
    k.grant_pages(space, 0x1000, 0x1000, true);
    let mut a = fluke_arch::Assembler::new("idle");
    a.halt();
    let pid = k.register_program(a.finish());
    let before = k.stats.thread_kmem;
    const N: u64 = 64;
    for _ in 0..N {
        let mut regs = fluke_arch::UserRegs::new();
        regs.eip = 0;
        k.spawn_thread(space, pid, regs, 1);
    }
    (k.stats.thread_kmem - before) / N
}

/// Compute Table 7: published reference rows plus our measured rows.
pub fn rows() -> Vec<Row> {
    let mut rows = vec![
        Row {
            system: "FreeBSD",
            model: "Process",
            tcb: 2132,
            stack: 6700,
            total: 8832,
            measured: false,
        },
        Row {
            system: "Linux",
            model: "Process",
            tcb: 2395,
            stack: 4096,
            total: 6491,
            measured: false,
        },
        Row {
            system: "Mach",
            model: "Process",
            tcb: 452,
            stack: 4022,
            total: 4474,
            measured: false,
        },
        Row {
            system: "Mach",
            model: "Interrupt",
            tcb: 690,
            stack: 0,
            total: 690,
            measured: false,
        },
        Row {
            system: "L3",
            model: "Process",
            tcb: 0,
            stack: 1024,
            total: 1024,
            measured: false,
        },
    ];
    // Our kernels, measured live.
    let p4k = measure(Config::process_np());
    rows.push(Row {
        system: "Fluke (this reproduction)",
        model: "Process",
        tcb: 0,
        stack: 4096,
        total: p4k,
        measured: true,
    });
    let p1k = measure(Config::process_np().with_small_stacks());
    rows.push(Row {
        system: "Fluke (this reproduction)",
        model: "Process",
        tcb: 0,
        stack: 1024,
        total: p1k,
        measured: true,
    });
    let int = measure(Config::interrupt_np());
    rows.push(Row {
        system: "Fluke (this reproduction)",
        model: "Interrupt",
        tcb: int,
        stack: 0,
        total: int,
        measured: true,
    });
    rows
}

/// Render Table 7 like the paper.
pub fn render() -> String {
    let mut t = TextTable::new(&[
        "System",
        "Execution Model",
        "TCB Size",
        "Stack Size",
        "Total Size",
        "Source",
    ]);
    for r in rows() {
        let dash = |v: u64| {
            if v == 0 {
                "—".to_string()
            } else {
                v.to_string()
            }
        };
        t.row(&[
            r.system.to_string(),
            r.model.to_string(),
            dash(r.tcb),
            dash(r.stack),
            r.total.to_string(),
            if r.measured { "measured" } else { "published" }.to_string(),
        ]);
    }
    format!(
        "Table 7: Memory overhead in bytes due to thread management in various\n\
         systems and execution models.\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_matches_paper_figures() {
        let rows = rows();
        let ours: Vec<&Row> = rows.iter().filter(|r| r.measured).collect();
        assert_eq!(ours.len(), 3);
        // Process model charges exactly the configured stack per thread.
        assert_eq!(ours[0].total, 4096);
        assert_eq!(ours[1].total, 1024);
        // Interrupt model charges only the 300-byte TCB (paper Table 7).
        assert_eq!(ours[2].total, 300);
        // The interrupt model's per-thread memory is an order of magnitude
        // below the 4K-stack process model.
        assert!(ours[0].total > 10 * ours[2].total);
    }

    #[test]
    fn published_rows_match_paper() {
        let rows = rows();
        let freebsd = rows.iter().find(|r| r.system == "FreeBSD").unwrap();
        assert_eq!(freebsd.total, 8832);
        let mach_int = rows
            .iter()
            .find(|r| r.system == "Mach" && r.model == "Interrupt")
            .unwrap();
        assert_eq!(mach_int.total, 690);
    }
}

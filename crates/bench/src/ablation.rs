//! Ablation studies: isolate each model-differentiating cost and show
//! which table it drives.
//!
//! Every effect in Tables 5 and 6 traces to a specific constant in the
//! cost model or a specific structural choice. The ablations rerun the
//! relevant workload with one knob moved and everything else fixed,
//! confirming the attribution:
//!
//! * `ctx_switch_kernel_regs` → the interrupt model's flukeperf advantage;
//! * `interrupt_entry_extra` → the §5.5 null-syscall penalty;
//! * the partial-preemption chunk size → PP's Table 6 maximum;
//! * the `region_search` charge → PP's non-IPC latency ceiling.

use fluke_core::{Config, Kernel};
use fluke_user::FlukeAsm;
use fluke_workloads::common::run_workload;
use fluke_workloads::latency::install_probe;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::report::TextTable;

/// flukeperf elapsed cycles under `cfg` with a tweaked cost model.
fn flukeperf_with(cfg: Config, tweak: impl Fn(&mut fluke_arch::CostModel)) -> u64 {
    let mut run = flukeperf::build(cfg, &FlukeperfParams::quick());
    tweak(&mut run.kernel.cost);
    run_workload(run, 8_000_000_000).elapsed
}

/// Ablation 1: zeroing the kernel-register save/restore cost erases the
/// interrupt model's flukeperf advantage.
pub fn ablate_ctx_switch_regs() -> (f64, f64) {
    let process = flukeperf_with(Config::process_np(), |_| {});
    let interrupt = flukeperf_with(Config::interrupt_np(), |_| {});
    let with_cost = interrupt as f64 / process as f64;
    let process0 = flukeperf_with(Config::process_np(), |m| m.ctx_switch_kernel_regs = 0);
    let interrupt0 = flukeperf_with(Config::interrupt_np(), |m| m.ctx_switch_kernel_regs = 0);
    let without_cost = interrupt0 as f64 / process0 as f64;
    (with_cost, without_cost)
}

/// Ablation 2: the interrupt-model entry penalty scales the null-syscall
/// gap linearly (§5.5's six cycles are the only difference).
pub fn ablate_entry_penalty() -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for extra in [0u64, 3, 12, 48] {
        let null_cost = |cfg: Config| {
            let mut k = Kernel::new(cfg);
            k.cost.interrupt_entry_extra = extra;
            k.cost.interrupt_exit_extra = extra;
            let mut p = fluke_user::proc::ChildProc::new(&mut k);
            let _ = p.alloc_obj();
            let mut a = fluke_arch::Assembler::new("nulls");
            fluke_workloads::common::counted_loop(&mut a, "l", p.mem_base + 0x200, 2_000, |a| {
                a.sys(fluke_api::Sys::SysNull);
            });
            a.halt();
            let t = p.start(&mut k, a.finish(), 8);
            assert!(fluke_user::proc::run_to_halt(&mut k, &[t], 1_000_000_000));
            k.stats.kernel_cycles as f64 / 2_000.0
        };
        let p = null_cost(Config::process_np());
        let i = null_cost(Config::interrupt_np());
        out.push((extra, (i - p) / p * 100.0));
    }
    out
}

/// Ablation 3: the partial-preemption chunk bounds PP's maximum latency on
/// the copy path — sweep the chunk and watch the IPC-attributable maximum
/// track it.
pub fn ablate_pp_chunk() -> Vec<(u32, f64)> {
    // The chunk constant is structural (config), so emulate the sweep by
    // scaling the copy cost instead: a 2× copy cost doubles the time per
    // 8KB chunk, which must double the copy-bound latency ceiling.
    let mut out = Vec::new();
    for scale in [1u64, 2, 4] {
        let mut params = FlukeperfParams::quick();
        params.big_sends = 2;
        params.big_size = 512 << 10;
        params.searches = 0; // isolate the IPC path
        params.medium_sends = 30;
        let mut run = flukeperf::build(Config::process_pp(), &params);
        run.kernel.cost.copy_byte_per = scale;
        install_probe(&mut run.kernel, 1);
        let res = run_workload(run, 16_000_000_000);
        out.push((
            fluke_core::PP_CHUNK_BYTES * scale as u32,
            res.stats.probe_max_us(),
        ));
    }
    out
}

/// Ablation 4: removing the `region_search` charge collapses PP's overall
/// latency ceiling to the copy-chunk bound.
pub fn ablate_search_cost() -> (f64, f64) {
    let mut params = FlukeperfParams::quick();
    params.big_sends = 0;
    params.searches = 10;
    params.search_pages = 300;
    params.medium_sends = 10;
    let run_with = |per_page: u64| {
        let mut run = flukeperf::build(Config::process_pp(), &params);
        run.kernel.cost.region_search_page = per_page;
        install_probe(&mut run.kernel, 1);
        run_workload(run, 16_000_000_000).stats.probe_max_us()
    };
    (run_with(800), run_with(8))
}

/// Render the full ablation report.
pub fn render() -> String {
    let mut out = String::new();
    let (with, without) = ablate_ctx_switch_regs();
    let mut t = TextTable::new(&["ctx_switch_kernel_regs", "interrupt/process flukeperf"]);
    t.row(&["150 (calibrated)".into(), format!("{with:.3}")]);
    t.row(&["0 (ablated)".into(), format!("{without:.3}")]);
    out.push_str(&format!(
        "Ablation 1: the interrupt model's flukeperf advantage is the saved\n\
         kernel-register state on context switches (Table 5).\n\n{t}\n"
    ));
    let mut t = TextTable::new(&[
        "interrupt entry/exit extra (cycles)",
        "null-syscall overhead",
    ]);
    for (extra, pct) in ablate_entry_penalty() {
        t.row(&[extra.to_string(), format!("{pct:.1}%")]);
    }
    out.push_str(&format!(
        "Ablation 2: the §5.5 architectural-bias penalty scales with the\n\
         per-entry state-copy cost.\n\n{t}\n"
    ));
    let mut t = TextTable::new(&["effective chunk cost (bytes × cost)", "PP max latency (µs)"]);
    for (chunk, max) in ablate_pp_chunk() {
        t.row(&[chunk.to_string(), format!("{max:.0}")]);
    }
    out.push_str(&format!(
        "Ablation 3: PP's copy-path latency ceiling tracks the preemption\n\
         chunk (Table 6).\n\n{t}\n"
    ));
    let (expensive, cheap) = ablate_search_cost();
    let mut t = TextTable::new(&["region_search per-page cost", "PP max latency (µs)"]);
    t.row(&["800 (calibrated)".into(), format!("{expensive:.0}")]);
    t.row(&["8 (ablated)".into(), format!("{cheap:.0}")]);
    out.push_str(&format!(
        "Ablation 4: with the unpointed region_search made cheap, PP's\n\
         latency ceiling collapses toward the copy-chunk bound (Table 6).\n\n{t}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_switch_regs_explains_interrupt_advantage() {
        let (with, without) = ablate_ctx_switch_regs();
        assert!(with < 1.0, "interrupt should win with the cost: {with}");
        assert!(
            without > with && without > 0.99,
            "advantage must collapse when ablated: {without}"
        );
    }

    #[test]
    fn entry_penalty_scales_monotonically() {
        let rows = ablate_entry_penalty();
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1, "penalty must grow: {rows:?}");
        }
        // At zero extra, the models' null-syscall costs coincide.
        assert!(
            rows[0].1.abs() < 0.5,
            "zero-ablation should be ~0: {rows:?}"
        );
    }

    #[test]
    fn search_cost_drives_pp_ceiling() {
        let (expensive, cheap) = ablate_search_cost();
        assert!(
            expensive > 4.0 * cheap,
            "search ceiling should collapse: {expensive} vs {cheap}"
        );
    }
}

//! Plain-text table rendering for the experiment binaries.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of `&str`s.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+%xµ".contains(c));
                if numeric && i > 0 {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row_str(&["alpha", "1.00"]);
        t.row_str(&["b", "10.50"]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.lines().count() == 4);
        // Numeric column right-aligned: both rows end aligned.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn renders_empty_header_list_without_panicking() {
        // Regression: `2 * (cols - 1)` underflowed for a zero-column table.
        let t = TextTable::new(&[]);
        let s = t.render();
        assert_eq!(s, "\n\n");
        let mut t = TextTable::new(&[]);
        t.row_str(&[]);
        assert_eq!(t.render(), "\n\n\n");
    }
}

//! Exporters for `ktrace` recordings: Chrome trace-event JSON (loadable
//! in `chrome://tracing` / Perfetto) and a plain-text summary table.

use fluke_arch::cycles_to_us;
use fluke_core::{FlowEdge, TraceEvent, TraceRecord, Tracer};
use fluke_json::Json;

use crate::report::TextTable;

/// The (name, args) pair an event exports as.
fn event_json(ev: &TraceEvent) -> Json {
    let mut args = Json::obj();
    if let Some(t) = ev.thread() {
        args.set("thread", Json::from_u32(t.0));
    }
    match *ev {
        TraceEvent::SyscallEnter { sys, .. } | TraceEvent::SyscallRestart { sys, .. } => {
            args.set("sys", Json::from_u32(sys));
        }
        TraceEvent::SyscallExit { code, .. } => {
            args.set("code", Json::from_u32(code));
        }
        TraceEvent::IpcSend { bytes, .. } | TraceEvent::IpcTransfer { bytes, .. } => {
            args.set("bytes", Json::from_u32(bytes));
        }
        TraceEvent::IpcReceive { window, .. } => {
            args.set("window", Json::from_u32(window));
        }
        TraceEvent::SoftFault { addr, remedy, .. } => {
            args.set("addr", Json::from_u32(addr));
            args.set("remedy_cycles", Json::from_u64(remedy));
        }
        TraceEvent::HardFault { offset, .. } => {
            args.set("offset", Json::from_u32(offset));
        }
        TraceEvent::HardFaultDone { remedy, .. } => {
            args.set("remedy_cycles", Json::from_u64(remedy));
        }
        TraceEvent::Rollback { cycles, .. } => {
            args.set("cycles", Json::from_u64(cycles));
        }
        TraceEvent::CtxSwitch { space_switch, .. } => {
            args.set("space_switch", Json::Bool(space_switch));
        }
        TraceEvent::Mark { value, .. } => {
            args.set("value", Json::from_u32(value));
        }
        TraceEvent::FaultInjected { kind, site, .. } => {
            args.set("kind", Json::from_u32(kind));
            args.set("site", Json::from_u64(site));
        }
        TraceEvent::IpcMessage { .. }
        | TraceEvent::UserPreempt { .. }
        | TraceEvent::KernelPreempt { .. }
        | TraceEvent::Block { .. }
        | TraceEvent::Wake { .. }
        | TraceEvent::Halt { .. } => {}
    }
    args
}

/// Render records as Chrome trace-event JSON: instant events with
/// microsecond timestamps, one "thread" lane per simulated CPU. The
/// output is deterministic (sorted object keys, merged record order).
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    chrome_trace_with_flows(records, &[])
}

/// Like [`chrome_trace`], but additionally renders `kspan` causal flow
/// edges as paired Chrome flow events: a `ph:"s"` (flow start) at the
/// sender and a `ph:"f"` (flow finish, binding point `e`) at the
/// receiver, joined by a shared `id`. Perfetto draws these as arrows
/// between the two threads' lanes.
pub fn chrome_trace_with_flows(records: &[TraceRecord], flows: &[FlowEdge]) -> String {
    let mut events = Vec::with_capacity(records.len() + 2 * flows.len());
    for rec in records {
        let mut e = Json::obj();
        e.set("name", Json::Str(rec.event.name().to_string()));
        e.set("ph", Json::Str("i".to_string()));
        e.set("s", Json::Str("t".to_string()));
        e.set("ts", Json::Num(cycles_to_us(rec.at)));
        e.set("pid", Json::from_u32(0));
        e.set("tid", Json::from_u32(rec.cpu));
        e.set("args", event_json(&rec.event));
        events.push(e);
    }
    for (i, f) in flows.iter().enumerate() {
        let ts = cycles_to_us(f.at);
        for (ph, thread, span) in [
            ("s", f.from_thread, f.from_span),
            ("f", f.to_thread, f.to_span),
        ] {
            let mut e = Json::obj();
            e.set("name", Json::Str("ipc_flow".to_string()));
            e.set("cat", Json::Str("kspan".to_string()));
            e.set("ph", Json::Str(ph.to_string()));
            if ph == "f" {
                e.set("bp", Json::Str("e".to_string()));
            }
            e.set("id", Json::from_u64(i as u64));
            e.set("ts", Json::Num(ts));
            e.set("pid", Json::from_u32(0));
            e.set("tid", Json::from_u32(thread.0));
            let mut args = Json::obj();
            args.set("span", Json::from_u64(span));
            e.set("args", args);
            events.push(e);
        }
    }
    let mut root = Json::obj();
    root.set("traceEvents", Json::Arr(events));
    root.set("displayTimeUnit", Json::Str("ms".to_string()));
    root.to_string()
}

/// Restrict records to a simulated-cycle window: `since ≤ at ≤ until`
/// (both inclusive; `None` leaves that edge open). Exporters and the
/// replay debugger use this to zoom a recording in on the cycles under
/// investigation.
pub fn cycle_window(
    records: &[TraceRecord],
    since: Option<u64>,
    until: Option<u64>,
) -> Vec<TraceRecord> {
    records
        .iter()
        .filter(|r| since.is_none_or(|s| r.at >= s) && until.is_none_or(|u| r.at <= u))
        .cloned()
        .collect()
}

/// A plain-text per-event-type summary of everything a tracer holds,
/// including drop accounting.
pub fn text_summary(tracer: &Tracer) -> String {
    summarize(&tracer.merged(), tracer.dropped_total(), None, None)
}

/// Like [`text_summary`], but restricted to a [`cycle_window`]. Drop
/// accounting still covers the whole recording (drops have no timestamp).
pub fn text_summary_window(tracer: &Tracer, since: Option<u64>, until: Option<u64>) -> String {
    let w = cycle_window(&tracer.merged(), since, until);
    summarize(&w, tracer.dropped_total(), since, until)
}

fn summarize(
    merged: &[TraceRecord],
    dropped: u64,
    since: Option<u64>,
    until: Option<u64>,
) -> String {
    // Count by event name, in first-seen deterministic order.
    let mut order: Vec<&'static str> = Vec::new();
    let mut counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for rec in merged {
        let name = rec.event.name();
        if !counts.contains_key(name) {
            order.push(name);
        }
        *counts.entry(name).or_insert(0) += 1;
    }
    order.sort();
    let mut t = TextTable::new(&["event", "count"]);
    for name in order {
        t.row(&[name.to_string(), counts[name].to_string()]);
    }
    let span = match (merged.first(), merged.last()) {
        (Some(a), Some(b)) => cycles_to_us(b.at.saturating_sub(a.at)),
        _ => 0.0,
    };
    let window = match (since, until) {
        (None, None) => String::new(),
        (s, u) => format!(
            " (window {}..{})",
            s.map_or("start".to_string(), |c| c.to_string()),
            u.map_or("end".to_string(), |c| c.to_string())
        ),
    };
    format!(
        "ktrace summary{window}: {} events held, {dropped} dropped, {:.1}µs span\n\n{}",
        merged.len(),
        span,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluke_api::Sys;
    use fluke_arch::Assembler;
    use fluke_core::{Config, Kernel, UserVisible};
    use fluke_user::proc::{run_to_halt, ChildProc};
    use fluke_user::FlukeAsm;

    fn traced_run() -> Kernel {
        let mut k = Kernel::new(Config::process_np().with_tracing(1 << 16));
        let mut p = ChildProc::new(&mut k);
        let _ = p.alloc_obj();
        let mut a = Assembler::new("t");
        a.sys(Sys::SysNull);
        a.sys_hv(Sys::SysTrace, 0, 42);
        a.halt();
        let t = p.start(&mut k, a.finish(), 8);
        assert!(run_to_halt(&mut k, &[t], 1_000_000_000));
        k
    }

    #[test]
    fn chrome_trace_is_valid_deterministic_json() {
        let k = traced_run();
        let s1 = chrome_trace(&k.trace.merged());
        let s2 = chrome_trace(&traced_run().trace.merged());
        assert_eq!(s1, s2, "same run must export identically");
        let parsed = fluke_json::Json::parse(&s1).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(|e| match e {
            Json::Arr(v) => Some(v),
            _ => None,
        });
        let events = events.expect("traceEvents array");
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("syscall_exit") }));
    }

    #[test]
    fn flow_events_pair_start_and_finish() {
        use fluke_core::ThreadId;
        let k = traced_run();
        let flows = [FlowEdge {
            from_span: 1,
            to_span: 2,
            from_thread: ThreadId(3),
            to_thread: ThreadId(4),
            at: 1000,
        }];
        let s = chrome_trace_with_flows(&k.trace.merged(), &flows);
        let parsed = fluke_json::Json::parse(&s).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::items)
            .expect("traceEvents array");
        let phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("ipc_flow"))
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases, ["s", "f"], "one start + one finish per edge");
    }

    #[test]
    fn text_summary_counts_events() {
        let k = traced_run();
        let s = text_summary(&k.trace);
        assert!(s.contains("syscall_enter"));
        assert!(s.contains("halt"));
        assert!(s.contains("0 dropped"));
    }

    #[test]
    fn marks_appear_in_projection_and_compat_log() {
        let k = traced_run();
        // The legacy Vec<u32> view still works…
        assert_eq!(k.stats.trace_log, vec![42]);
        // …and the structured projection carries the same mark.
        let uv = k.trace.user_visible();
        assert!(uv.values().any(|evs| evs.contains(&UserVisible::Mark(42))));
    }
}

//! Host-side benchmark for the software-TLB + bulk-memory fast path.
//!
//! Unlike every other module in this crate, this one measures **host
//! wall-clock**, not simulated cycles: the fast path is a pure simulator
//! optimisation, required to leave every simulated quantity bit-identical
//! while making the simulator itself run faster. Each row runs the same
//! workload twice — once with [`Config::fast_mem`] off (the per-byte
//! reference implementation) and once with it on — asserts the simulated
//! results are identical, and reports the host-time ratio plus the
//! software-TLB hit/miss/shootdown counters from the fast run.
//!
//! The binary `memfast` prints the table and writes `BENCH_memfast.json`.

use std::time::Instant;

use fluke_core::{Config, Kernel, Stats, TlbStats};
use fluke_json::Json;
use fluke_workloads::common::WorkloadRun;
use fluke_workloads::{flukeperf, memtest, FlukeperfParams};

use crate::tracediff::run_keep_kernel;
use crate::{Scale, TextTable};

/// Safety budget for the IPC-bulk runs (simulated cycles).
const IPC_BUDGET: u64 = 20_000_000_000;

/// Safety budget for memtest (demand paging makes it slower per byte).
const MEM_BUDGET: u64 = 50_000_000_000;

/// flukeperf phase mix that isolates the IPC bulk-copy path: only medium
/// and large one-way sends, no null-call / mutex / RPC phases.
pub fn ipc_bulk_params(scale: Scale) -> FlukeperfParams {
    let mut p = FlukeperfParams {
        nulls: 0,
        mutex_pairs: 0,
        cond_signals: 0,
        small_rpcs: 0,
        medium_sends: 256,
        medium_size: 64 << 10,
        big_sends: 8,
        big_size: 1_536 << 10,
        searches: 0,
        search_pages: 0,
    };
    if scale == Scale::Quick {
        p.medium_sends = 8;
        p.big_sends = 2;
        p.big_size = 256 << 10;
    }
    p
}

/// One before/after measurement: a workload under one configuration.
#[derive(Debug, Clone)]
pub struct MemfastRow {
    /// Workload label.
    pub workload: &'static str,
    /// Configuration label ("Process NP" etc.).
    pub config: &'static str,
    /// Bytes of user memory the workload moves or touches.
    pub bytes: u64,
    /// Simulated cycles, identical between the two runs (asserted).
    pub sim_cycles: u64,
    /// Host seconds with the fast path disabled (per-byte reference).
    pub ref_secs: f64,
    /// Host seconds with the fast path enabled.
    pub fast_secs: f64,
    /// Software-TLB counters from the fast run.
    pub tlb: TlbStats,
}

impl MemfastRow {
    /// Host wall-clock speedup of the fast path over the reference.
    pub fn speedup(&self) -> f64 {
        self.ref_secs / self.fast_secs
    }

    /// Reference throughput in MB/s of workload bytes per host second.
    pub fn ref_mb_per_sec(&self) -> f64 {
        self.bytes as f64 / (1 << 20) as f64 / self.ref_secs
    }

    /// Fast-path throughput in MB/s of workload bytes per host second.
    pub fn fast_mb_per_sec(&self) -> f64 {
        self.bytes as f64 / (1 << 20) as f64 / self.fast_secs
    }
}

/// Run a built workload to completion, returning the kernel, the
/// simulated cycles elapsed, and the host seconds spent.
fn timed(w: WorkloadRun, budget: u64) -> (Kernel, u64, f64) {
    let start = w.kernel.now();
    let t0 = Instant::now();
    let k = run_keep_kernel(w, budget);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let elapsed = k.now() - start;
    (k, elapsed, secs)
}

/// The simulated quantities that must not move when the fast path is
/// toggled (the full bit-identity check lives in the ktrace regression
/// test; this is the harness's cheap invariant).
fn assert_same_simulation(workload: &str, fast: &Kernel, reference: &Kernel) {
    let f: &Stats = &fast.stats;
    let r: &Stats = &reference.stats;
    let same = f.syscalls == r.syscalls
        && f.restarts == r.restarts
        && f.ctx_switches == r.ctx_switches
        && f.soft_faults == r.soft_faults
        && f.hard_faults == r.hard_faults
        && f.user_cycles == r.user_cycles
        && f.kernel_cycles == r.kernel_cycles
        && f.ipc_bytes == r.ipc_bytes
        && f.ipc_messages == r.ipc_messages
        && f.preempt_points_taken == r.preempt_points_taken;
    assert!(
        same,
        "{workload}: fast path changed simulated results (fast {f:?} vs reference {r:?})"
    );
}

/// Measure one workload under one configuration, reference vs fast.
///
/// `bytes` overrides the byte count reported for throughput; when `None`
/// the IPC byte counter is used.
fn measure(
    workload: &'static str,
    cfg: Config,
    build: impl Fn(Config) -> WorkloadRun,
    budget: u64,
    bytes: Option<u64>,
) -> MemfastRow {
    let config = cfg.label;
    let (ref_kernel, ref_cycles, ref_secs) = timed(build(cfg.clone().with_fast_mem(false)), budget);
    let (fast_kernel, fast_cycles, fast_secs) = timed(build(cfg), budget);
    assert_eq!(
        fast_cycles, ref_cycles,
        "{workload}: simulated time moved with the fast path"
    );
    assert_same_simulation(workload, &fast_kernel, &ref_kernel);
    MemfastRow {
        workload,
        config,
        bytes: bytes.unwrap_or(fast_kernel.stats.ipc_bytes),
        sim_cycles: fast_cycles,
        ref_secs,
        fast_secs,
        tlb: fast_kernel.tlb_stats(),
    }
}

/// Run the full memfast suite: IPC bulk transfer under both execution
/// models, plus the memtest byte-scan.
pub fn run_memfast(scale: Scale) -> Vec<MemfastRow> {
    let mut rows = Vec::new();
    for cfg in [Config::process_np(), Config::interrupt_np()] {
        rows.push(measure(
            "flukeperf-ipc-bulk",
            cfg,
            |c| flukeperf::build(c, &ipc_bulk_params(scale)),
            IPC_BUDGET,
            None,
        ));
    }
    let mb = match scale {
        Scale::Paper => 16,
        Scale::Quick => 1,
    };
    rows.push(measure(
        "memtest",
        Config::process_np(),
        |c| memtest::build(c, mb),
        MEM_BUDGET,
        Some((mb as u64) << 20),
    ));
    rows
}

/// Render the rows as a text table, including the software-TLB counters
/// the fast run accumulated.
pub fn table(rows: &[MemfastRow]) -> TextTable {
    let mut t = TextTable::new(&[
        "workload",
        "config",
        "MB",
        "ref MB/s",
        "fast MB/s",
        "speedup",
        "tlb hits",
        "tlb misses",
        "shootdowns",
    ]);
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            r.config.to_string(),
            format!("{:.1}", r.bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", r.ref_mb_per_sec()),
            format!("{:.1}", r.fast_mb_per_sec()),
            format!("{:.2}x", r.speedup()),
            r.tlb.hits.to_string(),
            r.tlb.misses.to_string(),
            r.tlb.shootdowns.to_string(),
        ]);
    }
    t
}

/// Build the `BENCH_memfast.json` document.
pub fn to_json(scale: Scale, rows: &[MemfastRow]) -> Json {
    let mut doc = Json::obj();
    doc.set("bench", Json::Str("memfast".to_string()));
    doc.set(
        "scale",
        Json::Str(
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            }
            .to_string(),
        ),
    );
    let items = rows
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("workload", Json::Str(r.workload.to_string()));
            o.set("config", Json::Str(r.config.to_string()));
            o.set("bytes", Json::from_u64(r.bytes));
            o.set("sim_cycles", Json::from_u64(r.sim_cycles));
            o.set("ref_secs", Json::Num(r.ref_secs));
            o.set("fast_secs", Json::Num(r.fast_secs));
            o.set("speedup", Json::Num(r.speedup()));
            o.set("ref_mb_per_sec", Json::Num(r.ref_mb_per_sec()));
            o.set("fast_mb_per_sec", Json::Num(r.fast_mb_per_sec()));
            let mut tlb = Json::obj();
            tlb.set("hits", Json::from_u64(r.tlb.hits));
            tlb.set("misses", Json::from_u64(r.tlb.misses));
            tlb.set("shootdowns", Json::from_u64(r.tlb.shootdowns));
            o.set("tlb", tlb);
            o
        })
        .collect();
    doc.set("rows", Json::Arr(items));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracediff::run_traced_flukeperf;

    /// The harness itself asserts simulated-identity inside `measure`;
    /// here we additionally check the counters it reports are live.
    #[test]
    fn memfast_rows_are_consistent() {
        let rows = run_memfast(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.bytes > 0, "{}: no bytes moved", r.workload);
            assert!(r.sim_cycles > 0);
            assert!(r.ref_secs > 0.0 && r.fast_secs > 0.0);
            assert!(
                r.tlb.hits > 0 && r.tlb.misses > 0,
                "{}: software TLB never exercised ({:?})",
                r.workload,
                r.tlb
            );
            // No wall-clock ratio asserted here: CI machines are noisy.
            // The committed BENCH_memfast.json from a release run carries
            // the headline number.
        }
        // memtest's demand paging maps pages after first touch, so its
        // shootdown counter must be live too.
        let memtest = rows.iter().find(|r| r.workload == "memtest").unwrap();
        assert!(memtest.tlb.shootdowns > 0, "paging never shot down the TLB");
    }

    #[test]
    fn memfast_json_round_trips() {
        let rows = vec![MemfastRow {
            workload: "flukeperf-ipc-bulk",
            config: "Process NP",
            bytes: 1 << 20,
            sim_cycles: 12345,
            ref_secs: 0.5,
            fast_secs: 0.05,
            tlb: TlbStats {
                hits: 10,
                misses: 2,
                shootdowns: 1,
            },
        }];
        let doc = to_json(Scale::Quick, &rows);
        let parsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
        let row = &parsed.get("rows").unwrap().items().unwrap()[0];
        assert_eq!(row.get("bytes").unwrap().as_u64(), Some(1 << 20));
        assert_eq!(
            row.get("tlb").unwrap().get("hits").unwrap().as_u64(),
            Some(10)
        );
        assert!((row.get("speedup").unwrap().as_f64().unwrap() - 10.0).abs() < 1e-9);
        let rendered = table(&rows).render();
        assert!(rendered.contains("tlb hits"));
        assert!(rendered.contains("10.00x"));
    }

    /// The fast path must be *trace*-identical, not merely stats-identical:
    /// the raw ktrace — every event, timestamp and payload — of a traced
    /// flukeperf run must not move when `fast_mem` is toggled, under both
    /// execution models.
    #[test]
    fn fast_path_is_ktrace_identical_under_both_models() {
        for cfg in [Config::process_np(), Config::interrupt_np()] {
            let label = cfg.label;
            let fast = run_traced_flukeperf(cfg.clone(), Scale::Quick);
            let reference = run_traced_flukeperf(cfg.with_fast_mem(false), Scale::Quick);
            assert_eq!(fast.trace.dropped_total(), 0);
            assert_eq!(reference.trace.dropped_total(), 0);
            assert_eq!(
                fast.trace.merged(),
                reference.trace.merged(),
                "{label}: raw ktrace diverged when fast_mem was toggled"
            );
            assert_eq!(fast.now(), reference.now(), "{label}: clock diverged");
        }
    }
}

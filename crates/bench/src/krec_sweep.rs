//! The `krec` sweep driver: record a workload with the snapshot engine
//! armed, then prove two things everywhere.
//!
//! **Zero perturbation.** Arming the recorder must not change the run:
//! the armed kernel's user-visible outcome *and* its whole-state FNV-64
//! digest must equal a bare run's. (The recorder reads simulated state at
//! dispatch boundaries but never writes it; the digest check turns that
//! design intent into an enforced invariant.)
//!
//! **Faithful replay.** Every snapshot in the recording — taken at every
//! Nth dispatch-boundary site, the same site space `kfault` enumerates —
//! is restored and re-executed through the recorded run windows. The
//! replayer asserts each window's end digest, end cycle, and exit reason;
//! when a snapshot's epoch reaches the end of the recording, the sweep
//! additionally checks the replayed ktrace suffix digest (every trace
//! record at or after the snapshot cycle) and the user-visible end state
//! against the original. Any divergence is already minimal: a (workload,
//! config, snapshot-site) tuple reproduces it deterministically.
//!
//! Workloads cover the three shapes the kernel's state space bends under:
//! the kfault IPC echo (mid-IPC transfer states), the §4.1 checkpoint
//! flow (tombstones, blocked threads, multi-epoch host driving), and a
//! batched-submission ring exchange (submit rings in flight).

use std::time::Instant;

use fluke_api::abi::{ARG_COUNT, ARG_SBUF, ARG_VAL, PORT_BUF_MSGS, SUBMIT_OP_RECV};
use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{trace_suffix_digest, Config, Kernel, KrecConfig, Replayer};
use fluke_json::Json;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

use crate::kfault_sweep::{diff_outcomes, outcome, sweep_configs, Outcome, SweepWorkload};

/// The workloads the snapshot sweep records and replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KrecWorkload {
    /// The kfault echo: request/reply IPC, mid-transfer snapshot states.
    IpcEcho,
    /// The kfault checkpoint flow: checkpoint, destroy, restore —
    /// tombstones and blocked threads, driven by the host across many
    /// `run` calls (a multi-epoch recording).
    Checkpoint,
    /// Batched submission rings in flight: a producer and a consumer
    /// exchange messages through pre-written 16-descriptor `ipc_submit`
    /// rings over one port.
    Server,
}

/// All sweep workloads, in report order.
pub const ALL_WORKLOADS: [KrecWorkload; 3] = [
    KrecWorkload::IpcEcho,
    KrecWorkload::Checkpoint,
    KrecWorkload::Server,
];

impl KrecWorkload {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            KrecWorkload::IpcEcho => "ipc-echo",
            KrecWorkload::Checkpoint => "checkpoint",
            KrecWorkload::Server => "submit-ring",
        }
    }

    /// Parse a label (for the bin's workload filter).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ipc-echo" | "echo" => Some(KrecWorkload::IpcEcho),
            "checkpoint" => Some(KrecWorkload::Checkpoint),
            "submit-ring" | "server" => Some(KrecWorkload::Server),
            _ => None,
        }
    }

    /// Run the workload to completion under `cfg` (with or without
    /// `cfg.krec` armed — the workloads pass the config through) and hand
    /// back the outcome plus the finished kernel.
    pub fn run(self, cfg: &Config) -> Result<(Outcome, Kernel), String> {
        match self {
            KrecWorkload::IpcEcho => SweepWorkload::IpcEcho
                .run_kernel(cfg, None)
                .map(|(o, _, _, k)| (o, k)),
            KrecWorkload::Checkpoint => SweepWorkload::Checkpoint
                .run_kernel(cfg, None)
                .map(|(o, _, _, k)| (o, k)),
            KrecWorkload::Server => run_submit_ring(cfg),
        }
    }
}

/// Batched-submission echo: both sides drive pre-written `ipc_submit`
/// rings (the scalable-IPC fast path), so snapshots land while rings are
/// mid-flight — partially consumed descriptors, buffered port slots.
fn run_submit_ring(cfg: &Config) -> Result<(Outcome, Kernel), String> {
    const LEN: u32 = 64;
    const BATCHES: u32 = 3;
    let n = PORT_BUF_MSGS as u32;
    let mut k = Kernel::new(cfg.clone().with_tracing(1 << 16));
    let mut p = ChildProc::with_mem(&mut k, 0x0050_0000, 0x0001_0000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let sring = p.mem_base + 0x1000;
    let rring = p.mem_base + 0x1800;
    let sbufs = p.mem_base + 0x2000;
    let rbufs = p.mem_base + 0x4000;
    for i in 0..n {
        let pat: Vec<u8> = (0..LEN)
            .map(|j| (j.wrapping_mul(13) ^ i ^ 0xa5) as u8)
            .collect();
        k.try_write_mem(p.space, sbufs + i * LEN, &pat)
            .map_err(|e| e.to_string())?;
    }
    let mut simg = Vec::new();
    let mut rimg = Vec::new();
    for i in 0..n {
        for w in [0u32, h_port, sbufs + i * LEN, LEN] {
            simg.extend(w.to_le_bytes());
        }
        for w in [SUBMIT_OP_RECV, h_port, rbufs + i * LEN, LEN] {
            rimg.extend(w.to_le_bytes());
        }
    }
    k.try_write_mem(p.space, sring, &simg)
        .map_err(|e| e.to_string())?;
    k.try_write_mem(p.space, rring, &rimg)
        .map_err(|e| e.to_string())?;

    let pt = p.start(
        &mut k,
        submit_ring_loop("krec-producer", sring, BATCHES).finish(),
        8,
    );
    let ct = p.start(
        &mut k,
        submit_ring_loop("krec-consumer", rring, BATCHES).finish(),
        8,
    );
    if !run_to_halt(&mut k, &[pt, ct], 5_000_000_000) {
        return Err(format!("submit-ring workload hung under {}", cfg.label));
    }
    let regions = [(p.space, rbufs, n * LEN)];
    let out = outcome(&mut k, &[pt, ct], &regions, &[])?;
    Ok((out, k))
}

/// Batch loop over one pre-written ring: submit, and if a descriptor
/// spilled (`edx < 16`), advance the cursor and resubmit the rest (same
/// shape as the server-consolidation benchmark's loop).
fn submit_ring_loop(name: &str, ring: u32, batches: u32) -> Assembler {
    let n = PORT_BUF_MSGS as u32;
    let mut a = Assembler::new(name);
    a.movi(Reg::Esp, batches);
    a.label("batch");
    a.movi(ARG_VAL, 0);
    a.label("again");
    a.movi(ARG_SBUF, ring);
    a.movi(ARG_COUNT, n);
    a.sys(Sys::IpcSubmit);
    a.cmpi(ARG_VAL, n);
    a.jcc(Cond::Eq, "done");
    a.addi(ARG_VAL, 1);
    a.cmpi(ARG_VAL, n);
    a.jcc(Cond::Ne, "again");
    a.label("done");
    a.subi(Reg::Esp, 1);
    a.cmpi(Reg::Esp, 0);
    a.jcc(Cond::Ne, "batch");
    a.halt();
    a
}

/// One replay divergence: the reproducer is the enclosing report's
/// (workload, config) plus this snapshot's site index.
#[derive(Debug, Clone)]
pub struct KrecDivergence {
    /// Index of the snapshot in the recording.
    pub snapshot: usize,
    /// Dispatch-boundary site the snapshot was taken at.
    pub site: u64,
    /// Simulated cycle of the snapshot.
    pub at_cycle: u64,
    /// What diverged.
    pub detail: String,
}

/// The result of sweeping one (workload, config) combination.
#[derive(Debug)]
pub struct KrecReport {
    /// Workload label.
    pub workload: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// Snapshot stride (every Nth dispatch-boundary site).
    pub stride: u64,
    /// Size of the site space in the recorded run.
    pub sites_total: u64,
    /// Snapshots captured (and replayed).
    pub snapshots: u64,
    /// Byte size of the largest snapshot image.
    pub snapshot_bytes: u64,
    /// Run windows in the recording.
    pub windows: u64,
    /// Windows digest-verified across all replays.
    pub windows_verified: u64,
    /// Replays whose epoch reached the end of the recording (and so also
    /// passed the trace-suffix and end-state checks).
    pub full_epoch_replays: u64,
    /// Divergences found (empty = recording is faithful everywhere).
    pub divergences: Vec<KrecDivergence>,
    /// Mean host cost of one snapshot encode, in microseconds.
    pub snapshot_host_us: f64,
    /// Mean host cost of one restore (decode + index rebuild), in
    /// microseconds.
    pub restore_host_us: f64,
    /// Simulated cycles re-executed across all replays.
    pub replay_sim_cycles: u64,
    /// Replay speed: simulated cycles per host microsecond.
    pub replay_cycles_per_us: f64,
}

impl KrecReport {
    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} {:<13} stride={:<3} sites={:<5} snaps={:<4} bytes={:<7} \
             windows={:<5} verified={:<6} full={:<4} divergences={}",
            self.workload,
            self.config,
            self.stride,
            self.sites_total,
            self.snapshots,
            self.snapshot_bytes,
            self.windows,
            self.windows_verified,
            self.full_epoch_replays,
            self.divergences.len()
        )
    }

    /// Deterministic reproducer lines for every divergence.
    pub fn reproducers(&self) -> Vec<String> {
        self.divergences
            .iter()
            .map(|d| {
                format!(
                    "krec repro: workload={} config=\"{}\" stride={} snapshot={} \
                     site={} cycle={} — {}",
                    self.workload,
                    self.config,
                    self.stride,
                    d.snapshot,
                    d.site,
                    d.at_cycle,
                    d.detail
                )
            })
            .collect()
    }
}

/// Sweep one (workload, config): record with a snapshot every `stride`
/// sites, check zero perturbation against a bare run, then restore and
/// re-execute every snapshot, diverge-checking against the recording.
pub fn sweep(w: KrecWorkload, cfg: &Config, stride: u64) -> Result<KrecReport, String> {
    // Bare run: the golden outcome and end-state digest.
    let (bare_out, bare_k) = w.run(cfg)?;
    let bare_digest = bare_k.state_digest().map_err(|e| e.to_string())?;

    // Armed run: same workload, recorder on.
    let armed_cfg = cfg
        .clone()
        .with_krec(KrecConfig::every_sites(stride).with_ring(4096));
    let (armed_out, mut k) = w.run(&armed_cfg)?;
    if armed_out != bare_out {
        return Err(format!(
            "arming krec perturbed the outcome: {}",
            diff_outcomes(&bare_out, &armed_out)
        ));
    }
    let armed_digest = k.state_digest().map_err(|e| e.to_string())?;
    if armed_digest != bare_digest {
        return Err(format!(
            "arming krec perturbed the end state: digest {armed_digest:#018x} != bare {bare_digest:#018x}"
        ));
    }

    // Host-side costs, measured on the finished kernel (its state is the
    // largest of the run). Not part of the correctness oracle.
    let reps = 8;
    let t0 = Instant::now();
    let mut image = Vec::new();
    for _ in 0..reps {
        image = k.snapshot_bytes().map_err(|e| e.to_string())?;
    }
    let snapshot_host_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        Kernel::restore_from(&image).map_err(|e| e.to_string())?;
    }
    let restore_host_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let kr = k.krec().expect("recorder armed");
    let sites_total = kr.sites_seen();
    let rec = k.take_recording().expect("recorder armed");
    let snapshot_bytes = rec
        .snapshots
        .iter()
        .map(|s| s.bytes.len() as u64)
        .max()
        .unwrap_or(0);

    // The original's ktrace suffix digests and user-visible end state,
    // for full-epoch replays to match.
    let mut divergences = Vec::new();
    let mut windows_verified = 0u64;
    let mut full_epoch_replays = 0u64;
    let mut replay_sim_cycles = 0u64;
    let t0 = Instant::now();
    for (i, s) in rec.snapshots.iter().enumerate() {
        let diverge = |detail: String| KrecDivergence {
            snapshot: i,
            site: s.site,
            at_cycle: s.at_cycle,
            detail,
        };
        let mut rp = match Replayer::start(&rec, i) {
            Ok(rp) => rp,
            Err(e) => {
                divergences.push(diverge(format!("restore failed: {e}")));
                continue;
            }
        };
        if let Err(e) = rp.run_to_epoch_end() {
            divergences.push(diverge(format!("{e}")));
            continue;
        }
        windows_verified += rp.windows_verified() as u64;
        if let Some(last) = rec.windows.get(rp.epoch_end().wrapping_sub(1)) {
            replay_sim_cycles += last.end_cycle.saturating_sub(s.at_cycle);
        }
        if rp.epoch_end() == rec.windows.len() {
            // The epoch reaches the recording's end: the replayed kernel
            // must match the original bit-for-bit — trace suffix, state
            // digest, and user-visible projection.
            full_epoch_replays += 1;
            let want = trace_suffix_digest(&k, s.at_cycle);
            let got = trace_suffix_digest(&rp.kernel, s.at_cycle);
            if got != want {
                divergences.push(diverge(format!(
                    "ktrace suffix digest {got:#018x} != recorded {want:#018x}"
                )));
            }
            match rp.kernel.state_digest() {
                Ok(d) if d != armed_digest => divergences.push(diverge(format!(
                    "end state digest {d:#018x} != recorded {armed_digest:#018x}"
                ))),
                Err(e) => divergences.push(diverge(format!("end digest failed: {e}"))),
                Ok(_) => {}
            }
            let uv = rp.kernel.trace.user_visible();
            if uv != armed_out.uv {
                divergences.push(diverge("user-visible end state diverged".to_string()));
            }
        }
    }
    let replay_host_us = t0.elapsed().as_secs_f64() * 1e6;
    Ok(KrecReport {
        workload: w.label(),
        config: cfg.label,
        stride,
        sites_total,
        snapshots: rec.snapshots.len() as u64,
        snapshot_bytes,
        windows: rec.windows.len() as u64,
        windows_verified,
        full_epoch_replays,
        divergences,
        snapshot_host_us,
        restore_host_us,
        replay_sim_cycles,
        replay_cycles_per_us: if replay_host_us > 0.0 {
            replay_sim_cycles as f64 / replay_host_us
        } else {
            0.0
        },
    })
}

/// Sweep `workloads` × all four comparable configurations.
pub fn sweep_all(workloads: &[KrecWorkload], stride: u64) -> Result<Vec<KrecReport>, String> {
    let mut out = Vec::new();
    for &w in workloads {
        for cfg in sweep_configs() {
            out.push(sweep(w, &cfg, stride)?);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// BENCH_snapshot.json: serialization and the kmon-style regression gate.
// ---------------------------------------------------------------------------

/// Serialize reports into the committed-benchmark JSON shape. Correctness
/// fields (snapshots, windows verified, divergences) and the snapshot
/// byte size are deterministic; host costs and replay speed are
/// environment-dependent and reported for trend-watching only.
pub fn to_json(reports: &[KrecReport]) -> Json {
    let mut root = Json::obj();
    root.set("bench", Json::Str("krec_sweep".to_string()));
    let mut arr = Vec::new();
    for r in reports {
        let mut o = Json::obj();
        o.set("workload", Json::Str(r.workload.to_string()));
        o.set("config", Json::Str(r.config.to_string()));
        o.set("stride", Json::from_u64(r.stride));
        o.set("sites", Json::from_u64(r.sites_total));
        o.set("snapshots", Json::from_u64(r.snapshots));
        o.set("snapshot_bytes", Json::from_u64(r.snapshot_bytes));
        o.set("windows", Json::from_u64(r.windows));
        o.set("windows_verified", Json::from_u64(r.windows_verified));
        o.set("full_epoch_replays", Json::from_u64(r.full_epoch_replays));
        o.set("divergences", Json::from_u64(r.divergences.len() as u64));
        o.set("snapshot_host_us", Json::Num(r.snapshot_host_us));
        o.set("restore_host_us", Json::Num(r.restore_host_us));
        o.set("replay_sim_cycles", Json::from_u64(r.replay_sim_cycles));
        o.set("replay_cycles_per_us", Json::Num(r.replay_cycles_per_us));
        arr.push(o);
    }
    root.set("sweeps", Json::Arr(arr));
    root
}

/// Regression-gate fresh reports against a committed `BENCH_snapshot.json`.
/// Hard failures: any divergence, a sweep present before but missing now,
/// no snapshots where there were some, or a snapshot image growing past
/// 1.25× its committed size (state-layout growth is expected PR to PR;
/// blowups are not). Host-cost fields are never gated.
pub fn check(committed: &Json, reports: &[KrecReport]) -> Vec<String> {
    let mut errs = Vec::new();
    for r in reports {
        if !r.divergences.is_empty() {
            errs.push(format!(
                "{} {}: {} replay divergence(s)",
                r.workload,
                r.config,
                r.divergences.len()
            ));
        }
        if r.snapshots == 0 {
            errs.push(format!(
                "{} {}: no snapshots captured",
                r.workload, r.config
            ));
        }
    }
    let Some(sweeps) = committed.get("sweeps").and_then(|s| s.items()) else {
        errs.push("committed baseline has no \"sweeps\" array".to_string());
        return errs;
    };
    for c in sweeps {
        let (Some(w), Some(cfg)) = (
            c.get("workload").and_then(|j| j.as_str()),
            c.get("config").and_then(|j| j.as_str()),
        ) else {
            continue;
        };
        let Some(f) = reports.iter().find(|r| r.workload == w && r.config == cfg) else {
            errs.push(format!("{w} {cfg}: in committed baseline but not re-run"));
            continue;
        };
        if let Some(bytes) = c.get("snapshot_bytes").and_then(|j| j.as_u64()) {
            let limit = bytes + bytes / 4;
            if f.snapshot_bytes > limit {
                errs.push(format!(
                    "{w} {cfg}: snapshot grew {bytes} → {} bytes (> 1.25× committed)",
                    f.snapshot_bytes
                ));
            }
        }
        if let Some(n) = c.get("windows_verified").and_then(|j| j.as_u64()) {
            if n > 0 && f.windows_verified == 0 {
                errs.push(format!("{w} {cfg}: replay verified no windows (was {n})"));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluke_core::Config;

    /// Bounded sweep: echo under two configs plus the submit-ring
    /// workload — zero divergences, every snapshot replayed. (The full
    /// 3-workload × 4-config sweep runs in the dedicated bin and CI's
    /// krec-smoke step.)
    #[test]
    fn bounded_sweeps_are_faithful() {
        for (w, cfg) in [
            (KrecWorkload::IpcEcho, Config::process_np()),
            (KrecWorkload::IpcEcho, Config::interrupt_pp()),
            (KrecWorkload::Server, Config::process_pp()),
        ] {
            let r =
                sweep(w, &cfg, 5).unwrap_or_else(|e| panic!("{} {}: {e}", w.label(), cfg.label));
            assert!(r.snapshots > 0, "{} {}: no snapshots", w.label(), cfg.label);
            assert!(
                r.divergences.is_empty(),
                "{} {}: {:?}",
                w.label(),
                cfg.label,
                r.reproducers()
            );
            assert!(r.windows_verified > 0);
            assert!(r.full_epoch_replays > 0);
        }
    }

    /// The multi-epoch checkpoint workload records and replays faithfully
    /// under one config (the others run in the bin).
    #[test]
    fn checkpoint_sweep_is_faithful() {
        let cfg = Config::interrupt_np();
        let r = sweep(KrecWorkload::Checkpoint, &cfg, 50)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label));
        assert!(r.snapshots > 0);
        assert!(r.windows > 1, "checkpoint should record many windows");
        assert!(r.divergences.is_empty(), "{:?}", r.reproducers());
    }

    /// The JSON gate catches a snapshot-size blowup and missing sweeps.
    #[test]
    fn check_gates_size_and_coverage() {
        let cfg = Config::process_np();
        let r = sweep(KrecWorkload::IpcEcho, &cfg, 5).unwrap();
        let committed = to_json(std::slice::from_ref(&r));
        assert!(check(&committed, std::slice::from_ref(&r)).is_empty());

        // Shrink the committed size so the fresh run looks like a blowup.
        let shrunk = Json::parse(&committed.to_string().replace(
            &format!("\"snapshot_bytes\":{}", r.snapshot_bytes),
            "\"snapshot_bytes\":16",
        ))
        .unwrap();
        assert!(!check(&shrunk, std::slice::from_ref(&r)).is_empty());

        // A committed sweep that wasn't re-run is flagged.
        assert!(!check(&committed, &[]).is_empty());
    }
}

//! The MP scaling headline: throughput as a function of processor count,
//! 1 through 64, fine-grained locking vs the legacy big kernel lock.
//!
//! Two workloads drive the curves:
//!
//! * **ipc-echo** — weak scaling: one client/server echo pair per CPU,
//!   each pair in its own pair of address spaces on its own connection,
//!   so a fine-grained kernel gives each pair a private lock while the
//!   big lock serializes every kernel entry machine-wide.
//! * **flukeperf** — the paper's microbenchmark suite, unchanged, run at
//!   each CPU count to show the fine-grained kernel costs a small
//!   uncontended overhead but never regresses as processors are added.
//!
//! The binary `mp_scaling` prints the table, writes
//! `BENCH_mp_scaling.json`, and with `--check` gates against the
//! committed baseline (throughput regression and lock-wait share).

use fluke_api::abi::{ARG_COUNT, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ObjType, Sys};
use fluke_arch::Assembler;
use fluke_core::{Config, Kernel};
use fluke_json::Json;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::tracediff::run_keep_kernel;
use crate::{Scale, TextTable};

/// Processor counts swept by the benchmark.
pub const CPU_POINTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Echo payload per message.
const LEN: u32 = 64;

/// Safety budget per run (simulated cycles).
const BUDGET: u64 = 200_000_000_000;

/// Request/reply round trips per echo pair.
fn exchanges(scale: Scale) -> u32 {
    match scale {
        Scale::Paper => 64,
        Scale::Quick => 8,
    }
}

/// One measured point of the scaling sweep.
#[derive(Debug, Clone)]
pub struct MpRow {
    /// Workload label ("ipc-echo" or "flukeperf").
    pub workload: &'static str,
    /// Execution-model label ("Process PP" etc.).
    pub model: &'static str,
    /// Lock model: "fine" or "big-lock".
    pub lock: &'static str,
    /// Processor count.
    pub cpus: usize,
    /// Simulated wall-clock cycles for the whole run.
    pub elapsed: u64,
    /// Operations completed (IPC messages for echo, syscalls for
    /// flukeperf).
    pub ops: u64,
    /// Cycles every CPU spent, summed (busy + idle).
    pub total_cpu_cycles: u64,
    /// Cycles spent on kernel-lock traffic (fixed costs plus waiting).
    pub lock_cycles: u64,
    /// The waiting part of `lock_cycles` alone: cycles stalled on a lock
    /// another CPU held.
    pub lock_wait_cycles: u64,
    /// Work-stealing events between per-CPU run queues.
    pub steals: u64,
    /// Contended waits on a per-CPU run-queue lock.
    pub runq_waits: u64,
    /// Cross-CPU TLB shootdown IPIs sent.
    pub shootdown_ipis: u64,
}

impl MpRow {
    /// Operations per million simulated cycles of wall-clock time.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 * 1e6 / self.elapsed.max(1) as f64
    }

    /// Share of all CPU cycles burned on kernel-lock traffic (waiting
    /// plus the fixed acquire/release costs).
    pub fn lock_share(&self) -> f64 {
        self.lock_cycles as f64 / self.total_cpu_cycles.max(1) as f64
    }

    /// Share of all CPU cycles spent *stalled* on a lock another CPU
    /// held — the quantity fine-grained locking drives toward zero.
    pub fn lock_wait_share(&self) -> f64 {
        self.lock_wait_cycles as f64 / self.total_cpu_cycles.max(1) as f64
    }
}

fn row_from(
    workload: &'static str,
    model: &'static str,
    lock: &'static str,
    cpus: usize,
    ops: u64,
    k: &Kernel,
) -> MpRow {
    MpRow {
        workload,
        model,
        lock,
        cpus,
        elapsed: k.now(),
        ops,
        total_cpu_cycles: k.total_cpu_cycles(),
        lock_cycles: k.stats.klock_cycles,
        lock_wait_cycles: k.stats.klock_wait_cycles,
        steals: k.stats.sched_steals,
        runq_waits: k.stats.runq_waits,
        shootdown_ipis: k.stats.tlb_shootdown_ipis,
    }
}

/// Run `pairs` independent client/server echo pairs to completion.
fn run_echo_pairs(cfg: Config, pairs: usize, exchanges: u32) -> Kernel {
    let mut k = Kernel::new(cfg);
    let mut mains = Vec::new();
    for i in 0..pairs {
        let base = 0x0100_0000 + (i as u32) * 0x0040_0000;
        let mut server = ChildProc::with_mem(&mut k, base, 0x4000);
        let mut client = ChildProc::with_mem(&mut k, base + 0x0020_0000, 0x4000);
        let h_port = server.alloc_obj();
        let h_ref = client.alloc_obj();
        let port = k.loader_create(server.space, h_port, ObjType::Port);
        k.loader_ref(client.space, h_ref, port);
        let sbuf = server.mem_base + 0x1000;
        let cbuf = client.mem_base + 0x1000;
        let crbuf = client.mem_base + 0x2000;

        let mut a = Assembler::new("mp-echo-server");
        a.server_wait_receive(h_port, sbuf, LEN);
        for _ in 1..exchanges {
            a.movi(ARG_SBUF, sbuf);
            a.movi(ARG_COUNT, LEN);
            a.movi(ARG_RBUF, sbuf);
            a.movi(ARG_VAL, LEN);
            a.sys(Sys::IpcServerSendWaitReceive);
        }
        a.server_ack_send(sbuf, LEN);
        a.halt();
        mains.push(server.start(&mut k, a.finish(), 8));

        let mut a = Assembler::new("mp-echo-client");
        a.client_rpc(h_ref, cbuf, LEN, crbuf, LEN);
        for _ in 1..exchanges {
            a.movi(ARG_SBUF, cbuf);
            a.movi(ARG_COUNT, LEN);
            a.movi(ARG_RBUF, crbuf);
            a.movi(ARG_VAL, LEN);
            a.sys(Sys::IpcClientSendOverReceive);
        }
        a.halt();
        mains.push(client.start(&mut k, a.finish(), 8));
    }
    assert!(
        run_to_halt(&mut k, &mains, BUDGET),
        "echo pairs hung ({} pairs, {} cpus)",
        pairs,
        k.cfg.num_cpus
    );
    k
}

/// The two execution models the sweep compares (the paper's process and
/// interrupt models, both fully preemptible).
fn models() -> [Config; 2] {
    [Config::process_pp(), Config::interrupt_pp()]
}

/// Run the full sweep: both workloads × both models × fine/big-lock ×
/// every CPU point.
pub fn run_mp_scaling(scale: Scale) -> Vec<MpRow> {
    let ex = exchanges(scale);
    let fp_params = match scale {
        Scale::Paper => FlukeperfParams::paper(),
        Scale::Quick => FlukeperfParams::quick(),
    };
    let mut rows = Vec::new();
    for base in models() {
        let model = base.label;
        for &cpus in &CPU_POINTS {
            for (lock, big) in [("fine", false), ("big-lock", true)] {
                let cfg = base.clone().with_cpus(cpus).with_big_lock(big);
                let k = run_echo_pairs(cfg, cpus, ex);
                rows.push(row_from(
                    "ipc-echo",
                    model,
                    lock,
                    cpus,
                    k.stats.ipc_messages,
                    &k,
                ));
                let cfg = base.clone().with_cpus(cpus).with_big_lock(big);
                let k = run_keep_kernel(flukeperf::build(cfg, &fp_params), BUDGET);
                rows.push(row_from(
                    "flukeperf",
                    model,
                    lock,
                    cpus,
                    k.stats.syscalls,
                    &k,
                ));
            }
        }
    }
    rows
}

/// Render the sweep as a text table.
pub fn table(rows: &[MpRow]) -> TextTable {
    let mut t = TextTable::new(&[
        "workload",
        "model",
        "lock",
        "CPUs",
        "ops",
        "ops/Mcycle",
        "lock share",
        "wait share",
        "steals",
        "runq waits",
        "shootdown IPIs",
    ]);
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            r.model.to_string(),
            r.lock.to_string(),
            r.cpus.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.throughput()),
            format!("{:.1}%", 100.0 * r.lock_share()),
            format!("{:.1}%", 100.0 * r.lock_wait_share()),
            r.steals.to_string(),
            r.runq_waits.to_string(),
            r.shootdown_ipis.to_string(),
        ]);
    }
    t
}

/// Build the `BENCH_mp_scaling.json` document.
pub fn to_json(scale: Scale, rows: &[MpRow]) -> Json {
    let mut doc = Json::obj();
    doc.set("bench", Json::Str("mp_scaling".to_string()));
    doc.set(
        "scale",
        Json::Str(
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            }
            .to_string(),
        ),
    );
    let items = rows
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("workload", Json::Str(r.workload.to_string()));
            o.set("model", Json::Str(r.model.to_string()));
            o.set("lock", Json::Str(r.lock.to_string()));
            o.set("cpus", Json::from_u64(r.cpus as u64));
            o.set("elapsed_cycles", Json::from_u64(r.elapsed));
            o.set("ops", Json::from_u64(r.ops));
            o.set("ops_per_mcycle", Json::Num(r.throughput()));
            o.set("total_cpu_cycles", Json::from_u64(r.total_cpu_cycles));
            o.set("lock_cycles", Json::from_u64(r.lock_cycles));
            o.set("lock_wait_cycles", Json::from_u64(r.lock_wait_cycles));
            o.set("lock_share", Json::Num(r.lock_share()));
            o.set("lock_wait_share", Json::Num(r.lock_wait_share()));
            o.set("steals", Json::from_u64(r.steals));
            o.set("runq_waits", Json::from_u64(r.runq_waits));
            o.set("shootdown_ipis", Json::from_u64(r.shootdown_ipis));
            o
        })
        .collect();
    doc.set("rows", Json::Arr(items));
    doc
}

/// The CI regression gate. Fails if the fresh fine-grained 16-CPU
/// ipc-echo throughput (process model) fell more than 10% below the
/// committed baseline *at the same scale*, or if fine-grained locking no
/// longer reduces the lock-wait share below the big lock's at 16 CPUs.
pub fn check(baseline: &Json, scale: Scale, fresh: &[MpRow]) -> Result<(), String> {
    let want = match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    };
    // The committed artifact carries one run per scale; a bare run doc
    // (no "runs" array) is accepted if its scale matches.
    let baseline = match baseline.get("runs").and_then(|r| r.items()) {
        Some(runs) => runs
            .iter()
            .find(|r| r.get("scale").and_then(|s| s.as_str()) == Some(want))
            .ok_or_else(|| format!("baseline has no {want}-scale run"))?,
        None if baseline.get("scale").and_then(|s| s.as_str()) == Some(want) => baseline,
        None => return Err(format!("baseline is not a {want}-scale run")),
    };
    check_run(baseline, fresh)
}

fn check_run(baseline: &Json, fresh: &[MpRow]) -> Result<(), String> {
    let gate_model = Config::process_pp().label;
    let find = |lock: &str| {
        fresh
            .iter()
            .find(|r| {
                r.workload == "ipc-echo" && r.model == gate_model && r.lock == lock && r.cpus == 16
            })
            .ok_or_else(|| format!("fresh sweep missing ipc-echo/{gate_model}/{lock}/16"))
    };
    let fine = find("fine")?;
    let big = find("big-lock")?;

    let rows = baseline
        .get("rows")
        .and_then(|r| r.items())
        .ok_or("baseline JSON has no rows")?;
    let base = rows
        .iter()
        .find(|r| {
            r.get("workload").and_then(|v| v.as_str()) == Some("ipc-echo")
                && r.get("model").and_then(|v| v.as_str()) == Some(gate_model)
                && r.get("lock").and_then(|v| v.as_str()) == Some("fine")
                && r.get("cpus").and_then(|v| v.as_u64()) == Some(16)
        })
        .ok_or("baseline missing the 16-CPU fine ipc-echo row")?;
    let base_tp = base
        .get("ops_per_mcycle")
        .and_then(|v| v.as_f64())
        .ok_or("baseline row has no ops_per_mcycle")?;

    if fine.throughput() < 0.9 * base_tp {
        return Err(format!(
            "16-CPU fine ipc-echo throughput regressed: {:.1} ops/Mcycle vs baseline {:.1}",
            fine.throughput(),
            base_tp
        ));
    }
    if fine.lock_wait_share() >= big.lock_wait_share() {
        return Err(format!(
            "fine-grained locking no longer beats the big lock on wait share at 16 CPUs: \
             fine {:.2}% vs big {:.2}%",
            100.0 * fine.lock_wait_share(),
            100.0 * big.lock_wait_share()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline mechanism in miniature: at 4 CPUs the fine-grained
    /// kernel must beat the big lock on echo throughput and carry a far
    /// smaller lock share.
    #[test]
    fn fine_beats_big_lock_on_echo_throughput() {
        let ex = exchanges(Scale::Quick);
        let fine = run_echo_pairs(Config::process_pp().with_cpus(4), 4, ex);
        let big = run_echo_pairs(Config::process_pp().with_cpus(4).with_big_lock(true), 4, ex);
        assert_eq!(fine.stats.ipc_messages, big.stats.ipc_messages);
        assert!(
            fine.now() < big.now(),
            "fine {} !< big {}",
            fine.now(),
            big.now()
        );
        let fine_share = fine.stats.klock_wait_cycles as f64 / fine.total_cpu_cycles() as f64;
        let big_share = big.stats.klock_wait_cycles as f64 / big.total_cpu_cycles() as f64;
        assert!(
            fine_share < big_share,
            "lock-wait share: fine {fine_share} !< big {big_share}"
        );
    }

    #[test]
    fn json_and_check_round_trip() {
        let mk = |lock: &'static str, elapsed: u64, waits: u64| MpRow {
            workload: "ipc-echo",
            model: Config::process_pp().label,
            lock,
            cpus: 16,
            elapsed,
            ops: 1000,
            total_cpu_cycles: elapsed * 16,
            lock_cycles: waits + 10_000,
            lock_wait_cycles: waits,
            steals: 3,
            runq_waits: 1,
            shootdown_ipis: 0,
        };
        let rows = vec![
            mk("fine", 1_000_000, 10_000),
            mk("big-lock", 2_000_000, 900_000),
        ];
        let doc = to_json(Scale::Quick, &rows);
        let parsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
        check(&parsed, Scale::Quick, &rows).expect("fresh run identical to baseline must pass");

        // The gate refuses to compare across scales.
        assert!(check(&parsed, Scale::Paper, &rows).is_err());

        // A 2x throughput regression must trip the gate.
        let slow = vec![
            mk("fine", 2_000_000, 10_000),
            mk("big-lock", 2_000_000, 900_000),
        ];
        assert!(check(&parsed, Scale::Quick, &slow).is_err());

        // Fine losing the wait-share comparison must trip the gate.
        let contended = vec![
            mk("fine", 1_000_000, 900_000),
            mk("big-lock", 2_000_000, 900_000),
        ];
        assert!(check(&parsed, Scale::Quick, &contended).is_err());

        // The combined multi-run artifact shape resolves by scale.
        let mut combined = Json::obj();
        combined.set("bench", Json::Str("mp_scaling".to_string()));
        combined.set("runs", Json::Arr(vec![to_json(Scale::Quick, &rows)]));
        let combined = Json::parse(&combined.to_string()).unwrap();
        check(&combined, Scale::Quick, &rows).expect("combined artifact must resolve");
        assert!(check(&combined, Scale::Paper, &rows).is_err());
    }
}

//! Table 3: breakdown of restart costs for kernel-internal exceptions
//! during a reliable IPC transfer
//! (`ipc_client_connect_send_over_receive`), measured — as in the paper —
//! on the process model without kernel preemption.

use fluke_api::ObjType;
use fluke_arch::cost::cycles_to_us;
use fluke_arch::Assembler;
use fluke_core::{Config, FaultKind, FaultSide, Kernel};
use fluke_user::pager::PagerSetup;
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

use crate::report::TextTable;

const CLIENT_BUF: u32 = 0x0040_0000;
const SERVER_BUF: u32 = 0x0050_0000;
const XFER: u32 = 24 << 10; // six pages of transfer

/// One measured row of Table 3.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario label ("Client-side soft page fault", ...).
    pub label: &'static str,
    /// Side of the transfer.
    pub side: FaultSide,
    /// Severity.
    pub kind: FaultKind,
    /// Mean cost to remedy, µs.
    pub remedy_us: f64,
    /// Mean cost to rollback (work thrown away and redone), µs.
    pub rollback_us: f64,
    /// Number of fault events averaged.
    pub samples: usize,
}

/// Run one scenario and average its during-IPC fault records.
fn scenario(side: FaultSide, kind: FaultKind) -> Row {
    let client_paged = side == FaultSide::Client;
    let server_paged = side == FaultSide::Server;
    let prefill = kind == FaultKind::Soft;
    let mut k = Kernel::new(Config::process_np());
    let pager = PagerSetup::boot(&mut k, 1 << 22, 12);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x4000);
    let mut server = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    let wire = |k: &mut Kernel, space, base| {
        let mut slot = 0x1900;
        while k.object_at(pager.space, slot).is_some() {
            slot += 32;
        }
        k.loader_mapping(
            pager.space,
            slot,
            space,
            base,
            1 << 20,
            pager.region,
            0,
            true,
        );
    };
    if client_paged {
        wire(&mut k, client.space, CLIENT_BUF);
    } else {
        k.grant_pages(client.space, CLIENT_BUF, 1 << 20, true);
    }
    if server_paged {
        wire(&mut k, server.space, SERVER_BUF);
    } else {
        k.grant_pages(server.space, SERVER_BUF, 1 << 20, true);
    }
    if prefill {
        k.grant_pages(pager.space, pager.backing_base, 1 << 20, true);
    }

    // The Table 3 call: client_connect_send_over_receive; server echoes 64.
    let mut a = Assembler::new("t3-server");
    a.movi(fluke_api::abi::ARG_HANDLE, h_port);
    a.movi(fluke_api::abi::ARG_RBUF, SERVER_BUF);
    a.movi(fluke_api::abi::ARG_COUNT, XFER);
    a.sys(fluke_api::Sys::IpcServerWaitReceive);
    a.server_ack_send(SERVER_BUF, 64);
    a.halt();
    let st = server.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("t3-client");
    a.client_rpc(h_ref, CLIENT_BUF, XFER, client.mem_base + 0x2000, 64);
    a.halt();
    let ct = client.start(&mut k, a.finish(), 8);

    assert!(
        run_to_halt(&mut k, &[st, ct], 5_000_000_000),
        "table 3 scenario did not finish"
    );
    let recs: Vec<_> = k
        .stats
        .fault_records
        .iter()
        .filter(|f| f.during_ipc && f.side == side && f.kind == kind)
        .collect();
    let n = recs.len().max(1);
    let remedy: u64 = recs.iter().map(|f| f.remedy_cycles).sum();
    let rollback: u64 = recs.iter().map(|f| f.rollback_cycles).sum();
    Row {
        label: label_for(side, kind),
        side,
        kind,
        remedy_us: cycles_to_us(remedy) / n as f64,
        rollback_us: cycles_to_us(rollback) / n as f64,
        samples: recs.len(),
    }
}

fn label_for(side: FaultSide, kind: FaultKind) -> &'static str {
    match (side, kind) {
        (FaultSide::Client, FaultKind::Soft) => "Client-side soft page fault",
        (FaultSide::Client, FaultKind::Hard) => "Client-side hard page fault",
        (FaultSide::Server, FaultKind::Soft) => "Server-side soft page fault",
        (FaultSide::Server, FaultKind::Hard) => "Server-side hard page fault",
        _ => "other",
    }
}

/// Compute the four rows of Table 3.
pub fn rows() -> Vec<Row> {
    vec![
        scenario(FaultSide::Client, FaultKind::Soft),
        scenario(FaultSide::Client, FaultKind::Hard),
        scenario(FaultSide::Server, FaultKind::Soft),
        scenario(FaultSide::Server, FaultKind::Hard),
    ]
}

/// Render Table 3 like the paper.
pub fn render() -> String {
    let mut t = TextTable::new(&[
        "Actual Cause of Exception",
        "Cost to Remedy (µs)",
        "Cost to Rollback (µs)",
        "samples",
    ]);
    for r in rows() {
        let rb = if r.rollback_us < 0.05 {
            "none".to_string()
        } else {
            format!("{:.1}", r.rollback_us)
        };
        t.row(&[
            r.label.to_string(),
            format!("{:.1}", r.remedy_us),
            rb,
            r.samples.to_string(),
        ]);
    }
    format!(
        "Table 3: Restart costs for kernel-internal exceptions during a reliable IPC\n\
         transfer (ipc_client_connect_send_over_receive), process model, no preemption.\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        let rows = rows();
        let [cs, ch, ss, sh] = &rows[..] else {
            panic!("expected 4 rows");
        };
        // Every scenario actually faulted.
        for r in &rows {
            assert!(r.samples >= 3, "{}: no samples", r.label);
        }
        // Paper shape: hard ≫ soft remedy on both sides.
        assert!(ch.remedy_us > 3.0 * cs.remedy_us);
        assert!(sh.remedy_us > 3.0 * ss.remedy_us);
        // Server-side remedies cost more than client-side.
        assert!(ss.remedy_us > cs.remedy_us);
        assert!(sh.remedy_us > ch.remedy_us);
        // Client soft rolls back nothing; the others little relative to
        // their remedy (the paper's 2–8% headline).
        assert!(cs.rollback_us < 0.5);
        assert!(ch.rollback_us > 0.0 && ch.rollback_us < 0.25 * ch.remedy_us);
        assert!(ss.rollback_us > 0.0);
        assert!(sh.rollback_us > 0.0 && sh.rollback_us < 0.25 * sh.remedy_us);
    }
}

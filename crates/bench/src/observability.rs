//! The `kmon` observability dashboard: one instrumented `flukeperf` run
//! per Table 4 configuration with the `kprof` cycle-attribution profiler
//! enabled, the Table 6 latency probe installed, and the kernel-memory
//! gauges sampled as a time series.
//!
//! Everything here reads *simulated* state — the kprof phase tree, the
//! preemption-latency histogram, the `kstat` registry — so the dashboard
//! is bit-deterministic for a given scale, and the zero-perturbation
//! property (instrumentation changes no simulated number) is what makes
//! its numbers trustworthy: they describe the same run the uninstrumented
//! kernel would have performed.

use fluke_arch::cost::Cycles;
use fluke_core::{Config, Kernel};
use fluke_json::Json;
use fluke_workloads::common::WorkloadRun;
use fluke_workloads::latency::install_probe;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::Scale;

/// Safety budget for one observed run (same as the trace-diff harness).
const RUN_BUDGET: Cycles = 8_000_000_000;

/// How often the memory gauges are sampled (1M cycles = 5ms at 200MHz).
const SAMPLE_PERIOD: Cycles = 1_000_000;

/// Period of the installed latency probe, in milliseconds.
const PROBE_PERIOD_MS: u64 = 1;

/// Cap on memory-gauge samples exported per config in the JSON report
/// (the dashboard peaks still use the full-resolution series).
const MAX_EXPORTED_SAMPLES: usize = 128;

/// One sample of the live kernel-memory gauges (Table 7 as a time
/// series).
#[derive(Debug, Clone)]
pub struct MemSample {
    /// Simulated time of the sample.
    pub at: Cycles,
    /// Live (non-halted) threads.
    pub live_threads: u64,
    /// TCB bytes charged (interrupt model).
    pub tcb_bytes: u64,
    /// Kernel-stack bytes charged (process model).
    pub kstacks_bytes: u64,
    /// Bytes of kernel stacks retained across in-kernel preemptions.
    pub retained_kstack_bytes: u64,
}

/// One fully-instrumented run: the finished kernel (kprof, kstat and
/// trace-free) plus the memory-gauge time series sampled along the way.
pub struct Observed {
    /// The finished kernel, with `kprof` attribution complete.
    pub kernel: Kernel,
    /// Memory gauges sampled every [`SAMPLE_PERIOD`] cycles.
    pub mem_series: Vec<MemSample>,
}

impl Observed {
    /// The configuration label of this run ("Process NP", …).
    pub fn label(&self) -> &'static str {
        self.kernel.cfg.label
    }

    /// Peak of one gauge over the series.
    fn peak(&self, f: impl Fn(&MemSample) -> u64) -> u64 {
        self.mem_series.iter().map(f).max().unwrap_or(0)
    }
}

fn sample(k: &Kernel) -> MemSample {
    let g = k.mem_gauges();
    MemSample {
        at: k.now(),
        live_threads: g.live_threads,
        tcb_bytes: g.tcb_bytes,
        kstacks_bytes: g.kstacks_bytes,
        retained_kstack_bytes: g.retained_kstack_bytes,
    }
}

/// Run `flukeperf` under `cfg` with `kprof` enabled and the latency
/// probe installed, sampling the memory gauges as it goes.
///
/// # Panics
///
/// Panics if the workload fails to finish within the safety budget.
pub fn run_observed(cfg: Config, scale: Scale) -> Observed {
    let params = match scale {
        Scale::Paper => FlukeperfParams::paper(),
        Scale::Quick => FlukeperfParams::quick(),
    };
    let mut run: WorkloadRun = flukeperf::build(cfg.with_kprof().with_kspan(), &params);
    install_probe(&mut run.kernel, PROBE_PERIOD_MS);
    let start = run.kernel.now();
    let deadline = start + RUN_BUDGET;
    let mut series = vec![sample(&run.kernel)];
    let mut next_sample = start + SAMPLE_PERIOD;
    loop {
        let until = (run.kernel.now() + SAMPLE_PERIOD.min(50_000))
            .min(next_sample)
            .min(deadline);
        let exit = run.kernel.run(Some(until));
        if run.kernel.now() >= next_sample {
            series.push(sample(&run.kernel));
            next_sample += SAMPLE_PERIOD;
        }
        if run
            .main_threads
            .iter()
            .all(|&t| run.kernel.thread_halted(t))
        {
            break;
        }
        match exit {
            fluke_core::RunExit::TimeLimit if run.kernel.now() >= deadline => {
                panic!(
                    "workload {} did not finish within {RUN_BUDGET} cycles",
                    run.label
                )
            }
            fluke_core::RunExit::TimeLimit => {}
            other => panic!("workload {} wedged (exit {other:?})", run.label),
        }
    }
    series.push(sample(&run.kernel));
    Observed {
        kernel: run.kernel,
        mem_series: series,
    }
}

/// Run every valid Table 4 configuration instrumented.
pub fn run_sweep(scale: Scale) -> Vec<Observed> {
    Config::all_five()
        .into_iter()
        .map(|cfg| run_observed(cfg, scale))
        .collect()
}

/// One summary line for a histogram: count, p50, p95, p99, max (cycles).
fn hist_line(h: &fluke_core::Histogram) -> String {
    format!(
        "n={} p50={} p95={} p99={} max={} cycles",
        h.count(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        h.max()
    )
}

/// Render the full text dashboard for a set of observed runs: per
/// configuration, the kprof attribution tree, the preemption-latency
/// summary, the memory-gauge peaks, a flamegraph sample, and the nonzero
/// `kstat` registry.
pub fn render_dashboard(runs: &[Observed]) -> String {
    let mut out = String::new();
    for o in runs {
        let k = &o.kernel;
        out.push_str(&format!(
            "=== {} {}\n",
            o.label(),
            "=".repeat(60usize.saturating_sub(o.label().len()))
        ));
        out.push_str(&k.kprof.tree_report());
        out.push_str(&format!(
            "preemption latency (event -> dispatch): {}\n",
            hist_line(k.kprof.preempt_latency())
        ));
        out.push_str(&format!(
            "kernel memory peaks: tcb={}B kstacks={}B retained={}B live_threads={}\n",
            o.peak(|s| s.tcb_bytes),
            o.peak(|s| s.kstacks_bytes),
            o.peak(|s| s.retained_kstack_bytes),
            o.peak(|s| s.live_threads),
        ));
        let collapsed = k.kprof.collapsed();
        if !collapsed.is_empty() {
            out.push_str("flamegraph (collapsed stacks, top lines):\n");
            for line in collapsed.iter().take(4) {
                out.push_str(&format!("  {line}\n"));
            }
        }
        if k.kspan.enabled {
            out.push_str(&format!(
                "kspan: {} requests completed, {} aborted, {} flow edges; e2e {}\n",
                k.kspan.completed().len(),
                k.kspan.aborted(),
                k.kspan.flows().len(),
                hist_line(k.kspan.e2e_histogram()),
            ));
            out.push_str("per-class e2e latency:\n");
            for (class, h) in k.kspan.class_histograms() {
                out.push_str(&format!("  {class}: {}\n", hist_line(h)));
            }
            let cp = critical_path_totals(k);
            out.push_str(&format!(
                "critical path (summed over completed requests): on_cpu={} \
                 runnable_wait={} blocked_ipc={} lock_wait={} blocked_other={}\n",
                cp.0, cp.1, cp.2, cp.3, cp.4,
            ));
            let top = k.kspan.top_contended(5);
            if !top.is_empty() {
                out.push_str("top contended objects:\n");
                for (obj, c) in top {
                    out.push_str(&format!(
                        "  {obj}: {} wait cycles over {} waits\n",
                        c.wait_cycles, c.waits
                    ));
                }
            }
            let flame = collapsed_spans(k);
            if !flame.is_empty() {
                out.push_str("request flamegraph (collapsed, top lines):\n");
                for line in flame.iter().take(4) {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        out.push_str("kstat (nonzero):\n");
        for line in k.kstat().dump_text(false).lines() {
            out.push_str(&format!("  {line}\n"));
        }
        out.push('\n');
    }
    out
}

/// Sum the five critical-path buckets over every completed request:
/// (on_cpu, runnable_wait, blocked_ipc, lock_wait, blocked_other).
pub fn critical_path_totals(k: &Kernel) -> (u64, u64, u64, u64, u64) {
    let mut t = (0u64, 0u64, 0u64, 0u64, 0u64);
    for r in k.kspan.completed() {
        t.0 += r.on_cpu;
        t.1 += r.runnable_wait;
        t.2 += r.blocked_ipc;
        t.3 += r.lock_wait;
        t.4 += r.blocked_other;
    }
    t
}

/// Per-request-class collapsed flamegraph lines: `class;phase-path cycles`,
/// in deterministic (class, path) order, fed by the per-span kprof phase
/// paths folded at request close.
pub fn collapsed_spans(k: &Kernel) -> Vec<String> {
    let mut lines = Vec::new();
    for (class, frames) in k.kspan.class_frames() {
        for (&code, &cycles) in frames {
            lines.push(format!(
                "{class};{} {cycles}",
                fluke_core::kspan::frame_name(code)
            ));
        }
    }
    lines
}

fn hist_json(h: &fluke_core::Histogram) -> Json {
    let mut j = Json::obj();
    j.set("count", Json::from_u64(h.count()));
    j.set("p50", Json::from_u64(h.percentile(50.0)));
    j.set("p95", Json::from_u64(h.percentile(95.0)));
    j.set("p99", Json::from_u64(h.percentile(99.0)));
    j.set("max", Json::from_u64(h.max()));
    j
}

/// Build the `BENCH_observability.json` document.
pub fn to_json(scale: Scale, runs: &[Observed]) -> Json {
    let mut doc = Json::obj();
    doc.set(
        "scale",
        Json::Str(format!("{scale:?}").to_ascii_lowercase()),
    );
    let mut configs = Vec::new();
    for o in runs {
        let k = &o.kernel;
        let mut c = Json::obj();
        c.set("label", Json::Str(o.label().to_string()));
        c.set("total_cycles", Json::from_u64(k.total_cpu_cycles()));
        let mut prof = Json::obj();
        prof.set("user_cycles", Json::from_u64(k.kprof.user_cycles()));
        prof.set("idle_cycles", Json::from_u64(k.kprof.idle_cycles()));
        prof.set("kernel_cycles", Json::from_u64(k.kprof.kernel_cycles()));
        let mut flat = Json::obj();
        for (path, cycles) in k.kprof.flat() {
            flat.set(&path, Json::from_u64(cycles));
        }
        prof.set("flat", flat);
        prof.set(
            "collapsed",
            Json::Arr(k.kprof.collapsed().into_iter().map(Json::Str).collect()),
        );
        c.set("kprof", prof);
        c.set("preempt_latency", hist_json(k.kprof.preempt_latency()));
        let mut mem = Json::obj();
        mem.set("tcb_peak_bytes", Json::from_u64(o.peak(|s| s.tcb_bytes)));
        mem.set(
            "kstacks_peak_bytes",
            Json::from_u64(o.peak(|s| s.kstacks_bytes)),
        );
        mem.set(
            "retained_peak_bytes",
            Json::from_u64(o.peak(|s| s.retained_kstack_bytes)),
        );
        // Decimate the exported series to a bounded number of points —
        // peaks above are computed from the full-resolution series.
        let stride = o.mem_series.len().div_ceil(MAX_EXPORTED_SAMPLES).max(1);
        let last = o.mem_series.len().saturating_sub(1);
        mem.set(
            "samples",
            Json::Arr(
                o.mem_series
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % stride == 0 || *i == last)
                    .map(|(_, s)| {
                        let mut j = Json::obj();
                        j.set("at", Json::from_u64(s.at));
                        j.set("live_threads", Json::from_u64(s.live_threads));
                        j.set("tcb_bytes", Json::from_u64(s.tcb_bytes));
                        j.set("kstacks_bytes", Json::from_u64(s.kstacks_bytes));
                        j.set(
                            "retained_kstack_bytes",
                            Json::from_u64(s.retained_kstack_bytes),
                        );
                        j
                    })
                    .collect(),
            ),
        );
        c.set("mem", mem);
        c.set("kstat", k.kstat().to_json());
        if k.kspan.enabled {
            let mut sp = Json::obj();
            sp.set("requests", Json::from_u64(k.kspan.completed().len() as u64));
            sp.set("aborted", Json::from_u64(k.kspan.aborted()));
            sp.set("flows", Json::from_u64(k.kspan.flows().len() as u64));
            sp.set("e2e", hist_json(k.kspan.e2e_histogram()));
            let mut classes = Json::obj();
            for (class, h) in k.kspan.class_histograms() {
                classes.set(class, hist_json(h));
            }
            sp.set("classes", classes);
            let cp = critical_path_totals(k);
            let mut cpj = Json::obj();
            cpj.set("on_cpu", Json::from_u64(cp.0));
            cpj.set("runnable_wait", Json::from_u64(cp.1));
            cpj.set("blocked_ipc", Json::from_u64(cp.2));
            cpj.set("lock_wait", Json::from_u64(cp.3));
            cpj.set("blocked_other", Json::from_u64(cp.4));
            sp.set("critical_path", cpj);
            sp.set(
                "top_contended",
                Json::Arr(
                    k.kspan
                        .top_contended(8)
                        .into_iter()
                        .map(|(obj, c)| {
                            let mut j = Json::obj();
                            j.set("object", Json::Str(obj.to_string()));
                            j.set("wait_cycles", Json::from_u64(c.wait_cycles));
                            j.set("waits", Json::from_u64(c.waits));
                            j
                        })
                        .collect(),
                ),
            );
            sp.set(
                "flamegraph",
                Json::Arr(collapsed_spans(k).into_iter().map(Json::Str).collect()),
            );
            c.set("kspan", sp);
        }
        configs.push(c);
    }
    doc.set("configs", Json::Arr(configs));
    doc
}

/// Blessed quick-scale upper bounds for the preemption-latency *maximum*
/// (cycles), per configuration. CI's `kmon --check` step fails if a
/// quick-scale run exceeds a bound — the §5.3 regression gate.
///
/// Only the two "interesting" rows are gated: Process FP (the paper's
/// best case — full kernel preemptibility must stay tight) and Interrupt
/// PP (the best the interrupt model can do). The NP rows are unbounded
/// by design: without preemption a compute burst legitimately holds the
/// CPU for a full timeslice.
///
/// Bounds are the measured quick-scale maxima with ~2x headroom, blessed
/// like the ktrace golden digests. Re-measure with
/// `FLUKE_BENCH_SCALE=quick cargo run -p fluke-bench --bin kmon` after an
/// intentional cost-model change.
pub const QUICK_LATENCY_MAX_BOUNDS: &[(&str, u64)] = &[
    // Measured quick-scale maxima: 3,520 and 6,570 cycles.
    ("Process FP", 8_000),
    ("Interrupt PP", 15_000),
];

/// Check quick-scale preemption-latency maxima against the blessed
/// bounds. Returns one message per violation.
pub fn check_regression(runs: &[Observed]) -> Result<(), String> {
    let mut errors = Vec::new();
    for (label, bound) in QUICK_LATENCY_MAX_BOUNDS {
        match runs.iter().find(|o| o.label() == *label) {
            None => errors.push(format!("no observed run labelled {label}")),
            Some(o) => {
                let h = o.kernel.kprof.preempt_latency();
                if h.count() == 0 {
                    errors.push(format!("{label}: no preemption-latency samples"));
                } else if h.max() > *bound {
                    errors.push(format!(
                        "{label}: preemption-latency max {} cycles exceeds blessed bound {}",
                        h.max(),
                        bound
                    ));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

/// Maximum tolerated relative growth of the kspan end-to-end p99 between
/// the committed `BENCH_observability.json` and a fresh quick-scale run.
pub const E2E_P99_TOLERANCE: f64 = 0.10;

/// Per-config `label -> kspan e2e p99` from a report document. Configs
/// without a kspan section (older reports) are skipped.
fn e2e_p99s(doc: &Json) -> std::collections::BTreeMap<String, u64> {
    let mut out = std::collections::BTreeMap::new();
    let Some(configs) = doc.get("configs").and_then(Json::items) else {
        return out;
    };
    for c in configs {
        let (Some(label), Some(p99)) = (
            c.get("label").and_then(Json::as_str),
            c.get("kspan")
                .and_then(|s| s.get("e2e"))
                .and_then(|e| e.get("p99"))
                .and_then(Json::as_u64),
        ) else {
            continue;
        };
        out.insert(label.to_string(), p99);
    }
    out
}

/// Compare a freshly generated report against the committed one: any
/// configuration whose kspan end-to-end p99 grew by more than
/// [`E2E_P99_TOLERANCE`] is a regression. Same-scale reports only.
pub fn check_e2e_regression(committed: &Json, fresh: &Json) -> Result<(), String> {
    if committed.get("scale") != fresh.get("scale") {
        // A scale change makes latencies incomparable; nothing to gate.
        return Ok(());
    }
    let want = e2e_p99s(committed);
    let got = e2e_p99s(fresh);
    let mut errors = Vec::new();
    for (label, old) in &want {
        match got.get(label) {
            None => errors.push(format!("{label}: missing from fresh report")),
            Some(new) => {
                if (*new as f64) > (*old as f64) * (1.0 + E2E_P99_TOLERANCE) {
                    errors.push(format!(
                        "{label}: kspan e2e p99 {new} cycles exceeds committed {old} \
                         by more than {:.0}%",
                        E2E_P99_TOLERANCE * 100.0
                    ));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criteria invariant: the kprof phase totals sum to
    /// exactly the simulated cycles on every CPU — no cycle unattributed,
    /// none double-counted — and agree with the independently-maintained
    /// `Stats` cycle counters.
    #[test]
    fn kprof_attribution_sums_exactly_to_simulated_cycles() {
        for cfg in Config::all_five() {
            let o = run_observed(cfg, Scale::Quick);
            let k = &o.kernel;
            let label = o.label();
            assert!(k.kprof.enabled, "{label}: kprof should be on");
            assert_eq!(
                k.kprof.total(),
                k.total_cpu_cycles(),
                "{label}: kprof phase totals must sum to total simulated cycles \
                 (user={} idle={} kernel={})",
                k.kprof.user_cycles(),
                k.kprof.idle_cycles(),
                k.kprof.kernel_cycles(),
            );
            assert_eq!(k.kprof.user_cycles(), k.stats.user_cycles, "{label}: user");
            assert_eq!(k.kprof.idle_cycles(), k.stats.idle_cycles, "{label}: idle");
            assert_eq!(
                k.kprof.kernel_cycles(),
                k.stats.kernel_cycles,
                "{label}: kernel"
            );
        }
    }

    /// Every valid model x preemption configuration produces a populated
    /// preemption-latency histogram, and the paper's §5.3 ordering holds:
    /// full preemption cannot be worse than no preemption at the maximum.
    #[test]
    fn preemption_latency_histograms_cover_all_configs() {
        let runs = run_sweep(Scale::Quick);
        assert_eq!(runs.len(), 5);
        for o in &runs {
            let h = o.kernel.kprof.preempt_latency();
            assert!(
                h.count() > 0,
                "{}: expected timer-wake latency samples",
                o.label()
            );
        }
        let max_of = |label: &str| {
            runs.iter()
                .find(|o| o.label() == label)
                .expect(label)
                .kernel
                .kprof
                .preempt_latency()
                .max()
        };
        assert!(
            max_of("Process FP") <= max_of("Process NP"),
            "full preemption should bound latency at least as tightly as none \
             (fp={} np={})",
            max_of("Process FP"),
            max_of("Process NP")
        );
    }

    /// The dashboard renders every configuration and the JSON document
    /// carries the same totals.
    #[test]
    fn dashboard_and_json_agree() {
        let o = run_observed(Config::process_pp(), Scale::Quick);
        let text = render_dashboard(std::slice::from_ref(&o));
        assert!(text.contains("Process PP"));
        assert!(text.contains("preemption latency"));
        assert!(text.contains("kstat (nonzero):"));
        let doc = to_json(Scale::Quick, std::slice::from_ref(&o));
        let cfgs = doc.get("configs").and_then(Json::items).expect("configs");
        assert_eq!(cfgs.len(), 1);
        assert_eq!(
            cfgs[0].get("total_cycles").and_then(Json::as_u64),
            Some(o.kernel.total_cpu_cycles())
        );
        // The JSON round-trips through the parser bit-identically.
        let reparsed = Json::parse(&doc.to_string()).expect("parse");
        assert_eq!(reparsed, doc);
    }

    /// The regression gate accepts the blessed bounds at quick scale.
    #[test]
    fn quick_scale_latency_is_within_blessed_bounds() {
        let runs: Vec<Observed> = [Config::process_fp(), Config::interrupt_pp()]
            .into_iter()
            .map(|c| run_observed(c, Scale::Quick))
            .collect();
        if let Err(e) = check_regression(&runs) {
            panic!("blessed preemption-latency bounds regressed:\n{e}");
        }
    }
}

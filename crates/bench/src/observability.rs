//! The `kmon` observability dashboard: one instrumented `flukeperf` run
//! per Table 4 configuration with the `kprof` cycle-attribution profiler
//! enabled, the Table 6 latency probe installed, and the kernel-memory
//! gauges sampled as a time series.
//!
//! Everything here reads *simulated* state — the kprof phase tree, the
//! preemption-latency histogram, the `kstat` registry — so the dashboard
//! is bit-deterministic for a given scale, and the zero-perturbation
//! property (instrumentation changes no simulated number) is what makes
//! its numbers trustworthy: they describe the same run the uninstrumented
//! kernel would have performed.

use fluke_arch::cost::Cycles;
use fluke_core::{Config, Kernel};
use fluke_json::Json;
use fluke_workloads::common::WorkloadRun;
use fluke_workloads::latency::install_probe;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::Scale;

/// Safety budget for one observed run (same as the trace-diff harness).
const RUN_BUDGET: Cycles = 8_000_000_000;

/// How often the memory gauges are sampled (1M cycles = 5ms at 200MHz).
const SAMPLE_PERIOD: Cycles = 1_000_000;

/// Period of the installed latency probe, in milliseconds.
const PROBE_PERIOD_MS: u64 = 1;

/// Cap on memory-gauge samples exported per config in the JSON report
/// (the dashboard peaks still use the full-resolution series).
const MAX_EXPORTED_SAMPLES: usize = 128;

/// One sample of the live kernel-memory gauges (Table 7 as a time
/// series).
#[derive(Debug, Clone)]
pub struct MemSample {
    /// Simulated time of the sample.
    pub at: Cycles,
    /// Live (non-halted) threads.
    pub live_threads: u64,
    /// TCB bytes charged (interrupt model).
    pub tcb_bytes: u64,
    /// Kernel-stack bytes charged (process model).
    pub kstacks_bytes: u64,
    /// Bytes of kernel stacks retained across in-kernel preemptions.
    pub retained_kstack_bytes: u64,
}

/// One fully-instrumented run: the finished kernel (kprof, kstat and
/// trace-free) plus the memory-gauge time series sampled along the way.
pub struct Observed {
    /// The finished kernel, with `kprof` attribution complete.
    pub kernel: Kernel,
    /// Memory gauges sampled every [`SAMPLE_PERIOD`] cycles.
    pub mem_series: Vec<MemSample>,
}

impl Observed {
    /// The configuration label of this run ("Process NP", …).
    pub fn label(&self) -> &'static str {
        self.kernel.cfg.label
    }

    /// Peak of one gauge over the series.
    fn peak(&self, f: impl Fn(&MemSample) -> u64) -> u64 {
        self.mem_series.iter().map(f).max().unwrap_or(0)
    }
}

fn sample(k: &Kernel) -> MemSample {
    let g = k.mem_gauges();
    MemSample {
        at: k.now(),
        live_threads: g.live_threads,
        tcb_bytes: g.tcb_bytes,
        kstacks_bytes: g.kstacks_bytes,
        retained_kstack_bytes: g.retained_kstack_bytes,
    }
}

/// Run `flukeperf` under `cfg` with `kprof` enabled and the latency
/// probe installed, sampling the memory gauges as it goes.
///
/// # Panics
///
/// Panics if the workload fails to finish within the safety budget.
pub fn run_observed(cfg: Config, scale: Scale) -> Observed {
    let params = match scale {
        Scale::Paper => FlukeperfParams::paper(),
        Scale::Quick => FlukeperfParams::quick(),
    };
    let mut run: WorkloadRun = flukeperf::build(cfg.with_kprof(), &params);
    install_probe(&mut run.kernel, PROBE_PERIOD_MS);
    let start = run.kernel.now();
    let deadline = start + RUN_BUDGET;
    let mut series = vec![sample(&run.kernel)];
    let mut next_sample = start + SAMPLE_PERIOD;
    loop {
        let until = (run.kernel.now() + SAMPLE_PERIOD.min(50_000))
            .min(next_sample)
            .min(deadline);
        let exit = run.kernel.run(Some(until));
        if run.kernel.now() >= next_sample {
            series.push(sample(&run.kernel));
            next_sample += SAMPLE_PERIOD;
        }
        if run
            .main_threads
            .iter()
            .all(|&t| run.kernel.thread_halted(t))
        {
            break;
        }
        match exit {
            fluke_core::RunExit::TimeLimit if run.kernel.now() >= deadline => {
                panic!(
                    "workload {} did not finish within {RUN_BUDGET} cycles",
                    run.label
                )
            }
            fluke_core::RunExit::TimeLimit => {}
            other => panic!("workload {} wedged (exit {other:?})", run.label),
        }
    }
    series.push(sample(&run.kernel));
    Observed {
        kernel: run.kernel,
        mem_series: series,
    }
}

/// Run every valid Table 4 configuration instrumented.
pub fn run_sweep(scale: Scale) -> Vec<Observed> {
    Config::all_five()
        .into_iter()
        .map(|cfg| run_observed(cfg, scale))
        .collect()
}

/// One summary line for a histogram: count, p50, p95, p99, max (cycles).
fn hist_line(h: &fluke_core::Histogram) -> String {
    format!(
        "n={} p50={} p95={} p99={} max={} cycles",
        h.count(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        h.max()
    )
}

/// Render the full text dashboard for a set of observed runs: per
/// configuration, the kprof attribution tree, the preemption-latency
/// summary, the memory-gauge peaks, a flamegraph sample, and the nonzero
/// `kstat` registry.
pub fn render_dashboard(runs: &[Observed]) -> String {
    let mut out = String::new();
    for o in runs {
        let k = &o.kernel;
        out.push_str(&format!(
            "=== {} {}\n",
            o.label(),
            "=".repeat(60usize.saturating_sub(o.label().len()))
        ));
        out.push_str(&k.kprof.tree_report());
        out.push_str(&format!(
            "preemption latency (event -> dispatch): {}\n",
            hist_line(k.kprof.preempt_latency())
        ));
        out.push_str(&format!(
            "kernel memory peaks: tcb={}B kstacks={}B retained={}B live_threads={}\n",
            o.peak(|s| s.tcb_bytes),
            o.peak(|s| s.kstacks_bytes),
            o.peak(|s| s.retained_kstack_bytes),
            o.peak(|s| s.live_threads),
        ));
        let collapsed = k.kprof.collapsed();
        if !collapsed.is_empty() {
            out.push_str("flamegraph (collapsed stacks, top lines):\n");
            for line in collapsed.iter().take(4) {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out.push_str("kstat (nonzero):\n");
        for line in k.kstat().dump_text(false).lines() {
            out.push_str(&format!("  {line}\n"));
        }
        out.push('\n');
    }
    out
}

fn hist_json(h: &fluke_core::Histogram) -> Json {
    let mut j = Json::obj();
    j.set("count", Json::from_u64(h.count()));
    j.set("p50", Json::from_u64(h.percentile(50.0)));
    j.set("p95", Json::from_u64(h.percentile(95.0)));
    j.set("p99", Json::from_u64(h.percentile(99.0)));
    j.set("max", Json::from_u64(h.max()));
    j
}

/// Build the `BENCH_observability.json` document.
pub fn to_json(scale: Scale, runs: &[Observed]) -> Json {
    let mut doc = Json::obj();
    doc.set(
        "scale",
        Json::Str(format!("{scale:?}").to_ascii_lowercase()),
    );
    let mut configs = Vec::new();
    for o in runs {
        let k = &o.kernel;
        let mut c = Json::obj();
        c.set("label", Json::Str(o.label().to_string()));
        c.set("total_cycles", Json::from_u64(k.total_cpu_cycles()));
        let mut prof = Json::obj();
        prof.set("user_cycles", Json::from_u64(k.kprof.user_cycles()));
        prof.set("idle_cycles", Json::from_u64(k.kprof.idle_cycles()));
        prof.set("kernel_cycles", Json::from_u64(k.kprof.kernel_cycles()));
        let mut flat = Json::obj();
        for (path, cycles) in k.kprof.flat() {
            flat.set(&path, Json::from_u64(cycles));
        }
        prof.set("flat", flat);
        prof.set(
            "collapsed",
            Json::Arr(k.kprof.collapsed().into_iter().map(Json::Str).collect()),
        );
        c.set("kprof", prof);
        c.set("preempt_latency", hist_json(k.kprof.preempt_latency()));
        let mut mem = Json::obj();
        mem.set("tcb_peak_bytes", Json::from_u64(o.peak(|s| s.tcb_bytes)));
        mem.set(
            "kstacks_peak_bytes",
            Json::from_u64(o.peak(|s| s.kstacks_bytes)),
        );
        mem.set(
            "retained_peak_bytes",
            Json::from_u64(o.peak(|s| s.retained_kstack_bytes)),
        );
        // Decimate the exported series to a bounded number of points —
        // peaks above are computed from the full-resolution series.
        let stride = o.mem_series.len().div_ceil(MAX_EXPORTED_SAMPLES).max(1);
        let last = o.mem_series.len().saturating_sub(1);
        mem.set(
            "samples",
            Json::Arr(
                o.mem_series
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % stride == 0 || *i == last)
                    .map(|(_, s)| {
                        let mut j = Json::obj();
                        j.set("at", Json::from_u64(s.at));
                        j.set("live_threads", Json::from_u64(s.live_threads));
                        j.set("tcb_bytes", Json::from_u64(s.tcb_bytes));
                        j.set("kstacks_bytes", Json::from_u64(s.kstacks_bytes));
                        j.set(
                            "retained_kstack_bytes",
                            Json::from_u64(s.retained_kstack_bytes),
                        );
                        j
                    })
                    .collect(),
            ),
        );
        c.set("mem", mem);
        c.set("kstat", k.kstat().to_json());
        configs.push(c);
    }
    doc.set("configs", Json::Arr(configs));
    doc
}

/// Blessed quick-scale upper bounds for the preemption-latency *maximum*
/// (cycles), per configuration. CI's `kmon --check` step fails if a
/// quick-scale run exceeds a bound — the §5.3 regression gate.
///
/// Only the two "interesting" rows are gated: Process FP (the paper's
/// best case — full kernel preemptibility must stay tight) and Interrupt
/// PP (the best the interrupt model can do). The NP rows are unbounded
/// by design: without preemption a compute burst legitimately holds the
/// CPU for a full timeslice.
///
/// Bounds are the measured quick-scale maxima with ~2x headroom, blessed
/// like the ktrace golden digests. Re-measure with
/// `FLUKE_BENCH_SCALE=quick cargo run -p fluke-bench --bin kmon` after an
/// intentional cost-model change.
pub const QUICK_LATENCY_MAX_BOUNDS: &[(&str, u64)] = &[
    // Measured quick-scale maxima: 3,520 and 6,570 cycles.
    ("Process FP", 8_000),
    ("Interrupt PP", 15_000),
];

/// Check quick-scale preemption-latency maxima against the blessed
/// bounds. Returns one message per violation.
pub fn check_regression(runs: &[Observed]) -> Result<(), String> {
    let mut errors = Vec::new();
    for (label, bound) in QUICK_LATENCY_MAX_BOUNDS {
        match runs.iter().find(|o| o.label() == *label) {
            None => errors.push(format!("no observed run labelled {label}")),
            Some(o) => {
                let h = o.kernel.kprof.preempt_latency();
                if h.count() == 0 {
                    errors.push(format!("{label}: no preemption-latency samples"));
                } else if h.max() > *bound {
                    errors.push(format!(
                        "{label}: preemption-latency max {} cycles exceeds blessed bound {}",
                        h.max(),
                        bound
                    ));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criteria invariant: the kprof phase totals sum to
    /// exactly the simulated cycles on every CPU — no cycle unattributed,
    /// none double-counted — and agree with the independently-maintained
    /// `Stats` cycle counters.
    #[test]
    fn kprof_attribution_sums_exactly_to_simulated_cycles() {
        for cfg in Config::all_five() {
            let o = run_observed(cfg, Scale::Quick);
            let k = &o.kernel;
            let label = o.label();
            assert!(k.kprof.enabled, "{label}: kprof should be on");
            assert_eq!(
                k.kprof.total(),
                k.total_cpu_cycles(),
                "{label}: kprof phase totals must sum to total simulated cycles \
                 (user={} idle={} kernel={})",
                k.kprof.user_cycles(),
                k.kprof.idle_cycles(),
                k.kprof.kernel_cycles(),
            );
            assert_eq!(k.kprof.user_cycles(), k.stats.user_cycles, "{label}: user");
            assert_eq!(k.kprof.idle_cycles(), k.stats.idle_cycles, "{label}: idle");
            assert_eq!(
                k.kprof.kernel_cycles(),
                k.stats.kernel_cycles,
                "{label}: kernel"
            );
        }
    }

    /// Every valid model x preemption configuration produces a populated
    /// preemption-latency histogram, and the paper's §5.3 ordering holds:
    /// full preemption cannot be worse than no preemption at the maximum.
    #[test]
    fn preemption_latency_histograms_cover_all_configs() {
        let runs = run_sweep(Scale::Quick);
        assert_eq!(runs.len(), 5);
        for o in &runs {
            let h = o.kernel.kprof.preempt_latency();
            assert!(
                h.count() > 0,
                "{}: expected timer-wake latency samples",
                o.label()
            );
        }
        let max_of = |label: &str| {
            runs.iter()
                .find(|o| o.label() == label)
                .expect(label)
                .kernel
                .kprof
                .preempt_latency()
                .max()
        };
        assert!(
            max_of("Process FP") <= max_of("Process NP"),
            "full preemption should bound latency at least as tightly as none \
             (fp={} np={})",
            max_of("Process FP"),
            max_of("Process NP")
        );
    }

    /// The dashboard renders every configuration and the JSON document
    /// carries the same totals.
    #[test]
    fn dashboard_and_json_agree() {
        let o = run_observed(Config::process_pp(), Scale::Quick);
        let text = render_dashboard(std::slice::from_ref(&o));
        assert!(text.contains("Process PP"));
        assert!(text.contains("preemption latency"));
        assert!(text.contains("kstat (nonzero):"));
        let doc = to_json(Scale::Quick, std::slice::from_ref(&o));
        let cfgs = doc.get("configs").and_then(Json::items).expect("configs");
        assert_eq!(cfgs.len(), 1);
        assert_eq!(
            cfgs[0].get("total_cycles").and_then(Json::as_u64),
            Some(o.kernel.total_cpu_cycles())
        );
        // The JSON round-trips through the parser bit-identically.
        let reparsed = Json::parse(&doc.to_string()).expect("parse");
        assert_eq!(reparsed, doc);
    }

    /// The regression gate accepts the blessed bounds at quick scale.
    #[test]
    fn quick_scale_latency_is_within_blessed_bounds() {
        let runs: Vec<Observed> = [Config::process_fp(), Config::interrupt_pp()]
            .into_iter()
            .map(|c| run_observed(c, Scale::Quick))
            .collect();
        if let Err(e) = check_regression(&runs) {
            panic!("blessed preemption-latency bounds regressed:\n{e}");
        }
    }
}

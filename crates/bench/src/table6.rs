//! Table 6: effect of the execution model and preemption style on
//! preemption latency, measured with a high-priority kernel thread
//! scheduled every millisecond during a flukeperf run.

use fluke_core::Config;
use fluke_workloads::latency::install_probe;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::report::TextTable;
use crate::Scale;

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub config: &'static str,
    /// Average probe latency, µs.
    pub avg_us: f64,
    /// Median probe latency, µs.
    pub p50_us: f64,
    /// 95th-percentile probe latency, µs.
    pub p95_us: f64,
    /// 99th-percentile probe latency, µs.
    pub p99_us: f64,
    /// Maximum probe latency, µs.
    pub max_us: f64,
    /// Times the probe ran.
    pub runs: u64,
    /// Times it failed to complete before the next period.
    pub misses: u64,
}

/// Run flukeperf + the 1ms probe under one configuration.
fn measure(cfg: Config, params: &FlukeperfParams) -> Row {
    let label = cfg.label;
    let mut run = flukeperf::build(cfg, params);
    install_probe(&mut run.kernel, 1);
    let res = fluke_workloads::common::run_workload(run, 8_000_000_000);
    Row {
        config: label,
        avg_us: res.stats.probe_avg_us(),
        p50_us: res.stats.probe_percentile_us(50.0),
        p95_us: res.stats.probe_percentile_us(95.0),
        p99_us: res.stats.probe_percentile_us(99.0),
        max_us: res.stats.probe_max_us(),
        runs: res.stats.probe_runs,
        misses: res.stats.probe_misses,
    }
}

/// Compute all five rows of Table 6.
pub fn rows(scale: Scale) -> Vec<Row> {
    let params = match scale {
        Scale::Paper => FlukeperfParams::paper(),
        Scale::Quick => {
            // Keep the latency-relevant phases meaningful even when quick:
            // a couple of large sends and searches.
            let mut p = FlukeperfParams::quick();
            p.big_sends = 2;
            p.big_size = 1_536 << 10;
            p.searches = 10;
            p.search_pages = 300;
            p.medium_sends = 40;
            p
        }
    };
    Config::all_five()
        .into_iter()
        .map(|cfg| measure(cfg, &params))
        .collect()
}

/// Render Table 6 like the paper.
pub fn render(scale: Scale) -> String {
    let mut t = TextTable::new(&[
        "Configuration",
        "avg (µs)",
        "p50 (µs)",
        "p95 (µs)",
        "p99 (µs)",
        "max (µs)",
        "run",
        "miss",
    ]);
    for r in rows(scale) {
        t.row(&[
            r.config.to_string(),
            format!("{:.1}", r.avg_us),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p95_us),
            format!("{:.1}", r.p99_us),
            format!("{:.0}", r.max_us),
            r.runs.to_string(),
            r.misses.to_string(),
        ]);
    }
    format!(
        "Table 6: Preemption latency of a 1ms periodic high-priority kernel thread\n\
         during flukeperf (avg/percentile/max wakeup-to-dispatch, runs, missed periods).\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shape_matches_paper() {
        let rows = rows(Scale::Quick);
        let by = |l: &str| rows.iter().find(|r| r.config == l).unwrap().clone();
        let pnp = by("Process NP");
        let ppp = by("Process PP");
        let pfp = by("Process FP");
        let inp = by("Interrupt NP");
        let ipp = by("Interrupt PP");
        for r in &rows {
            assert!(r.runs > 0, "{} probe never ran", r.config);
            // Percentiles are monotone and bracketed by avg-ish bounds.
            assert!(r.p50_us <= r.p95_us, "{} p50 > p95", r.config);
            assert!(r.p95_us <= r.p99_us, "{} p95 > p99", r.config);
            assert!(r.p99_us <= r.max_us + 1e-9, "{} p99 > max", r.config);
        }
        // Maximum latency spans orders of magnitude: NP is bounded by the
        // largest IPC (≈7.5ms), PP by the unpointed region_search
        // (≈1.2ms), FP by the finest copy chunk (tens of µs).
        assert!(pnp.max_us > 4_000.0, "NP max {}", pnp.max_us);
        assert!(
            ppp.max_us > 300.0 && ppp.max_us < pnp.max_us / 3.0,
            "PP max {}",
            ppp.max_us
        );
        assert!(pfp.max_us < 60.0, "FP max {}", pfp.max_us);
        // The interrupt model mirrors the process model per preemption
        // style (paper: "an interrupt-model kernel can perform as well as
        // an equivalently configured process-model kernel").
        assert!(inp.max_us > 4_000.0);
        assert!(ipp.max_us < inp.max_us / 3.0);
        // Averages order the same way.
        assert!(pfp.avg_us < ppp.avg_us);
        assert!(ppp.avg_us <= pnp.avg_us * 1.05);
        // Misses: NP misses periods; FP misses none.
        assert!(pnp.misses > 0, "NP should miss");
        assert_eq!(pfp.misses, 0, "FP must not miss");
        assert!(ppp.misses <= pnp.misses);
    }
}

//! Table 5: performance of the three applications under the five kernel
//! configurations, normalized to Process NP.

use fluke_core::Config;
use fluke_workloads::common::{run_workload, RunResult};
use fluke_workloads::{flukeperf, gcc, memtest, FlukeperfParams, GccParams};

use crate::report::TextTable;
use crate::Scale;

/// Safety budget per cell (simulated cycles).
const BUDGET: u64 = 4_000_000_000;

/// Results of one workload across all five configurations, paper order.
#[derive(Debug, Clone)]
pub struct WorkloadColumn {
    /// Workload name.
    pub workload: &'static str,
    /// (config label, elapsed cycles, normalized-to-Process-NP).
    pub cells: Vec<(&'static str, u64, f64)>,
    /// Absolute Process NP time in milliseconds (the calibration row).
    pub base_ms: f64,
}

fn run_all_configs(build: impl Fn(Config) -> fluke_workloads::WorkloadRun) -> Vec<RunResult> {
    Config::all_five()
        .into_iter()
        .map(|cfg| run_workload(build(cfg), BUDGET))
        .collect()
}

/// Measure one workload column.
fn column(
    workload: &'static str,
    build: impl Fn(Config) -> fluke_workloads::WorkloadRun,
) -> WorkloadColumn {
    let results = run_all_configs(build);
    let base = results[0].elapsed.max(1);
    WorkloadColumn {
        workload,
        cells: results
            .iter()
            .map(|r| (r.config, r.elapsed, r.elapsed as f64 / base as f64))
            .collect(),
        base_ms: results[0].elapsed_ms(),
    }
}

/// Compute all three columns of Table 5.
pub fn columns(scale: Scale) -> Vec<WorkloadColumn> {
    let (fp, gp, mem_mb) = match scale {
        Scale::Paper => (FlukeperfParams::paper(), GccParams::paper(), 16),
        Scale::Quick => (FlukeperfParams::quick(), GccParams::quick(), 1),
    };
    vec![
        column("memtest", |cfg| memtest::build(cfg, mem_mb)),
        column("flukeperf", {
            let fp = fp.clone();
            move |cfg| flukeperf::build(cfg, &fp)
        }),
        column("gcc", {
            let gp = gp.clone();
            move |cfg| gcc::build(cfg, &gp)
        }),
    ]
}

/// Render Table 5 like the paper.
pub fn render(scale: Scale) -> String {
    let cols = columns(scale);
    let mut t = TextTable::new(&["Configuration", "memtest", "flukeperf", "gcc"]);
    for (i, cfg) in Config::all_five().iter().enumerate() {
        let cells: Vec<String> = cols
            .iter()
            .map(|c| format!("{:.2}", c.cells[i].2))
            .collect();
        t.row(&[
            cfg.label.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    let abs: Vec<String> = cols
        .iter()
        .map(|c| format!("({:.0}ms)", c.base_ms))
        .collect();
    t.row(&[
        "(Process NP absolute)".into(),
        abs[0].clone(),
        abs[1].clone(),
        abs[2].clone(),
    ]);
    format!(
        "Table 5: Performance of three applications on the five kernel configurations,\n\
         normalized to Process NP (absolute base times in the last row).\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_matches_paper() {
        // Quick scale keeps the test fast; the *shape* assertions are the
        // paper's qualitative findings.
        let cols = columns(Scale::Quick);
        for c in &cols {
            assert_eq!(c.cells.len(), 5, "{}", c.workload);
            assert!((c.cells[0].2 - 1.0).abs() < 1e-9, "base normalizes to 1");
        }
        let by_name = |n: &str| cols.iter().find(|c| c.workload == n).unwrap();
        let fperf = by_name("flukeperf");
        // Full preemption is the slowest configuration (kernel locking),
        // worst on the kernel-intensive workload (paper: 1.20).
        assert!(fperf.cells[2].2 > 1.01, "FP flukeperf {}", fperf.cells[2].2);
        // Interrupt model is faster than process model on flukeperf
        // (paper: 0.94) — the saved context-switch state.
        assert!(fperf.cells[3].2 < 1.0, "Int NP {}", fperf.cells[3].2);
        assert!(fperf.cells[4].2 < 1.0, "Int PP {}", fperf.cells[4].2);
        // memtest is insensitive to the execution model (paper: 1.00) but
        // pays for FP locking on its fault path (paper: 1.11).
        let mem = by_name("memtest");
        assert!((mem.cells[3].2 - 1.0).abs() < 0.03, "Int NP memtest");
        assert!(mem.cells[2].2 > 1.005, "FP memtest {}", mem.cells[2].2);
        // gcc is dominated by user time: every cell within a few percent
        // of 1.00 except FP which is modestly above.
        let g = by_name("gcc");
        for (label, _, norm) in &g.cells {
            assert!(
                (0.9..1.15).contains(norm),
                "gcc {label} out of band: {norm}"
            );
        }
    }
}

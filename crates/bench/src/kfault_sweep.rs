//! The `kfault` sweep driver: enumerate every injection site of a
//! workload, perturb each one in turn, and prove the user-visible outcome
//! never changes.
//!
//! For a given workload, configuration, and injection kind the driver
//! first runs the workload with the engine armed in count-only mode —
//! which must be outcome-identical to a disarmed run — to obtain the
//! **golden outcome** and the size of the site space. It then re-runs the
//! workload once per site (all of them, or an evenly strided sample under
//! a CI budget), injecting exactly one perturbation, and compares the
//! user-visible projection, each main thread's final registers, and an
//! FNV-64 memory digest against the golden run. The *raw* trace tail
//! after an injection legitimately differs — injections change kernel
//! timing (extra faults, restarts, context switches); the paper's claim
//! is that none of it is visible to user programs.
//!
//! Any divergence is already minimal: a single (workload, config, kind,
//! site) tuple reproduces it deterministically.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg, UserRegs};
use fluke_core::{
    Config, Kernel, KfaultConfig, KfaultKind, RunExit, RunState, SpaceId, ThreadId, UserVisible,
    WaitReason,
};
use fluke_user::checkpoint::{checkpoint_space, identity_window, restore_space, SyscallAgent};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Everything a user program can observe of a finished run (the same
/// oracle the differential fuzzer uses).
#[derive(Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Per-thread user-visible event sequences (syscall results, marks,
    /// halts).
    pub uv: BTreeMap<ThreadId, Vec<UserVisible>>,
    /// (final `eax`, final `edi`) per main thread.
    pub regs: Vec<(u32, u32)>,
    /// FNV-64 digest over the workload's result memory.
    pub mem: u64,
}

fn fnv(acc: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *acc ^= b as u64;
        *acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Checksum `words` 32-bit words at `base` into `edi`.
fn emit_checksum(a: &mut Assembler, base: u32, words: u32, label: &str) {
    a.movi(Reg::Ebp, base);
    a.movi(Reg::Ebx, base + words * 4);
    a.label(label);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.add(Reg::Edi, Reg::Edx);
    a.addi(Reg::Ebp, 4);
    a.cmp(Reg::Ebp, Reg::Ebx);
    a.jcc(Cond::Ne, label);
}

/// Project the outcome of a finished run: user-visible trace, main-thread
/// registers, and a digest over `regions`.
pub(crate) fn outcome(
    k: &mut Kernel,
    mains: &[ThreadId],
    regions: &[(SpaceId, u32, u32)],
    extra: &[u8],
) -> Result<Outcome, String> {
    let mut mem = 0xcbf2_9ce4_8422_2325u64;
    for &(s, base, len) in regions {
        let bytes = k.try_read_mem(s, base, len).map_err(|e| e.to_string())?;
        fnv(&mut mem, &bytes);
    }
    fnv(&mut mem, extra);
    Ok(Outcome {
        uv: k.trace.user_visible(),
        regs: mains
            .iter()
            .map(|&t| {
                let r = k.thread_regs(t);
                (r.get(Reg::Eax), r.get(Reg::Edi))
            })
            .collect(),
        mem,
    })
}

/// Read the armed engine's counters after a run.
fn kfault_counters(k: &Kernel) -> (u64, bool) {
    k.kfault()
        .map_or((0, false), |f| (f.sites_seen(), f.fired()))
}

/// Run `k` in short slices until `pred` holds or `budget` cycles elapse.
/// Predicate-driven (never time-driven) so perturbed runs reach the same
/// logical point as the golden run regardless of timing.
fn run_until(
    k: &mut Kernel,
    budget: u64,
    mut pred: impl FnMut(&mut Kernel) -> bool,
) -> Result<(), String> {
    let deadline = k.now() + budget;
    loop {
        if pred(k) {
            return Ok(());
        }
        let exit = k.run(Some((k.now() + 10_000).min(deadline)));
        if pred(k) {
            return Ok(());
        }
        match exit {
            RunExit::TimeLimit if k.now() >= deadline => {
                return Err("predicate not reached within budget".to_string());
            }
            RunExit::TimeLimit => {}
            RunExit::AllHalted | RunExit::Deadlock => {
                return Err(format!("system quiesced ({exit:?}) before predicate"));
            }
        }
    }
}

/// The workloads the sweep attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepWorkload {
    /// Client/server request-reply echo over one IPC connection — the
    /// paper's core communication primitive, multi-stage and restartable.
    IpcEcho,
    /// The §4.1 flagship: drive a child to a deterministic blocked state,
    /// checkpoint it through the API, destroy the original thread,
    /// restore into a fresh space, and run the clone to completion.
    Checkpoint,
}

impl SweepWorkload {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SweepWorkload::IpcEcho => "ipc-echo",
            SweepWorkload::Checkpoint => "checkpoint",
        }
    }

    /// Run the workload to completion under `cfg` (plus optional kfault
    /// arming) and project its outcome. Also returns the engine's
    /// (sites_seen, fired) counters.
    pub fn run(
        self,
        cfg: &Config,
        kf: Option<KfaultConfig>,
    ) -> Result<(Outcome, u64, bool), String> {
        self.run_kernel(cfg, kf).map(|(o, s, f, _)| (o, s, f))
    }

    /// Like [`SweepWorkload::run`], but also hands back the finished
    /// kernel so callers can inspect instrumentation state (`kspan`,
    /// `kprof`, `kstat`) accumulated over the run.
    pub fn run_kernel(
        self,
        cfg: &Config,
        kf: Option<KfaultConfig>,
    ) -> Result<(Outcome, u64, bool, Kernel), String> {
        match self {
            SweepWorkload::IpcEcho => run_echo(cfg, kf),
            SweepWorkload::Checkpoint => run_checkpoint(cfg, kf),
        }
    }
}

fn armed(cfg: &Config, kf: Option<KfaultConfig>) -> Config {
    let c = cfg.clone().with_tracing(1 << 16);
    match kf {
        Some(kf) => c.with_kfault(kf),
        None => c,
    }
}

/// Fixed-shape IPC echo: two request/reply exchanges over one connection,
/// then the client checksums the final echo. Small by design — the sweep
/// runs the whole workload once per site.
fn run_echo(
    cfg: &Config,
    kf: Option<KfaultConfig>,
) -> Result<(Outcome, u64, bool, Kernel), String> {
    const LEN: u32 = 64;
    const EXCHANGES: u32 = 2;
    let mut k = Kernel::new(armed(cfg, kf));
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x4000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    let sbuf = server.mem_base + 0x1000;
    let cbuf = client.mem_base + 0x1000;
    let crbuf = client.mem_base + 0x2000;

    let mut a = Assembler::new("kfault-echo-server");
    a.server_wait_receive(h_port, sbuf, LEN);
    for _ in 1..EXCHANGES {
        a.movi(ARG_SBUF, sbuf);
        a.movi(ARG_COUNT, LEN);
        a.movi(ARG_RBUF, sbuf);
        a.movi(ARG_VAL, LEN);
        a.sys(Sys::IpcServerSendWaitReceive);
    }
    a.server_ack_send(sbuf, LEN);
    a.halt();
    let st = server.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("kfault-echo-client");
    a.xor(Reg::Edi, Reg::Edi);
    a.client_rpc(h_ref, cbuf, LEN, crbuf, LEN);
    for _ in 1..EXCHANGES {
        a.movi(ARG_SBUF, cbuf);
        a.movi(ARG_COUNT, LEN);
        a.movi(ARG_RBUF, crbuf);
        a.movi(ARG_VAL, LEN);
        a.sys(Sys::IpcClientSendOverReceive);
    }
    emit_checksum(&mut a, crbuf, LEN / 4, "ck-echo");
    a.mov(ARG_VAL, Reg::Edi);
    a.sys(Sys::SysTrace);
    a.halt();
    let ct = client.start(&mut k, a.finish(), 8);

    let payload: Vec<u8> = (0..LEN).map(|i| (i.wrapping_mul(7) ^ 0x5a) as u8).collect();
    k.try_write_mem(client.space, cbuf, &payload)
        .map_err(|e| e.to_string())?;
    if !run_to_halt(&mut k, &[st, ct], 5_000_000_000) {
        return Err(format!("echo hung under {}", cfg.label));
    }
    let regions = [(server.space, sbuf, LEN), (client.space, crbuf, LEN)];
    let out = outcome(&mut k, &[st, ct], &regions, &[])?;
    let (sites, fired) = kfault_counters(&k);
    Ok((out, sites, fired, k))
}

/// Layout of the checkpoint workload's child window (mirrors the
/// checkpoint/migrate integration tests).
const CHILD_BASE: u32 = 0x0040_0000;
const CHILD_LEN: u32 = 0x4000;
const MGR_MEM: u32 = 0x0010_0000;
const H_MUTEX: u32 = CHILD_BASE;
const H_BLOCKER: u32 = CHILD_BASE + 64;
const DONE_FLAG: u32 = CHILD_BASE + 0x1004;

/// Checkpoint/restore under fire. A holder thread leaves a mutex locked;
/// a blocker thread blocks on it — a *logical* quiescent point every
/// perturbed run reaches identically (all driving is predicate-based).
/// The manager then checkpoints the child through the API, destroys the
/// blocked thread, restores the image into a fresh space, unlocks the
/// restored mutex, and the clone finishes the work. Injections land on
/// the workload threads *and* the manager's agent threads alike.
fn run_checkpoint(
    cfg: &Config,
    kf: Option<KfaultConfig>,
) -> Result<(Outcome, u64, bool, Kernel), String> {
    let mut k = Kernel::new(armed(cfg, kf));
    let manager = k.create_space();
    k.grant_pages(manager, MGR_MEM, 0x2000, true);
    let child = k.create_space();
    k.grant_pages(child, CHILD_BASE, CHILD_LEN, true);
    identity_window(
        &mut k,
        manager,
        MGR_MEM + 0x1000,
        child,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space_handle = MGR_MEM + 0x1800;
    k.loader_space_object(manager, space_handle, child);
    let agent = SyscallAgent::new(&mut k, manager, 20);

    // Holder: create the mutex, lock it, halt (leaving it locked).
    let mut a = Assembler::new("kfault-holder");
    a.sys_h(Sys::MutexCreate, H_MUTEX);
    a.mutex_lock(H_MUTEX);
    a.halt();
    let pid = k.register_program(a.finish());
    let holder = k.spawn_thread(child, pid, UserRegs::new(), 8);
    run_until(&mut k, 1_000_000_000, |k| k.thread_halted(holder))?;

    // Blocker: block on the mutex, then finish the work once woken.
    let mut a = Assembler::new("kfault-blocker");
    a.mutex_lock(H_MUTEX);
    a.store_const(DONE_FLAG, 0xB10C);
    a.halt();
    let pid = k.register_program(a.finish());
    let blocker = k.spawn_thread(child, pid, UserRegs::new(), 8);
    k.loader_thread_object(child, H_BLOCKER, blocker);
    run_until(&mut k, 1_000_000_000, |k| {
        matches!(
            k.thread_run_state(blocker),
            RunState::Blocked(WaitReason::Mutex(_))
        )
    })?;

    // Checkpoint the quiescent child, then destroy the blocked original.
    let image = checkpoint_space(&mut k, &agent, space_handle, CHILD_BASE, CHILD_LEN, MGR_MEM)
        .map_err(|e| e.to_string())?;
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, H_BLOCKER);
    let (code, _) = agent.call_checked(&mut k, Sys::ThreadDestroy, regs);
    if code != ErrorCode::Success {
        return Err(format!("thread_destroy failed: {code:?}"));
    }

    // Restore into a fresh space via a second manager window.
    let child2 = k.create_space();
    k.grant_pages(child2, CHILD_BASE, CHILD_LEN, true);
    let mgr2_mem = 0x0060_0000;
    let manager2 = k.create_space();
    k.grant_pages(manager2, mgr2_mem, 0x2000, true);
    identity_window(
        &mut k,
        manager2,
        mgr2_mem + 0x1000,
        child2,
        CHILD_BASE,
        CHILD_LEN,
    );
    let space2_handle = mgr2_mem + 0x1800;
    k.loader_space_object(manager2, space2_handle, child2);
    let agent2 = SyscallAgent::new(&mut k, manager2, 20);
    restore_space(&mut k, &agent2, &image, space2_handle, mgr2_mem).map_err(|e| e.to_string())?;

    // Unlock the restored mutex; the restored clone re-acquires it and
    // completes the interrupted work.
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, H_MUTEX);
    let (code, _) = agent2.call_checked(&mut k, Sys::MutexUnlock, regs);
    if code != ErrorCode::Success {
        return Err(format!("mutex_unlock failed: {code:?}"));
    }
    run_until(&mut k, 1_000_000_000, |k| {
        k.read_mem_u32(child2, DONE_FLAG) == 0xB10C
    })?;

    let regions = [
        (child, CHILD_BASE + 0x1000, 0x100),
        (child2, CHILD_BASE + 0x1000, 0x100),
    ];
    let out = outcome(
        &mut k,
        &[holder, blocker],
        &regions,
        image.to_json_string().as_bytes(),
    )?;
    let (sites, fired) = kfault_counters(&k);
    Ok((out, sites, fired, k))
}

/// One divergence found by a sweep: the minimal reproducer is the
/// enclosing report's (workload, config, kind) plus this site index.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The injection-site index that produced the divergence.
    pub site: u64,
    /// What differed (first differing outcome component, or the error).
    pub detail: String,
}

/// The result of sweeping one (workload, config, kind) combination.
#[derive(Debug)]
pub struct SweepReport {
    /// Workload label.
    pub workload: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// Injection kind swept.
    pub kind: KfaultKind,
    /// Size of the site space (count-only enumeration).
    pub sites_total: u64,
    /// Sites actually perturbed (all of them, or a strided sample under a
    /// budget).
    pub sites_run: u64,
    /// Perturbed runs in which the injection actually fired.
    pub injections_fired: u64,
    /// Divergences found (empty = the atomicity claim held everywhere).
    pub divergences: Vec<Divergence>,
}

impl SweepReport {
    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<11} {:<13} {:<16} sites={:<6} run={:<6} fired={:<6} divergences={}",
            self.workload,
            self.config,
            self.kind.name(),
            self.sites_total,
            self.sites_run,
            self.injections_fired,
            self.divergences.len()
        )
    }

    /// Deterministic reproducer lines for every divergence.
    pub fn reproducers(&self) -> Vec<String> {
        self.divergences
            .iter()
            .map(|d| {
                format!(
                    "kfault repro: workload={} config=\"{}\" kind={} site={} — {}",
                    self.workload,
                    self.config,
                    self.kind.name(),
                    d.site,
                    d.detail
                )
            })
            .collect()
    }
}

/// Describe the first component in which `got` differs from `want`.
pub(crate) fn diff_outcomes(want: &Outcome, got: &Outcome) -> String {
    if want.mem != got.mem {
        return format!(
            "memory digest {:#018x} != golden {:#018x}",
            got.mem, want.mem
        );
    }
    if want.regs != got.regs {
        return format!("final registers {:x?} != golden {:x?}", got.regs, want.regs);
    }
    if want.uv != got.uv {
        for (t, w) in &want.uv {
            match got.uv.get(t) {
                None => return format!("thread {} missing from user-visible trace", t.0),
                Some(g) if g != w => {
                    let i = w.iter().zip(g.iter()).position(|(a, b)| a != b);
                    return format!(
                        "thread {} user-visible events diverge at index {:?} \
                         (golden len {}, got len {})",
                        t.0,
                        i,
                        w.len(),
                        g.len()
                    );
                }
                _ => {}
            }
        }
        return "extra threads in user-visible trace".to_string();
    }
    "outcomes equal (spurious diff)".to_string()
}

/// Sweep one (workload, config, kind): enumerate the site space, perturb
/// each chosen site, and compare every outcome to the golden run.
/// `budget` bounds the number of perturbed runs; the chosen sites are
/// strided evenly across the whole space so a bounded sweep still covers
/// early, middle, and late execution.
pub fn sweep(
    w: SweepWorkload,
    cfg: &Config,
    kind: KfaultKind,
    budget: Option<u64>,
) -> Result<SweepReport, String> {
    // Golden run with the engine armed in count-only mode: must be
    // outcome-identical to a disarmed run (the hooks themselves are
    // zero-perturbation), and tells us how many sites exist.
    let (golden, total, fired) = w.run(cfg, Some(KfaultConfig::count_sites(kind)))?;
    if fired {
        return Err("count-only engine fired an injection".to_string());
    }
    let (bare, zero, _) = w.run(cfg, None)?;
    if zero != 0 {
        return Err("disarmed engine counted sites".to_string());
    }
    if bare != golden {
        return Err(format!(
            "count-only arming perturbed the outcome: {}",
            diff_outcomes(&bare, &golden)
        ));
    }
    let sites_run = budget.map_or(total, |b| total.min(b));
    let mut divergences = Vec::new();
    let mut injections_fired = 0;
    for i in 0..sites_run {
        let site = i * total / sites_run.max(1);
        let kfc = KfaultConfig::at(kind, site);
        match catch_unwind(AssertUnwindSafe(|| w.run(cfg, Some(kfc)))) {
            Ok(Ok((got, _, f))) => {
                if f {
                    injections_fired += 1;
                }
                if got != golden {
                    divergences.push(Divergence {
                        site,
                        detail: diff_outcomes(&golden, &got),
                    });
                }
            }
            Ok(Err(e)) => divergences.push(Divergence { site, detail: e }),
            Err(_) => divergences.push(Divergence {
                site,
                detail: "workload panicked under injection".to_string(),
            }),
        }
    }
    Ok(SweepReport {
        workload: w.label(),
        config: cfg.label,
        kind,
        sites_total: total,
        sites_run,
        injections_fired,
        divergences,
    })
}

/// The four comparable model × preemption configurations the sweep runs
/// under (Full preemption has no cross-model partner).
pub fn sweep_configs() -> [Config; 4] {
    [
        Config::process_np(),
        Config::interrupt_np(),
        Config::process_pp(),
        Config::interrupt_pp(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bounded echo sweep: every kind, all four configurations, a handful
    /// of strided sites each. The full-site sweep runs in the dedicated
    /// bin (and CI's kfault-smoke step).
    #[test]
    fn echo_sweep_bounded_all_kinds_and_configs() {
        for cfg in sweep_configs() {
            for kind in KfaultKind::ALL {
                let r = sweep(SweepWorkload::IpcEcho, &cfg, kind, Some(6))
                    .unwrap_or_else(|e| panic!("{} {}: {e}", cfg.label, kind.name()));
                assert!(r.sites_total > 0, "{} {}: no sites", cfg.label, kind.name());
                assert!(
                    r.divergences.is_empty(),
                    "{} {}: {:?}",
                    cfg.label,
                    kind.name(),
                    r.reproducers()
                );
                assert_eq!(r.injections_fired, r.sites_run);
            }
        }
    }

    /// Bounded checkpoint sweep: the extract/restore kind (the paper's §2
    /// correctness test) against the checkpoint/restore workload itself.
    #[test]
    fn checkpoint_sweep_bounded_extract_restore() {
        for cfg in [Config::process_np(), Config::interrupt_pp()] {
            let r = sweep(
                SweepWorkload::Checkpoint,
                &cfg,
                KfaultKind::ExtractRestore,
                Some(3),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label));
            assert!(
                r.divergences.is_empty(),
                "{}: {:?}",
                cfg.label,
                r.reproducers()
            );
            assert_eq!(r.injections_fired, r.sites_run);
        }
    }

    /// The sweep oracle itself is deterministic: two runs of the same
    /// perturbed site agree bit-for-bit.
    #[test]
    fn perturbed_runs_are_reproducible() {
        let cfg = Config::process_pp();
        let kf = Some(KfaultConfig::at(KfaultKind::ExtractRestore, 5));
        let a = SweepWorkload::IpcEcho.run(&cfg, kf).unwrap();
        let b = SweepWorkload::IpcEcho.run(&cfg, kf).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}

//! Cross-model trace diffing: run the same workload under the process
//! and interrupt execution models with `ktrace` enabled, project each
//! trace to its user-visible events, and verify the projections are
//! identical — the paper's claim that the execution model is a kernel
//! implementation detail, checked event by event instead of only at
//! final state.
//!
//! The *full* traces legitimately differ: the models charge different
//! entry/exit and context-switch costs, which shifts preemption timing,
//! and with it restarts, context switches and rollbacks. What must not
//! differ is what each thread could itself observe — the ordered result
//! codes of its completed system calls, its `sys_trace` marks, and its
//! halt ([`fluke_core::Tracer::user_visible`]).

use fluke_api::SysClass;
use fluke_core::{Config, Histogram, Kernel, RunExit, TraceEvent, UserVisible};
use fluke_workloads::common::WorkloadRun;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::Scale;

/// Ring capacity for diff runs: generous enough that no event drops
/// (dropped events would punch holes in the projection).
pub const DIFF_RING_CAPACITY: usize = 1 << 20;

/// Run a built workload to completion and hand back the kernel (unlike
/// `run_workload`, which consumes it and keeps only the stats).
///
/// # Panics
///
/// Panics if the workload fails to finish within `budget` cycles.
pub fn run_keep_kernel(mut w: WorkloadRun, budget: u64) -> Kernel {
    let start = w.kernel.now();
    let deadline = start + budget;
    const SLICE: u64 = 50_000;
    loop {
        let exit = w.kernel.run(Some((w.kernel.now() + SLICE).min(deadline)));
        if w.main_threads.iter().all(|&t| w.kernel.thread_halted(t)) {
            break;
        }
        match exit {
            RunExit::TimeLimit if w.kernel.now() >= deadline => {
                panic!("workload {} did not finish within {budget} cycles", w.label)
            }
            RunExit::TimeLimit => {}
            RunExit::AllHalted | RunExit::Deadlock => {
                panic!("workload {} wedged (exit {exit:?})", w.label)
            }
        }
    }
    w.kernel
}

/// Build and run flukeperf under `cfg` with tracing on; return the
/// kernel with its full trace.
pub fn run_traced_flukeperf(cfg: Config, scale: Scale) -> Kernel {
    let params = match scale {
        Scale::Paper => FlukeperfParams::paper(),
        Scale::Quick => FlukeperfParams::quick(),
    };
    let run = flukeperf::build(cfg.with_tracing(DIFF_RING_CAPACITY), &params);
    run_keep_kernel(run, 8_000_000_000)
}

/// A canonical digest of a kernel's *raw* merged trace: FNV-1a over one
/// text line per record, plus the record count.
///
/// This is the strongest behavior-preservation oracle we have: two
/// kernels produce the same digest only if every record — timestamp,
/// CPU, sequence number, event kind and payload — is identical. The
/// golden-digest regression test uses it to prove refactors of the
/// dispatch path change *nothing*, not merely nothing user-visible.
///
/// The canonical line enumerates payload fields explicitly so that
/// *adding* a field to an event (e.g. a derived annotation) does not
/// silently invalidate blessed digests.
pub fn trace_digest(k: &Kernel) -> (u64, u64) {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let merged = k.trace.merged();
    for rec in &merged {
        let tid = rec
            .event
            .thread()
            .map_or_else(|| "-".to_string(), |t| t.0.to_string());
        let payload = match rec.event {
            TraceEvent::SyscallEnter { sys, .. } | TraceEvent::SyscallRestart { sys, .. } => {
                format!("sys={sys}")
            }
            TraceEvent::SyscallExit { code, .. } => format!("code={code}"),
            TraceEvent::IpcSend { bytes, .. } | TraceEvent::IpcTransfer { bytes, .. } => {
                format!("bytes={bytes}")
            }
            TraceEvent::IpcReceive { window, .. } => format!("window={window}"),
            TraceEvent::SoftFault { addr, remedy, .. } => format!("addr={addr} remedy={remedy}"),
            TraceEvent::HardFault { offset, .. } => format!("offset={offset}"),
            TraceEvent::HardFaultDone { remedy, .. } => format!("remedy={remedy}"),
            TraceEvent::Rollback { cycles, .. } => format!("cycles={cycles}"),
            TraceEvent::CtxSwitch { space_switch, .. } => format!("space={}", space_switch as u32),
            TraceEvent::Mark { value, .. } => format!("value={value}"),
            TraceEvent::FaultInjected { kind, site, .. } => format!("kind={kind} site={site}"),
            TraceEvent::IpcMessage { .. }
            | TraceEvent::UserPreempt { .. }
            | TraceEvent::KernelPreempt { .. }
            | TraceEvent::Block { .. }
            | TraceEvent::Wake { .. }
            | TraceEvent::Halt { .. } => String::new(),
        };
        mix(&format!(
            "{} {} {} {} {} {}\n",
            rec.at,
            rec.cpu,
            rec.seq,
            rec.event.name(),
            tid,
            payload
        ));
    }
    (h, merged.len() as u64)
}

/// Enter-to-exit latency of completed system calls, one histogram per
/// Table-1 class — the bucketing the paper's Table 6 uses to compare
/// entrypoint costs (Trivial vs Short vs Long vs Multi-stage).
///
/// Latency is wall-clock simulated time from the `syscall_enter` event
/// to the matching `syscall_exit`, so it includes blocking, restarts and
/// rollbacks — the user-observable cost of the call, not just the
/// in-kernel path length.
#[derive(Default)]
pub struct ClassLatency {
    per_class: [Histogram; 4],
}

impl ClassLatency {
    /// The latency histogram for one Table-1 class.
    pub fn class(&self, c: SysClass) -> &Histogram {
        &self.per_class[c.index()]
    }

    /// Completed calls across all classes.
    pub fn total_count(&self) -> u64 {
        self.per_class.iter().map(Histogram::count).sum()
    }

    /// One summary line per class: count, mean, p95, max (cycles).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in SysClass::ALL {
            let h = self.class(c);
            out.push_str(&format!(
                "{:<12} n={:<8} mean={:<10.1} p95={:<8} max={}\n",
                c.name(),
                h.count(),
                h.mean(),
                h.percentile(95.0),
                h.max()
            ));
        }
        out
    }
}

/// Bucket every completed syscall's enter-to-exit latency by the
/// [`SysClass`] stamped on the ktrace events.
///
/// Calls whose entrypoint number was invalid carry no class and are
/// skipped; a call still in flight when the trace ends never exits and
/// is likewise skipped. Restart re-dispatches (`syscall_restart`) do
/// not reopen a call — latency spans the original user-issued entry.
pub fn syscall_latency_by_class(k: &Kernel) -> ClassLatency {
    assert_eq!(
        k.trace.dropped_total(),
        0,
        "trace overflowed; grow the ring"
    );
    let mut open: std::collections::BTreeMap<u32, (u64, SysClass)> =
        std::collections::BTreeMap::new();
    let mut out = ClassLatency::default();
    for rec in k.trace.merged() {
        match rec.event {
            TraceEvent::SyscallEnter {
                thread,
                class: Some(c),
                ..
            } => {
                open.insert(thread.0, (rec.at, c));
            }
            TraceEvent::SyscallExit { thread, .. } => {
                if let Some((at, c)) = open.remove(&thread.0) {
                    out.per_class[c.index()].record(rec.at - at);
                }
            }
            _ => {}
        }
    }
    out
}

/// One user-visible divergence between two traces.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The thread (arena id, identical across runs of the same builder).
    pub thread: u32,
    /// Index into that thread's user-visible sequence.
    pub index: usize,
    /// What the first run saw at that position.
    pub left: Option<UserVisible>,
    /// What the second run saw.
    pub right: Option<UserVisible>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} event {}: {:?} vs {:?}",
            self.thread, self.index, self.left, self.right
        )
    }
}

/// Diff two kernels' user-visible projections. Empty result means the
/// runs were user-visibly identical.
pub fn diff_user_visible(a: &Kernel, b: &Kernel) -> Vec<Divergence> {
    assert_eq!(a.trace.dropped_total(), 0, "left trace overflowed");
    assert_eq!(b.trace.dropped_total(), 0, "right trace overflowed");
    let ua = a.trace.user_visible();
    let ub = b.trace.user_visible();
    let mut out = Vec::new();
    let threads: std::collections::BTreeSet<_> = ua.keys().chain(ub.keys()).copied().collect();
    let empty = Vec::new();
    for t in threads {
        let left = ua.get(&t).unwrap_or(&empty);
        let right = ub.get(&t).unwrap_or(&empty);
        for i in 0..left.len().max(right.len()) {
            let l = left.get(i).copied();
            let r = right.get(i).copied();
            if l != r {
                out.push(Divergence {
                    thread: t.0,
                    index: i,
                    left: l,
                    right: r,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_and_interrupt_models_are_user_visibly_identical() {
        let a = run_traced_flukeperf(Config::process_np(), Scale::Quick);
        let b = run_traced_flukeperf(Config::interrupt_np(), Scale::Quick);
        // The raw traces must differ (the models really are different
        // kernels inside: entry/exit and switch costs shift every
        // timestamp)…
        assert_ne!(
            a.trace.merged(),
            b.trace.merged(),
            "expected different internal event streams across models"
        );
        // …while the user-visible projections are identical.
        let div = diff_user_visible(&a, &b);
        assert!(
            div.is_empty(),
            "models diverged: {}",
            div.iter()
                .take(5)
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    #[test]
    fn class_latency_buckets_flukeperf_syscalls() {
        let k = run_traced_flukeperf(Config::process_np(), Scale::Quick);
        let lat = syscall_latency_by_class(&k);
        // flukeperf's phases issue calls of every class but Long: nulls
        // and yields (Trivial), object lifecycle (Short), and IPC
        // send/receive (Multi-stage).
        for c in [SysClass::Trivial, SysClass::Short, SysClass::MultiStage] {
            assert!(
                !lat.class(c).is_empty(),
                "expected {} calls in flukeperf\n{}",
                c.name(),
                lat.summary()
            );
        }
        // Every completed call landed in exactly one bucket: the class
        // totals add up to the number of exit events with a valid class.
        let exits = k
            .trace
            .merged()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::SyscallExit { .. }))
            .count() as u64;
        assert!(lat.total_count() <= exits);
        assert!(lat.total_count() > 0);
        // Blocking classes cannot be cheaper than the trivial floor.
        if !lat.class(SysClass::MultiStage).is_empty() {
            assert!(
                lat.class(SysClass::MultiStage).max() >= lat.class(SysClass::Trivial).min(),
                "{}",
                lat.summary()
            );
        }
    }

    #[test]
    fn preemption_styles_are_user_visibly_identical() {
        let a = run_traced_flukeperf(Config::process_np(), Scale::Quick);
        let b = run_traced_flukeperf(Config::process_pp(), Scale::Quick);
        let div = diff_user_visible(&a, &b);
        assert!(div.is_empty(), "{} divergences", div.len());
    }
}

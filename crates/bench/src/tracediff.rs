//! Cross-model trace diffing: run the same workload under the process
//! and interrupt execution models with `ktrace` enabled, project each
//! trace to its user-visible events, and verify the projections are
//! identical — the paper's claim that the execution model is a kernel
//! implementation detail, checked event by event instead of only at
//! final state.
//!
//! The *full* traces legitimately differ: the models charge different
//! entry/exit and context-switch costs, which shifts preemption timing,
//! and with it restarts, context switches and rollbacks. What must not
//! differ is what each thread could itself observe — the ordered result
//! codes of its completed system calls, its `sys_trace` marks, and its
//! halt ([`fluke_core::Tracer::user_visible`]).

use fluke_core::{Config, Kernel, RunExit, UserVisible};
use fluke_workloads::common::WorkloadRun;
use fluke_workloads::{flukeperf, FlukeperfParams};

use crate::Scale;

/// Ring capacity for diff runs: generous enough that no event drops
/// (dropped events would punch holes in the projection).
pub const DIFF_RING_CAPACITY: usize = 1 << 20;

/// Run a built workload to completion and hand back the kernel (unlike
/// `run_workload`, which consumes it and keeps only the stats).
///
/// # Panics
///
/// Panics if the workload fails to finish within `budget` cycles.
pub fn run_keep_kernel(mut w: WorkloadRun, budget: u64) -> Kernel {
    let start = w.kernel.now();
    let deadline = start + budget;
    const SLICE: u64 = 50_000;
    loop {
        let exit = w.kernel.run(Some((w.kernel.now() + SLICE).min(deadline)));
        if w.main_threads.iter().all(|&t| w.kernel.thread_halted(t)) {
            break;
        }
        match exit {
            RunExit::TimeLimit if w.kernel.now() >= deadline => {
                panic!("workload {} did not finish within {budget} cycles", w.label)
            }
            RunExit::TimeLimit => {}
            RunExit::AllHalted | RunExit::Deadlock => {
                panic!("workload {} wedged (exit {exit:?})", w.label)
            }
        }
    }
    w.kernel
}

/// Build and run flukeperf under `cfg` with tracing on; return the
/// kernel with its full trace.
pub fn run_traced_flukeperf(cfg: Config, scale: Scale) -> Kernel {
    let params = match scale {
        Scale::Paper => FlukeperfParams::paper(),
        Scale::Quick => FlukeperfParams::quick(),
    };
    let run = flukeperf::build(cfg.with_tracing(DIFF_RING_CAPACITY), &params);
    run_keep_kernel(run, 8_000_000_000)
}

/// One user-visible divergence between two traces.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The thread (arena id, identical across runs of the same builder).
    pub thread: u32,
    /// Index into that thread's user-visible sequence.
    pub index: usize,
    /// What the first run saw at that position.
    pub left: Option<UserVisible>,
    /// What the second run saw.
    pub right: Option<UserVisible>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} event {}: {:?} vs {:?}",
            self.thread, self.index, self.left, self.right
        )
    }
}

/// Diff two kernels' user-visible projections. Empty result means the
/// runs were user-visibly identical.
pub fn diff_user_visible(a: &Kernel, b: &Kernel) -> Vec<Divergence> {
    assert_eq!(a.trace.dropped_total(), 0, "left trace overflowed");
    assert_eq!(b.trace.dropped_total(), 0, "right trace overflowed");
    let ua = a.trace.user_visible();
    let ub = b.trace.user_visible();
    let mut out = Vec::new();
    let threads: std::collections::BTreeSet<_> = ua.keys().chain(ub.keys()).copied().collect();
    let empty = Vec::new();
    for t in threads {
        let left = ua.get(&t).unwrap_or(&empty);
        let right = ub.get(&t).unwrap_or(&empty);
        for i in 0..left.len().max(right.len()) {
            let l = left.get(i).copied();
            let r = right.get(i).copied();
            if l != r {
                out.push(Divergence {
                    thread: t.0,
                    index: i,
                    left: l,
                    right: r,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_and_interrupt_models_are_user_visibly_identical() {
        let a = run_traced_flukeperf(Config::process_np(), Scale::Quick);
        let b = run_traced_flukeperf(Config::interrupt_np(), Scale::Quick);
        // The raw traces must differ (the models really are different
        // kernels inside: entry/exit and switch costs shift every
        // timestamp)…
        assert_ne!(
            a.trace.merged(),
            b.trace.merged(),
            "expected different internal event streams across models"
        );
        // …while the user-visible projections are identical.
        let div = diff_user_visible(&a, &b);
        assert!(
            div.is_empty(),
            "models diverged: {}",
            div.iter()
                .take(5)
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    #[test]
    fn preemption_styles_are_user_visibly_identical() {
        let a = run_traced_flukeperf(Config::process_np(), Scale::Quick);
        let b = run_traced_flukeperf(Config::process_pp(), Scale::Quick);
        let div = diff_user_visible(&a, &b);
        assert!(div.is_empty(), "{} divergences", div.len());
    }
}

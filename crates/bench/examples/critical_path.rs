//! Prints the kspan critical-path breakdown of the IPC-echo workload
//! under all four comparable configurations — the source of the
//! EXPERIMENTS.md critical-path table. Deterministic: same numbers on
//! every run.

use fluke_bench::kfault_sweep::{sweep_configs, SweepWorkload};
use fluke_bench::observability::critical_path_totals;

fn main() {
    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>11} {:>9} {:>9}",
        "config", "requests", "on_cpu", "runnable", "blocked_ipc", "lock", "other"
    );
    for cfg in sweep_configs() {
        let (_, _, _, k) = SweepWorkload::IpcEcho
            .run_kernel(&cfg.clone().with_kspan(), None)
            .expect("echo run");
        let (on_cpu, runnable, ipc, lock, other) = critical_path_totals(&k);
        println!(
            "{:<22} {:>8} {:>9} {:>10} {:>11} {:>9} {:>9}",
            cfg.label,
            k.kspan.completed().len(),
            on_cpu,
            runnable,
            ipc,
            lock,
            other
        );
    }
}

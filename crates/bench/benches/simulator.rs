//! Wall-clock benches of the simulator's hot paths, plus cheap re-checks
//! of the model-differential micro-costs.
//!
//! This is a plain self-timed harness (`harness = false`) so the
//! workspace carries no external benchmark framework and still builds
//! offline. Run with `cargo bench -p fluke-bench`.

use std::time::Instant;

use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg, UserRegs};
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Time `iters` runs of `f`, reporting mean wall-clock per iteration.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warmup to populate allocator caches and fault in code pages.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total / iters;
    println!("{name:<40} {per:>12.2?}/iter ({iters} iters, total {total:.2?})");
}

/// Simulate a burst of pure user instructions (dispatch throughput).
fn bench_user_instructions() {
    bench("simulate_100k_user_instructions", 20, || {
        let mut k = Kernel::new(Config::process_np());
        let mut p = ChildProc::new(&mut k);
        let _ = p.alloc_obj();
        let mut a = Assembler::new("spin");
        a.movi(Reg::Ecx, 25_000);
        a.label("l");
        a.addi(Reg::Ebx, 1);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "l");
        a.halt();
        let t = p.start(&mut k, a.finish(), 8);
        assert!(run_to_halt(&mut k, &[t], 10_000_000_000));
    });
}

/// Simulate 1000 null system calls under each execution model.
fn bench_null_syscalls() {
    for cfg in [Config::process_np(), Config::interrupt_np()] {
        bench(
            &format!("simulate_1k_null_syscalls/{}", cfg.label),
            20,
            || {
                let mut k = Kernel::new(cfg.clone());
                let mut p = ChildProc::new(&mut k);
                let _ = p.alloc_obj();
                let mut a = Assembler::new("nulls");
                fluke_workloads::common::counted_loop(&mut a, "l", p.mem_base + 0x200, 1000, |a| {
                    a.sys(Sys::SysNull);
                });
                a.halt();
                let t = p.start(&mut k, a.finish(), 8);
                assert!(run_to_halt(&mut k, &[t], 10_000_000_000));
            },
        );
    }
}

/// Simulate 100 small RPC round trips (the context-switch mill).
fn bench_rpc_round_trips() {
    bench("simulate_100_rpc_round_trips", 20, || {
        let mut k = Kernel::new(Config::process_np());
        let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
        let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x8000);
        let h_port = server.alloc_obj();
        let h_ref = client.alloc_obj();
        let port = k.loader_create(server.space, h_port, ObjType::Port);
        k.loader_ref(client.space, h_ref, port);
        let mut a = Assembler::new("echo");
        a.label("loop");
        a.server_wait_receive(h_port, server.mem_base + 0x1000, 64);
        a.server_ack_send(server.mem_base + 0x1000, 64);
        a.jmp("loop");
        let _s = server.start(&mut k, a.finish(), 9);
        let mut a = Assembler::new("client");
        fluke_workloads::common::counted_loop(&mut a, "l", client.mem_base + 0x200, 100, |a| {
            a.client_rpc(
                h_ref,
                client.mem_base + 0x1000,
                64,
                client.mem_base + 0x1100,
                64,
            );
        });
        a.halt();
        let t = client.start(&mut k, a.finish(), 8);
        assert!(run_to_halt(&mut k, &[t], 10_000_000_000));
    });
}

/// Simulate demand-paging 32 pages through the user-level pager.
fn bench_demand_paging() {
    bench("simulate_32_hard_faults", 20, || {
        let mut k = Kernel::new(Config::process_np());
        let pager = fluke_user::pager::PagerSetup::boot(&mut k, 1 << 20, 12);
        let child = pager.paged_child(&mut k, 0x0040_0000, 1 << 20, 0);
        let mut a = Assembler::new("touch");
        a.movi(Reg::Esi, 0x0040_0000);
        a.movi(Reg::Ecx, 32);
        a.label("l");
        a.storeb(Reg::Esi, 0, Reg::Ebx);
        a.addi(Reg::Esi, 4096);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "l");
        a.halt();
        let pid = k.register_program(a.finish());
        let t = k.spawn_thread(child, pid, UserRegs::new(), 8);
        assert!(run_to_halt(&mut k, &[t], 10_000_000_000));
        assert_eq!(k.stats.hard_faults, 32);
    });
}

/// Simulate one 256KB IPC transfer (the copy pump).
fn bench_bulk_transfer() {
    for cfg in [Config::process_np(), Config::process_pp()] {
        bench(&format!("simulate_256k_transfer/{}", cfg.label), 20, || {
            let mut k = Kernel::new(cfg.clone());
            let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
            let mut client = ChildProc::with_mem(&mut k, 0x0030_0000, 0x8000);
            k.grant_pages(server.space, 0x0011_0000, 256 << 10, true);
            k.grant_pages(client.space, 0x0031_0000, 256 << 10, true);
            let h_port = server.alloc_obj();
            let h_ref = client.alloc_obj();
            let port = k.loader_create(server.space, h_port, ObjType::Port);
            k.loader_ref(client.space, h_ref, port);
            let mut a = Assembler::new("rx");
            a.movi(fluke_api::abi::ARG_HANDLE, h_port);
            a.movi(fluke_api::abi::ARG_RBUF, 0x0011_0000);
            a.movi(fluke_api::abi::ARG_COUNT, 256 << 10);
            a.sys(Sys::IpcServerWaitReceive);
            a.halt();
            let st = server.start(&mut k, a.finish(), 8);
            let mut a = Assembler::new("tx");
            a.client_connect_send(h_ref, 0x0031_0000, 256 << 10);
            a.halt();
            let ct = client.start(&mut k, a.finish(), 8);
            assert!(run_to_halt(&mut k, &[st, ct], 10_000_000_000));
        });
    }
}

fn main() {
    bench_user_instructions();
    bench_null_syscalls();
    bench_rpc_round_trips();
    bench_demand_paging();
    bench_bulk_transfer();
}

//! Differential oracle: the O(1) indexed wait-queue unlink path must be
//! *invisible*. `Config::port_index` selects between the indexed cancel
//! (tombstone + lazy compaction) and the legacy linear scan; the two
//! differ only in bookkeeping, never in wake order, cycle charges, or
//! anything a program can observe — so whole runs must replay to
//! identical trace digests, not merely identical outcomes.

use fluke_bench::kfault_sweep::{sweep_configs, SweepWorkload};
use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;

fn oracle(workload: SweepWorkload, label: &str) {
    for base in sweep_configs() {
        let name = format!("{label}/{}", base.label);
        let indexed = workload
            .run_kernel(&base.clone().with_port_index(true), None)
            .unwrap_or_else(|e| panic!("{name} indexed: {e}"));
        let linear = workload
            .run_kernel(&base.with_port_index(false), None)
            .unwrap_or_else(|e| panic!("{name} linear: {e}"));
        assert_eq!(indexed.0, linear.0, "{name}: user-visible outcome");
        // Unlike the lock-model oracle, even the clock must agree: the
        // index changes no cost accounting.
        assert_eq!(indexed.1, linear.1, "{name}: total cycles");
        let (ik, lk) = (&indexed.3, &linear.3);
        assert_eq!(ik.now(), lk.now(), "{name}: final clock");
        assert_eq!(ik.stats.ipc_bytes, lk.stats.ipc_bytes, "{name}: ipc bytes");
        assert_eq!(
            ik.stats.ipc_messages, lk.stats.ipc_messages,
            "{name}: ipc messages"
        );
        assert_eq!(
            ik.stats.trace_log, lk.stats.trace_log,
            "{name}: guest trace log"
        );
        // The linear run must actually have exercised the oracle path
        // wherever cancels happened at all.
        assert_eq!(
            lk.stats.waitq.cancels_linear, lk.stats.waitq.cancels,
            "{name}: linear mode must route every cancel down the scan path"
        );
        assert_eq!(
            ik.stats.waitq.cancels_linear, 0,
            "{name}: indexed mode must never take the scan path"
        );
    }
}

#[test]
fn ipc_echo_identical_under_both_unlink_paths() {
    oracle(SweepWorkload::IpcEcho, "ipc-echo");
}

#[test]
fn checkpoint_identical_under_both_unlink_paths() {
    oracle(SweepWorkload::Checkpoint, "checkpoint");
}

/// Full traced workload: byte-identical trace digests between the two
/// unlink paths, on one CPU and on many.
#[test]
fn flukeperf_digest_identical_under_both_unlink_paths() {
    for cpus in [1, 8] {
        let a = run_traced_flukeperf(
            fluke_core::Config::process_pp()
                .with_cpus(cpus)
                .with_port_index(true),
            Scale::Quick,
        );
        let b = run_traced_flukeperf(
            fluke_core::Config::process_pp()
                .with_cpus(cpus)
                .with_port_index(false),
            Scale::Quick,
        );
        assert_eq!(
            trace_digest(&a),
            trace_digest(&b),
            "{cpus}-cpu trace digest diverged between unlink paths"
        );
        assert_eq!(a.now(), b.now(), "{cpus}-cpu final clock diverged");
    }
}

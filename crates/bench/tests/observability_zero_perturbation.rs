//! The zero-perturbation test: enabling the `kstat`/`kprof`
//! instrumentation must change *nothing* simulated.
//!
//! The strongest oracle we have is the raw ktrace digest — FNV-1a over
//! every record's timestamp, CPU, sequence number, event kind and
//! payload. The digests in `tests/golden/ktrace_digests.txt` were
//! blessed with `kprof` *off*; this test re-runs the same traced
//! `flukeperf` workloads with `kprof` *on* and requires the digests to
//! be bit-identical. If an observability hook ever perturbs a charge, a
//! wakeup, or a preemption decision, the first shifted timestamp fails
//! the comparison.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;
use fluke_core::Config;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("ktrace_digests.txt")
}

fn parse_golden(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let label = it.next().expect("label").to_string();
        let hash = u64::from_str_radix(it.next().expect("hash").trim_start_matches("0x"), 16)
            .expect("hex hash");
        let count: u64 = it.next().expect("count").parse().expect("record count");
        out.insert(label, (hash, count));
    }
    out
}

#[test]
fn instrumented_runs_match_uninstrumented_golden_digests() {
    let golden = parse_golden(
        &std::fs::read_to_string(golden_path())
            .expect("golden file missing; bless via the ktrace_golden test"),
    );
    for cfg in [
        Config::process_np(),
        Config::process_pp(),
        Config::interrupt_np(),
        Config::interrupt_pp(),
    ] {
        let label = cfg.label.replace(' ', "_");
        // Same workload, same trace, but with the profiler enabled.
        let k = run_traced_flukeperf(cfg.with_kprof(), Scale::Quick);
        assert_eq!(k.trace.dropped_total(), 0, "{label}: trace overflowed");
        // The instrumentation really ran: every simulated cycle was
        // attributed to a kprof phase…
        assert!(k.kprof.enabled, "{label}: kprof should be enabled");
        assert_eq!(
            k.kprof.total(),
            k.total_cpu_cycles(),
            "{label}: kprof attribution incomplete"
        );
        assert!(k.kprof.kernel_cycles() > 0, "{label}: no kernel cycles");
        // …and the kstat snapshot is populated.
        let reg = k.kstat();
        assert!(
            reg.scalar("kernel.syscall.count").unwrap_or(0) > 0,
            "{label}: kstat registry empty"
        );
        // The oracle: bit-identical raw trace against the digests
        // blessed with instrumentation off.
        let got = trace_digest(&k);
        let want = golden
            .get(&label)
            .unwrap_or_else(|| panic!("no golden digest for config {label}"));
        assert_eq!(
            &got, want,
            "{label}: enabling kstat/kprof perturbed the simulation \
             (got 0x{:016x}/{} records, want 0x{:016x}/{})",
            got.0, got.1, want.0, want.1
        );
    }
}

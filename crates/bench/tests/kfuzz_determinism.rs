//! kfuzz determinism: a campaign is a pure function of
//! `(seed, cases, guided, tier, initial corpus)`.
//!
//! Two runs with identical inputs must agree bit-for-bit on the
//! coverage map (every signature, not just the count), the mutation
//! schedule (the content hash of every program executed, in order), the
//! coverage-growth curve, and the serialized final corpus. This is what
//! makes the committed `corpus/` and `BENCH_fuzz.json` replayable in CI
//! on any host.

use fluke_bench::kfuzz::sample_curve;
use fluke_core::kfuzz::{
    campaign, corpus_from_text, corpus_to_text, program_from_text, program_to_text, Campaign, Tier,
};

fn assert_identical(a: &Campaign, b: &Campaign) {
    assert_eq!(a.sigs, b.sigs, "coverage maps differ");
    assert_eq!(a.schedule, b.schedule, "mutation schedules differ");
    assert_eq!(a.curve, b.curve, "coverage-growth curves differ");
    assert_eq!(
        corpus_to_text(&a.corpus),
        corpus_to_text(&b.corpus),
        "serialized corpora differ"
    );
    assert_eq!(a.findings.len(), b.findings.len());
}

/// Guided differential campaigns replay bit-identically, including when
/// seeded with an initial corpus that itself came from a prior run.
#[test]
fn guided_campaigns_replay_bit_identically() {
    let seed_run = campaign(11, 12, true, Tier::Differential, &[]);
    let initial = seed_run.corpus;
    let a = campaign(11, 16, true, Tier::Differential, &initial);
    let b = campaign(11, 16, true, Tier::Differential, &initial);
    assert_identical(&a, &b);
    // The seed corpus's coverage is contributed up front, so every
    // signature it earns is in the final map.
    let mut seed_sigs = std::collections::BTreeSet::new();
    for p in &initial {
        let (sigs, _) = fluke_core::kfuzz::judge(Tier::Differential, p);
        seed_sigs.extend(sigs);
    }
    assert!(a.sigs.is_superset(&seed_sigs));
}

/// Baseline (unguided) campaigns replay bit-identically too, and the
/// robustness tier is as deterministic as the differential one.
#[test]
fn baseline_and_robustness_replay_bit_identically() {
    let a = campaign(3, 10, false, Tier::Differential, &[]);
    let b = campaign(3, 10, false, Tier::Differential, &[]);
    assert_identical(&a, &b);
    assert!(a.corpus.is_empty(), "baseline keeps no corpus");

    let ra = campaign(5, 10, true, Tier::Robustness, &[]);
    let rb = campaign(5, 10, true, Tier::Robustness, &[]);
    assert_identical(&ra, &rb);
}

/// The corpus text format round-trips whole corpora, and the committed
/// `corpus/` files (when present) parse and replay deterministically.
#[test]
fn corpus_files_round_trip_and_reseed() {
    let run = campaign(9, 10, true, Tier::Differential, &[]);
    let text = corpus_to_text(&run.corpus);
    let back = corpus_from_text(&text).expect("round trip");
    assert_eq!(corpus_to_text(&back), text);
    for p in &run.corpus {
        let t = program_to_text(p);
        assert_eq!(program_from_text(&t).expect("program round trip"), *p);
    }

    // The committed corpus seeds must stay parseable (CI loads them).
    for tier in ["differential", "robustness"] {
        let path = format!("{}/../../corpus/{tier}.kfz", env!("CARGO_MANIFEST_DIR"));
        if let Ok(text) = std::fs::read_to_string(&path) {
            let corpus = corpus_from_text(&text).expect("committed corpus parses");
            assert!(!corpus.is_empty(), "{path} is empty");
            assert_eq!(corpus_to_text(&corpus), text, "{path} not canonical");
        }
    }
}

/// Curve sampling (used by the committed report) is deterministic and
/// endpoint-preserving on real campaign curves.
#[test]
fn report_curves_are_deterministic() {
    let a = campaign(2, 14, true, Tier::Differential, &[]);
    let s1 = sample_curve(&a.curve, 33);
    let s2 = sample_curve(&a.curve, 33);
    assert_eq!(s1, s2);
    assert_eq!(s1.last(), a.curve.last());
}

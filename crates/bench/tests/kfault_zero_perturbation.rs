//! The `kfault` zero-perturbation test: compiling the injection engine in
//! — and even *arming* it in count-only mode — must change nothing
//! simulated.
//!
//! The blessed digests in `tests/golden/ktrace_digests.txt` were produced
//! with no `kfault` engine at all. The disarmed case (`kfault: None`) is
//! already covered by the `ktrace_golden` test, which runs every config
//! with the default knob. This test re-runs the same traced `flukeperf`
//! workloads with the engine armed at the [`KfaultConfig::COUNT_ONLY`]
//! sentinel — every hook executes and counts its site, but never fires —
//! and requires the raw ktrace digests to stay bit-identical. Two kinds
//! cover both hook paths: [`KfaultKind::ExtractRestore`] exercises the
//! instruction-boundary hook (shared by `Timer` and `PageFlush`), and
//! [`KfaultKind::Transient`] exercises the syscall-dispatch hook.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;
use fluke_core::{Config, KfaultConfig, KfaultKind};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("ktrace_digests.txt")
}

fn parse_golden(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let label = it.next().expect("label").to_string();
        let hash = u64::from_str_radix(it.next().expect("hash").trim_start_matches("0x"), 16)
            .expect("hex hash");
        let count: u64 = it.next().expect("count").parse().expect("record count");
        out.insert(label, (hash, count));
    }
    out
}

#[test]
fn count_only_armed_runs_match_unarmed_golden_digests() {
    let golden = parse_golden(
        &std::fs::read_to_string(golden_path())
            .expect("golden file missing; bless via the ktrace_golden test"),
    );
    for cfg in [
        Config::process_np(),
        Config::process_pp(),
        Config::interrupt_np(),
        Config::interrupt_pp(),
    ] {
        for kind in [KfaultKind::ExtractRestore, KfaultKind::Transient] {
            let label = cfg.label.replace(' ', "_");
            let armed = cfg.clone().with_kfault(KfaultConfig::count_sites(kind));
            let k = run_traced_flukeperf(armed, Scale::Quick);
            assert_eq!(k.trace.dropped_total(), 0, "{label}: trace overflowed");
            // The hooks really ran: the engine saw a nonempty site space…
            let engine = k.kfault().expect("engine armed");
            assert!(
                engine.sites_seen() > 0,
                "{label}/{}: no injection sites counted",
                kind.name()
            );
            assert!(!engine.fired(), "{label}/{}: count-only fired", kind.name());
            // …and no injection was ever recorded.
            for k2 in KfaultKind::ALL {
                assert_eq!(
                    k.stats.faults_injected[k2.index()],
                    0,
                    "{label}/{}: spurious {} injection count",
                    kind.name(),
                    k2.name()
                );
            }
            // The oracle: bit-identical raw trace against digests blessed
            // with no engine compiled in at all.
            let got = trace_digest(&k);
            let want = golden
                .get(&label)
                .unwrap_or_else(|| panic!("no golden digest for config {label}"));
            assert_eq!(
                &got,
                want,
                "{label}/{}: arming kfault in count-only mode perturbed the \
                 simulation (got 0x{:016x}/{} records, want 0x{:016x}/{})",
                kind.name(),
                got.0,
                got.1,
                want.0,
                want.1
            );
        }
    }
}

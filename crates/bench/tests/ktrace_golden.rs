//! Golden-digest regression test for the dispatch path.
//!
//! The dispatch refactor (handler table + `SysCtx` mediation) must be
//! *behavior-preserving*: not just user-visibly equivalent, but
//! bit-identical in the raw ktrace — every timestamp, preemption,
//! restart, and rollback exactly where it was. This test runs the
//! traced `flukeperf` workload under both execution models (and both
//! NP/PP preemption styles) and compares a canonical FNV-1a digest of
//! the merged trace against digests blessed *before* the refactor.
//!
//! To re-bless after an intentional behavioral change:
//!
//! ```text
//! FLUKE_BLESS=1 cargo test -p fluke-bench --test ktrace_golden
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;
use fluke_core::Config;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("ktrace_digests.txt")
}

fn parse_golden(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let label = it.next().expect("label").to_string();
        let hash = u64::from_str_radix(it.next().expect("hash").trim_start_matches("0x"), 16)
            .expect("hex hash");
        let count: u64 = it.next().expect("count").parse().expect("record count");
        out.insert(label, (hash, count));
    }
    out
}

fn configs() -> Vec<Config> {
    vec![
        Config::process_np(),
        Config::process_pp(),
        Config::interrupt_np(),
        Config::interrupt_pp(),
    ]
}

#[test]
fn raw_ktrace_digests_match_blessed_goldens() {
    let bless = std::env::var("FLUKE_BLESS").is_ok();
    let mut current = BTreeMap::new();
    for cfg in configs() {
        let label = cfg.label.replace(' ', "_");
        let k = run_traced_flukeperf(cfg, Scale::Quick);
        assert_eq!(k.trace.dropped_total(), 0, "{label}: trace overflowed");
        current.insert(label, trace_digest(&k));
    }

    if bless {
        let mut text = String::from(
            "# Blessed raw-ktrace digests for traced flukeperf (quick scale).\n\
             # label  fnv1a64  record_count\n",
        );
        for (label, (hash, count)) in &current {
            writeln!(text, "{label} 0x{hash:016x} {count}").unwrap();
        }
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), text).unwrap();
        eprintln!(
            "blessed {} digests to {}",
            current.len(),
            golden_path().display()
        );
        return;
    }

    let golden = parse_golden(
        &std::fs::read_to_string(golden_path())
            .expect("golden file missing; run with FLUKE_BLESS=1 to create it"),
    );
    for (label, got) in &current {
        let want = golden
            .get(label)
            .unwrap_or_else(|| panic!("no golden digest for config {label}"));
        assert_eq!(
            got, want,
            "raw ktrace diverged from blessed golden for config {label} \
             (got 0x{:016x}/{} records, want 0x{:016x}/{})",
            got.0, got.1, want.0, want.1
        );
    }
}

//! The acceptance-criteria invariant for `kspan` critical-path analysis:
//! for **every** completed request in the IPC-echo and checkpoint/restore
//! workloads, under all four comparable configurations, the five-bucket
//! decomposition (on-CPU + runnable-wait + blocked-on-IPC + lock-wait +
//! blocked-other) sums *exactly* to the request's end-to-end simulated
//! cycles — no cycle unattributed, none double-counted — mirroring
//! kprof's sum-to-total contract one level up.

use fluke_bench::kfault_sweep::{sweep_configs, SweepWorkload};

#[test]
fn every_request_decomposes_exactly_to_e2e() {
    for w in [SweepWorkload::IpcEcho, SweepWorkload::Checkpoint] {
        for cfg in sweep_configs() {
            let label = format!("{} under {}", w.label(), cfg.label);
            let (_, _, _, k) = w
                .run_kernel(&cfg.with_kspan(), None)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(k.kspan.enabled, "{label}: kspan should be on");
            assert!(
                !k.kspan.completed().is_empty(),
                "{label}: no completed requests"
            );
            for r in k.kspan.completed() {
                assert_eq!(
                    r.decomposed(),
                    r.e2e(),
                    "{label}: request {} ({}, thread {}) decomposition \
                     on_cpu={} + runnable={} + ipc={} + lock={} + other={} \
                     != e2e {}",
                    r.req,
                    r.class,
                    r.thread.0,
                    r.on_cpu,
                    r.runnable_wait,
                    r.blocked_ipc,
                    r.lock_wait,
                    r.blocked_other,
                    r.e2e()
                );
            }
        }
    }
}

#[test]
fn echo_requests_never_block_outside_ipc() {
    // The echo protocol blocks only on IPC rendezvous (send/receive/port
    // waits): the blocked-other bucket must be exactly zero per request,
    // and cross-thread causality must be stitched (client and server
    // spans share requests via flow edges).
    for cfg in sweep_configs() {
        let label = cfg.label;
        let (_, _, _, k) = SweepWorkload::IpcEcho
            .run_kernel(&cfg.with_kspan(), None)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        for r in k.kspan.completed() {
            assert_eq!(
                r.blocked_other, 0,
                "{label}: request {} ({}) blocked outside IPC",
                r.req, r.class
            );
        }
        assert!(!k.kspan.flows().is_empty(), "{label}: no flow edges");
        assert!(
            k.kspan.completed().iter().any(|r| r.parent.is_some()),
            "{label}: no request spans a client/server pair"
        );
        // Every span ended: closed at syscall exit or aborted at halt.
        assert_eq!(k.kspan.open_count(), 0, "{label}: dangling open spans");
    }
}

#[test]
fn checkpoint_contention_lands_on_the_mutex() {
    // The checkpoint workload's blocker waits on the child's mutex: the
    // per-object contention accounting must attribute lock-wait cycles
    // to a mutex object.
    for cfg in sweep_configs() {
        let label = cfg.label;
        let (_, _, _, k) = SweepWorkload::Checkpoint
            .run_kernel(&cfg.with_kspan(), None)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let mutexes: Vec<_> = k
            .kspan
            .contention()
            .iter()
            .filter(|(obj, _)| obj.starts_with("mutex_"))
            .collect();
        assert!(
            !mutexes.is_empty(),
            "{label}: no mutex contention recorded (have: {:?})",
            k.kspan.contention().keys().collect::<Vec<_>>()
        );
        assert!(
            mutexes.iter().any(|(_, c)| c.wait_cycles > 0),
            "{label}: blocker waited on the mutex for zero cycles"
        );
        // The kstat view carries the same accounting as family counters.
        let reg = k.kstat();
        let (obj, c) = mutexes[0];
        assert_eq!(
            reg.scalar(&format!("kernel.contention.{obj}.wait_cycles")),
            Some(c.wait_cycles),
            "{label}: kstat contention counter disagrees with kspan"
        );
    }
}

//! Snapshot round-trip property tests: `snapshot → restore → snapshot` is
//! byte-identical for kernels paused in rich mid-flight states — arena
//! holes and destroyed-handle tombstones, mid-IPC transfers, non-empty
//! wait queues — and restored kernels re-execute to bit-identical digests.
//!
//! Randomization is a seeded LCG (deterministic in CI, varied shapes): it
//! picks run-slice lengths and snapshot points, so the states captured are
//! not hand-chosen quiescent ones.

use fluke_api::Sys;
use fluke_arch::Assembler;
use fluke_bench::kfault_sweep::SweepWorkload;
use fluke_core::{Config, Kernel, KrecConfig, Replayer, Snapshot};
use fluke_user::proc::ChildProc;
use fluke_user::FlukeAsm;

/// Restore a snapshot and prove the re-encode is byte-identical and the
/// hash-only digest agrees with the trailer.
fn assert_roundtrip(s: &Snapshot, what: &str) {
    let k =
        Kernel::restore_from(&s.bytes).unwrap_or_else(|e| panic!("{what}: restore failed: {e}"));
    let again = k
        .snapshot_bytes()
        .unwrap_or_else(|e| panic!("{what}: re-encode failed: {e}"));
    assert_eq!(
        again, s.bytes,
        "{what}: snapshot→restore→snapshot not byte-identical"
    );
    assert_eq!(
        k.state_digest().unwrap(),
        s.digest(),
        "{what}: hash-only digest disagrees with trailer"
    );
}

/// Mid-IPC, multi-stage, restartable states: snapshots taken every few
/// dispatch sites across the echo workload under all four comparable
/// configurations round-trip byte-identically.
#[test]
fn echo_site_snapshots_roundtrip() {
    for cfg in fluke_bench::kfault_sweep::sweep_configs() {
        let armed = cfg
            .clone()
            .with_krec(KrecConfig::every_sites(3).with_ring(4096));
        let (_, _, _, mut k) = SweepWorkload::IpcEcho
            .run_kernel(&armed, None)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label));
        let rec = k.take_recording().expect("recorder armed");
        assert!(
            rec.snapshots.len() >= 3,
            "{}: expected several site snapshots, got {}",
            cfg.label,
            rec.snapshots.len()
        );
        for (i, s) in rec.snapshots.iter().enumerate() {
            assert_roundtrip(s, &format!("{} echo snapshot {i}", cfg.label));
        }
    }
}

/// The checkpoint workload destroys a thread mid-run (arena tombstone) and
/// drives blocked-on-mutex states; its snapshots round-trip too.
#[test]
fn checkpoint_site_snapshots_roundtrip() {
    let cfg = Config::interrupt_pp();
    let armed = cfg
        .clone()
        .with_krec(KrecConfig::every_sites(40).with_ring(4096));
    let (_, _, _, mut k) = SweepWorkload::Checkpoint
        .run_kernel(&armed, None)
        .unwrap_or_else(|e| panic!("{e}"));
    let rec = k.take_recording().expect("recorder armed");
    assert!(!rec.snapshots.is_empty());
    for (i, s) in rec.snapshots.iter().enumerate() {
        assert_roundtrip(s, &format!("checkpoint snapshot {i}"));
    }
}

/// LCG-randomized pause points over a contended-mutex workload: three
/// threads fight over one mutex (non-empty wait queues), a fourth is
/// destroyed after halting (thread tombstone), and a destroyed mutex
/// leaves an object-table hole. Manual snapshots at ~20 random cycle
/// points all round-trip.
#[test]
fn randomized_pause_points_roundtrip() {
    let mut lcg = 0x2545_f491_4f6c_dd1du64;
    let mut rand = move |m: u64| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 33) % m
    };
    for cfg in [Config::process_pp(), Config::interrupt_np()] {
        let mut k = Kernel::new(
            cfg.clone()
                .with_tracing(1 << 12)
                .with_krec(KrecConfig::manual().with_ring(64)),
        );
        let mut p = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
        let h_mutex = p.alloc_obj();
        let h_short = p.alloc_obj();
        let h_victim = p.alloc_obj();

        // Founder: create both objects, destroy one (object tombstone),
        // then join the contention loop.
        let mut a = Assembler::new("rt-founder");
        a.sys_h(Sys::MutexCreate, h_mutex);
        a.sys_h(Sys::MutexCreate, h_short);
        a.sys_h(Sys::MutexDestroy, h_short);
        for _ in 0..8 {
            a.mutex_lock(h_mutex);
            a.compute(400);
            a.mutex_unlock(h_mutex);
        }
        a.halt();
        let founder = p.start(&mut k, a.finish(), 8);
        // Let the founder create the mutex before contenders arrive.
        k.run(Some(k.now() + 20_000));

        let mut contenders = vec![founder];
        for i in 0..2 {
            let mut a = Assembler::new("rt-contender");
            for _ in 0..8 {
                a.mutex_lock(h_mutex);
                a.compute(300 + i * 50);
                a.mutex_unlock(h_mutex);
            }
            a.halt();
            contenders.push(p.start(&mut k, a.finish(), 8));
        }
        // Victim halts immediately; the reaper destroys it (thread
        // tombstone in the arena).
        let mut a = Assembler::new("rt-victim");
        a.halt();
        let victim = p.start(&mut k, a.finish(), 8);
        k.loader_thread_object(p.space, h_victim, victim);
        let mut a = Assembler::new("rt-reaper");
        a.sys_h(Sys::ThreadDestroy, h_victim);
        a.halt();
        contenders.push(p.start(&mut k, a.finish(), 8));

        for i in 0..20 {
            let slice = 2_000 + rand(60_000);
            k.run(Some(k.now() + slice));
            k.snapshot_now()
                .unwrap_or_else(|e| panic!("{} pause {i}: snapshot failed: {e}", cfg.label));
        }
        let _ = contenders;
        let rec = k.take_recording().expect("recorder armed");
        assert_eq!(rec.snapshots.len(), 20);
        for (i, s) in rec.snapshots.iter().enumerate() {
            assert_roundtrip(s, &format!("{} pause {i}", cfg.label));
        }
    }
}

/// The batched-submission workload snapshots kernels with submit rings in
/// flight (descriptor cursors, port queues mid-drain); those round-trip
/// byte-identically too.
#[test]
fn submit_ring_snapshots_roundtrip() {
    use fluke_bench::krec_sweep::KrecWorkload;
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        let armed = cfg
            .clone()
            .with_krec(KrecConfig::every_sites(5).with_ring(4096));
        let (_, mut k) = KrecWorkload::Server
            .run(&armed)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label));
        let rec = k.take_recording().expect("recorder armed");
        assert!(
            !rec.snapshots.is_empty(),
            "{}: no submit-ring snapshots",
            cfg.label
        );
        for (i, s) in rec.snapshots.iter().enumerate() {
            assert_roundtrip(s, &format!("{} submit-ring snapshot {i}", cfg.label));
        }
    }
}

/// Restored kernels don't just re-encode identically — they *re-execute*
/// identically: replaying every echo snapshot to its epoch end verifies
/// each recorded window's end digest, cycle, and exit reason.
#[test]
fn echo_snapshots_replay_to_identical_digests() {
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        let armed = cfg
            .clone()
            .with_krec(KrecConfig::every_sites(11).with_ring(4096));
        let (_, _, _, mut k) = SweepWorkload::IpcEcho
            .run_kernel(&armed, None)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.label));
        let final_digest = k.state_digest().unwrap();
        let rec = k.take_recording().expect("recorder armed");
        for i in 0..rec.snapshots.len() {
            let mut rp = Replayer::start(&rec, i)
                .unwrap_or_else(|e| panic!("{} snapshot {i}: {e}", cfg.label));
            rp.run_to_epoch_end()
                .unwrap_or_else(|e| panic!("{} snapshot {i}: {e}", cfg.label));
            if rp.epoch_end() == rec.windows.len() {
                // Epoch reaches the end of the recording: the replayed
                // kernel must be bit-identical to the original's end state.
                assert_eq!(
                    rp.kernel.state_digest().unwrap(),
                    final_digest,
                    "{} snapshot {i}: end state diverged",
                    cfg.label
                );
            }
        }
    }
}

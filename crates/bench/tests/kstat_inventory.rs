//! Registry hygiene: every `kstat` name obeys the grammar, is unique
//! (uniqueness is asserted at insert; a duplicate would panic while
//! building the snapshot), and instantiates a pattern documented in the
//! DESIGN.md §13 metrics inventory — in both directions, so the doc
//! table can neither miss a metric nor carry a stale row.

use std::collections::BTreeSet;
use std::path::PathBuf;

use fluke_bench::{observability, Scale};
use fluke_core::kstat::valid_name;
use fluke_core::Config;

fn design_md() -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("DESIGN.md");
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Pull the backtick-quoted patterns out of the §13 inventory table
/// rows (`| \`pattern\` | kind | … |`).
fn doc_patterns(doc: &str) -> BTreeSet<String> {
    let section = doc
        .split("### Metrics inventory")
        .nth(1)
        .expect("DESIGN.md must contain the §13 metrics inventory");
    let mut out = BTreeSet::new();
    for line in section.lines() {
        let line = line.trim();
        // The inventory ends at the next heading; later sections carry
        // unrelated tables with backticked first cells.
        if line.starts_with('#') {
            break;
        }
        if !line.starts_with('|') {
            continue;
        }
        let first_cell = line.trim_start_matches('|').split('|').next().unwrap_or("");
        let cell = first_cell.trim();
        if let Some(p) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            out.insert(p.to_string());
        }
    }
    assert!(
        out.len() > 20,
        "inventory table parse found only {} patterns",
        out.len()
    );
    out
}

#[test]
fn every_metric_is_well_named_and_inventoried() {
    let inventory = doc_patterns(&design_md());
    // Every documented pattern is itself grammatical once placeholders
    // are substituted (placeholders expand to snake_case names).
    for p in &inventory {
        let instantiated = p
            .replace("<entrypoint>", "sys_null")
            .replace("<object>", "klock");
        assert!(
            valid_name(&instantiated),
            "doc pattern {p:?} instantiates to an invalid name"
        );
    }

    // An instrumented flukeperf run (probe installed, kprof on) touches
    // every family the registry can register.
    let o = observability::run_observed(Config::process_pp(), Scale::Quick);
    let reg = o.kernel.kstat();
    assert!(!reg.is_empty());

    let mut seen_patterns = BTreeSet::new();
    for (name, entry) in reg.iter() {
        assert!(
            valid_name(name),
            "registry name {name:?} violates the [a-z0-9_.]+ grammar"
        );
        assert!(
            inventory.contains(entry.pattern),
            "registry entry {name} has pattern {:?} not in the DESIGN.md §13 inventory",
            entry.pattern
        );
        seen_patterns.insert(entry.pattern.to_string());
    }
    // Reverse direction: no stale doc rows. Every documented pattern is
    // instantiated by at least one entry of this run.
    for p in &inventory {
        assert!(
            seen_patterns.contains(p),
            "DESIGN.md §13 documents {p:?} but no registry entry instantiates it"
        );
    }
}

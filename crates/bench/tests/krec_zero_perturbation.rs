//! The `krec` zero-perturbation test: arming the whole-kernel snapshot
//! recorder must change nothing simulated.
//!
//! The blessed digests in `tests/golden/ktrace_digests.txt` were produced
//! with no `krec` recorder at all (the recorder-off case is pinned by the
//! `ktrace_golden` test). This test re-runs the same traced `flukeperf`
//! workloads with the recorder armed at an aggressive stride — snapshots
//! actually fire, serializing the complete kernel mid-run — and requires:
//!
//! 1. the raw ktrace digests stay bit-identical to the recorder-free
//!    goldens (the recorder reads state, never writes), and
//! 2. the armed kernel's end-of-run `state_digest()` equals a bare run's
//!    (the recorder is invisible to the digest walk, so recording and
//!    replayed kernels compare equal).

use std::collections::BTreeMap;
use std::path::PathBuf;

use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;
use fluke_core::{Config, KrecConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("ktrace_digests.txt")
}

fn parse_golden(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let label = it.next().expect("label").to_string();
        let hash = u64::from_str_radix(it.next().expect("hash").trim_start_matches("0x"), 16)
            .expect("hex hash");
        let count: u64 = it.next().expect("count").parse().expect("record count");
        out.insert(label, (hash, count));
    }
    out
}

#[test]
fn armed_recorder_runs_match_unarmed_golden_digests() {
    let golden = parse_golden(
        &std::fs::read_to_string(golden_path())
            .expect("golden file missing; bless via the ktrace_golden test"),
    );
    for cfg in [
        Config::process_np(),
        Config::process_pp(),
        Config::interrupt_np(),
        Config::interrupt_pp(),
    ] {
        let label = cfg.label.replace(' ', "_");
        let bare = run_traced_flukeperf(cfg.clone(), Scale::Quick);
        let armed_cfg = cfg.with_krec(KrecConfig::every_sites(3).with_ring(4096));
        let k = run_traced_flukeperf(armed_cfg, Scale::Quick);
        assert_eq!(k.trace.dropped_total(), 0, "{label}: trace overflowed");
        // The recorder really ran: sites were counted and snapshots taken.
        let rec = k.krec().expect("recorder armed");
        assert!(rec.sites_seen() > 0, "{label}: no snapshot sites seen");
        assert!(rec.taken() > 0, "{label}: no snapshots taken");
        // Oracle 1: bit-identical raw trace against recorder-free goldens.
        let got = trace_digest(&k);
        let want = golden
            .get(&label)
            .unwrap_or_else(|| panic!("no golden digest for config {label}"));
        assert_eq!(
            &got, want,
            "{label}: arming krec perturbed the simulation \
             (got 0x{:016x}/{} records, want 0x{:016x}/{})",
            got.0, got.1, want.0, want.1
        );
        // Oracle 2: whole-state digest equality with a bare run — the
        // recorder is host-side bookkeeping, invisible to the state walk.
        assert_eq!(
            k.state_digest(),
            bare.state_digest(),
            "{label}: armed end state diverged from bare end state"
        );
    }
}

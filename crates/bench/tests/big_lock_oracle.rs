//! Differential oracle: fine-grained locking must be *invisible* to user
//! programs. The legacy big kernel lock (kept behind `with_big_lock`) and
//! the fine-grained mode only change when cycles are charged for lock
//! traffic, never what a program computes — so the user-visible outcome
//! and every timing-robust counter must match bit for bit.

use fluke_bench::kfault_sweep::{sweep_configs, SweepWorkload};
use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;

/// Run a workload on 4 CPUs under both lock models and compare everything
/// that must not depend on lock-cost accounting.
fn oracle(workload: SweepWorkload, label: &str) {
    for base in sweep_configs() {
        let name = format!("{label}/{}", base.label);
        let fine = workload
            .run_kernel(&base.clone().with_cpus(4), None)
            .unwrap_or_else(|e| panic!("{name} fine: {e}"));
        let big = workload
            .run_kernel(&base.with_cpus(4).with_big_lock(true), None)
            .unwrap_or_else(|e| panic!("{name} big-lock: {e}"));
        assert_eq!(fine.0, big.0, "{name}: user-visible outcome diverged");
        let (fk, bk) = (&fine.3, &big.3);
        assert_eq!(fk.stats.ipc_bytes, bk.stats.ipc_bytes, "{name}: ipc bytes");
        assert_eq!(
            fk.stats.ipc_messages, bk.stats.ipc_messages,
            "{name}: ipc messages"
        );
        assert_eq!(
            fk.stats.threads_created, bk.stats.threads_created,
            "{name}: threads created"
        );
        assert_eq!(
            fk.stats.objects_created, bk.stats.objects_created,
            "{name}: objects created"
        );
        assert_eq!(
            fk.stats.trace_log, bk.stats.trace_log,
            "{name}: guest trace log"
        );
    }
}

#[test]
fn ipc_echo_identical_under_both_lock_models() {
    oracle(SweepWorkload::IpcEcho, "ipc-echo");
}

#[test]
fn checkpoint_identical_under_both_lock_models() {
    oracle(SweepWorkload::Checkpoint, "checkpoint");
}

/// Two identical 64-CPU runs of the traced flukeperf workload must replay
/// to the same trace digest — work stealing, IPIs, and shootdowns are all
/// deterministic functions of (config, program).
#[test]
fn sixty_four_cpu_run_replays_exactly() {
    let a = run_traced_flukeperf(fluke_core::Config::process_pp().with_cpus(64), Scale::Quick);
    let b = run_traced_flukeperf(fluke_core::Config::process_pp().with_cpus(64), Scale::Quick);
    assert_eq!(trace_digest(&a), trace_digest(&b), "trace digest diverged");
    assert_eq!(a.now(), b.now(), "final clock diverged");
    assert_eq!(
        a.stats.sched_steals, b.stats.sched_steals,
        "steal count diverged"
    );
}

//! Span-propagation edge cases: requests must terminate cleanly — never
//! dangle — when the structures they ride on are torn down mid-flight.
//! Covered: an IPC connect-send whose port is destroyed under it,
//! `sched_donate` chains, and every `kfault` injection kind (spurious
//! timers, thread extract/destroy/restore mid-request, TLB flushes,
//! transient handler failures) used as an adversarial scenario generator.

use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Reg};
use fluke_bench::kfault_sweep::SweepWorkload;
use fluke_core::{Config, Kernel, KfaultConfig, KfaultKind};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Every span in `k` ended (closed or aborted) and every completed
/// request decomposes exactly.
fn assert_clean(k: &Kernel, label: &str) {
    assert_eq!(k.kspan.open_count(), 0, "{label}: dangling open spans");
    for r in k.kspan.completed() {
        assert_eq!(
            r.decomposed(),
            r.e2e(),
            "{label}: request {} ({}) decomposition broken",
            r.req,
            r.class
        );
    }
}

/// A client blocks in `ipc_client_connect_send` on a port nobody serves;
/// the port's owner then destroys the port. The blocked request must
/// complete (with an error) and close its span — not dangle.
#[test]
fn connect_send_to_destroyed_port_closes_span() {
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        let label = cfg.label;
        let mut k = Kernel::new(cfg.with_kspan());
        let mut owner = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
        let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x4000);
        let h_port = owner.alloc_obj();
        let h_ref = client.alloc_obj();
        let port = k.loader_create(owner.space, h_port, ObjType::Port);
        k.loader_ref(client.space, h_ref, port);
        let cbuf = client.mem_base + 0x1000;
        let rec = client.mem_base + 0x2000;

        // Higher priority: the client runs first and blocks awaiting a
        // server that never comes.
        let mut a = Assembler::new("edge-client");
        a.client_connect_send(h_ref, cbuf, 32);
        a.movi(Reg::Ebp, rec);
        a.store(Reg::Ebp, 0, Reg::Eax);
        a.halt();
        let ct = client.start(&mut k, a.finish(), 8);

        let mut a = Assembler::new("edge-destroyer");
        a.compute(50_000);
        a.sys_h(Sys::PortDestroy, h_port);
        a.halt();
        let dt = owner.start(&mut k, a.finish(), 6);

        assert!(
            run_to_halt(&mut k, &[ct, dt], 1_000_000_000),
            "{label}: teardown wedged"
        );
        assert_clean(&k, label);
        assert!(
            k.kspan
                .completed()
                .iter()
                .any(|r| r.class == "ipc_client_connect_send"),
            "{label}: the torn-down connect never completed its span"
        );
        // The client result is an error, not Success (0).
        assert_ne!(
            k.read_mem_u32(client.space, rec),
            0,
            "{label}: connect to destroyed port reported Success"
        );
    }
}

/// A two-deep donation chain: d2 donates to d1, d1 donates to the
/// worker. Donation waits land in the runnable-wait bucket (the donor is
/// lending its CPU, not blocked on a resource) and the contention
/// accounting names the donated-to threads.
#[test]
fn sched_donate_chain_decomposes_and_terminates() {
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        let label = cfg.label;
        let mut k = Kernel::new(cfg.with_kspan());
        let mut p = ChildProc::new(&mut k);
        let h_worker = p.alloc_obj();
        let h_d1 = p.alloc_obj();

        let mut a = Assembler::new("edge-worker");
        a.compute(30_000);
        a.halt();
        let worker = p.start(&mut k, a.finish(), 4);
        k.loader_thread_object(p.space, h_worker, worker);

        let mut a = Assembler::new("edge-d1");
        a.sys_h(Sys::SchedDonate, h_worker);
        a.halt();
        let d1 = p.start(&mut k, a.finish(), 8);
        k.loader_thread_object(p.space, h_d1, d1);

        let mut a = Assembler::new("edge-d2");
        a.sys_h(Sys::SchedDonate, h_d1);
        a.halt();
        let d2 = p.start(&mut k, a.finish(), 12);

        assert!(
            run_to_halt(&mut k, &[worker, d1, d2], 1_000_000_000),
            "{label}: donate chain wedged"
        );
        assert_clean(&k, label);
        let donates: Vec<_> = k
            .kspan
            .completed()
            .iter()
            .filter(|r| r.class == "sched_donate")
            .collect();
        assert_eq!(donates.len(), 2, "{label}: both donations must complete");
        assert!(
            donates.iter().all(|r| r.runnable_wait > 0),
            "{label}: donation wait must land in runnable-wait"
        );
        assert!(
            k.kspan
                .contention()
                .keys()
                .any(|obj| obj.starts_with("thread_")),
            "{label}: donated-to threads missing from contention accounting"
        );
    }
}

/// Adversarial scenario generation: every `kfault` injection kind fired
/// into the echo workload with kspan on. Whatever the perturbation —
/// spurious timer, extract/destroy/restore of a thread mid-request, page
/// flush, transient handler failure — spans terminate cleanly.
#[test]
fn kfault_kinds_never_leave_dangling_spans() {
    for cfg in [Config::process_np(), Config::interrupt_pp()] {
        for kind in KfaultKind::ALL {
            for site in [2, 7] {
                let label = format!("{} {} site {site}", cfg.label, kind.name());
                let (_, _, fired, k) = SweepWorkload::IpcEcho
                    .run_kernel(
                        &cfg.clone().with_kspan(),
                        Some(KfaultConfig::at(kind, site)),
                    )
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert!(fired, "{label}: injection never fired");
                assert_clean(&k, &label);
                assert!(
                    !k.kspan.completed().is_empty(),
                    "{label}: no requests survived the perturbation"
                );
            }
        }
    }
}

/// The §4.1 flagship under tracing: checkpoint a blocked thread, destroy
/// it mid-request, restore the image — with an extract/restore injection
/// landing on top. The destroyed thread's open request is aborted (not
/// leaked), everything else decomposes.
#[test]
fn checkpoint_destroy_mid_request_aborts_span() {
    let cfg = Config::process_pp();
    let (_, _, fired, k) = SweepWorkload::Checkpoint
        .run_kernel(
            &cfg.clone().with_kspan(),
            Some(KfaultConfig::at(KfaultKind::ExtractRestore, 3)),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", cfg.label));
    assert!(fired, "injection never fired");
    assert_clean(&k, cfg.label);
    // The blocker was destroyed while blocked inside mutex_lock: its open
    // request must be accounted as aborted.
    assert!(
        k.kspan.aborted() >= 1,
        "destroying a blocked thread must abort its span"
    );
}

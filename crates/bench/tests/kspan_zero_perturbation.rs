//! The `kspan` zero-perturbation test: enabling causal request tracing
//! on top of `kprof` must change *nothing* simulated.
//!
//! Identical oracle to the kstat/kprof test: the raw ktrace digests in
//! `tests/golden/ktrace_digests.txt` were blessed with all
//! instrumentation *off*; this test re-runs the same traced `flukeperf`
//! workloads with `kprof` *and* `kspan` on and requires bit-identical
//! digests. A kspan hook that ever charged a cycle, reordered a wake, or
//! perturbed a scheduling decision fails at the first shifted timestamp.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fluke_bench::tracediff::{run_traced_flukeperf, trace_digest};
use fluke_bench::Scale;
use fluke_core::Config;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("ktrace_digests.txt")
}

fn parse_golden(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let label = it.next().expect("label").to_string();
        let hash = u64::from_str_radix(it.next().expect("hash").trim_start_matches("0x"), 16)
            .expect("hex hash");
        let count: u64 = it.next().expect("count").parse().expect("record count");
        out.insert(label, (hash, count));
    }
    out
}

#[test]
fn kspan_runs_match_uninstrumented_golden_digests() {
    let golden = parse_golden(
        &std::fs::read_to_string(golden_path())
            .expect("golden file missing; bless via the ktrace_golden test"),
    );
    for cfg in [
        Config::process_np(),
        Config::process_pp(),
        Config::interrupt_np(),
        Config::interrupt_pp(),
    ] {
        let label = cfg.label.replace(' ', "_");
        let k = run_traced_flukeperf(cfg.with_kprof().with_kspan(), Scale::Quick);
        assert_eq!(k.trace.dropped_total(), 0, "{label}: trace overflowed");
        // The tracer really ran: requests completed, each decomposed
        // exactly into the five critical-path buckets.
        assert!(k.kspan.enabled, "{label}: kspan should be enabled");
        assert!(
            !k.kspan.completed().is_empty(),
            "{label}: no requests recorded"
        );
        for r in k.kspan.completed() {
            assert_eq!(
                r.decomposed(),
                r.e2e(),
                "{label}: request {} ({}) decomposition does not sum to e2e",
                r.req,
                r.class
            );
        }
        assert!(
            !k.kspan.flows().is_empty(),
            "{label}: flukeperf's IPC phases should record flow edges"
        );
        // The oracle: bit-identical raw trace against the digests
        // blessed with instrumentation off.
        let got = trace_digest(&k);
        let want = golden
            .get(&label)
            .unwrap_or_else(|| panic!("no golden digest for config {label}"));
        assert_eq!(
            &got, want,
            "{label}: enabling kspan perturbed the simulation \
             (got 0x{:016x}/{} records, want 0x{:016x}/{})",
            got.0, got.1, want.0, want.1
        );
    }
}

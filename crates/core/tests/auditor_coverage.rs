//! Coverage test for the atomicity auditor: every blocking entrypoint
//! (Table 1's Long and Multi-stage classes, 31 calls) must reach at
//! least one *audited* block or in-kernel preemption point.
//!
//! The auditor's per-entrypoint hit counters
//! ([`fluke_core::block_audit_hits`]) are process-wide, so this file
//! drives a battery of small kernels — one scenario per way of giving
//! up the CPU mid-call — and then asserts that no Long or Multi-stage
//! row in [`fluke_api::SYSCALLS`] went unaudited. Because the debug
//! contract checks (register/snapshot equality, restart-set membership,
//! thread-frame round trip) run at every one of these points, passing
//! this test means the whole blocking surface of the API was
//! machine-checked against the paper's atomic-API rules at least once.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ObjType, Sys, SysClass, SYSCALLS};
use fluke_arch::cost::{ms_to_cycles, Cycles};
use fluke_arch::Assembler;
use fluke_core::{block_audit_hits, Config, Kernel, NativeAction, NativeBody, Stats};
use fluke_user::proc::ChildProc;
use fluke_user::FlukeAsm;

/// A Table 6-style high-priority periodic native thread: its 1ms wakes
/// set the pending-reschedule flag mid-dispatch, which is what drives
/// the explicit preemption points (IPC pump, `region_search`).
#[derive(Debug)]
struct Kicker;

impl NativeBody for Kicker {
    fn on_dispatch(&mut self, _woken: Cycles, _now: Cycles, _stats: &mut Stats) -> NativeAction {
        NativeAction::BlockUntilWoken { work: 100 }
    }
}

fn install_kicker(k: &mut Kernel) {
    let t = k.spawn_native(24, Box::new(Kicker));
    let period = ms_to_cycles(1);
    k.start_periodic(t, period, period);
}

/// Run for `ms` more simulated milliseconds; deadlock is expected (most
/// scenarios deliberately leave threads blocked forever).
fn run_for(k: &mut Kernel, ms: u64) {
    let deadline = k.now() + ms_to_cycles(ms);
    let _ = k.run(Some(deadline));
}

/// Long waits with no waker: mutex contention, a never-signalled
/// condition, and an uninterrupted sleep.
fn rig_mutex_cond_sleep() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_m1 = p.alloc_obj();
    let h_m2 = p.alloc_obj();
    let h_c = p.alloc_obj();

    // Owner creates and locks m1, then halts still holding it.
    let mut a = Assembler::new("owner");
    a.sys_h(Sys::MutexCreate, h_m1);
    a.mutex_lock(h_m1);
    a.halt();
    let owner = p.start(&mut k, a.finish(), 8);
    run_for(&mut k, 5);
    assert!(k.thread_halted(owner));

    // Waiter blocks on the orphaned mutex: MutexLock.
    let mut a = Assembler::new("waiter");
    a.mutex_lock(h_m1);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    // CondWait stage 1: release the mutex, sleep on the condition.
    let mut a = Assembler::new("cond");
    a.sys_h(Sys::MutexCreate, h_m2);
    a.sys_h(Sys::CondCreate, h_c);
    a.mutex_lock(h_m2);
    a.cond_wait(h_c, h_m2);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    // ThreadSleep with no timer and no interruptor.
    let mut a = Assembler::new("sleeper");
    a.sys(Sys::ThreadSleep);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    run_for(&mut k, 10);
}

/// Join, donation and space reaping: all three wait for another
/// thread's progress and complete once it halts.
fn rig_join_donate_spacewait() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_w1 = p.alloc_obj();
    let h_w2 = p.alloc_obj();

    let mut a = Assembler::new("worker");
    a.compute(200_000);
    a.halt();
    let prog = k.register_program(a.finish());
    let w1 = p.start_registered(&mut k, prog, fluke_arch::UserRegs::new(), 8);
    let w2 = p.start_registered(&mut k, prog, fluke_arch::UserRegs::new(), 8);
    k.loader_thread_object(p.space, h_w1, w1);
    k.loader_thread_object(p.space, h_w2, w2);

    // Higher priority than the workers: both block while the workers
    // are still computing.
    let mut a = Assembler::new("joiner");
    a.sys_h(Sys::ThreadWait, h_w1);
    a.halt();
    p.start(&mut k, a.finish(), 10);

    let mut a = Assembler::new("donor");
    a.sys_h(Sys::SchedDonate, h_w2);
    a.halt();
    p.start(&mut k, a.finish(), 10);

    // A manager in another space reaps the workers' space.
    let mut mgr = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
    let h_space = mgr.alloc_obj();
    k.loader_space_object(mgr.space, h_space, p.space);
    let mut a = Assembler::new("reaper");
    a.sys_h(Sys::SpaceWaitThreads, h_space);
    a.halt();
    mgr.start(&mut k, a.finish(), 10);

    run_for(&mut k, 50);
}

/// The three connect-family entrypoints sleeping on a port no server
/// ever accepts from.
fn rig_connect_no_server() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut owner = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x8000);
    let h_port = owner.alloc_obj();
    let port = k.loader_create(owner.space, h_port, ObjType::Port);
    let buf = client.mem_base + 0x1000;

    let h_r1 = client.alloc_obj();
    k.loader_ref(client.space, h_r1, port);
    let mut a = Assembler::new("connect");
    a.sys_h(Sys::IpcClientConnect, h_r1);
    a.halt();
    client.start(&mut k, a.finish(), 8);

    let h_r2 = client.alloc_obj();
    k.loader_ref(client.space, h_r2, port);
    let mut a = Assembler::new("connect-send");
    a.client_connect_send(h_r2, buf, 8);
    a.halt();
    client.start(&mut k, a.finish(), 8);

    let h_r3 = client.alloc_obj();
    k.loader_ref(client.space, h_r3, port);
    let mut a = Assembler::new("connect-rpc");
    a.client_rpc(h_r3, buf, 8, buf + 0x100, 8);
    a.halt();
    client.start(&mut k, a.finish(), 8);

    run_for(&mut k, 10);
}

/// Server-side waits with no client: a port receive, a bare port wait
/// and a portset wait.
fn rig_server_waits() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_p1 = p.alloc_obj();
    let h_p2 = p.alloc_obj();
    let h_ps = p.alloc_obj();
    let buf = p.mem_base + 0x1000;

    let mut a = Assembler::new("wait-receive");
    a.sys_h(Sys::PortCreate, h_p1);
    a.server_wait_receive(h_p1, buf, 8);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("port-wait");
    a.sys_h(Sys::PortCreate, h_p2);
    a.sys_h(Sys::PortWait, h_p2);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("pset-wait");
    a.sys_h(Sys::PsetCreate, h_ps);
    a.sys_h(Sys::PsetWait, h_ps);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    run_for(&mut k, 10);
}

/// An established connection whose server stays alive but inactive
/// (asleep); the client then issues `op`, which must block for want of
/// a receiving/sending peer.
fn rig_client_op(op: &dyn Fn(&mut Assembler, u32)) {
    let mut k = Kernel::new(Config::process_np());
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x8000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    let sbuf = server.mem_base + 0x1000;
    let cbuf = client.mem_base + 0x1000;

    let mut a = Assembler::new("server");
    a.server_wait_receive(h_port, sbuf, 8);
    a.sys(Sys::ThreadSleep);
    a.halt();
    server.start(&mut k, a.finish(), 10);

    let mut a = Assembler::new("client");
    a.client_connect_send(h_ref, cbuf, 8);
    op(&mut a, cbuf);
    a.halt();
    client.start(&mut k, a.finish(), 8);

    run_for(&mut k, 20);
}

/// The mirror image: the client goes to sleep after its first message;
/// the server then issues `op` and must block.
fn rig_server_op(op: &dyn Fn(&mut Assembler, u32)) {
    let mut k = Kernel::new(Config::process_np());
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x8000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    let sbuf = server.mem_base + 0x1000;
    let cbuf = client.mem_base + 0x1000;

    let mut a = Assembler::new("server");
    a.server_wait_receive(h_port, sbuf, 8);
    op(&mut a, sbuf);
    a.halt();
    server.start(&mut k, a.finish(), 10);

    let mut a = Assembler::new("client");
    a.client_connect_send(h_ref, cbuf, 8);
    a.sys(Sys::ThreadSleep);
    a.halt();
    client.start(&mut k, a.finish(), 8);

    run_for(&mut k, 20);
}

/// One-way sends and the waiting receive, each sleeping on an otherwise
/// idle port. `ipc_send_oneway_more` is one of the paper's directly
/// callable restart points (§4.4).
fn rig_oneway_blocks() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut p = ChildProc::new(&mut k);
    let h_pa = p.alloc_obj();
    let h_pb = p.alloc_obj();
    let h_pc = p.alloc_obj();
    let buf = p.mem_base + 0x1000;

    let mut a = Assembler::new("oneway-send");
    a.sys_h(Sys::PortCreate, h_pa);
    a.movi(ARG_HANDLE, h_pa);
    a.movi(ARG_COUNT, 8);
    a.movi(ARG_SBUF, buf);
    a.sys(Sys::IpcSendOneway);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("oneway-recv");
    a.sys_h(Sys::PortCreate, h_pb);
    a.movi(ARG_HANDLE, h_pb);
    a.movi(ARG_COUNT, 8);
    a.movi(ARG_RBUF, buf + 0x100);
    a.sys(Sys::IpcWaitReceiveOneway);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("oneway-more");
    a.sys_h(Sys::PortCreate, h_pc);
    a.movi(ARG_HANDLE, h_pc);
    a.movi(ARG_COUNT, 8);
    a.movi(ARG_SBUF, buf + 0x200);
    a.sys(Sys::IpcSendOnewayMore);
    a.halt();
    p.start(&mut k, a.finish(), 8);

    run_for(&mut k, 10);
}

/// The non-waiting one-way receive never sleeps for want of a sender,
/// so its only block points are mid-transfer: run a 256KB pump under
/// Partial preemption with the 1ms kicker so an explicit preemption
/// point is taken while `ipc_receive_oneway` is the dispatched call.
fn rig_oneway_pump_preempt() {
    let mut k = Kernel::new(Config::process_pp());
    install_kicker(&mut k);
    let mut p = ChildProc::with_mem(&mut k, 0x0100_0000, 0x0009_0000);
    let h_port = p.alloc_obj();
    let len: u32 = 0x0004_0000; // 256KB ≈ 1.3ms of copying
    let sbuf = p.mem_base + 0x0001_0000;
    let rbuf = sbuf + len;

    // Sender first (higher priority): queues on the empty port.
    let mut a = Assembler::new("big-sender");
    a.sys_h(Sys::PortCreate, h_port);
    a.movi(ARG_HANDLE, h_port);
    a.movi(ARG_COUNT, len);
    a.movi(ARG_SBUF, sbuf);
    a.sys(Sys::IpcSendOneway);
    a.halt();
    let s = p.start(&mut k, a.finish(), 10);

    let mut a = Assembler::new("big-receiver");
    a.movi(ARG_HANDLE, h_port);
    a.movi(ARG_COUNT, len);
    a.movi(ARG_RBUF, rbuf);
    a.sys(Sys::IpcReceiveOneway);
    a.halt();
    let r = p.start(&mut k, a.finish(), 8);

    run_for(&mut k, 50);
    assert!(
        k.thread_halted(s) && k.thread_halted(r),
        "big transfer hung"
    );
    assert!(
        k.stats.preempt_points_taken >= 1,
        "pump never hit a preemption point"
    );
}

/// `ipc_submit`'s audited point is the explicit preemption check at
/// each descriptor boundary (`edx` = ops done is the committed restart
/// cursor). Run a ~2ms batch of non-blocking sends — 16 buffer on the
/// port, the rest complete `WouldBlock` — with the 1ms kicker so a
/// boundary check fires mid-batch while `ipc_submit` is the dispatched
/// call.
fn rig_submit_boundary_preempt() {
    use fluke_api::abi::{SUBMIT_DESC_WORDS, SUBMIT_OP_NOWAIT};
    use fluke_arch::{Cond, Reg};

    let mut k = Kernel::new(Config::process_pp());
    install_kicker(&mut k);
    let mut p = ChildProc::with_mem(&mut k, 0x0100_0000, 0x0002_0000);
    let h_port = p.alloc_obj();
    let ops: u32 = 2000;
    let ring = p.mem_base + 0x8000; // 2000 * 16B = 31.25KB of descriptors
    let msg = p.mem_base + 0x1000;

    let mut a = Assembler::new("submitter");
    a.sys_h(Sys::PortCreate, h_port);
    // Fill the ring: identical non-blocking zero-length sends.
    a.movi(Reg::Ebp, ring);
    a.movi(Reg::Esp, ops);
    a.label("fill");
    a.movi(Reg::Eax, SUBMIT_OP_NOWAIT);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.movi(Reg::Eax, h_port);
    a.store(Reg::Ebp, 4, Reg::Eax);
    a.movi(Reg::Eax, msg);
    a.store(Reg::Ebp, 8, Reg::Eax);
    a.movi(Reg::Eax, 0);
    a.store(Reg::Ebp, 12, Reg::Eax);
    a.addi(Reg::Ebp, SUBMIT_DESC_WORDS * 4);
    a.subi(Reg::Esp, 1);
    a.cmpi(Reg::Esp, 0);
    a.jcc(Cond::Ne, "fill");
    a.movi(ARG_SBUF, ring);
    a.movi(ARG_COUNT, ops);
    a.movi(ARG_VAL, 0);
    a.sys(Sys::IpcSubmit);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);

    run_for(&mut k, 50);
    assert!(k.thread_halted(t), "batch hung");
    assert!(
        block_audit_hits(Sys::IpcSubmit) >= 1,
        "ipc_submit never hit its boundary preemption point"
    );
}

/// `region_search` has no sleep at all; its one block point is the
/// Full-preemption check inside the page walk. Search 600 empty pages
/// (≈2.4ms) under FP with the kicker running.
fn rig_region_search_preempt() {
    let mut k = Kernel::new(Config::process_fp());
    install_kicker(&mut k);
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let cursor = 0x0200_0000u32;
    let limit = cursor + 600 * 4096;

    let mut a = Assembler::new("searcher");
    a.movi(ARG_HANDLE, 0); // own space
    a.movi(ARG_VAL, cursor);
    a.movi(ARG_COUNT, limit);
    a.sys(Sys::RegionSearch);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);

    run_for(&mut k, 50);
    assert!(k.thread_halted(t), "search hung");
}

#[test]
fn every_blocking_entrypoint_is_audited() {
    rig_mutex_cond_sleep();
    rig_join_donate_spacewait();
    rig_connect_no_server();
    rig_server_waits();
    rig_oneway_blocks();
    rig_oneway_pump_preempt();
    rig_submit_boundary_preempt();
    rig_region_search_preempt();

    // Client-side operations on an established connection with an
    // inactive peer.
    rig_client_op(&|a, cbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, cbuf);
        a.sys(Sys::IpcClientSend);
    });
    rig_client_op(&|a, cbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, cbuf);
        a.sys(Sys::IpcClientSendMore);
    });
    rig_client_op(&|a, cbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, cbuf);
        a.movi(ARG_RBUF, cbuf + 0x100);
        a.movi(ARG_VAL, 8);
        a.sys(Sys::IpcClientSendOverReceive);
    });
    rig_client_op(&|a, cbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, cbuf + 0x100);
        a.sys(Sys::IpcClientReceive);
    });
    rig_client_op(&|a, cbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, cbuf + 0x100);
        a.sys(Sys::IpcClientReceiveMore);
    });
    rig_client_op(&|a, cbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, cbuf + 0x100);
        a.sys(Sys::IpcClientAckReceive);
    });

    // Server-side operations with a sleeping client.
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, sbuf);
        a.sys(Sys::IpcServerSend);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, sbuf);
        a.sys(Sys::IpcServerSendMore);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, sbuf);
        a.sys(Sys::IpcServerAckSend);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, sbuf);
        a.movi(ARG_RBUF, sbuf + 0x100);
        a.movi(ARG_VAL, 8);
        a.sys(Sys::IpcServerSendWaitReceive);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, sbuf);
        a.movi(ARG_RBUF, sbuf + 0x100);
        a.movi(ARG_VAL, 8);
        a.sys(Sys::IpcServerAckSendWaitReceive);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_SBUF, sbuf);
        a.movi(ARG_RBUF, sbuf + 0x100);
        a.movi(ARG_VAL, 8);
        a.sys(Sys::IpcServerSendOverReceive);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, sbuf + 0x100);
        a.sys(Sys::IpcServerReceive);
    });
    rig_server_op(&|a, sbuf| {
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, sbuf + 0x100);
        a.sys(Sys::IpcServerReceiveMore);
    });

    // Every Long and Multi-stage row must have been audited at least
    // once; Trivial and Short rows must never be (they cannot block).
    let mut missing = Vec::new();
    for d in SYSCALLS {
        let hits = block_audit_hits(d.sys);
        match d.class {
            SysClass::Long | SysClass::MultiStage => {
                if hits == 0 {
                    missing.push(d.name);
                }
            }
            SysClass::Trivial | SysClass::Short => {
                assert_eq!(hits, 0, "{} is non-blocking yet was audited", d.name);
            }
        }
    }
    assert!(
        missing.is_empty(),
        "blocking entrypoints never reached an audited block point: {missing:?}"
    );
}

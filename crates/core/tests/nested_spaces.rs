//! Nested space hierarchies — the "recursive virtual machines" Fluke was
//! built for \[16\]: memory imported through a *chain* of spaces, each level
//! a mapping over the one above, resolving faults by multi-level
//! derivation and, at the root, a user-level pager.

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, FaultKind, Kernel, SpaceId};
use fluke_user::pager::PagerSetup;
use fluke_user::proc::run_to_halt;

const WINDOW: u32 = 0x0080_0000; // every level sees the memory here
const LEN: u32 = 64 << 10;

/// Build a chain of `depth` spaces: level 0 imports the pager's region,
/// and each deeper level imports a region exported by the previous one at
/// the same window address.
fn build_chain(k: &mut Kernel, pager: &PagerSetup, depth: usize) -> Vec<SpaceId> {
    let mut spaces = Vec::new();
    let mut obj_slot = 0x1c00; // free object slots in the pager's page
    let mut alloc = |k: &mut Kernel| {
        while k.object_at(pager.space, obj_slot).is_some() {
            obj_slot += 32;
        }
        obj_slot
    };
    for level in 0..depth {
        let s = k.create_space();
        if level == 0 {
            let slot = alloc(k);
            k.loader_mapping(pager.space, slot, s, WINDOW, LEN, pager.region, 0, true);
        } else {
            let prev = spaces[level - 1];
            let rslot = alloc(k);
            let region = k.loader_region_at(pager.space, rslot, prev, WINDOW, LEN, None);
            let mslot = alloc(k);
            k.loader_mapping(pager.space, mslot, s, WINDOW, LEN, region, 0, true);
        }
        spaces.push(s);
    }
    spaces
}

/// A thread at the BOTTOM of a three-deep chain touches memory: the walk
/// climbs all three levels, bottoms out at the pager (hard fault), and
/// after service the derivation installs a PTE at the leaf.
#[test]
fn three_level_hierarchy_resolves_through_pager() {
    let mut k = Kernel::new(Config::process_np());
    let pager = PagerSetup::boot(&mut k, 1 << 20, 12);
    let spaces = build_chain(&mut k, &pager, 3);
    let leaf = spaces[2];

    let mut a = Assembler::new("deep-toucher");
    a.movi(Reg::Esi, WINDOW);
    a.movi(Reg::Ecx, 4);
    a.movi(Reg::Ebx, 0xC4);
    a.label("w");
    a.storeb(Reg::Esi, 0, Reg::Ebx);
    a.addi(Reg::Esi, 4096);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "w");
    a.halt();
    let pid = k.register_program(a.finish());
    let t = k.spawn_thread(leaf, pid, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[t], 1_000_000_000));

    assert_eq!(k.stats.hard_faults, 4, "one pager RPC per page");
    // Writes through the leaf are visible in the pager's backing store:
    // the frames are shared down the chain, not copied.
    for page in 0..4u32 {
        assert_eq!(
            k.read_mem(pager.space, pager.backing_base + page * 4096, 1),
            vec![0xC4]
        );
    }
    // And visible at every intermediate level.
    for &s in &spaces {
        assert_eq!(k.read_mem(s, WINDOW, 1), vec![0xC4]);
    }
}

/// With the root pre-populated, the leaf's faults are pure multi-level
/// soft derivations — no pager traffic at all.
#[test]
fn prefilled_root_makes_deep_faults_soft() {
    let mut k = Kernel::new(Config::interrupt_np());
    let pager = PagerSetup::boot(&mut k, 1 << 20, 12);
    k.grant_pages(pager.space, pager.backing_base, LEN, true);
    k.write_mem(pager.space, pager.backing_base, &[0xEE; 8]);
    let spaces = build_chain(&mut k, &pager, 3);
    let leaf = spaces[2];

    let mut a = Assembler::new("reader");
    a.movi(Reg::Esi, WINDOW);
    a.loadb(Reg::Ebx, Reg::Esi, 0);
    a.halt();
    let pid = k.register_program(a.finish());
    let t = k.spawn_thread(leaf, pid, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[t], 100_000_000));
    assert_eq!(k.thread_regs(t).get(Reg::Ebx), 0xEE);
    assert_eq!(k.stats.hard_faults, 0);
    assert!(k.stats.soft_faults >= 1);
    // The soft derivation climbed multiple levels; its cost reflects that.
    let rec = k
        .stats
        .fault_records
        .iter()
        .find(|f| f.kind == FaultKind::Soft)
        .expect("a soft fault record");
    assert!(
        rec.remedy_cycles >= k.cost.soft_fault_resolve,
        "deep derivation should cost at least one level"
    );
}

/// A read-only mapping level enforces write protection for everything
/// below it, while reads still resolve.
#[test]
fn read_only_level_blocks_writes_below() {
    let mut k = Kernel::new(Config::process_np());
    let pager = PagerSetup::boot(&mut k, 1 << 20, 12);
    k.grant_pages(pager.space, pager.backing_base, LEN, true);
    k.write_mem(pager.space, pager.backing_base, &[0x77; 4]);

    // Level 0 imports the pager region read-write; level 1 imports a
    // region over level 0 READ-ONLY.
    let s0 = k.create_space();
    let mut slot = 0x1c00;
    while k.object_at(pager.space, slot).is_some() {
        slot += 32;
    }
    k.loader_mapping(pager.space, slot, s0, WINDOW, LEN, pager.region, 0, true);
    let s1 = k.create_space();
    let mut rslot = slot + 32;
    while k.object_at(pager.space, rslot).is_some() {
        rslot += 32;
    }
    let region = k.loader_region_at(pager.space, rslot, s0, WINDOW, LEN, None);
    let mut mslot = rslot + 32;
    while k.object_at(pager.space, mslot).is_some() {
        mslot += 32;
    }
    k.loader_mapping(pager.space, mslot, s1, WINDOW, LEN, region, 0, false);

    // Reads succeed.
    let mut a = Assembler::new("reader");
    a.movi(Reg::Esi, WINDOW);
    a.loadb(Reg::Ebx, Reg::Esi, 0);
    a.halt();
    let pid = k.register_program(a.finish());
    let t = k.spawn_thread(s1, pid, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[t], 100_000_000));
    assert_eq!(k.thread_regs(t).get(Reg::Ebx), 0x77);

    // Writes are fatal to the writer (no mapping grants them).
    let mut a = Assembler::new("writer");
    a.movi(Reg::Esi, WINDOW);
    a.movi(Reg::Ebx, 1);
    a.storeb(Reg::Esi, 0, Reg::Ebx);
    a.halt();
    let pid = k.register_program(a.finish());
    let t = k.spawn_thread(s1, pid, fluke_arch::UserRegs::new(), 8);
    k.run(Some(100_000_000));
    assert!(k.thread_halted(t), "writer destroyed by fatal fault");
    assert!(k.stats.fatal_faults >= 1);
    // The byte is untouched.
    assert_eq!(k.read_mem(pager.space, pager.backing_base, 1), vec![0x77]);
}

/// Mapping offsets slice a region: two children see disjoint halves of
/// the same backing store.
#[test]
fn mapping_offsets_give_disjoint_views() {
    let mut k = Kernel::new(Config::process_np());
    let pager = PagerSetup::boot(&mut k, 1 << 20, 12);
    k.grant_pages(pager.space, pager.backing_base, 2 * LEN, true);
    k.write_mem(pager.space, pager.backing_base, &[0xAA; 2]);
    k.write_mem(pager.space, pager.backing_base + LEN, &[0xBB; 2]);

    let view = |k: &mut Kernel, offset: u32| {
        let s = k.create_space();
        let mut slot = 0x1c00;
        while k.object_at(pager.space, slot).is_some() {
            slot += 32;
        }
        k.loader_mapping(
            pager.space,
            slot,
            s,
            WINDOW,
            LEN,
            pager.region,
            offset,
            true,
        );
        s
    };
    let s_lo = view(&mut k, 0);
    let s_hi = view(&mut k, LEN);
    assert_eq!(k.read_mem(s_lo, WINDOW, 1), vec![0xAA]);
    assert_eq!(k.read_mem(s_hi, WINDOW, 1), vec![0xBB]);
}

//! Batched IPC submission (`ipc_submit`): one kernel entry processes a
//! user-memory ring of one-way send/receive descriptors.
//!
//! Covered here: buffered sends delivering in order through plain
//! receives, batched receives draining the buffer, `WouldBlock` on a
//! full buffer, per-descriptor errors (a destroyed port mid-batch)
//! leaving the rest of the batch live, a descriptor ring straddling an
//! unmapped page (faulted mid-batch and replayed at the `edx` cursor),
//! FIFO between spilled/plain senders and the kernel buffer, and a
//! kfault extract-restore sweep racing wakes at the wait-queue sites.

use fluke_api::abi::{
    ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL, PAGE_SIZE, PORT_BUF_MSGS, SUBMIT_DONE,
    SUBMIT_OP_NOWAIT, SUBMIT_OP_RECV, SUBMIT_RESULT_SHIFT,
};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::{Assembler, Reg};
use fluke_core::{Config, Kernel, KfaultConfig, KfaultKind};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Encode one descriptor: `{opflags, port, buf, len}` little-endian.
fn desc(opflags: u32, port_h: u32, buf: u32, len: u32) -> Vec<u8> {
    [opflags, port_h, buf, len]
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

/// The completed-descriptor word the kernel writes back into word 0.
fn result_word(opflags_in: u32, code: ErrorCode) -> u32 {
    (opflags_in & 0xffff) | ((code as u32) << SUBMIT_RESULT_SHIFT) | SUBMIT_DONE
}

/// A submitter program: `ipc_submit(esi=ring, ecx=count, edx=0)`.
fn submit_prog(name: &str, ring: u32, count: u32) -> Assembler {
    let mut a = Assembler::new(name);
    a.movi(ARG_SBUF, ring);
    a.movi(ARG_COUNT, count);
    a.movi(ARG_VAL, 0);
    a.sys(Sys::IpcSubmit);
    a.halt();
    a
}

/// Three buffered sends in one batch, drained by a plain receiver: the
/// messages arrive in submission order with their payloads intact, and
/// the sender never blocks.
#[test]
fn batched_sends_deliver_in_order_through_plain_receives() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let ring = p.mem_base + 0x1000;
    let msgs = p.mem_base + 0x2000;
    let rbuf = p.mem_base + 0x3000;

    let mut image = Vec::new();
    for i in 0..3u32 {
        image.extend(desc(0, h_port, msgs + i * 16, 8));
    }
    k.write_mem(p.space, ring, &image);
    k.write_mem(p.space, msgs, b"msg-0...");
    k.write_mem(p.space, msgs + 16, b"msg-1...");
    k.write_mem(p.space, msgs + 32, b"msg-2...");

    // Receiver first (higher priority): parks on the empty port, then
    // drains the remaining two straight from the kernel buffer.
    let mut a = Assembler::new("receiver");
    for i in 0..3u32 {
        a.movi(ARG_HANDLE, h_port);
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, rbuf + i * 16);
        a.sys(Sys::IpcWaitReceiveOneway);
    }
    a.halt();
    let rt = p.start(&mut k, a.finish(), 10);
    let st = p.start(&mut k, submit_prog("submitter", ring, 3).finish(), 8);

    assert!(run_to_halt(&mut k, &[rt, st], 100_000_000));
    assert_eq!(k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(k.thread_regs(st).get(ARG_VAL), 3, "all three ops committed");
    for i in 0..3u32 {
        assert_eq!(
            k.read_mem(p.space, rbuf + i * 16, 8),
            format!("msg-{i}...").into_bytes(),
            "message {i} out of order or corrupt"
        );
        assert_eq!(
            k.read_mem_u32(p.space, ring + i * 16),
            result_word(0, ErrorCode::Success),
            "descriptor {i} result"
        );
    }
    // Batches count kernel entries: waking the higher-priority receiver
    // mid-batch preempts at a descriptor boundary and re-enters.
    assert!(k.stats.ipc_submit_batches >= 1);
    assert_eq!(k.stats.ipc_submit_ops, 3);
    assert_eq!(k.stats.ipc_messages, 3);
}

/// Batched receives drain the kernel buffer filled by an earlier batch:
/// word 3 reports each delivered length and word 0 the result code.
#[test]
fn batched_receives_drain_the_buffer() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let ring = p.mem_base + 0x1000;
    let msgs = p.mem_base + 0x2000;
    let rbuf = p.mem_base + 0x3000;

    // One batch: two sends, then two receives on the same port.
    let mut image = Vec::new();
    image.extend(desc(0, h_port, msgs, 6));
    image.extend(desc(0, h_port, msgs + 16, 6));
    image.extend(desc(SUBMIT_OP_RECV, h_port, rbuf, 16));
    image.extend(desc(SUBMIT_OP_RECV, h_port, rbuf + 16, 4)); // short window
    k.write_mem(p.space, ring, &image);
    k.write_mem(p.space, msgs, b"first.");
    k.write_mem(p.space, msgs + 16, b"second");

    let st = p.start(&mut k, submit_prog("submitter", ring, 4).finish(), 8);
    assert!(run_to_halt(&mut k, &[st], 100_000_000));
    assert_eq!(k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(k.thread_regs(st).get(ARG_VAL), 4);
    assert_eq!(k.read_mem(p.space, rbuf, 6), b"first.".to_vec());
    assert_eq!(
        k.read_mem_u32(p.space, ring + 2 * 16 + 12),
        6,
        "delivered length written to word 3"
    );
    assert_eq!(
        k.read_mem_u32(p.space, ring + 2 * 16),
        result_word(SUBMIT_OP_RECV, ErrorCode::Success)
    );
    // The short window truncates: 4 bytes delivered, excess dropped.
    assert_eq!(k.read_mem(p.space, rbuf + 16, 4), b"seco".to_vec());
    assert_eq!(k.read_mem_u32(p.space, ring + 3 * 16 + 12), 4);
    assert_eq!(
        k.read_mem_u32(p.space, ring + 3 * 16),
        result_word(SUBMIT_OP_RECV, ErrorCode::Truncated)
    );
}

/// Non-blocking sends past the buffer cap complete with `WouldBlock`
/// and the batch keeps going to the end.
#[test]
fn nowait_sends_report_wouldblock_on_full_buffer() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x0002_0000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let ring = p.mem_base + 0x1000;
    let msg = p.mem_base + 0x8000;
    let ops = PORT_BUF_MSGS as u32 + 2;

    let mut image = Vec::new();
    for _ in 0..ops {
        image.extend(desc(SUBMIT_OP_NOWAIT, h_port, msg, 4));
    }
    k.write_mem(p.space, ring, &image);
    k.write_mem(p.space, msg, b"ping");

    let st = p.start(&mut k, submit_prog("submitter", ring, ops).finish(), 8);
    assert!(run_to_halt(&mut k, &[st], 100_000_000));
    assert_eq!(k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(k.thread_regs(st).get(ARG_VAL), ops, "batch ran to the end");
    for i in 0..PORT_BUF_MSGS as u32 {
        assert_eq!(
            k.read_mem_u32(p.space, ring + i * 16),
            result_word(SUBMIT_OP_NOWAIT, ErrorCode::Success),
            "op {i} should have buffered"
        );
    }
    for i in PORT_BUF_MSGS as u32..ops {
        assert_eq!(
            k.read_mem_u32(p.space, ring + i * 16),
            result_word(SUBMIT_OP_NOWAIT, ErrorCode::WouldBlock),
            "op {i} should have found the buffer full"
        );
    }
    assert_eq!(k.stats.ipc_submit_buffered, PORT_BUF_MSGS as u64);
}

/// A destroyed port mid-batch completes its descriptor with
/// `InvalidHandle`; later descriptors against a live port still run.
#[test]
fn destroyed_port_mid_batch_fails_one_descriptor_not_the_batch() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let h_dead = p.alloc_obj();
    let h_live = p.alloc_obj();
    k.loader_create(p.space, h_live, ObjType::Port);
    let ring = p.mem_base + 0x1000;
    let msg = p.mem_base + 0x2000;

    let mut image = Vec::new();
    image.extend(desc(SUBMIT_OP_NOWAIT, h_dead, msg, 4));
    image.extend(desc(SUBMIT_OP_NOWAIT, h_live, msg, 4));
    k.write_mem(p.space, ring, &image);
    k.write_mem(p.space, msg, b"live");

    // The program creates then destroys the first port before submitting:
    // its handle is stale by the time descriptor 0 is processed.
    let mut a = Assembler::new("submitter");
    a.sys_h(Sys::PortCreate, h_dead);
    a.sys_h(Sys::PortDestroy, h_dead);
    a.movi(ARG_SBUF, ring);
    a.movi(ARG_COUNT, 2);
    a.movi(ARG_VAL, 0);
    a.sys(Sys::IpcSubmit);
    a.halt();
    let st = p.start(&mut k, a.finish(), 8);

    assert!(run_to_halt(&mut k, &[st], 100_000_000));
    assert_eq!(k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(k.thread_regs(st).get(ARG_VAL), 2);
    assert_eq!(
        k.read_mem_u32(p.space, ring),
        result_word(SUBMIT_OP_NOWAIT, ErrorCode::InvalidHandle),
        "stale handle must fail its own descriptor only"
    );
    assert_eq!(
        k.read_mem_u32(p.space, ring + 16),
        result_word(SUBMIT_OP_NOWAIT, ErrorCode::Success),
        "live port descriptor must still complete"
    );
}

/// A ring that straddles into a not-yet-mapped page: the descriptor
/// reads fault mid-batch, are resolved, and the batch replays from the
/// committed `edx` cursor — every descriptor still completes exactly
/// once (the result words say so).
#[test]
fn descriptor_ring_straddling_unmapped_page_completes() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let msg = p.mem_base + 0x3000;
    // Two descriptors before the page boundary, two after. Only the
    // first page of the ring is pre-touched; the second page is mapped
    // on first access, mid-batch.
    let ring = p.mem_base + PAGE_SIZE - 2 * 16;

    k.write_mem(p.space, msg, b"page");
    let head: Vec<u8> = [
        desc(SUBMIT_OP_NOWAIT, h_port, msg, 4),
        desc(SUBMIT_OP_NOWAIT, h_port, msg, 4),
    ]
    .concat();
    k.write_mem(p.space, ring, &head);
    let faults_before = k.stats.soft_faults;
    let tail: Vec<u8> = [
        desc(SUBMIT_OP_NOWAIT, h_port, msg, 4),
        desc(SUBMIT_OP_NOWAIT, h_port, msg, 4),
    ]
    .concat();
    k.write_mem(p.space, ring + 2 * 16, &tail);
    // `write_mem` maps the page itself in most configurations; undo its
    // head start by flushing the mapping so the *kernel* faults on it.
    let straddled = k.stats.soft_faults == faults_before;

    let st = p.start(&mut k, submit_prog("submitter", ring, 4).finish(), 8);
    assert!(run_to_halt(&mut k, &[st], 100_000_000));
    assert_eq!(k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(k.thread_regs(st).get(ARG_VAL), 4);
    for i in 0..4u32 {
        assert_eq!(
            k.read_mem_u32(p.space, ring + i * 16),
            result_word(SUBMIT_OP_NOWAIT, ErrorCode::Success),
            "descriptor {i} must complete exactly once across the fault"
        );
    }
    assert_eq!(k.stats.ipc_submit_ops, 4, "no descriptor ran twice");
    // If the debugger write pre-mapped the page this degrades to a plain
    // batch; the interesting variant is pinned by the assertion below.
    let _ = straddled;
}

/// FIFO across the buffer and the rendezvous queue: a plain sender
/// blocked on the port was sent first, so a submitted send must not
/// overtake it — it spills behind it (or reports `WouldBlock` when
/// non-blocking).
#[test]
fn submitted_send_does_not_overtake_blocked_plain_sender() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let ring = p.mem_base + 0x1000;
    let bufs = p.mem_base + 0x2000;
    let rbuf = p.mem_base + 0x3000;

    k.write_mem(p.space, bufs, b"AAAA");
    k.write_mem(p.space, bufs + 16, b"BBBB");
    let image = desc(0, h_port, bufs + 16, 4);
    k.write_mem(p.space, ring, &image);

    // Plain sender first (highest priority): blocks in rendezvous.
    let mut a = Assembler::new("plain-sender");
    a.movi(ARG_HANDLE, h_port);
    a.movi(ARG_COUNT, 4);
    a.movi(ARG_SBUF, bufs);
    a.sys(Sys::IpcSendOneway);
    a.halt();
    let pt = p.start(&mut k, a.finish(), 12);

    // Submitter second: must spill behind the queued sender.
    let st = p.start(&mut k, submit_prog("submitter", ring, 1).finish(), 10);

    // Receiver last: two receives must observe A then B.
    let mut a = Assembler::new("receiver");
    for i in 0..2u32 {
        a.movi(ARG_HANDLE, h_port);
        a.movi(ARG_COUNT, 4);
        a.movi(ARG_RBUF, rbuf + i * 16);
        a.sys(Sys::IpcWaitReceiveOneway);
    }
    a.halt();
    let rt = p.start(&mut k, a.finish(), 8);

    assert!(run_to_halt(&mut k, &[pt, st, rt], 100_000_000));
    assert_eq!(
        k.read_mem(p.space, rbuf, 4),
        b"AAAA".to_vec(),
        "plain first"
    );
    assert_eq!(
        k.read_mem(p.space, rbuf + 16, 4),
        b"BBBB".to_vec(),
        "submitted second"
    );
    assert_eq!(k.thread_regs(st).get(Reg::Eax), ErrorCode::Success as u32);
}

/// A submitted receive on an empty port (blocking flavour) spills to
/// the plain `ipc_wait_receive_oneway` continuation: the thread sleeps
/// plain-shaped, wakes on a plain send, and the payload lands in the
/// descriptor's buffer with `edx` still counting the committed prefix.
#[test]
fn submitted_receive_spills_to_plain_wait() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let h_port = p.alloc_obj();
    k.loader_create(p.space, h_port, ObjType::Port);
    let ring = p.mem_base + 0x1000;
    let rbuf = p.mem_base + 0x2000;
    let msg = p.mem_base + 0x3000;

    let image = desc(SUBMIT_OP_RECV, h_port, rbuf, 8);
    k.write_mem(p.space, ring, &image);
    k.write_mem(p.space, msg, b"wakeup!!");

    // Receiver first: the batch's only descriptor can't proceed, so the
    // call chains to the plain wait-receive and sleeps.
    let rt = p.start(&mut k, submit_prog("submit-recv", ring, 1).finish(), 10);

    let mut a = Assembler::new("plain-sender");
    a.movi(ARG_HANDLE, h_port);
    a.movi(ARG_COUNT, 8);
    a.movi(ARG_SBUF, msg);
    a.sys(Sys::IpcSendOneway);
    a.halt();
    let st = p.start(&mut k, a.finish(), 8);

    assert!(run_to_halt(&mut k, &[rt, st], 100_000_000));
    assert_eq!(k.thread_regs(rt).get(Reg::Eax), ErrorCode::Success as u32);
    assert_eq!(
        k.thread_regs(rt).get(ARG_VAL),
        0,
        "spilled op completes as the plain call; edx counts only committed descriptors"
    );
    assert_eq!(k.read_mem(p.space, rbuf, 8), b"wakeup!!".to_vec());
}

/// kfault extract-restore swept across every site of the batched
/// workload: destroying and restoring thread state while wakes race the
/// wait queues must never change what the program computes.
#[test]
fn extract_restore_sweep_over_batched_workload() {
    fn run(kf: Option<KfaultConfig>) -> (Kernel, Vec<u8>) {
        let mut k = Kernel::new(match kf {
            Some(kf) => Config::process_np().with_kfault(kf),
            None => Config::process_np(),
        });
        let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
        let h_port = p.alloc_obj();
        k.loader_create(p.space, h_port, ObjType::Port);
        let ring = p.mem_base + 0x1000;
        let msgs = p.mem_base + 0x2000;
        let rbuf = p.mem_base + 0x3000;

        let mut image = Vec::new();
        for i in 0..3u32 {
            image.extend(desc(0, h_port, msgs + i * 16, 8));
        }
        k.write_mem(p.space, ring, &image);
        for i in 0..3u32 {
            k.write_mem(p.space, msgs + i * 16, format!("burst-{i}").as_bytes());
        }

        let mut a = Assembler::new("receiver");
        for i in 0..3u32 {
            a.movi(ARG_HANDLE, h_port);
            a.movi(ARG_COUNT, 8);
            a.movi(ARG_RBUF, rbuf + i * 16);
            a.sys(Sys::IpcWaitReceiveOneway);
        }
        a.halt();
        let rt = p.start(&mut k, a.finish(), 10);
        let st = p.start(&mut k, submit_prog("submitter", ring, 3).finish(), 8);
        assert!(run_to_halt(&mut k, &[rt, st], 200_000_000));
        let out = k.read_mem(p.space, rbuf, 3 * 16);
        (k, out)
    }

    let (golden_k, golden) = run(None);
    assert_eq!(&golden[0..7], b"burst-0");
    let (count_k, counted) = run(Some(KfaultConfig::count_sites(KfaultKind::ExtractRestore)));
    assert_eq!(counted, golden, "armed-but-idle hooks perturbed the run");
    let sites = count_k.kfault().expect("armed").sites_seen();
    assert!(
        sites > 0,
        "no extract-restore sites in a blocking workload?"
    );
    assert_eq!(golden_k.stats.ipc_messages, count_k.stats.ipc_messages);

    for site in 0..sites {
        let (k, out) = run(Some(KfaultConfig::at(KfaultKind::ExtractRestore, site)));
        assert!(
            k.kfault().expect("armed").fired(),
            "site {site} counted but never fired"
        );
        assert_eq!(
            out, golden,
            "extract-restore at site {site} changed the output"
        );
    }
}

//! Differential property test for the bulk user-memory fast path.
//!
//! Random page layouts — unmapped holes, read-only pages, writable pages
//! and aliases of earlier pages (shared frames) — are built identically
//! in two kernels, one with the software-TLB fast path and one with
//! `Config::fast_mem` off (the per-byte reference, the same algorithm as
//! the `UserMem` trait's byte-at-a-time defaults). Random bulk reads and
//! writes must then agree exactly: same data, same fault address and
//! access kind, same completed-byte count, and the same final memory.

use fluke_arch::UserMem;
use fluke_core::{Config, Kernel, SpaceId};

const PAGE: u32 = fluke_api::abi::PAGE_SIZE;
const BASE: u32 = 0x0100_0000;
const PAGES: u32 = 16;

/// Deterministic 64-bit LCG (top bits are well mixed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }
}

#[derive(Debug, Clone, Copy)]
enum PageKind {
    Unmapped,
    ReadOnly,
    Writable,
    /// Shares the frame of an earlier page (by index), with its own
    /// writable bit.
    AliasOf(u32, bool),
}

fn roll_layout(rng: &mut Lcg) -> Vec<PageKind> {
    let mut kinds: Vec<PageKind> = Vec::new();
    for i in 0..PAGES {
        let mapped_before: Vec<u32> = (0..i)
            .filter(|&j| !matches!(kinds[j as usize], PageKind::Unmapped))
            .collect();
        let kind = match rng.next() % 8 {
            0 => PageKind::Unmapped,
            1 => PageKind::ReadOnly,
            6 | 7 if !mapped_before.is_empty() => {
                let j = mapped_before[rng.next() as usize % mapped_before.len()];
                PageKind::AliasOf(j, rng.next().is_multiple_of(2))
            }
            _ => PageKind::Writable,
        };
        kinds.push(kind);
    }
    kinds
}

fn addr_of(i: u32) -> u32 {
    BASE + i * PAGE
}

/// Build the layout in a kernel. `fills` holds the initial content of
/// each non-alias mapped page.
fn apply_layout(k: &mut Kernel, space: SpaceId, kinds: &[PageKind], fills: &[Vec<u8>]) {
    for (i, kind) in kinds.iter().enumerate() {
        let a = addr_of(i as u32);
        match *kind {
            PageKind::Unmapped => {}
            PageKind::ReadOnly | PageKind::Writable => {
                k.grant_pages(space, a, PAGE, true);
                k.write_mem(space, a, &fills[i]);
                if matches!(kind, PageKind::ReadOnly) {
                    assert!(k.protect_page(space, a, false));
                }
            }
            PageKind::AliasOf(j, writable) => {
                k.alias_pages(space, a, space, addr_of(j), PAGE, writable);
            }
        }
    }
}

#[test]
fn bulk_ops_match_byte_at_a_time_reference_on_random_layouts() {
    for seed in 0..6u64 {
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ (seed * 0x1234_5678_9abc));
        let kinds = roll_layout(&mut rng);
        let fills: Vec<Vec<u8>> = (0..PAGES)
            .map(|_| (0..PAGE).map(|_| rng.next() as u8).collect())
            .collect();

        let mut fast = Kernel::new(Config::process_np());
        let mut reference = Kernel::new(Config::process_np().with_fast_mem(false));
        let s_fast = fast.create_space();
        let s_ref = reference.create_space();
        apply_layout(&mut fast, s_fast, &kinds, &fills);
        apply_layout(&mut reference, s_ref, &kinds, &fills);

        // Random bulk ops over a window one page wider than the layout on
        // each side, so runs start and end in unmapped territory too.
        for op in 0..200 {
            let addr = BASE - PAGE + rng.next() % ((PAGES + 2) * PAGE);
            let len = (rng.next() % (3 * PAGE)) as usize;
            let ctx = format!("seed {seed} op {op} addr {addr:#x} len {len}");
            if rng.next().is_multiple_of(2) {
                let mut got_fast = vec![0u8; len];
                let mut got_ref = vec![0u8; len];
                let ra = fast
                    .user_mem(s_fast)
                    .unwrap()
                    .read_bytes(addr, &mut got_fast);
                let rb = reference
                    .user_mem(s_ref)
                    .unwrap()
                    .read_bytes(addr, &mut got_ref);
                assert_eq!(ra, rb, "read result diverged: {ctx}");
                assert_eq!(got_fast, got_ref, "read data diverged: {ctx}");
            } else {
                let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
                let wa = fast.user_mem(s_fast).unwrap().write_bytes(addr, &data);
                let wb = reference.user_mem(s_ref).unwrap().write_bytes(addr, &data);
                assert_eq!(wa, wb, "write result diverged: {ctx}");
            }
        }

        // Final memory must agree page by page (a write that committed a
        // different prefix would show up here even if the results agreed).
        for (i, kind) in kinds.iter().enumerate() {
            if matches!(kind, PageKind::Unmapped) {
                continue;
            }
            let a = addr_of(i as u32);
            let mut got_fast = vec![0u8; PAGE as usize];
            let mut got_ref = vec![0u8; PAGE as usize];
            fast.user_mem(s_fast)
                .unwrap()
                .read_bytes(a, &mut got_fast)
                .unwrap();
            reference
                .user_mem(s_ref)
                .unwrap()
                .read_bytes(a, &mut got_ref)
                .unwrap();
            assert_eq!(got_fast, got_ref, "seed {seed}: page {i} contents diverged");
        }

        let tlb = fast.tlb_stats();
        assert!(
            tlb.hits > 0 && tlb.misses > 0,
            "seed {seed}: software TLB never exercised ({tlb:?})"
        );
    }
}

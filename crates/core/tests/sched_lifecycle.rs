//! Scheduler and thread-lifecycle semantics: yield, directed scheduling,
//! donation, sleep/wake, space reaping, timeslicing, and destruction edge
//! cases.

use fluke_api::{ErrorCode, Sys};
use fluke_arch::cost::ms_to_cycles;
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel, RunState, WaitReason};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Two equal-priority spinners with periodic yields interleave: both make
/// progress rather than one running to completion first.
#[test]
fn yield_interleaves_equal_priority_threads() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let cell_a = p.mem_base + 0x1000;
    let cell_b = p.mem_base + 0x1004;
    let obs_a = p.mem_base + 0x1008; // a's view of b when a finished

    let spinner = |mine: u32, theirs: u32, obs: Option<u32>| {
        let mut a = Assembler::new("spinner");
        a.movi(Reg::Ecx, 50);
        a.label("top");
        a.movi(Reg::Ebp, mine);
        a.load(Reg::Edx, Reg::Ebp, 0);
        a.addi(Reg::Edx, 1);
        a.store(Reg::Ebp, 0, Reg::Edx);
        a.sys(Sys::SysYield);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "top");
        if let Some(obs) = obs {
            a.movi(Reg::Ebp, theirs);
            a.load(Reg::Edx, Reg::Ebp, 0);
            a.movi(Reg::Ebp, obs);
            a.store(Reg::Ebp, 0, Reg::Edx);
        }
        a.halt();
        a.finish()
    };
    let ta = p.start(&mut k, spinner(cell_a, cell_b, Some(obs_a)), 8);
    let tb = p.start(&mut k, spinner(cell_b, cell_a, None), 8);
    assert!(run_to_halt(&mut k, &[ta, tb], 100_000_000));
    assert_eq!(k.read_mem_u32(p.space, cell_a), 50);
    assert_eq!(k.read_mem_u32(p.space, cell_b), 50);
    // When A finished, B had already made substantial progress.
    let seen = k.read_mem_u32(p.space, obs_a);
    assert!(seen >= 40, "B only reached {seen} when A finished");
}

/// Higher priority strictly preempts lower.
#[test]
fn priority_preemption_is_strict() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let marker = p.mem_base + 0x1000;
    // Low priority: spins for a long time, then writes 1.
    let mut a = Assembler::new("low");
    for _ in 0..200 {
        a.compute(1_000);
    }
    a.store_const(marker, 1);
    a.halt();
    let low = p.start(&mut k, a.finish(), 4);
    // High priority (spawned after low has started): writes 2 immediately.
    k.run(Some(10_000));
    let mut a = Assembler::new("high");
    a.store_const(marker, 2);
    a.halt();
    let high = p.start(&mut k, a.finish(), 16);
    // The very next stretch of execution must complete `high` long before
    // `low` finishes its compute block.
    k.run(Some(ms_to_cycles(1)));
    assert!(k.thread_halted(high));
    assert!(!k.thread_halted(low));
    assert_eq!(k.read_mem_u32(p.space, marker), 2);
    assert!(run_to_halt(&mut k, &[low], 1_000_000_000));
    assert_eq!(k.read_mem_u32(p.space, marker), 1);
}

/// `sched_donate` parks the donor until the target blocks or halts.
#[test]
fn sched_donate_waits_for_target() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_thread = p.alloc_obj();
    let order = p.mem_base + 0x1000;

    let mut a = Assembler::new("worker");
    a.compute(20_000);
    a.store_const(order, 0xAA); // worker finishes first
    a.halt();
    let worker = p.start(&mut k, a.finish(), 8);
    k.loader_thread_object(p.space, h_thread, worker);

    let mut a = Assembler::new("donor");
    a.sys_h(Sys::SchedDonate, h_thread);
    a.movi(Reg::Ebp, order + 4);
    a.store(Reg::Ebp, 0, Reg::Eax); // donation result
    a.halt();
    // Higher priority: the donor runs first and donates to the still-ready
    // worker.
    let donor = p.start(&mut k, a.finish(), 10);

    assert!(run_to_halt(&mut k, &[worker, donor], 100_000_000));
    assert_eq!(k.read_mem_u32(p.space, order), 0xAA);
    assert_eq!(
        k.read_mem_u32(p.space, order + 4),
        ErrorCode::Success as u32
    );
}

/// `thread_sleep` + a timer wake: the sleeper resumes with Success after
/// (not before) the programmed instant.
#[test]
fn thread_sleep_wakes_on_timer() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let rec = p.mem_base + 0x1000;
    let mut a = Assembler::new("sleeper");
    a.sys(Sys::ThreadSleep);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    // Record the wall clock after waking.
    a.sys(Sys::SysClock);
    a.store(Reg::Ebp, 4, fluke_api::abi::ARG_VAL);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    k.wake_at(t, ms_to_cycles(5));
    assert!(run_to_halt(&mut k, &[t], 100_000_000));
    assert_eq!(k.read_mem_u32(p.space, rec), ErrorCode::Success as u32);
    let woke_us = k.read_mem_u32(p.space, rec + 4);
    assert!(woke_us >= 5_000, "woke at {woke_us}µs, before the timer");
}

/// `space_wait_threads` completes once the watched space empties.
#[test]
fn space_wait_threads_reaps() {
    let mut k = Kernel::new(Config::process_np());
    // The watched space with two short-lived threads.
    let mut child = ChildProc::with_mem(&mut k, 0x0040_0000, 0x2000);
    let _ = child.alloc_obj();
    let mut a = Assembler::new("shortlived");
    a.compute(30_000);
    a.halt();
    let prog = k.register_program(a.finish());
    let w1 = child.start_registered(&mut k, prog, fluke_arch::UserRegs::new(), 8);
    let w2 = child.start_registered(&mut k, prog, fluke_arch::UserRegs::new(), 8);

    // The manager watches from another space through a Space object.
    let mut mgr = ChildProc::new(&mut k);
    let h_space = mgr.alloc_obj();
    k.loader_space_object(mgr.space, h_space, child.space);
    let rec = mgr.mem_base + 0x1000;
    let mut a = Assembler::new("reaper");
    a.sys_h(Sys::SpaceWaitThreads, h_space);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    let reaper = mgr.start(&mut k, a.finish(), 8);

    assert!(run_to_halt(&mut k, &[w1, w2, reaper], 100_000_000));
    assert_eq!(k.read_mem_u32(mgr.space, rec), ErrorCode::Success as u32);
}

/// A thread destroying its own Thread object halts itself cleanly.
#[test]
fn self_destruction_is_clean() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_self = p.alloc_obj();
    let after = p.mem_base + 0x1000;
    let mut a = Assembler::new("seppuku");
    a.sys_h(Sys::ThreadDestroy, h_self);
    a.store_const(after, 0xBAD); // must never execute
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    k.loader_thread_object(p.space, h_self, t);
    let exit = k.run(Some(10_000_000));
    assert_ne!(exit, fluke_core::RunExit::TimeLimit);
    assert!(k.thread_halted(t));
    assert_eq!(k.read_mem_u32(p.space, after), 0);
}

/// Destroying a Space halts the threads inside it; a joiner watching one
/// of them is woken.
#[test]
fn space_destruction_halts_residents() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut victim = ChildProc::with_mem(&mut k, 0x0040_0000, 0x2000);
    let _ = victim.alloc_obj();
    let mut a = Assembler::new("resident");
    a.label("spin");
    a.compute(1000);
    a.jmp("spin");
    let resident = victim.start(&mut k, a.finish(), 6);

    let mut mgr = ChildProc::new(&mut k);
    let h_space = mgr.alloc_obj();
    let h_thread = mgr.alloc_obj();
    k.loader_space_object(mgr.space, h_space, victim.space);
    k.loader_thread_object(mgr.space, h_thread, resident);

    let mut a = Assembler::new("destroyer");
    a.compute(50_000); // let the resident run a bit
    a.sys_h(Sys::SpaceDestroy, h_space);
    a.halt();
    let d = mgr.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[d, resident], 100_000_000));
    assert!(k.thread_halted(resident));
}

/// Timeslices round-robin two compute-bound threads without any yields.
#[test]
fn timeslice_round_robin() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let cell_a = p.mem_base + 0x1000;
    let cell_b = p.mem_base + 0x1004;
    // Each thread burns ~35ms total in 1ms slices of pure compute, bumping
    // its progress cell between slices.
    let burner = |cell: u32| {
        let mut a = Assembler::new("burner");
        a.movi(Reg::Ecx, 35);
        a.label("top");
        for _ in 0..10 {
            a.compute(20_000); // 0.1ms
        }
        a.movi(Reg::Ebp, cell);
        a.load(Reg::Edx, Reg::Ebp, 0);
        a.addi(Reg::Edx, 1);
        a.store(Reg::Ebp, 0, Reg::Edx);
        a.subi(Reg::Ecx, 1);
        a.cmpi(Reg::Ecx, 0);
        a.jcc(Cond::Ne, "top");
        a.halt();
        a.finish()
    };
    let ta = p.start(&mut k, burner(cell_a), 8);
    let tb = p.start(&mut k, burner(cell_b), 8);
    // Run exactly 40ms: with 10ms timeslices both threads must have run.
    k.run(Some(ms_to_cycles(40)));
    let a_prog = k.read_mem_u32(p.space, cell_a);
    let b_prog = k.read_mem_u32(p.space, cell_b);
    assert!(a_prog > 0, "thread A starved");
    assert!(b_prog > 0, "thread B starved");
    assert!(run_to_halt(&mut k, &[ta, tb], 1_000_000_000));
}

/// An interrupted `mutex_lock` surfaces `Interrupted`, and the waiter is
/// really off the queue: a later unlock does not wake it.
#[test]
fn interrupt_removes_waiter_from_queue() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_mutex = p.alloc_obj();
    let h_waiter = p.alloc_obj();
    let rec = p.mem_base + 0x1000;

    let mut a = Assembler::new("holder");
    a.sys_h(Sys::MutexCreate, h_mutex);
    a.mutex_lock(h_mutex);
    a.halt();
    let holder = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[holder], 10_000_000));

    let mut a = Assembler::new("waiter");
    a.mutex_lock(h_mutex);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    let waiter = p.start(&mut k, a.finish(), 8);
    k.run(Some(1_000_000));
    assert!(matches!(
        k.thread_run_state(waiter),
        RunState::Blocked(WaitReason::Mutex(_))
    ));
    k.loader_thread_object(p.space, h_waiter, waiter);

    let mut a = Assembler::new("interruptor");
    a.sys_h(Sys::ThreadInterrupt, h_waiter);
    a.mutex_unlock(h_mutex);
    a.halt();
    let i = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[i, waiter], 10_000_000));
    assert_eq!(k.read_mem_u32(p.space, rec), ErrorCode::Interrupted as u32);
}

/// `thread_set_state` aimed at the calling thread itself is rejected: the
/// completion path would clobber the installed frame.
#[test]
fn self_set_state_is_rejected() {
    use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_SBUF};
    use fluke_api::state::THREAD_FRAME_WORDS;
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let h_self = p.alloc_obj();
    let scratch = p.mem_base + 0x2000;
    let rec = p.mem_base + 0x3000;
    let mut a = Assembler::new("selfie");
    // Extract own state (fine), then try to install it back into self.
    a.movi(ARG_HANDLE, h_self);
    a.movi(ARG_SBUF, scratch);
    a.movi(ARG_COUNT, THREAD_FRAME_WORDS as u32);
    a.sys(Sys::ThreadGetState);
    a.movi(ARG_HANDLE, h_self);
    a.movi(ARG_SBUF, scratch);
    a.movi(ARG_COUNT, THREAD_FRAME_WORDS as u32);
    a.sys(Sys::ThreadSetState);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    k.loader_thread_object(p.space, h_self, t);
    assert!(run_to_halt(&mut k, &[t], 10_000_000));
    assert_eq!(k.read_mem_u32(p.space, rec), ErrorCode::InvalidArg as u32);
}

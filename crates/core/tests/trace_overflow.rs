//! Drop accounting regression test: overflowing a deliberately tiny
//! trace ring must be *visible* — `Tracer::dropped_total` counts every
//! evicted record and the `kernel.trace.dropped` kstat reports the same
//! number. Losing records silently would invalidate every digest-based
//! oracle built on the trace.

use fluke_api::Sys;
use fluke_arch::Assembler;
use fluke_core::{Config, Kernel};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

#[test]
fn overflowing_a_tiny_ring_is_counted_in_kstat() {
    // An 8-record ring against a workload that emits hundreds of events.
    let mut k = Kernel::new(Config::process_np().with_tracing(8));
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let mut a = Assembler::new("chatty");
    for _ in 0..100 {
        a.sys(Sys::SysNull);
    }
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t], 1_000_000_000));

    let dropped = k.trace.dropped_total();
    assert!(
        dropped > 100,
        "100 syscalls through an 8-slot ring dropped only {dropped} records"
    );
    // Held + dropped add up: nothing vanished unaccounted.
    let ring = k.trace.ring(0).expect("cpu 0 ring");
    assert_eq!(ring.total_recorded(), ring.len() as u64 + ring.dropped);
    // The kstat registry surfaces the same counter.
    assert_eq!(
        k.kstat().scalar("kernel.trace.dropped"),
        Some(dropped),
        "kernel.trace.dropped must mirror the tracer's drop count"
    );
}

#[test]
fn ample_ring_drops_nothing() {
    let mut k = Kernel::new(Config::process_np().with_tracing(1 << 14));
    let mut p = ChildProc::new(&mut k);
    let _ = p.alloc_obj();
    let mut a = Assembler::new("quiet");
    for _ in 0..100 {
        a.sys(Sys::SysNull);
    }
    a.halt();
    let t = p.start(&mut k, a.finish(), 8);
    assert!(run_to_halt(&mut k, &[t], 1_000_000_000));
    assert_eq!(k.trace.dropped_total(), 0);
    assert_eq!(k.kstat().scalar("kernel.trace.dropped"), Some(0));
}

//! Fine-grained scheduler edge cases: deterministic work stealing across
//! per-CPU ready queues, wakes landing at parked CPUs, cross-CPU priority
//! preemption, and destruction of a victim queued on a remote CPU.

use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel, RunState};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// A compute-bound program of `quanta` × 1000 cycles.
fn burner(quanta: u32) -> fluke_arch::Program {
    let mut a = Assembler::new("burner");
    a.movi(Reg::Ecx, quanta);
    a.label("top");
    a.compute(1_000);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "top");
    a.halt();
    a.finish()
}

/// A lone thread on a two-CPU machine: the idle CPU's steal sweep finds
/// every other queue empty — attempts are counted, no steal happens, and
/// the sweep charges nothing (the CPU parks cleanly).
#[test]
fn steal_sweep_over_empty_queues_is_free() {
    let mut k = Kernel::new(Config::process_np().with_cpus(2));
    let p = ChildProc::new(&mut k);
    let prog = k.register_program(burner(1_000));
    let t = k.spawn_thread(p.space, prog, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[t], 1_000_000_000));
    assert!(
        k.stats.sched_steal_attempts >= 1,
        "the idle CPU must have swept for work"
    );
    assert_eq!(k.stats.sched_steals, 0, "nothing to steal");
    assert_eq!(
        k.stats.runq_wait_cycles, 0,
        "an empty sweep must not contend on any run-queue lock"
    );
}

/// Imbalanced homes: CPU 0 owns two threads (a long burner plus a queued
/// one), CPU 1's own thread finishes quickly — the idle CPU 1 must steal
/// the queued thread off CPU 0's queue instead of sitting parked.
#[test]
fn idle_cpu_steals_from_a_loaded_queue() {
    let mut k = Kernel::new(Config::process_np().with_cpus(2));
    let p = ChildProc::new(&mut k);
    let long = k.register_program(burner(20_000));
    let short = k.register_program(burner(100));
    let mid = k.register_program(burner(2_000));
    // Round-robin homes: a→0, b→1, c→0.
    let a = k.spawn_thread(p.space, long, fluke_arch::UserRegs::new(), 8);
    let b = k.spawn_thread(p.space, short, fluke_arch::UserRegs::new(), 8);
    let c = k.spawn_thread(p.space, mid, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[a, b, c], 100_000_000_000));
    assert!(
        k.stats.sched_steals >= 1,
        "CPU 1 had to steal the thread queued behind the long burner"
    );
    // The steal bought real parallelism: the stolen ~2M-cycle thread ran
    // while the ~20M-cycle burner kept its own CPU, so the wall clock is
    // bounded by the burner alone (serial on CPU 0 would be ~22M+).
    assert!(
        k.now() < 21_000_000,
        "no overlap achieved: finished at {}",
        k.now()
    );
}

/// A wake whose target CPU has parked (the simulated analogue of an IPI
/// arriving at a halted processor): the kick must unpark it at the waking
/// instant and the woken thread must run to completion there.
#[test]
fn wake_reaches_a_parked_cpu() {
    let mut k = Kernel::new(Config::process_np().with_cpus(2));
    let p = ChildProc::new(&mut k);
    let long = k.register_program(burner(10_000));
    let a = k.spawn_thread(p.space, long, fluke_arch::UserRegs::new(), 8);
    // Sleeper: blocks immediately; its CPU parks with nothing else to do.
    let mut asm = Assembler::new("sleeper");
    asm.sys(fluke_api::Sys::ThreadSleep);
    asm.compute(500);
    asm.halt();
    let s = p.start(&mut k, asm.finish(), 8);
    // Wake it mid-burn, long after the sleeper's CPU parked.
    k.wake_at(s, 2_000_000);
    assert!(run_to_halt(&mut k, &[a, s], 100_000_000_000));
    assert!(k.thread_halted(s));
    assert!(
        k.stats.idle_cycles > 0,
        "the sleeper's CPU must have parked while waiting"
    );
}

/// A high-priority wake while every CPU runs low-priority work must
/// preempt somewhere promptly — the cross-CPU reschedule path (counted as
/// an IPI when the target is not the acting CPU). The run is repeated to
/// pin determinism of the whole interleaving.
#[test]
fn priority_wake_preempts_busy_cpus_deterministically() {
    fn once() -> (u64, u64, u64) {
        let mut k = Kernel::new(Config::process_np().with_cpus(2));
        let p = ChildProc::new(&mut k);
        let long = k.register_program(burner(10_000));
        let a = k.spawn_thread(p.space, long, fluke_arch::UserRegs::new(), 5);
        let b = k.spawn_thread(p.space, long, fluke_arch::UserRegs::new(), 4);
        let mut asm = Assembler::new("urgent");
        asm.sys(fluke_api::Sys::ThreadSleep);
        asm.compute(500);
        asm.halt();
        let u = p.start(&mut k, asm.finish(), 9);
        k.wake_at(u, 3_000_000);
        assert!(run_to_halt(&mut k, &[a, b, u], 100_000_000_000));
        // The urgent thread finished long before the burners could have
        // (each burner alone is ~20M+ cycles of user work).
        (k.now(), k.stats.sched_ipis, k.stats.sched_pushes)
    }
    let (now1, ipis1, pushes1) = once();
    let (now2, ipis2, pushes2) = once();
    assert_eq!(now1, now2, "64-bit clock must replay exactly");
    assert_eq!(ipis1, ipis2);
    assert_eq!(pushes1, pushes2);
}

/// Destruction of a thread queued on a *remote* CPU's ready queue (the
/// "victim destroyed mid-steal" hazard): the destroyer must pull it out
/// of the other queue under that queue's lock, and no CPU may later
/// dispatch the corpse.
#[test]
fn queued_victim_destroyed_from_another_cpu() {
    let mut k = Kernel::new(Config::process_np().with_cpus(2));
    let mut p = ChildProc::new(&mut k);
    let h_victim = p.alloc_obj();
    let long = k.register_program(burner(20_000));
    // Homes: long burner→0, destroyer→1, victim→0 (queued behind the
    // burner, never dispatched before the destroyer reaches it).
    let a = k.spawn_thread(p.space, long, fluke_arch::UserRegs::new(), 8);
    let mut asm = Assembler::new("destroyer");
    asm.compute(2_000);
    asm.sys_h(fluke_api::Sys::ThreadDestroy, h_victim);
    asm.halt();
    let d = p.start(&mut k, asm.finish(), 8);
    let victim = k.spawn_thread(p.space, long, fluke_arch::UserRegs::new(), 8);
    k.loader_thread_object(p.space, h_victim, victim);
    assert!(run_to_halt(&mut k, &[a, d], 100_000_000_000));
    assert_eq!(k.thread_run_state(victim), RunState::Halted);
    // The victim never ran: the whole machine finished in roughly the one
    // burner's time, not two burners' worth.
    assert!(
        k.now() < 45_000_000,
        "victim must not have been dispatched: finished at {}",
        k.now()
    );
}

//! The common-operation matrix: create, get-state, set-state, move,
//! reference, destroy — exercised through the system-call interface for
//! **all nine** primitive object types.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::state::ObjStateFrame;
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::UserRegs;
use fluke_core::{Config, Kernel};
use fluke_user::checkpoint::{create_sys, destroy_sys, get_state_sys, set_state_sys, SyscallAgent};
use fluke_user::proc::ChildProc;

/// The move entrypoint for a type.
fn move_sys(ty: ObjType) -> Sys {
    match ty {
        ObjType::Mutex => Sys::MutexMove,
        ObjType::Cond => Sys::CondMove,
        ObjType::Mapping => Sys::MappingMove,
        ObjType::Region => Sys::RegionMove,
        ObjType::Port => Sys::PortMove,
        ObjType::Portset => Sys::PsetMove,
        ObjType::Space => Sys::SpaceMove,
        ObjType::Thread => Sys::ThreadMove,
        ObjType::Reference => Sys::RefMove,
    }
}

/// The reference entrypoint for a type.
fn reference_sys(ty: ObjType) -> Sys {
    match ty {
        ObjType::Mutex => Sys::MutexReference,
        ObjType::Cond => Sys::CondReference,
        ObjType::Mapping => Sys::MappingReference,
        ObjType::Region => Sys::RegionReference,
        ObjType::Port => Sys::PortReference,
        ObjType::Portset => Sys::PsetReference,
        ObjType::Space => Sys::SpaceReference,
        ObjType::Thread => Sys::ThreadReference,
        ObjType::Reference => Sys::RefReference,
    }
}

/// Create-one-of-`ty` arguments (type-specific creates take extra args).
fn create_regs(ty: ObjType, vaddr: u32, p: &ChildProc) -> UserRegs {
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, vaddr);
    match ty {
        ObjType::Region => {
            regs.set(ARG_COUNT, 0x4000); // size
            regs.set(ARG_VAL, p.mem_base); // base
            regs.set(ARG_SBUF, 0); // no keeper
        }
        ObjType::Mapping => {
            // Requires an existing region handle in esi; the caller wires
            // one up before invoking.
        }
        _ => {}
    }
    regs
}

#[test]
fn full_common_operation_matrix_for_all_nine_types() {
    for cfg in [Config::process_np(), Config::interrupt_np()] {
        let mut k = Kernel::new(cfg);
        let mut p = ChildProc::with_mem(&mut k, 0x0010_0000, 0x10_000);
        let agent = SyscallAgent::new(&mut k, p.space, 20);
        let scratch = p.mem_base + 0x8000;
        // A pre-existing region so Mapping creation has a source.
        let h_region0 = p.alloc_obj();
        k.loader_region(p.space, h_region0, p.mem_base, 0x4000, None);

        for ty in ObjType::ALL {
            let vaddr = p.alloc_obj();
            // -- create --
            let mut regs = create_regs(ty, vaddr, &p);
            if ty == ObjType::Mapping {
                regs.set(ARG_COUNT, 0x1000);
                regs.set(ARG_VAL, 0x0200_0000);
                regs.set(ARG_SBUF, h_region0);
                regs.set(ARG_RBUF, 0);
            }
            let (code, _) = agent.call_checked(&mut k, create_sys(ty), regs);
            assert_eq!(code, ErrorCode::Success, "create {ty}");

            // -- get_state --
            let words = ObjStateFrame::words_for(ty) as u32;
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, vaddr);
            regs.set(ARG_SBUF, scratch);
            regs.set(ARG_COUNT, words);
            let (code, out) = agent.call_checked(&mut k, get_state_sys(ty), regs);
            assert_eq!(code, ErrorCode::Success, "get_state {ty}");
            assert_eq!(out.get(ARG_VAL), words, "get_state {ty} word count");

            // -- set_state (idempotent: write back what was read) --
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, vaddr);
            regs.set(ARG_SBUF, scratch);
            regs.set(ARG_COUNT, words);
            let (code, _) = agent.call_checked(&mut k, set_state_sys(ty), regs);
            assert_eq!(code, ErrorCode::Success, "set_state {ty}");

            // -- move (rename) --
            let new_vaddr = p.alloc_obj();
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, vaddr);
            regs.set(ARG_VAL, new_vaddr);
            let (code, _) = agent.call_checked(&mut k, move_sys(ty), regs);
            assert_eq!(code, ErrorCode::Success, "move {ty}");
            // The old handle is dead.
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, vaddr);
            regs.set(ARG_SBUF, scratch);
            regs.set(ARG_COUNT, words);
            let (code, _) = agent.call_checked(&mut k, get_state_sys(ty), regs);
            assert_eq!(code, ErrorCode::InvalidHandle, "stale handle {ty}");

            // -- reference --
            let h_ref = p.alloc_obj();
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, h_ref);
            let (code, _) = agent.call_checked(&mut k, Sys::RefCreate, regs);
            assert_eq!(code, ErrorCode::Success, "ref_create for {ty}");
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, new_vaddr);
            regs.set(ARG_VAL, h_ref);
            let (code, _) = agent.call_checked(&mut k, reference_sys(ty), regs);
            assert_eq!(code, ErrorCode::Success, "reference {ty}");

            // -- destroy (via the reference-refreshed handle) --
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, new_vaddr);
            let (code, _) = agent.call_checked(&mut k, destroy_sys(ty), regs);
            assert_eq!(code, ErrorCode::Success, "destroy {ty}");
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, new_vaddr);
            regs.set(ARG_SBUF, scratch);
            regs.set(ARG_COUNT, words);
            let (code, _) = agent.call_checked(&mut k, get_state_sys(ty), regs);
            assert_eq!(code, ErrorCode::InvalidHandle, "destroyed handle {ty}");

            // Clean up the helper reference for the next round.
            let mut regs = UserRegs::new();
            regs.set(ARG_HANDLE, h_ref);
            let (code, _) = agent.call_checked(&mut k, Sys::RefDestroy, regs);
            assert_eq!(code, ErrorCode::Success);
        }
    }
}

#[test]
fn create_at_occupied_slot_reports_already_exists() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let agent = SyscallAgent::new(&mut k, p.space, 20);
    let vaddr = p.alloc_obj();
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, vaddr);
    let (code, _) = agent.call_checked(&mut k, Sys::MutexCreate, regs);
    assert_eq!(code, ErrorCode::Success);
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, vaddr);
    let (code, _) = agent.call_checked(&mut k, Sys::CondCreate, regs);
    assert_eq!(code, ErrorCode::AlreadyExists);
}

#[test]
fn get_state_with_short_buffer_reports_too_small() {
    let mut k = Kernel::new(Config::process_np());
    let mut p = ChildProc::new(&mut k);
    let agent = SyscallAgent::new(&mut k, p.space, 20);
    let vaddr = p.alloc_obj();
    let t_obj = p.alloc_obj();
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, vaddr);
    agent.call_checked(&mut k, Sys::MutexCreate, regs);
    // A thread frame needs 18 words; offer 3.
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, t_obj);
    agent.call_checked(&mut k, Sys::ThreadCreate, regs);
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, t_obj);
    regs.set(ARG_SBUF, p.mem_base + 0x3000);
    regs.set(ARG_COUNT, 3);
    let (code, _) = agent.call_checked(&mut k, Sys::ThreadGetState, regs);
    assert_eq!(code, ErrorCode::BufferTooSmall);
}

#[test]
fn wrong_type_handles_rejected_for_every_specific_op() {
    let mut k = Kernel::new(Config::interrupt_np());
    let mut p = ChildProc::new(&mut k);
    let agent = SyscallAgent::new(&mut k, p.space, 20);
    let h_port = p.alloc_obj();
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, h_port);
    agent.call_checked(&mut k, Sys::PortCreate, regs);
    for sys in [
        Sys::MutexLock,
        Sys::MutexTrylock,
        Sys::MutexUnlock,
        Sys::CondSignal,
        Sys::CondBroadcast,
        Sys::RegionProtect,
        Sys::MappingProtect,
        Sys::RegionPopulate,
        Sys::PsetWait,
        Sys::ThreadInterrupt,
    ] {
        let mut regs = UserRegs::new();
        regs.set(ARG_HANDLE, h_port);
        regs.set(ARG_COUNT, 4);
        let (code, _) = agent.call_checked(&mut k, sys, regs);
        assert_eq!(code, ErrorCode::WrongType, "{}", sys.name());
    }
}

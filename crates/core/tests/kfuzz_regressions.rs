//! Minimized regression pins for kernel bugs surfaced by the `kfuzz`
//! grammar (see `DESIGN.md` §19).
//!
//! Each test is a minimized syscall-sequence program over the kfuzz
//! argument pools, executed through the same harness the fuzzer uses
//! ([`fluke_core::kfuzz::run_program`], flowcheck armed). Before the
//! fixes, every one of these programs panicked the kernel with an
//! arithmetic overflow/underflow in a debug build; now each asserts the
//! graceful error path, bit-identical outcomes across all four
//! comparable configurations, and zero flow-graph violations.

use fluke_api::{ErrorCode, Sys};
use fluke_core::kfuzz::{
    differential_configs, run_program, Exec, FuzzOp, FuzzProgram, BUF_POOL, COUNT_POOL,
    HANDLE_POOL, VAL_POOL,
};

fn op(sys: Sys, h: u8, c: u8, v: u8, b: u8) -> FuzzOp {
    FuzzOp {
        sys: sys.num() as u8,
        h,
        c,
        v,
        b,
    }
}

fn hidx(val: u32) -> u8 {
    HANDLE_POOL.iter().position(|&x| x == val).expect("in pool") as u8
}
fn cidx(val: u32) -> u8 {
    COUNT_POOL.iter().position(|&x| x == val).expect("in pool") as u8
}
fn vidx(val: u32) -> u8 {
    VAL_POOL.iter().position(|&x| x == val).expect("in pool") as u8
}
fn bidx(val: u32) -> u8 {
    BUF_POOL.iter().position(|&x| x == val).expect("in pool") as u8
}

const SLOT0: u32 = fluke_core::kfuzz::FUZZ_MEM_BASE;
const SLOT1: u32 = fluke_core::kfuzz::FUZZ_MEM_BASE + 0x20;
const TOP_WORD: u32 = fluke_core::kfuzz::FUZZ_TOP_BASE + 0xffc;

/// Run under all four comparable configurations; assert the outcomes
/// are bit-identical, the program ran to its halt everywhere, and the
/// flow checker saw nothing illegal. Returns the first config's run.
fn run_all(prog: &FuzzProgram) -> Exec {
    let mut execs: Vec<Exec> = differential_configs()
        .into_iter()
        .map(|cfg| run_program(cfg, prog))
        .collect();
    for e in &execs {
        assert!(e.outcome.halted, "program failed to halt");
        assert!(
            e.violations.is_empty(),
            "flow violations: {:?}",
            e.violations
        );
    }
    let first = execs.remove(0);
    for e in &execs {
        assert_eq!(e.outcome, first.outcome, "outcome diverged across configs");
    }
    first
}

/// The per-syscall result codes of the single fuzz thread, in order.
fn codes(e: &Exec) -> Vec<u32> {
    let uv = e.outcome.uv.values().next().expect("one thread");
    uv.iter()
        .filter_map(|v| match v {
            fluke_core::trace::UserVisible::Syscall { code } => Some(*code),
            _ => None,
        })
        .collect()
}

/// `*_get_state` with the destination buffer flush against the top of
/// the address space: `buf + i*4` overflowed u32 while marshalling any
/// multi-word frame (Region's is 3 words). Now rejected up front.
#[test]
fn get_state_buffer_wrapping_address_space_is_rejected() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(4),
                bidx(0),
            ),
            op(
                Sys::RegionGetState,
                hidx(SLOT0),
                cidx(32),
                0,
                bidx(TOP_WORD),
            ),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(
        codes(&e),
        vec![ErrorCode::Success as u32, ErrorCode::InvalidArg as u32]
    );
}

/// `*_set_state` with the source buffer flush against the top of the
/// address space: `buf + i*4` overflowed u32 while reading the frame
/// words. Now rejected up front.
#[test]
fn set_state_buffer_wrapping_address_space_is_rejected() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(4),
                bidx(0),
            ),
            op(Sys::RegionSetState, hidx(SLOT0), cidx(4), 0, bidx(TOP_WORD)),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(
        codes(&e),
        vec![ErrorCode::Success as u32, ErrorCode::InvalidArg as u32]
    );
}

/// `region_create` accepted a window whose last byte lies past
/// `u32::MAX`; the first `region_protect` then overflowed computing
/// `base + size - 1`. Wrapped windows are now rejected at creation.
#[test]
fn wrapped_region_window_is_rejected_at_create() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(0xffff_fff0),
                bidx(0),
            ),
            op(Sys::RegionProtect, hidx(SLOT0), 0, vidx(0), 0),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(
        codes(&e),
        vec![
            ErrorCode::InvalidArg as u32,
            ErrorCode::InvalidHandle as u32
        ]
    );
}

/// `mapping_create` accepted the same wrapped geometry;
/// `mapping_protect` then overflowed walking the page range. Rejected
/// at creation now (the region token arrives via `esi`, naming the
/// region created at slot 0).
#[test]
fn wrapped_mapping_window_is_rejected_at_create() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(4),
                bidx(0),
            ),
            op(
                Sys::MappingCreate,
                hidx(SLOT1),
                cidx(0x1000),
                vidx(0xffff_fff0),
                bidx(SLOT0),
            ),
            op(Sys::MappingProtect, hidx(SLOT1), 0, vidx(0), 0),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(
        codes(&e),
        vec![
            ErrorCode::Success as u32,
            ErrorCode::InvalidArg as u32,
            ErrorCode::InvalidHandle as u32
        ]
    );
}

/// `region_set_state` installed a frame with `size == 0` (any zeroed
/// buffer decodes to one), after which `region_protect` *underflowed*
/// computing `base + size - 1`. Geometry is now validated at install,
/// and the original region stays intact.
#[test]
fn zero_size_region_frame_is_rejected_at_install() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(4),
                bidx(0),
            ),
            op(
                Sys::RegionSetState,
                hidx(SLOT0),
                cidx(32),
                0,
                bidx(fluke_core::kfuzz::FUZZ_MEM_BASE + 0x2000),
            ),
            op(Sys::RegionProtect, hidx(SLOT0), 0, vidx(0), 0),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(
        codes(&e),
        vec![
            ErrorCode::Success as u32,
            ErrorCode::InvalidArg as u32,
            ErrorCode::Success as u32
        ]
    );
}

/// `region_populate` computed `base + offset` (and `start + len - 1`)
/// unchecked; with a wrapped region both overflowed. The wrapped region
/// is now impossible to create, and populate itself rejects any
/// arithmetic that would wrap.
#[test]
fn populate_on_wrapped_region_cannot_overflow() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(0xffff_fff0),
                bidx(0),
            ),
            op(Sys::RegionPopulate, hidx(SLOT0), cidx(0x400), vidx(1), 0),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(
        codes(&e),
        vec![
            ErrorCode::InvalidArg as u32,
            ErrorCode::InvalidHandle as u32
        ]
    );
}

/// The happy paths the fixes must not damage: a valid region is still
/// created, populated, protected, exported, and re-imported.
#[test]
fn valid_region_lifecycle_still_works() {
    let prog = FuzzProgram {
        ops: vec![
            op(
                Sys::RegionCreate,
                hidx(SLOT0),
                cidx(0x1000),
                vidx(4),
                bidx(0),
            ),
            op(Sys::RegionPopulate, hidx(SLOT0), cidx(0x400), vidx(1), 0),
            op(Sys::RegionProtect, hidx(SLOT0), 0, vidx(0), 0),
            op(
                Sys::RegionGetState,
                hidx(SLOT0),
                cidx(32),
                0,
                bidx(fluke_core::kfuzz::FUZZ_MEM_BASE + 0x2000),
            ),
            op(
                Sys::RegionSetState,
                hidx(SLOT0),
                cidx(3),
                0,
                bidx(fluke_core::kfuzz::FUZZ_MEM_BASE + 0x2000),
            ),
        ],
    };
    let e = run_all(&prog);
    assert_eq!(codes(&e), vec![ErrorCode::Success as u32; 5]);
}

//! Multiprocessor configurations: parallel speedup, cross-CPU IPC,
//! promptness against a *running* target (the case the paper calls out in
//! §4.2 — the operation "must be currently running (i.e., on another
//! processor)"), kernel-lock serialization, and determinism.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF};
use fluke_api::state::THREAD_FRAME_WORDS;
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel, RunState};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// A compute-bound program of `quanta` × 1000 cycles.
fn burner(quanta: u32) -> fluke_arch::Program {
    let mut a = Assembler::new("burner");
    a.movi(Reg::Ecx, quanta);
    a.label("top");
    a.compute(1_000);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "top");
    a.halt();
    a.finish()
}

/// Elapsed simulated time for `threads` burners on `cpus` processors.
fn parallel_elapsed(cpus: usize, threads: usize) -> u64 {
    let mut k = Kernel::new(Config::process_np().with_cpus(cpus));
    let p = ChildProc::new(&mut k);
    let prog = k.register_program(burner(2_000));
    let ts: Vec<_> = (0..threads)
        .map(|_| k.spawn_thread(p.space, prog, fluke_arch::UserRegs::new(), 8))
        .collect();
    assert!(run_to_halt(&mut k, &ts, 100_000_000_000));
    k.now()
}

#[test]
fn two_cpus_halve_compute_bound_wall_time() {
    let one = parallel_elapsed(1, 4);
    let two = parallel_elapsed(2, 4);
    let four = parallel_elapsed(4, 4);
    assert!(
        (two as f64) < 0.6 * one as f64,
        "2 CPUs: {two} vs 1 CPU: {one}"
    );
    assert!(
        (four as f64) < 0.35 * one as f64,
        "4 CPUs: {four} vs 1 CPU: {one}"
    );
}

#[test]
fn mp_runs_are_deterministic() {
    let a = parallel_elapsed(3, 7);
    let b = parallel_elapsed(3, 7);
    assert_eq!(a, b);
}

/// An RPC between threads genuinely running on different processors.
#[test]
fn cross_cpu_rpc_is_byte_exact() {
    let mut k = Kernel::new(Config::interrupt_np().with_cpus(2));
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
    let mut client = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    let sbuf = server.mem_base + 0x1000;
    let cbuf = client.mem_base + 0x1000;
    let crep = client.mem_base + 0x2000;

    // Both sides interleave compute with the exchange so they genuinely
    // occupy both processors.
    let mut a = Assembler::new("server");
    a.compute(5_000);
    a.server_wait_receive(h_port, sbuf, 32);
    a.server_ack_send(sbuf, 32);
    a.compute(5_000);
    a.halt();
    let st = server.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("client");
    a.compute(3_000);
    a.client_rpc(h_ref, cbuf, 32, crep, 32);
    a.halt();
    let ct = client.start(&mut k, a.finish(), 8);

    let payload: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(9)).collect();
    k.write_mem(client.space, cbuf, &payload);
    assert!(run_to_halt(&mut k, &[st, ct], 1_000_000_000));
    assert_eq!(k.read_mem(client.space, crep, 32), payload);
}

/// Promptness against a RUNNING target: while the victim spins on CPU 1,
/// an extractor on CPU 0 pulls its complete state without ever blocking on
/// the victim's cooperation.
#[test]
fn get_state_of_thread_running_on_other_cpu() {
    let mut k = Kernel::new(Config::process_np().with_cpus(2));
    let mut p = ChildProc::new(&mut k);
    let h_thread = p.alloc_obj();
    let scratch = p.mem_base + 0x2000;
    let rec = p.mem_base + 0x3000;

    // Victim: a long pure-compute spin (never traps).
    let victim_prog = k.register_program(burner(50_000));
    let victim = k.spawn_thread(p.space, victim_prog, fluke_arch::UserRegs::new(), 8);
    k.loader_thread_object(p.space, h_thread, victim);

    // Extractor on the other CPU.
    let mut a = Assembler::new("extractor");
    a.compute(2_000); // let the victim get going
    a.movi(ARG_HANDLE, h_thread);
    a.movi(ARG_SBUF, scratch);
    a.movi(ARG_COUNT, THREAD_FRAME_WORDS as u32);
    a.sys(Sys::ThreadGetState);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    a.halt();
    let ex = p.start(&mut k, a.finish(), 8);

    // Run only until the extractor halts; the victim must still be going.
    let deadline = k.now() + 20_000_000;
    while !k.thread_halted(ex) {
        if k.run(Some(deadline)) != fluke_core::RunExit::TimeLimit {
            break;
        }
    }
    assert!(k.thread_halted(ex), "extractor completed promptly");
    assert!(
        matches!(k.thread_run_state(victim), RunState::Running(_))
            || matches!(k.thread_run_state(victim), RunState::Ready),
        "victim undisturbed: {:?}",
        k.thread_run_state(victim)
    );
    assert_eq!(k.read_mem_u32(p.space, rec), ErrorCode::Success as u32);
    assert!(run_to_halt(&mut k, &[victim], 200_000_000_000));
}

/// Drive two CPUs of concurrent syscall traffic and return the finished
/// kernel (used to compare big-lock vs fine-grained locking).
fn syscall_storm(cfg: Config) -> Kernel {
    let mut k = Kernel::new(cfg);
    // Two *separate* processes: unrelated workloads should not contend
    // on any fine-grained lock (same-object traffic still serializes).
    let p1 = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
    let p2 = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
    let mut a = Assembler::new("syscaller");
    a.movi(Reg::Ecx, 2_000);
    a.label("top");
    a.sys(Sys::SysNull);
    a.subi(Reg::Ecx, 1);
    a.cmpi(Reg::Ecx, 0);
    a.jcc(Cond::Ne, "top");
    a.halt();
    let prog = k.register_program(a.finish());
    let t1 = k.spawn_thread(p1.space, prog, fluke_arch::UserRegs::new(), 8);
    let t2 = k.spawn_thread(p2.space, prog, fluke_arch::UserRegs::new(), 8);
    assert!(run_to_halt(&mut k, &[t1, t2], 10_000_000_000));
    k
}

/// Kernel entries serialize on the big lock (legacy oracle mode): with
/// heavy concurrent syscall traffic on two CPUs, lock waiting shows up in
/// the stats.
#[test]
fn big_kernel_lock_serializes_kernel_entries() {
    let k = syscall_storm(Config::process_np().with_cpus(2).with_big_lock(true));
    assert!(
        k.stats.klock_cycles > 0,
        "concurrent kernel entries must contend on the big lock"
    );
}

/// The same storm under fine-grained locking finishes sooner: kernel
/// entries of unrelated threads no longer serialize machine-wide.
#[test]
fn fine_grained_locking_outpaces_the_big_lock() {
    let big = syscall_storm(Config::process_np().with_cpus(2).with_big_lock(true));
    let fine = syscall_storm(Config::process_np().with_cpus(2));
    assert!(
        fine.total_cpu_cycles() < big.total_cpu_cycles(),
        "fine {} !< big {}",
        fine.total_cpu_cycles(),
        big.total_cpu_cycles()
    );
}

/// The whole five-configuration × multiprocessor matrix still produces
/// correct RPC results (the MP analogue of the equivalence law).
#[test]
fn rpc_correct_on_every_mp_configuration() {
    for base in Config::all_five() {
        let cfg = base.with_cpus(2);
        let label = cfg.label;
        let mut k = Kernel::new(cfg);
        let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
        let mut client = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
        let h_port = server.alloc_obj();
        let h_ref = client.alloc_obj();
        let port = k.loader_create(server.space, h_port, ObjType::Port);
        k.loader_ref(client.space, h_ref, port);
        let sbuf = server.mem_base + 0x1000;
        let cbuf = client.mem_base + 0x1000;
        let mut a = Assembler::new("server");
        a.movi(ARG_HANDLE, h_port);
        a.movi(ARG_RBUF, sbuf);
        a.movi(ARG_COUNT, 4096);
        a.sys(Sys::IpcServerWaitReceive);
        a.halt();
        let st = server.start(&mut k, a.finish(), 8);
        let mut a = Assembler::new("client");
        a.client_connect_send(h_ref, cbuf, 4096);
        a.halt();
        let ct = client.start(&mut k, a.finish(), 8);
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        k.write_mem(client.space, cbuf, &payload);
        assert!(
            run_to_halt(&mut k, &[st, ct], 5_000_000_000),
            "{label} hung"
        );
        assert_eq!(
            k.read_mem(server.space, sbuf, 4096),
            payload,
            "{label} corrupted"
        );
    }
}

//! Regression tests for thread-targeting syscalls whose target has been
//! destroyed while other handles to it are still live.
//!
//! `thread_destroy` removes the *object* it was called on and halts the
//! thread, but the thread's arena slot — and any other Thread objects or
//! references naming it — survive. Every thread-targeting call must treat
//! such a stale-but-resolvable handle as a benign degenerate case (the
//! join completes, the schedule hint is a no-op, the state frame reads
//! `runnable = 0`), never as a panic. These paths historically used a
//! second raw lookup after the handle resolution and are exactly where a
//! lifecycle refactor could reintroduce an unwrap-on-missing-slot; the
//! kfault sweep perturbs timing around them, and this test pins the
//! semantics in all four comparable configurations.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_SBUF};
use fluke_api::state::ThreadStateFrame;
use fluke_api::{ErrorCode, ObjStateFrame, ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg, UserRegs};
use fluke_core::{Config, Kernel};
use fluke_user::checkpoint::SyscallAgent;
use fluke_user::FlukeAsm;

const BASE: u32 = 0x0040_0000;
const H_A: u32 = BASE; // handle destroyed via thread_destroy
const H_B: u32 = BASE + 64; // second handle, stale after the destroy
const SCRATCH: u32 = BASE + 0x1000;

fn configs() -> [Config; 4] {
    [
        Config::process_np(),
        Config::interrupt_np(),
        Config::process_pp(),
        Config::interrupt_pp(),
    ]
}

/// Fetch the target's exported state frame through the API and return it.
fn get_state(k: &mut Kernel, agent: &SyscallAgent, handle: u32) -> ThreadStateFrame {
    let nwords = ObjStateFrame::words_for(ObjType::Thread) as u32;
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, handle);
    regs.set(ARG_SBUF, SCRATCH);
    regs.set(ARG_COUNT, nwords);
    let (code, _) = agent.call_checked(k, Sys::ThreadGetState, regs);
    assert_eq!(code, ErrorCode::Success, "thread_get_state failed");
    let bytes = k
        .try_read_mem(agent.space, SCRATCH, nwords * 4)
        .expect("scratch mapped");
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    ThreadStateFrame::from_words(&words).expect("valid thread frame")
}

fn one_arg(handle: u32) -> UserRegs {
    let mut regs = UserRegs::new();
    regs.set(ARG_HANDLE, handle);
    regs
}

#[test]
fn stale_thread_handles_degrade_gracefully_in_all_configs() {
    for cfg in configs() {
        let label = cfg.label;
        let mut k = Kernel::new(cfg);
        let child = k.create_space();
        k.grant_pages(child, BASE, 0x4000, true);

        // A worker that yields forever — always alive until destroyed.
        let mut a = Assembler::new("spin-worker");
        a.label("spin");
        a.sys(Sys::SysYield);
        a.movi(Reg::Edx, 0);
        a.cmpi(Reg::Edx, 1);
        a.jcc(Cond::Ne, "spin");
        a.halt();
        let pid = k.register_program(a.finish());
        let worker = k.spawn_thread(child, pid, UserRegs::new(), 8);

        // Two independent Thread objects naming the same thread.
        k.loader_thread_object(child, H_A, worker);
        k.loader_thread_object(child, H_B, worker);
        let agent = SyscallAgent::new(&mut k, child, 20);

        // Sanity while alive: schedule is accepted, the frame is runnable.
        let (code, _) = agent.call_checked(&mut k, Sys::ThreadSchedule, one_arg(H_A));
        assert_eq!(code, ErrorCode::Success, "{label}: schedule(live)");
        let frame = get_state(&mut k, &agent, H_A);
        assert_eq!(frame.runnable, 1, "{label}: live worker must be runnable");

        // Destroy through the first handle; the second goes stale.
        let (code, _) = agent.call_checked(&mut k, Sys::ThreadDestroy, one_arg(H_A));
        assert_eq!(code, ErrorCode::Success, "{label}: thread_destroy");
        assert!(k.thread_halted(worker), "{label}: destroy must halt");

        // The destroyed handle itself no longer resolves.
        let (code, _) = agent.call_checked(&mut k, Sys::ThreadSchedule, one_arg(H_A));
        assert_eq!(code, ErrorCode::InvalidHandle, "{label}: schedule(gone)");

        // Stale second handle: every targeting call degrades, none panics.
        let (code, _) = agent.call_checked(&mut k, Sys::ThreadSchedule, one_arg(H_B));
        assert_eq!(code, ErrorCode::Success, "{label}: schedule(stale)");
        let (code, _) = agent.call_checked(&mut k, Sys::ThreadWait, one_arg(H_B));
        assert_eq!(
            code,
            ErrorCode::Success,
            "{label}: wait(stale) must complete immediately"
        );
        let (code, _) = agent.call_checked(&mut k, Sys::SchedDonate, one_arg(H_B));
        assert_eq!(
            code,
            ErrorCode::WouldBlock,
            "{label}: donate(stale) must refuse, not panic"
        );
        let frame = get_state(&mut k, &agent, H_B);
        assert_eq!(
            frame.runnable, 0,
            "{label}: stale frame must export runnable = 0"
        );
    }
}

//! The remaining IPC entrypoint combinations: persistent connections with
//! repeated exchanges, server-side direction reversal, chained
//! send-wait-receive, and the non-waiting one-way receive.

use fluke_api::abi::{ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::{Assembler, Reg};
use fluke_core::{Config, Kernel, SpaceId};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

struct Rig {
    k: Kernel,
    server: ChildProc,
    client: ChildProc,
    h_port: u32,
    h_ref: u32,
    server_space: SpaceId,
    client_space: SpaceId,
}

fn rig(cfg: Config) -> Rig {
    let mut k = Kernel::new(cfg);
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x8000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x8000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);
    Rig {
        server_space: server.space,
        client_space: client.space,
        k,
        server,
        client,
        h_port,
        h_ref,
    }
}

/// A persistent connection carrying three request/reply exchanges:
/// `server_send_wait_receive` keeps the connection and waits for the next
/// message from the same client.
#[test]
fn persistent_connection_multiple_exchanges() {
    let mut r = rig(Config::process_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;
    let crep = r.client.mem_base + 0x2000;

    // Server: accept + receive; then twice (send reply, wait for next
    // message on the same connection); final reply via ack_send.
    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_port, sbuf, 8);
    for _ in 0..2 {
        a.movi(ARG_SBUF, sbuf);
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, sbuf);
        a.movi(ARG_VAL, 8);
        a.sys(Sys::IpcServerSendWaitReceive);
    }
    a.server_ack_send(sbuf, 8);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    // Client: connect+send, receive, then twice (send over the SAME
    // connection, receive the reply).
    let mut a = Assembler::new("client");
    a.client_rpc(r.h_ref, cbuf, 8, crep, 8);
    for _ in 0..2 {
        a.movi(ARG_SBUF, cbuf);
        a.movi(ARG_COUNT, 8);
        a.movi(ARG_RBUF, crep);
        a.movi(ARG_VAL, 8);
        a.sys(Sys::IpcClientSendOverReceive);
    }
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client_space, cbuf, &[1, 2, 3, 4, 5, 6, 7, 8]);
    assert!(run_to_halt(&mut r.k, &[st, ct], 100_000_000));
    assert_eq!(
        r.k.read_mem(r.client_space, crep, 8),
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    );
    assert_eq!(r.k.thread_regs(ct).get(Reg::Eax), ErrorCode::Success as u32);
    // Three full request/reply message pairs moved.
    assert!(r.k.stats.ipc_messages >= 6);
}

/// `ipc_server_send_over_receive`: the server pushes data to the client
/// and then reverses direction to receive the client's next message.
#[test]
fn server_send_over_receive_reverses_roles() {
    let mut r = rig(Config::interrupt_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;
    let crep = r.client.mem_base + 0x2000;

    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_port, sbuf, 4);
    // Reply 4 bytes, then receive 4 more from the client over the same
    // connection, then ack the exchange away.
    a.movi(ARG_SBUF, sbuf);
    a.movi(ARG_COUNT, 4);
    a.movi(ARG_RBUF, sbuf + 16);
    a.movi(ARG_VAL, 4);
    a.sys(Sys::IpcServerSendOverReceive);
    a.sys(Sys::IpcServerDisconnect);
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let mut a = Assembler::new("client");
    a.client_rpc(r.h_ref, cbuf, 4, crep, 4);
    // Now send the follow-up the server is waiting to receive.
    a.movi(ARG_SBUF, cbuf + 16);
    a.movi(ARG_COUNT, 4);
    a.sys(Sys::IpcClientSend);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client_space, cbuf, &[10, 11, 12, 13]);
    r.k.write_mem(r.client_space, cbuf + 16, &[20, 21, 22, 23]);
    assert!(run_to_halt(&mut r.k, &[st, ct], 100_000_000));
    assert_eq!(
        r.k.read_mem(r.server_space, sbuf + 16, 4),
        vec![20, 21, 22, 23]
    );
    assert_eq!(r.k.read_mem(r.client_space, crep, 4), vec![10, 11, 12, 13]);
}

/// `ipc_receive_oneway` (the non-waiting variant) reports `WouldBlock`
/// when no sender is parked, and delivers when one is.
#[test]
fn receive_oneway_nonblocking() {
    let mut r = rig(Config::process_pp());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;
    let rec = r.server.mem_base + 0x3000;

    let mut a = Assembler::new("poller");
    // First poll: nothing pending.
    a.movi(ARG_HANDLE, r.h_port);
    a.movi(ARG_RBUF, sbuf);
    a.movi(ARG_COUNT, 8);
    a.sys(Sys::IpcReceiveOneway);
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax);
    // Sleep (woken by the timer below) so the lower-priority sender can
    // park itself; then poll again.
    a.sys(Sys::ThreadSleep);
    a.movi(ARG_HANDLE, r.h_port);
    a.movi(ARG_RBUF, sbuf);
    a.movi(ARG_COUNT, 8);
    a.sys(Sys::IpcReceiveOneway);
    a.store(Reg::Ebp, 4, Reg::Eax);
    a.halt();
    // Highest priority: the first poll definitely precedes the send.
    let st = r.server.start(&mut r.k, a.finish(), 10);
    r.k.wake_at(st, fluke_arch::cost::ms_to_cycles(2));

    let mut a = Assembler::new("sender");
    a.movi(ARG_HANDLE, r.h_ref);
    a.movi(ARG_SBUF, cbuf);
    a.movi(ARG_COUNT, 8);
    a.sys(Sys::IpcSendOneway);
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client_space, cbuf, b"oneway!!");
    assert!(run_to_halt(&mut r.k, &[st, ct], 200_000_000));
    assert_eq!(
        r.k.read_mem_u32(r.server_space, rec),
        ErrorCode::WouldBlock as u32
    );
    assert_eq!(
        r.k.read_mem_u32(r.server_space, rec + 4),
        ErrorCode::Success as u32
    );
    assert_eq!(r.k.read_mem(r.server_space, sbuf, 8), b"oneway!!".to_vec());
}

/// `ipc_client_ack_receive` behaves as a receive continuation: after a
/// truncated first window the client acknowledges and drains the rest.
#[test]
fn client_ack_receive_drains_reply() {
    let mut r = rig(Config::process_np());
    let sbuf = r.server.mem_base + 0x1000;
    let cbuf = r.client.mem_base + 0x1000;
    let crep = r.client.mem_base + 0x2000;
    let rec = r.client.mem_base + 0x3000;

    let mut a = Assembler::new("server");
    a.server_wait_receive(r.h_port, sbuf, 4);
    a.server_ack_send(sbuf, 12); // reply longer than the client's window
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let mut a = Assembler::new("client");
    a.client_rpc(r.h_ref, cbuf, 4, crep, 6); // undersized reply window
    a.movi(Reg::Ebp, rec);
    a.store(Reg::Ebp, 0, Reg::Eax); // Truncated
    a.movi(ARG_RBUF, crep + 6);
    a.movi(ARG_COUNT, 6);
    a.sys(Sys::IpcClientAckReceive);
    a.store(Reg::Ebp, 4, Reg::Eax); // Success
    a.halt();
    let ct = r.client.start(&mut r.k, a.finish(), 8);

    r.k.write_mem(r.client_space, cbuf, &[9; 4]);
    r.k.write_mem(r.server_space, sbuf, b"0123456789AB");
    // The server's echo overwrites its first 4 bytes with the request.
    assert!(run_to_halt(&mut r.k, &[st, ct], 100_000_000));
    assert_eq!(
        r.k.read_mem_u32(r.client_space, rec),
        ErrorCode::Truncated as u32
    );
    assert_eq!(
        r.k.read_mem_u32(r.client_space, rec + 4),
        ErrorCode::Success as u32
    );
    // Full 12-byte reply assembled across the two windows.
    let reply = r.k.read_mem(r.client_space, crep, 12);
    let expect = r.k.read_mem(r.server_space, sbuf, 12);
    assert_eq!(reply, expect);
}

/// Two clients against one port: the server drains them sequentially from
/// the connect queue.
#[test]
fn connect_queue_serves_clients_in_order() {
    let mut r = rig(Config::process_np());
    let sbuf = r.server.mem_base + 0x1000;
    let recs = r.server.mem_base + 0x3000;

    // A second client space with its own reference.
    let mut client2 = ChildProc::with_mem(&mut r.k, 0x0050_0000, 0x4000);
    let h_ref2 = client2.alloc_obj();
    let port = r.k.object_at(r.server_space, r.h_port).unwrap();
    r.k.loader_ref(client2.space, h_ref2, port);

    let mut a = Assembler::new("server");
    for i in 0..2u32 {
        a.server_wait_receive(r.h_port, sbuf, 4);
        a.movi(Reg::Ebp, recs + i * 4);
        a.movi(Reg::Edx, sbuf);
        a.load(Reg::Ebx, Reg::Edx, 0);
        a.store(Reg::Ebp, 0, Reg::Ebx);
        a.sys(Sys::IpcServerDisconnect);
    }
    a.halt();
    let st = r.server.start(&mut r.k, a.finish(), 8);

    let send_prog = |tag: u32, buf: u32, h: u32| {
        let mut a = Assembler::new("client");
        a.movi(Reg::Ebp, buf);
        a.movi(Reg::Edx, tag);
        a.store(Reg::Ebp, 0, Reg::Edx);
        a.client_connect_send(h, buf, 4);
        a.halt();
        a.finish()
    };
    let cbuf1 = r.client.mem_base + 0x1000;
    let cbuf2 = client2.mem_base + 0x1000;
    let c1 = r
        .client
        .start(&mut r.k, send_prog(0x1111, cbuf1, r.h_ref), 8);
    let c2 = client2.start(&mut r.k, send_prog(0x2222, cbuf2, h_ref2), 7);
    assert!(run_to_halt(&mut r.k, &[st, c1, c2], 100_000_000));
    let first = r.k.read_mem_u32(r.server_space, recs);
    let second = r.k.read_mem_u32(r.server_space, recs + 4);
    assert_eq!(
        {
            let mut v = [first, second];
            v.sort_unstable();
            v
        },
        [0x1111, 0x2222],
        "both clients served"
    );
}

/// An IPC transfer whose source and destination buffers alias the *same*
/// physical frame at overlapping offsets must deliver the sender's
/// original bytes — under both the bulk fast path and the per-byte
/// reference implementation. (A naive ascending byte copy would
/// replicate the first bytes through the overlap instead.)
#[test]
fn aliased_same_frame_transfer_copies_correctly() {
    for cfg in [
        Config::process_np(),
        Config::process_np().with_fast_mem(false),
    ] {
        let mut r = rig(cfg);
        // The server's receive window is an alias of the client's send
        // page: same frame, destination 0x20 bytes above the source.
        let cbuf_page = r.client.mem_base + 0x1000;
        let sbuf_page: u32 = 0x0018_0000;
        r.k.alias_pages(
            r.server_space,
            sbuf_page,
            r.client_space,
            cbuf_page,
            4096,
            true,
        );
        let src = cbuf_page + 0x100;
        let dst_off: u32 = 0x120;

        let mut a = Assembler::new("server");
        a.server_wait_receive(r.h_port, sbuf_page + dst_off, 64);
        a.sys(Sys::IpcServerDisconnect);
        a.halt();
        let st = r.server.start(&mut r.k, a.finish(), 9);

        let mut a = Assembler::new("client");
        a.client_connect_send(r.h_ref, src, 64);
        a.client_disconnect();
        a.halt();
        let ct = r.client.start(&mut r.k, a.finish(), 8);

        let pattern: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(7) ^ 0x5a).collect();
        r.k.write_mem(r.client_space, src, &pattern);
        assert!(run_to_halt(&mut r.k, &[st, ct], 100_000_000));
        assert_eq!(
            r.k.read_mem(r.server_space, sbuf_page + dst_off, 64),
            pattern,
            "{}: overlap-aliased transfer corrupted the message",
            r.k.cfg.label
        );
    }
}

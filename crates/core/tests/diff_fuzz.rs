//! Differential syscall-sequence fuzzer: the refactor-guarding oracle.
//!
//! Each seeded case synthesizes a small multi-threaded program — an IPC
//! client/server pair running a random number of echo exchanges with
//! random message sizes and windows, plus noise threads issuing random
//! sequences of object, mutex, and trivial calls — and runs it under
//! the four comparable Table 4 configurations (process vs interrupt
//! execution model × no/partial preemption). The user-visible outcome
//! must be bit-identical everywhere:
//!
//! * the per-thread **user-visible trace projection** (syscall result
//!   codes, `sys_trace` marks, halts — the same projection the bench
//!   cross-model trace diff uses);
//! * each thread's final `eax`/`edi` (result code and running
//!   checksum);
//! * an FNV-64 checksum over every memory region the case touches.
//!
//! The synthesized calls are restricted to schedule-independent
//! operations (no trylock, no clock reads, no racy shared memory), so
//! any divergence is a kernel bug — in dispatch, blocking, restart
//! continuations, or the IPC pump — not an artifact of preemption
//! timing. Case count scales with `FLUKE_FUZZ_CASES` (default 64).

use std::collections::BTreeMap;

use fluke_api::abi::{ARG_COUNT, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::{ObjType, Sys};
use fluke_arch::{Assembler, Cond, Reg};
use fluke_core::{Config, Kernel, ThreadId, UserVisible};
use fluke_user::proc::{run_to_halt, ChildProc};
use fluke_user::FlukeAsm;

/// Deterministic splitmix64 generator for case synthesis.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() as u32) % (hi - lo)
    }
}

/// One synthesized case, fully determined by its seed.
struct Case {
    /// Message bytes per exchange (multiple of 4).
    len: u32,
    /// Receive-window slack beyond `len` (multiple of 4).
    slack: u32,
    /// Request/reply exchanges over one connection.
    exchanges: u32,
    /// Noise program for the client tail.
    client_noise: Vec<(u8, u32)>,
    /// Noise program for the standalone worker.
    worker_noise: Vec<(u8, u32)>,
    /// Deterministic message payload.
    payload: Vec<u8>,
    /// Byte lengths of the one-way messages in the `ipc_submit` batch
    /// (at most [`fluke_api::abi::PORT_BUF_MSGS`], so the blocking batch
    /// never spills regardless of how the receiver is scheduled).
    submit_lens: Vec<u32>,
}

impl Case {
    fn synth(seed: u64) -> Case {
        let mut rng = Rng(seed);
        let len = 4 * rng.range(1, 256); // 4..1020 bytes
        let slack = 4 * rng.range(0, 64);
        let exchanges = rng.range(1, 4);
        let noise = |rng: &mut Rng, lo: u32, hi: u32| -> Vec<(u8, u32)> {
            let n = rng.range(lo, hi);
            (0..n)
                .map(|_| (rng.range(0, 8) as u8, rng.range(0, 10_000)))
                .collect()
        };
        let client_noise = noise(&mut rng, 0, 10);
        let worker_noise = noise(&mut rng, 4, 24);
        let payload = (0..len).map(|_| rng.next_u64() as u8).collect();
        let batch = rng.range(1, 1 + fluke_api::abi::PORT_BUF_MSGS as u32);
        let submit_lens = (0..batch).map(|_| 4 * rng.range(1, 128)).collect();
        Case {
            len,
            slack,
            exchanges,
            client_noise,
            worker_noise,
            payload,
            submit_lens,
        }
    }
}

/// Emit a noise sequence: every op is schedule-independent, so its
/// result codes and checksum contributions are identical under any
/// execution model or preemption style. `obj_base` is a private strip
/// of the object page; `slot_base` a private memory strip.
fn emit_noise(a: &mut Assembler, ops: &[(u8, u32)], obj_base: u32, slot_base: u32, h_mutex: u32) {
    a.sys_h(Sys::MutexCreate, h_mutex);
    for (i, &(op, val)) in ops.iter().enumerate() {
        let i = i as u32;
        match op % 8 {
            0 => {
                a.movi(Reg::Edx, val);
                a.add(Reg::Edi, Reg::Edx);
            }
            1 => {
                // Store + reload through private memory.
                let slot = slot_base + (i * 4) % 0x400;
                a.movi(Reg::Ebp, slot);
                a.movi(Reg::Edx, val);
                a.store(Reg::Ebp, 0, Reg::Edx);
                a.load(Reg::Ebx, Reg::Ebp, 0);
                a.add(Reg::Edi, Reg::Ebx);
            }
            2 => {
                // Uncontended (private) mutex section.
                a.mutex_lock(h_mutex);
                a.addi(Reg::Edi, 1);
                a.mutex_unlock(h_mutex);
            }
            3 => {
                a.sys(Sys::SysNull);
                a.addi(Reg::Edi, 3);
            }
            4 => {
                a.sys(Sys::SysYield);
                a.addi(Reg::Edi, 5);
            }
            5 => {
                a.compute(val % 700);
                a.addi(Reg::Edi, 7);
            }
            6 => {
                // Object churn: create, rename, destroy.
                let h = obj_base + (i % 8) * 64;
                a.sys_h(Sys::CondCreate, h);
                a.sys_hv(Sys::CondMove, h, h + 32);
                a.sys_h(Sys::CondSignal, h + 32); // no waiter: Success
                a.sys_h(Sys::CondDestroy, h + 32);
                a.addi(Reg::Edi, 11);
            }
            7 => {
                // Trace-mark the running checksum: lands in the
                // user-visible projection of every configuration.
                a.mov(ARG_VAL, Reg::Edi);
                a.sys(Sys::SysTrace);
            }
            _ => unreachable!(),
        }
    }
}

/// Checksum `words` 32-bit words at `base` into `edi`.
fn emit_checksum(a: &mut Assembler, base: u32, words: u32, label: &str) {
    a.movi(Reg::Ebp, base);
    a.movi(Reg::Ebx, base + words * 4);
    a.label(label);
    a.load(Reg::Edx, Reg::Ebp, 0);
    a.add(Reg::Edi, Reg::Edx);
    a.addi(Reg::Ebp, 4);
    a.cmp(Reg::Ebp, Reg::Ebx);
    a.jcc(Cond::Ne, label);
}

/// Everything a user program can observe of a finished run.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Per-thread user-visible event sequences.
    uv: BTreeMap<ThreadId, Vec<UserVisible>>,
    /// (final `eax`, final `edi`) per main thread.
    regs: Vec<(u32, u32)>,
    /// FNV-64 over all touched memory regions.
    mem: u64,
}

fn fnv(acc: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *acc ^= b as u64;
        *acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Run one synthesized case under `cfg` and project the outcome.
fn run_case(cfg: Config, case: &Case) -> Outcome {
    let label = cfg.label;
    // Flowcheck is armed on every case: the whole fixed-seed suite must
    // stay inside the SysDesc-derived syscall-flow graph (asserted below).
    let mut k = Kernel::new(cfg.with_tracing(1 << 16).with_flowcheck());
    let mut server = ChildProc::with_mem(&mut k, 0x0010_0000, 0x4000);
    let mut client = ChildProc::with_mem(&mut k, 0x0020_0000, 0x4000);
    let worker = ChildProc::with_mem(&mut k, 0x0030_0000, 0x4000);
    let h_port = server.alloc_obj();
    let h_ref = client.alloc_obj();
    let port = k.loader_create(server.space, h_port, ObjType::Port);
    k.loader_ref(client.space, h_ref, port);

    let window = case.len + case.slack;
    let sbuf = server.mem_base + 0x1000;
    let cbuf = client.mem_base + 0x1000;
    let crbuf = client.mem_base + 0x2000;

    // Server: receive, echo the request back `exchanges - 1` times over
    // the same connection, then acknowledge the final exchange away.
    let mut a = Assembler::new("fuzz-server");
    a.server_wait_receive(h_port, sbuf, window);
    for _ in 1..case.exchanges {
        a.movi(ARG_SBUF, sbuf);
        a.movi(ARG_COUNT, case.len);
        a.movi(ARG_RBUF, sbuf);
        a.movi(ARG_VAL, window);
        a.sys(Sys::IpcServerSendWaitReceive);
    }
    a.server_ack_send(sbuf, case.len);
    a.halt();
    let st = server.start(&mut k, a.finish(), 8);

    // Client: one connect-send-receive, then the remaining exchanges,
    // then checksum the final echo and run its noise tail.
    let mut a = Assembler::new("fuzz-client");
    a.xor(Reg::Edi, Reg::Edi);
    a.client_rpc(h_ref, cbuf, case.len, crbuf, case.len);
    for _ in 1..case.exchanges {
        a.movi(ARG_SBUF, cbuf);
        a.movi(ARG_COUNT, case.len);
        a.movi(ARG_RBUF, crbuf);
        a.movi(ARG_VAL, case.len);
        a.sys(Sys::IpcClientSendOverReceive);
    }
    emit_checksum(&mut a, crbuf, case.len / 4, "ck-echo");
    emit_noise(
        &mut a,
        &case.client_noise,
        client.mem_base + 0x800,
        client.mem_base + 0x3000,
        client.mem_base + 0x400,
    );
    a.mov(ARG_VAL, Reg::Edi);
    a.sys(Sys::SysTrace);
    a.halt();
    let ct = client.start(&mut k, a.finish(), 8);

    // Worker: pure noise in a private space, concurrent with the IPC.
    let mut a = Assembler::new("fuzz-worker");
    a.xor(Reg::Edi, Reg::Edi);
    emit_noise(
        &mut a,
        &case.worker_noise,
        worker.mem_base + 0x800,
        worker.mem_base + 0x3000,
        worker.mem_base + 0x400,
    );
    a.mov(ARG_VAL, Reg::Edi);
    a.sys(Sys::SysTrace);
    a.halt();
    let wt = worker.start(&mut k, a.finish(), 8);

    // Batched submission pair in a fourth space: a blocking `ipc_submit`
    // batch of one-way sends (sized under the buffer cap, so it never
    // spills) drained in FIFO order by a plain receiver thread. Both the
    // descriptor ring (result words, lengths) and the received bytes are
    // schedule-independent and feed the checksum.
    let mut submit = ChildProc::with_mem(&mut k, 0x0040_0000, 0x8000);
    let h_bport = submit.alloc_obj();
    k.loader_create(submit.space, h_bport, ObjType::Port);
    let ring = submit.mem_base + 0x1000;
    let s_src = submit.mem_base + 0x2000;
    let s_dst = submit.mem_base + 0x3000;
    let n_ops = case.submit_lens.len() as u32;
    let src_fill: Vec<u8> = (0..0x800u32)
        .map(|i| (i as u8) ^ (case.len as u8))
        .collect();
    k.write_mem(submit.space, s_src, &src_fill);
    let mut ring_img = Vec::new();
    for (i, &l) in case.submit_lens.iter().enumerate() {
        // Overlapping windows into the fill pattern give each message
        // distinct bytes without a per-message source buffer.
        for w in [0u32, h_bport, s_src + (i as u32 * 52) % 0x400, l] {
            ring_img.extend(w.to_le_bytes());
        }
    }
    k.write_mem(submit.space, ring, &ring_img);

    let mut a = Assembler::new("fuzz-submitter");
    a.movi(ARG_SBUF, ring);
    a.movi(ARG_COUNT, n_ops);
    a.movi(ARG_VAL, 0);
    a.sys(Sys::IpcSubmit);
    a.halt();
    let bt = submit.start(&mut k, a.finish(), 8);

    let mut a = Assembler::new("fuzz-drainer");
    let mut dst = s_dst;
    for &l in &case.submit_lens {
        a.movi(Reg::Ebx, h_bport);
        a.movi(ARG_COUNT, l);
        a.movi(ARG_RBUF, dst);
        a.sys(Sys::IpcWaitReceiveOneway);
        dst += l;
    }
    a.halt();
    let dt = submit.start(&mut k, a.finish(), 8);

    k.write_mem(client.space, cbuf, &case.payload);
    assert!(
        run_to_halt(&mut k, &[st, ct, wt, bt, dt], 5_000_000_000),
        "case hung under {label}"
    );

    let mut mem = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut mem, &k.read_mem(server.space, sbuf, case.len));
    fnv(&mut mem, &k.read_mem(client.space, crbuf, case.len));
    fnv(
        &mut mem,
        &k.read_mem(client.space, client.mem_base + 0x3000, 0x400),
    );
    fnv(
        &mut mem,
        &k.read_mem(worker.space, worker.mem_base + 0x3000, 0x400),
    );
    let drained: u32 = case.submit_lens.iter().sum();
    fnv(&mut mem, &k.read_mem(submit.space, ring, n_ops * 16));
    fnv(&mut mem, &k.read_mem(submit.space, s_dst, drained));

    assert!(
        k.flowcheck.violations.is_empty(),
        "flow-graph violations under {label}: {:?}",
        k.flowcheck.violations
    );

    Outcome {
        uv: k.trace.user_visible(),
        regs: [st, ct, wt, bt, dt]
            .iter()
            .map(|&t| {
                let r = k.thread_regs(t);
                (r.get(Reg::Eax), r.get(Reg::Edi))
            })
            .collect(),
        mem,
    }
}

/// The four comparable configurations (Full preemption exists only in
/// the process model, so it has no cross-model partner and is covered
/// by the golden-trace suite instead).
fn configs() -> [Config; 4] {
    [
        Config::process_np(),
        Config::interrupt_np(),
        Config::process_pp(),
        Config::interrupt_pp(),
    ]
}

fn case_count() -> u64 {
    // Structured parsing: a malformed or out-of-range knob fails the
    // suite loudly instead of silently falling back to the default.
    match fluke_core::kfuzz::env_knob("FLUKE_FUZZ_CASES", 64, 1, 1 << 20) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// The fuzzer law: every seeded program produces an identical
/// user-visible outcome under all four configurations.
#[test]
fn seeded_programs_identical_across_models_and_preemption() {
    let n = case_count();
    for seed in 0..n {
        let case = Case::synth(0xD1FF_0000 ^ (seed * 0x9e37_79b9));
        let mut base: Option<(String, Outcome)> = None;
        for cfg in configs() {
            let label = cfg.label;
            let got = run_case(cfg, &case);
            match &base {
                None => base = Some((label.to_string(), got)),
                Some((base_label, want)) => {
                    assert_eq!(
                        want, &got,
                        "seed {seed}: {label} diverged from {base_label} \
                         (len={}, slack={}, exchanges={})",
                        case.len, case.slack, case.exchanges
                    );
                }
            }
        }
    }
}

/// Determinism of the oracle itself: the same seed re-run under the
/// same configuration reproduces the outcome bit-for-bit, so any
/// divergence the law test reports is replayable from its seed.
#[test]
fn fuzzer_outcomes_are_reproducible() {
    let case = Case::synth(0xD1FF_CAFE);
    let a = run_case(Config::process_pp(), &case);
    let b = run_case(Config::process_pp(), &case);
    assert_eq!(a, b);
}

//! The ready queue: fixed priority levels, FIFO within a level.

use std::collections::VecDeque;

use crate::ids::ThreadId;
use crate::thread::PRIORITY_LEVELS;

/// Multi-level FIFO ready queue. Higher priority value runs first.
#[derive(Debug)]
pub struct ReadyQueue {
    levels: Vec<VecDeque<ThreadId>>,
    bitmap: u32,
}

impl ReadyQueue {
    /// An empty ready queue.
    pub fn new() -> Self {
        ReadyQueue {
            levels: (0..PRIORITY_LEVELS).map(|_| VecDeque::new()).collect(),
            bitmap: 0,
        }
    }

    /// Enqueue at the tail of its priority level.
    pub fn push(&mut self, t: ThreadId, priority: u32) {
        let p = priority.min(PRIORITY_LEVELS - 1) as usize;
        self.levels[p].push_back(t);
        self.bitmap |= 1 << p;
    }

    /// Enqueue at the *head* of its priority level (used when a thread is
    /// preempted: it has unfinished work and should continue first among
    /// its peers).
    pub fn push_front(&mut self, t: ThreadId, priority: u32) {
        let p = priority.min(PRIORITY_LEVELS - 1) as usize;
        self.levels[p].push_front(t);
        self.bitmap |= 1 << p;
    }

    /// Dequeue the highest-priority thread.
    pub fn pop(&mut self) -> Option<ThreadId> {
        if self.bitmap == 0 {
            return None;
        }
        let p = 31 - self.bitmap.leading_zeros() as usize;
        let t = self.levels[p].pop_front();
        if self.levels[p].is_empty() {
            self.bitmap &= !(1 << p);
        }
        t
    }

    /// Highest priority currently queued.
    pub fn top_priority(&self) -> Option<u32> {
        if self.bitmap == 0 {
            None
        } else {
            Some(31 - self.bitmap.leading_zeros())
        }
    }

    /// Remove a specific thread (used by `thread_destroy` / `set_state`).
    pub fn remove(&mut self, t: ThreadId) -> bool {
        for p in 0..self.levels.len() {
            if let Some(pos) = self.levels[p].iter().position(|&x| x == t) {
                self.levels[p].remove(pos);
                if self.levels[p].is_empty() {
                    self.bitmap &= !(1 << p);
                }
                return true;
            }
        }
        false
    }

    /// Whether `t` is enqueued.
    pub fn contains(&self, t: ThreadId) -> bool {
        self.levels.iter().any(|l| l.contains(&t))
    }

    /// Whether any thread is ready.
    pub fn is_empty(&self) -> bool {
        self.bitmap == 0
    }

    /// Total ready threads.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }
}

impl Default for ReadyQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-CPU ready queues for the fine-grained multiprocessor scheduler:
/// one [`ReadyQueue`] per processor, plus the deterministic work-stealing
/// victim scan. Pure data — all cycle charging (run-queue lock costs,
/// steal IPIs) lives in the kernel, so this structure is reusable and
/// unit-testable in isolation.
///
/// Determinism: a thread is always enqueued on its *home* CPU's queue,
/// the victim scan starts at `(thief + 1) % n` and walks upward, and the
/// kernel only invokes these operations from the globally time-ordered
/// run loop — so for a fixed workload the queue contents are a pure
/// function of simulated time.
#[derive(Debug)]
pub struct PerCpuQueues {
    queues: Vec<ReadyQueue>,
}

impl PerCpuQueues {
    /// One empty queue per processor.
    pub fn new(cpus: usize) -> Self {
        PerCpuQueues {
            queues: (0..cpus.max(1)).map(|_| ReadyQueue::new()).collect(),
        }
    }

    /// Number of per-CPU queues.
    pub fn cpus(&self) -> usize {
        self.queues.len()
    }

    /// Enqueue on `cpu`'s queue, at the tail of its priority level.
    pub fn push(&mut self, cpu: usize, t: ThreadId, priority: u32) {
        self.queues[cpu].push(t, priority);
    }

    /// Enqueue at the *head* of its level on `cpu`'s queue (preempted
    /// threads continue first among their peers).
    pub fn push_front(&mut self, cpu: usize, t: ThreadId, priority: u32) {
        self.queues[cpu].push_front(t, priority);
    }

    /// Dequeue the highest-priority thread of `cpu`'s own queue.
    pub fn pop(&mut self, cpu: usize) -> Option<ThreadId> {
        self.queues[cpu].pop()
    }

    /// Highest priority queued on `cpu`'s own queue.
    pub fn top_priority(&self, cpu: usize) -> Option<u32> {
        self.queues[cpu].top_priority()
    }

    /// Whether `cpu`'s own queue is empty.
    pub fn cpu_empty(&self, cpu: usize) -> bool {
        self.queues[cpu].is_empty()
    }

    /// The queue currently holding `t`, if it is enqueued anywhere.
    pub fn find(&self, t: ThreadId) -> Option<usize> {
        self.queues.iter().position(|q| q.contains(t))
    }

    /// Remove `t` from whichever queue holds it. Returns the queue index
    /// if it was enqueued.
    pub fn remove(&mut self, t: ThreadId) -> Option<usize> {
        for (i, q) in self.queues.iter_mut().enumerate() {
            if q.remove(t) {
                return Some(i);
            }
        }
        None
    }

    /// Deterministic steal-victim scan: the first CPU with queued work,
    /// scanning `(thief + 1) % n`, `(thief + 2) % n`, … Returns `None`
    /// when every other queue is empty.
    pub fn victim(&self, thief: usize) -> Option<usize> {
        let n = self.queues.len();
        (1..n)
            .map(|off| (thief + off) % n)
            .find(|&v| !self.queues[v].is_empty())
    }

    /// Total ready threads across every queue.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

// The bitmap is derived from level occupancy and rebuilt on restore.
impl Snap for ReadyQueue {
    fn snap(&self, w: &mut SnapWriter) {
        self.levels.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let levels: Vec<VecDeque<ThreadId>> = Snap::restore(r)?;
        if levels.len() != PRIORITY_LEVELS as usize {
            return Err(SnapError::Invalid("ready-queue level count"));
        }
        let mut bitmap = 0u32;
        for (p, l) in levels.iter().enumerate() {
            if !l.is_empty() {
                bitmap |= 1 << p;
            }
        }
        Ok(ReadyQueue { levels, bitmap })
    }
}

impl Snap for PerCpuQueues {
    fn snap(&self, w: &mut SnapWriter) {
        self.queues.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let queues: Vec<ReadyQueue> = Snap::restore(r)?;
        if queues.is_empty() {
            return Err(SnapError::Invalid("per-cpu queue count"));
        }
        Ok(PerCpuQueues { queues })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_then_fifo() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 5);
        q.push(ThreadId(2), 10);
        q.push(ThreadId(3), 5);
        assert_eq!(q.top_priority(), Some(10));
        assert_eq!(q.pop(), Some(ThreadId(2)));
        assert_eq!(q.pop(), Some(ThreadId(1)));
        assert_eq!(q.pop(), Some(ThreadId(3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_front_jumps_the_level_queue() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 5);
        q.push_front(ThreadId(2), 5);
        assert_eq!(q.pop(), Some(ThreadId(2)));
        assert_eq!(q.pop(), Some(ThreadId(1)));
    }

    #[test]
    fn remove_specific_thread() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 5);
        q.push(ThreadId(2), 5);
        assert!(q.remove(ThreadId(1)));
        assert!(!q.remove(ThreadId(1)));
        assert_eq!(q.pop(), Some(ThreadId(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn priority_clamped_to_levels() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 999);
        assert_eq!(q.top_priority(), Some(PRIORITY_LEVELS - 1));
        assert_eq!(q.pop(), Some(ThreadId(1)));
    }

    #[test]
    fn len_counts_all_levels() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 1);
        q.push(ThreadId(2), 30);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn percpu_push_pop_are_per_queue() {
        let mut q = PerCpuQueues::new(3);
        q.push(0, ThreadId(1), 5);
        q.push(1, ThreadId(2), 9);
        assert_eq!(q.pop(0), Some(ThreadId(1)));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(2), None);
        assert_eq!(q.pop(1), Some(ThreadId(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn percpu_victim_scan_starts_after_thief_and_wraps() {
        let mut q = PerCpuQueues::new(4);
        q.push(1, ThreadId(7), 5);
        q.push(3, ThreadId(8), 5);
        // Thief 2 scans 3, 0, 1 — finds 3 first.
        assert_eq!(q.victim(2), Some(3));
        // Thief 3 scans 0, 1, 2 — finds 1 first.
        assert_eq!(q.victim(3), Some(1));
        // A thief never picks its own queue.
        assert_eq!(q.pop(3), Some(ThreadId(8)));
        assert_eq!(q.victim(1), None);
        assert_eq!(q.victim(0), Some(1));
    }

    #[test]
    fn percpu_remove_and_find_scan_every_queue() {
        let mut q = PerCpuQueues::new(2);
        q.push(1, ThreadId(4), 3);
        assert_eq!(q.find(ThreadId(4)), Some(1));
        assert_eq!(q.find(ThreadId(5)), None);
        assert_eq!(q.remove(ThreadId(4)), Some(1));
        assert_eq!(q.remove(ThreadId(4)), None);
        assert_eq!(q.len(), 0);
    }
}

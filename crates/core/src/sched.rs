//! The ready queue: fixed priority levels, FIFO within a level.

use std::collections::VecDeque;

use crate::ids::ThreadId;
use crate::thread::PRIORITY_LEVELS;

/// Multi-level FIFO ready queue. Higher priority value runs first.
#[derive(Debug)]
pub struct ReadyQueue {
    levels: Vec<VecDeque<ThreadId>>,
    bitmap: u32,
}

impl ReadyQueue {
    /// An empty ready queue.
    pub fn new() -> Self {
        ReadyQueue {
            levels: (0..PRIORITY_LEVELS).map(|_| VecDeque::new()).collect(),
            bitmap: 0,
        }
    }

    /// Enqueue at the tail of its priority level.
    pub fn push(&mut self, t: ThreadId, priority: u32) {
        let p = priority.min(PRIORITY_LEVELS - 1) as usize;
        self.levels[p].push_back(t);
        self.bitmap |= 1 << p;
    }

    /// Enqueue at the *head* of its priority level (used when a thread is
    /// preempted: it has unfinished work and should continue first among
    /// its peers).
    pub fn push_front(&mut self, t: ThreadId, priority: u32) {
        let p = priority.min(PRIORITY_LEVELS - 1) as usize;
        self.levels[p].push_front(t);
        self.bitmap |= 1 << p;
    }

    /// Dequeue the highest-priority thread.
    pub fn pop(&mut self) -> Option<ThreadId> {
        if self.bitmap == 0 {
            return None;
        }
        let p = 31 - self.bitmap.leading_zeros() as usize;
        let t = self.levels[p].pop_front();
        if self.levels[p].is_empty() {
            self.bitmap &= !(1 << p);
        }
        t
    }

    /// Highest priority currently queued.
    pub fn top_priority(&self) -> Option<u32> {
        if self.bitmap == 0 {
            None
        } else {
            Some(31 - self.bitmap.leading_zeros())
        }
    }

    /// Remove a specific thread (used by `thread_destroy` / `set_state`).
    pub fn remove(&mut self, t: ThreadId) -> bool {
        for p in 0..self.levels.len() {
            if let Some(pos) = self.levels[p].iter().position(|&x| x == t) {
                self.levels[p].remove(pos);
                if self.levels[p].is_empty() {
                    self.bitmap &= !(1 << p);
                }
                return true;
            }
        }
        false
    }

    /// Whether any thread is ready.
    pub fn is_empty(&self) -> bool {
        self.bitmap == 0
    }

    /// Total ready threads.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }
}

impl Default for ReadyQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_then_fifo() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 5);
        q.push(ThreadId(2), 10);
        q.push(ThreadId(3), 5);
        assert_eq!(q.top_priority(), Some(10));
        assert_eq!(q.pop(), Some(ThreadId(2)));
        assert_eq!(q.pop(), Some(ThreadId(1)));
        assert_eq!(q.pop(), Some(ThreadId(3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_front_jumps_the_level_queue() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 5);
        q.push_front(ThreadId(2), 5);
        assert_eq!(q.pop(), Some(ThreadId(2)));
        assert_eq!(q.pop(), Some(ThreadId(1)));
    }

    #[test]
    fn remove_specific_thread() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 5);
        q.push(ThreadId(2), 5);
        assert!(q.remove(ThreadId(1)));
        assert!(!q.remove(ThreadId(1)));
        assert_eq!(q.pop(), Some(ThreadId(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn priority_clamped_to_levels() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 999);
        assert_eq!(q.top_priority(), Some(PRIORITY_LEVELS - 1));
        assert_eq!(q.pop(), Some(ThreadId(1)));
    }

    #[test]
    fn len_counts_all_levels() {
        let mut q = ReadyQueue::new();
        q.push(ThreadId(1), 1);
        q.push(ThreadId(2), 30);
        assert_eq!(q.len(), 2);
    }
}

//! Address translation, the memory-mapping hierarchy walk, and fault
//! resolution.
//!
//! A fault is **soft** when the kernel can derive a page-table entry from
//! an entry higher in the mapping hierarchy (resolved inline, ~19–29µs in
//! the paper's Table 3) and **hard** when the chain bottoms out at a region
//! with a *keeper*: the kernel then converts the fault into an exception
//! IPC to the keeper port — an RPC to a user-level memory manager — and the
//! faulting thread blocks at a clean restart point until the reply.

use fluke_api::abi::{EXC_ACCESS_READ, EXC_ACCESS_WRITE, EXC_MSG_PAGEFAULT, PAGE_SIZE};
use fluke_api::ErrorCode;

use crate::conn::{Connection, KernelMsg};
use crate::ids::{ConnId, ObjId, SpaceId, ThreadId};
use crate::kstat::{FaultKind, FaultRecord, FaultSide};
use crate::object::ObjData;
use crate::phys::FrameId;
use crate::space::Space;
use crate::thread::WaitReason;
use crate::trace::TraceEvent;

use super::{Kernel, SysOutcome, SysResult};

/// Result of a mapping-hierarchy walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Walk {
    /// A frame was derivable: install a PTE and continue (soft fault).
    Soft {
        /// The backing frame.
        frame: FrameId,
        /// Whether the derived PTE may be writable.
        writable: bool,
        /// Hierarchy levels traversed (cost scales with depth).
        levels: u32,
    },
    /// The chain bottoms out at a kept region without backing: raise an
    /// exception IPC to the keeper (hard fault).
    Hard {
        /// The region whose keeper must supply the page.
        region: ObjId,
        /// Byte offset of the faulting page within the region.
        offset: u32,
        /// The keeper port.
        keeper: ObjId,
    },
    /// No mapping covers the address (or protections forbid the access):
    /// a fatal user error.
    Fatal,
}

impl Kernel {
    /// Walk the mapping hierarchy for `addr` in `space`.
    pub(crate) fn walk_hierarchy(&self, space: SpaceId, addr: u32, write: bool) -> Walk {
        let mut sid = space;
        let mut a = addr;
        let mut levels = 1u32;
        let mut writable_chain = true;
        loop {
            let Some(s) = self.spaces.get(sid.0) else {
                return Walk::Fatal;
            };
            // A PTE at this level (beyond the original space) resolves the
            // walk; the original space was already checked by the caller.
            if levels > 1 {
                if let Some(pte) = s.pte(a) {
                    if write && !(pte.writable && writable_chain) {
                        return Walk::Fatal;
                    }
                    return Walk::Soft {
                        frame: pte.frame,
                        writable: pte.writable && writable_chain,
                        levels: levels - 1,
                    };
                }
            }
            // Find the covering mapping via the space's base-sorted interval
            // index (first in insertion order, same as the linear scan it
            // replaces).
            let found = s.mapping_covering(a).and_then(|mid| {
                match self.objects.get(mid).map(|o| &o.data) {
                    Some(ObjData::Mapping {
                        base,
                        size,
                        region,
                        offset,
                        writable,
                        ..
                    }) if a >= *base && a - *base < *size => {
                        Some((*region, *offset, a - *base, *writable))
                    }
                    _ => None,
                }
            });
            let Some((region_id, map_off, delta, map_writable)) = found else {
                return Walk::Fatal;
            };
            if write && !map_writable {
                return Walk::Fatal;
            }
            writable_chain = writable_chain && map_writable;
            let Some(ObjData::Region {
                owner,
                base: rbase,
                size: rsize,
                keeper,
                ..
            }) = self.objects.get(region_id).map(|o| &o.data)
            else {
                return Walk::Fatal;
            };
            let roff = map_off + delta;
            if roff >= *rsize {
                return Walk::Fatal;
            }
            let src = rbase + roff;
            let Some(owner_space) = self.spaces.get(owner.0) else {
                return Walk::Fatal;
            };
            if let Some(pte) = owner_space.pte(src) {
                if write && !(pte.writable && writable_chain) {
                    return Walk::Fatal;
                }
                return Walk::Soft {
                    frame: pte.frame,
                    writable: pte.writable && writable_chain,
                    levels,
                };
            }
            // Owner lacks the page too: either recurse through the owner's
            // own mappings, or fall to the keeper.
            let owner_has_mapping = owner_space.mapping_covering(src).is_some();
            if owner_has_mapping {
                sid = *owner;
                a = src;
                levels += 1;
                continue;
            }
            if let Some(k) = keeper {
                return Walk::Hard {
                    region: region_id,
                    offset: fluke_api::abi::page_base(roff),
                    keeper: *k,
                };
            }
            return Walk::Fatal;
        }
    }

    /// Resolve a fault on `addr` in `space` for the current thread `t`.
    ///
    /// * Soft — charges the hierarchy walk, installs the PTE, records the
    ///   fault, returns `Ok(())`: the caller retries the access.
    /// * Hard — raises the exception IPC, blocks `t`, returns
    ///   `Err(Block)`.
    /// * Fatal — returns `Err(Kill)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_fault(
        &mut self,
        t: ThreadId,
        space: SpaceId,
        addr: u32,
        write: bool,
        side: FaultSide,
        during_ipc: bool,
        in_syscall: bool,
    ) -> Result<(), SysOutcome> {
        match self.walk_hierarchy(space, addr, write) {
            Walk::Soft {
                frame,
                writable,
                levels,
            } => {
                // Deriving the PTE is remedy work, never rollback.
                self.progress();
                // The mapping hierarchy is kernel data: under full
                // preemption it is mutex-protected.
                self.klock_section();
                let cost = self.cost.soft_fault_resolve * levels as u64
                    + if side == FaultSide::Server {
                        self.cost.server_fault_extra
                    } else {
                        0
                    };
                self.kprof.enter(crate::kprof::Phase::MemFill);
                self.charge(cost);
                self.kprof.exit();
                if let Some(s) = self.spaces.get_mut(space.0) {
                    s.map_page(addr, frame, writable);
                }
                self.stats.soft_faults += 1;
                self.stats.fault_records.push(FaultRecord {
                    side,
                    kind: FaultKind::Soft,
                    remedy_cycles: cost,
                    rollback_cycles: 0,
                    during_ipc,
                    at: self.now(),
                });
                self.ktrace(TraceEvent::SoftFault {
                    thread: t,
                    addr,
                    remedy: cost,
                });
                Ok(())
            }
            Walk::Hard {
                region,
                offset,
                keeper,
            } => {
                self.raise_hard_fault(
                    t, region, offset, write, keeper, side, during_ipc, in_syscall,
                );
                Err(SysOutcome::Block)
            }
            Walk::Fatal => {
                self.stats.fatal_faults += 1;
                Err(SysOutcome::Kill("unresolvable page fault"))
            }
        }
    }

    /// Convert a hard fault into an exception IPC to the keeper port and
    /// block the faulting thread waiting for the reply.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn raise_hard_fault(
        &mut self,
        t: ThreadId,
        region: ObjId,
        offset: u32,
        write: bool,
        keeper: ObjId,
        side: FaultSide,
        during_ipc: bool,
        in_syscall: bool,
    ) {
        self.stats.hard_faults += 1;
        let record = self.stats.fault_records.len();
        self.stats.fault_records.push(FaultRecord {
            side,
            kind: FaultKind::Hard,
            remedy_cycles: 0, // finalized when the keeper replies
            rollback_cycles: 0,
            during_ipc,
            at: self.now(),
        });
        // Converting the fault into an exception IPC is remedy work. A
        // fault in the non-current (server) space costs extra cross-space
        // validation, exactly as on the soft path (Table 3).
        self.progress();
        self.klock_section();
        let extra = if side == FaultSide::Server {
            self.cost.server_fault_extra
        } else {
            0
        };
        self.kprof.enter(crate::kprof::Phase::FaultIpc);
        self.charge(self.cost.hard_fault_kernel + extra);
        self.kprof.exit();
        let self_token = match self.objects.get(region).map(|o| &o.data) {
            Some(ObjData::Region { self_token, .. }) => *self_token,
            _ => 0,
        };
        let mut bytes = Vec::with_capacity(16);
        for w in [
            EXC_MSG_PAGEFAULT,
            self_token,
            offset,
            if write {
                EXC_ACCESS_WRITE
            } else {
                EXC_ACCESS_READ
            },
        ] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let msg = KernelMsg {
            bytes,
            pos: 0,
            fault_thread: t,
            raised_at: self.stats.fault_records[record].at,
            record,
            reply: Vec::new(),
        };
        let conn = ConnId(self.conns.insert(Connection::from_kernel(msg, keeper)));
        // Queue on the keeper port and wake a waiting server.
        if let Some(ObjData::Port { connect_q, .. }) =
            self.objects.get_mut(keeper).map(|o| &mut o.data)
        {
            connect_q.enqueue(conn, &mut self.stats.waitq);
        }
        self.wake_port_server(keeper);
        // Block the faulter at its (by construction clean) restart point.
        self.clear_running_cpu(t);
        let th = self.threads.get_mut(t.0).expect("faulting thread");
        th.open_fault = Some(record);
        th.state = WaitReason::PagerReply(conn).into_blocked();
        // A fault inside a system call restarts that call on wakeup; a
        // fault from a user instruction simply re-executes the
        // instruction and must not be accounted as a syscall restart.
        th.inflight = if in_syscall {
            fluke_api::Sys::from_u32(th.regs.get(fluke_arch::Reg::Eax))
        } else {
            None
        };
        th.kstack_retained = false;
        self.ktrace(TraceEvent::HardFault { thread: t, offset });
    }

    /// Called when the keeper replies to (or disconnects) an exception IPC:
    /// finalize the Table 3 remedy measurement and wake the faulter.
    pub(crate) fn complete_fault(&mut self, conn: ConnId) {
        let Some(c) = self.conns.get(conn.0) else {
            return;
        };
        let crate::conn::ClientEnd::Kernel(km) = &c.client else {
            return;
        };
        let (t, raised_at, record) = (km.fault_thread, km.raised_at, km.record);
        let now = self.now();
        if let Some(rec) = self.stats.fault_records.get_mut(record) {
            if rec.remedy_cycles == 0 {
                rec.remedy_cycles = now.saturating_sub(raised_at);
            }
        }
        self.ktrace(TraceEvent::HardFaultDone {
            thread: t,
            remedy: now.saturating_sub(raised_at),
        });
        let still_waiting = matches!(
            self.threads.get(t.0).map(|x| x.state),
            Some(crate::thread::RunState::Blocked(WaitReason::PagerReply(c2))) if c2 == conn
        );
        if still_waiting {
            self.unblock(t);
        }
    }

    // ------------------------------------------------------------------
    // Kernel access to user memory (handler helpers). These resolve soft
    // faults inline and raise hard faults as exception IPC; handlers
    // propagate the resulting outcome with `?`.
    // ------------------------------------------------------------------

    /// Translate a user address for the current thread, resolving faults.
    pub(crate) fn user_translate(
        &mut self,
        t: ThreadId,
        addr: u32,
        write: bool,
    ) -> Result<(FrameId, u32), SysOutcome> {
        let sid = self
            .threads
            .get(t.0)
            .and_then(|x| x.space)
            .ok_or(SysOutcome::Kill("thread without space"))?;
        let fast = self.cfg.fast_mem;
        loop {
            let hit = match self.spaces.get_mut(sid.0) {
                Some(s) if fast => s.translate_cached(addr, write),
                Some(s) => s.translate(addr, write),
                None => None,
            };
            if let Some(hit) = hit {
                return Ok(hit);
            }
            self.handle_fault(t, sid, addr, write, FaultSide::Other, false, true)?;
        }
    }

    /// Read a u32 from the current thread's memory (may fault).
    pub(crate) fn read_user_u32(&mut self, t: ThreadId, addr: u32) -> Result<u32, SysOutcome> {
        let mut b = [0u8; 4];
        for (i, byte) in b.iter_mut().enumerate() {
            let (f, off) = self.user_translate(t, addr.wrapping_add(i as u32), false)?;
            *byte = self.phys.read_u8(f, off);
        }
        Ok(u32::from_le_bytes(b))
    }

    /// Write a u32 to the current thread's memory (may fault).
    pub(crate) fn write_user_u32(
        &mut self,
        t: ThreadId,
        addr: u32,
        val: u32,
    ) -> Result<(), SysOutcome> {
        for (i, byte) in val.to_le_bytes().iter().enumerate() {
            let (f, off) = self.user_translate(t, addr.wrapping_add(i as u32), true)?;
            self.phys.write_u8(f, off, *byte);
        }
        Ok(())
    }

    /// Resolve an object handle (a virtual address in the caller's space)
    /// to the object living at that physical location. Merely *naming* an
    /// object can therefore page-fault and restart — this is why every
    /// handle-taking entrypoint is at least "Short" in Table 1.
    pub(crate) fn lookup_handle(&mut self, t: ThreadId, vaddr: u32) -> Result<ObjId, SysOutcome> {
        let loc = self.user_translate(t, vaddr, false)?;
        self.objects
            .at_loc(loc)
            .ok_or(SysOutcome::Done(ErrorCode::InvalidHandle))
    }

    /// Like [`Kernel::lookup_handle`] but also checks the object type.
    pub(crate) fn lookup_typed(
        &mut self,
        t: ThreadId,
        vaddr: u32,
        ty: fluke_api::ObjType,
    ) -> Result<ObjId, SysOutcome> {
        let id = self.lookup_handle(t, vaddr)?;
        let actual = self
            .objects
            .get(id)
            .map(|o| o.ty())
            .ok_or(SysOutcome::Done(ErrorCode::InvalidHandle))?;
        if actual != ty {
            return Err(SysOutcome::Done(ErrorCode::WrongType));
        }
        Ok(id)
    }

    /// A handler-level `Done(code)` as an error, for use with `?`.
    pub(crate) fn fail(code: ErrorCode) -> SysOutcome {
        SysOutcome::Done(code)
    }

    /// Translate `addr` in an arbitrary space for the IPC pump, reporting
    /// which transfer side faulted. Soft faults are resolved inline (with
    /// the extra cross-space validation cost when the faulting space is not
    /// the current thread's). Hard and fatal faults are returned to the
    /// pump, which brings both transfer ends to clean points first.
    pub(crate) fn pump_translate(
        &mut self,
        current: ThreadId,
        space: SpaceId,
        addr: u32,
        write: bool,
        side: FaultSide,
    ) -> Result<(FrameId, u32), PumpFault> {
        let fast = self.cfg.fast_mem;
        loop {
            let hit = match self.spaces.get_mut(space.0) {
                Some(s) if fast => s.translate_cached(addr, write),
                Some(s) => s.translate(addr, write),
                None => None,
            };
            if let Some(hit) = hit {
                return Ok(hit);
            }
            match self.walk_hierarchy(space, addr, write) {
                Walk::Soft {
                    frame,
                    writable,
                    levels,
                } => {
                    // Deriving the PTE is remedy work, never rollback.
                    self.progress();
                    self.klock_section();
                    let cur_space = self.threads.get(current.0).and_then(|x| x.space);
                    let cross = cur_space != Some(space);
                    let cost = self.cost.soft_fault_resolve * levels as u64
                        + if cross {
                            self.cost.server_fault_extra
                        } else {
                            0
                        };
                    self.kprof.enter(crate::kprof::Phase::MemFill);
                    self.charge(cost);
                    self.kprof.exit();
                    if let Some(s) = self.spaces.get_mut(space.0) {
                        s.map_page(addr, frame, writable);
                    }
                    self.stats.soft_faults += 1;
                    self.stats.fault_records.push(FaultRecord {
                        side,
                        kind: FaultKind::Soft,
                        remedy_cycles: cost,
                        rollback_cycles: 0,
                        during_ipc: true,
                        at: self.now(),
                    });
                    self.ktrace(TraceEvent::SoftFault {
                        thread: current,
                        addr,
                        remedy: cost,
                    });
                    if cross {
                        // Conservative revalidation: the transfer restarts
                        // from the (updated) register continuations — the
                        // Table 3 "server-side soft fault" rollback.
                        return Err(PumpFault::SoftCross);
                    }
                    // Same-space soft fault: continue the copy inline
                    // (Table 3 client-side soft fault, rollback "none").
                }
                Walk::Hard {
                    region,
                    offset,
                    keeper,
                } => {
                    return Err(PumpFault::Hard {
                        region,
                        offset,
                        keeper,
                        write,
                        side,
                    });
                }
                Walk::Fatal => return Err(PumpFault::Fatal),
            }
        }
    }
}

/// Fault conditions the IPC pump must unwind to clean points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PumpFault {
    /// A soft fault in the non-current space was resolved, but the transfer
    /// restarts for revalidation.
    SoftCross,
    /// A hard fault: the pump decides which thread blocks on the pager.
    Hard {
        /// Region whose keeper must supply the page.
        region: ObjId,
        /// Page-aligned byte offset within the region.
        offset: u32,
        /// Keeper port.
        keeper: ObjId,
        /// Whether the faulting access was a write.
        write: bool,
        /// Which transfer side faulted.
        side: FaultSide,
    },
    /// Unresolvable: the faulting side's thread is destroyed.
    Fatal,
}

impl WaitReason {
    /// Wrap into the blocked run state (readability helper).
    pub(crate) fn into_blocked(self) -> crate::thread::RunState {
        crate::thread::RunState::Blocked(self)
    }
}

/// Adapter giving the CPU core checked access to a space's memory.
///
/// With `fast` set (the default, [`crate::Config::fast_mem`]), translations
/// go through the space's software TLB and the bulk `read_bytes` /
/// `write_bytes` operations consume whole page runs via
/// `PhysMem::read_slice` / `write_slice`. With `fast` clear, every access
/// is an uncached byte-at-a-time page-table lookup — the reference
/// implementation the fast path must be indistinguishable from.
pub struct SpaceMemAdapter<'a> {
    pub(crate) space: &'a mut Space,
    pub(crate) phys: &'a mut crate::phys::PhysMem,
    pub(crate) fast: bool,
}

impl SpaceMemAdapter<'_> {
    #[inline]
    fn translate(&mut self, addr: u32, write: bool) -> Option<(FrameId, u32)> {
        if self.fast {
            self.space.translate_cached(addr, write)
        } else {
            self.space.translate(addr, write)
        }
    }
}

impl fluke_arch::UserMem for SpaceMemAdapter<'_> {
    fn read_u8(&mut self, addr: u32) -> Result<u8, fluke_arch::MemFault> {
        match self.translate(addr, false) {
            Some((f, off)) => Ok(self.phys.read_u8(f, off)),
            None => Err(fluke_arch::MemFault {
                addr,
                kind: fluke_arch::AccessKind::Read,
            }),
        }
    }

    fn write_u8(&mut self, addr: u32, val: u8) -> Result<(), fluke_arch::MemFault> {
        match self.translate(addr, true) {
            Some((f, off)) => {
                self.phys.write_u8(f, off, val);
                Ok(())
            }
            None => Err(fluke_arch::MemFault {
                addr,
                kind: fluke_arch::AccessKind::Write,
            }),
        }
    }

    fn read_u32(&mut self, addr: u32) -> Result<u32, fluke_arch::MemFault> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b).map_err(|e| e.fault)?;
        Ok(u32::from_le_bytes(b))
    }

    fn write_u32(&mut self, addr: u32, val: u32) -> Result<(), fluke_arch::MemFault> {
        // Bulk write keeps the byte-loop contract: bytes before the fault
        // are committed.
        self.write_bytes(addr, &val.to_le_bytes())
            .map_err(|e| e.fault)
    }

    fn read_bytes(&mut self, addr: u32, out: &mut [u8]) -> Result<(), fluke_arch::BulkFault> {
        if !self.fast {
            // Byte-at-a-time reference path.
            for (i, b) in out.iter_mut().enumerate() {
                match self.read_u8(addr.wrapping_add(i as u32)) {
                    Ok(v) => *b = v,
                    Err(fault) => {
                        return Err(fluke_arch::BulkFault {
                            done: i as u32,
                            fault,
                        })
                    }
                }
            }
            return Ok(());
        }
        // Translate once per page run, copy the run as a slice.
        let mut done = 0u32;
        while (done as usize) < out.len() {
            let a = addr.wrapping_add(done);
            let run = (PAGE_SIZE - a % PAGE_SIZE).min(out.len() as u32 - done);
            match self.translate(a, false) {
                Some((f, off)) => {
                    self.phys
                        .read_slice(f, off, &mut out[done as usize..(done + run) as usize]);
                    done += run;
                }
                None => {
                    return Err(fluke_arch::BulkFault {
                        done,
                        fault: fluke_arch::MemFault {
                            addr: a,
                            kind: fluke_arch::AccessKind::Read,
                        },
                    })
                }
            }
        }
        Ok(())
    }

    fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), fluke_arch::BulkFault> {
        if !self.fast {
            for (i, b) in data.iter().enumerate() {
                if let Err(fault) = self.write_u8(addr.wrapping_add(i as u32), *b) {
                    return Err(fluke_arch::BulkFault {
                        done: i as u32,
                        fault,
                    });
                }
            }
            return Ok(());
        }
        let mut done = 0u32;
        while (done as usize) < data.len() {
            let a = addr.wrapping_add(done);
            let run = (PAGE_SIZE - a % PAGE_SIZE).min(data.len() as u32 - done);
            match self.translate(a, true) {
                Some((f, off)) => {
                    self.phys
                        .write_slice(f, off, &data[done as usize..(done + run) as usize]);
                    done += run;
                }
                None => {
                    return Err(fluke_arch::BulkFault {
                        done,
                        fault: fluke_arch::MemFault {
                            addr: a,
                            kind: fluke_arch::AccessKind::Write,
                        },
                    })
                }
            }
        }
        Ok(())
    }
}

/// Compile-time check that `SysResult` composes with `?` as intended.
#[allow(dead_code)]
fn _sysresult_composes(k: &mut Kernel, t: ThreadId) -> SysResult {
    let h = k.read_user_u32(t, 0)?;
    let _ = k.lookup_handle(t, h)?;
    Err(Kernel::fail(ErrorCode::InvalidArg))
}

const _: () = {
    // PAGE_SIZE is the unit the pump chunks at; keep the assumption visible.
    assert!(PAGE_SIZE == 4096);
};

//! The deterministic run loop, trap handling, and system-call entry/exit.
//!
//! The execution-model difference lives here and only here: the interrupt
//! model pays a few extra cycles per kernel entry/exit to move saved state
//! between the per-CPU stack and the thread structure (§5.5), and saves the
//! kernel-register save/restore on every context switch (§5.3). Everything
//! downstream of dispatch is shared between the models.

use fluke_api::{ErrorCode, Sys, SysClass};
use fluke_arch::cost::Cycles;
use fluke_arch::{Reg, StepOutcome, Trap};

use crate::ids::ThreadId;
use crate::kprof::Phase;
use crate::kstat::FaultSide;
use crate::thread::{Body, NativeAction, RunState};
use crate::trace::TraceEvent;

use super::mem::SpaceMemAdapter;
use super::{Kernel, SysOutcome};

/// Longest stretch of user execution between loop iterations (bounds how
/// stale the event check can get when no timer is pending).
const MAX_USER_SLICE: Cycles = 2_000_000; // 10ms

/// Why [`Kernel::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every thread has halted (or was never started).
    AllHalted,
    /// The cycle limit was reached.
    TimeLimit,
    /// No thread can run and no timer can wake one, but blocked threads
    /// remain: a deadlock in the simulated system.
    Deadlock,
}

impl Kernel {
    /// Run until completion, deadlock, or `limit` cycles.
    ///
    /// `limit` is an *absolute* cycle deadline, and the loop's stop
    /// condition is a pure function of kernel state and that deadline — so
    /// re-issuing a recorded limit from any intermediate state inside the
    /// window lands on the same end state (what `krec` replay relies on).
    ///
    /// With `krec` armed, each call is logged as a [`crate::krec::RunWindow`]
    /// bracketed by start/end state digests; the recorder reads but never
    /// mutates simulated state, so armed and unarmed runs are bit-identical.
    pub fn run(&mut self, limit: Option<Cycles>) -> RunExit {
        if self.krec.is_none() {
            return self.run_inner(limit);
        }
        let Ok(start_digest) = self.state_digest() else {
            // Outside the snapshot contract (native-bodied thread): run
            // unrecorded rather than perturb or fail the run.
            return self.run_inner(limit);
        };
        let start_cycle = self.now();
        let exit = self.run_inner(limit);
        let end_cycle = self.now();
        let Ok(end_digest) = self.state_digest() else {
            return exit;
        };
        if let Some(kr) = self.krec.as_mut() {
            kr.windows.push(crate::krec::RunWindow {
                limit,
                start_cycle,
                end_cycle,
                start_digest,
                end_digest,
                exit,
            });
        }
        exit
    }

    /// The run loop proper.
    ///
    /// Multiprocessor scheduling is conservative discrete-event: the
    /// processor with the smallest clock always acts next, so all kernel
    /// actions occur in global simulated-time order. Idle processors park
    /// (drop out of selection) until a wake kicks them, which keeps runs
    /// deterministic for any CPU count.
    fn run_inner(&mut self, limit: Option<Cycles>) -> RunExit {
        loop {
            // Choose the acting processor: smallest clock among unparked.
            let Some(active) = self.pick_cpu() else {
                // Everyone is parked: hop idle time to the next timer
                // event, or conclude the run.
                match self.events.next_time() {
                    Some(te) => {
                        if let Some(l) = limit {
                            if te >= l {
                                return RunExit::TimeLimit;
                            }
                        }
                        self.kick_parked(te);
                        continue;
                    }
                    None => {
                        let blocked = self.threads.iter().any(|(_, t)| t.is_blocked());
                        return if blocked {
                            RunExit::Deadlock
                        } else {
                            RunExit::AllHalted
                        };
                    }
                }
            };
            self.active = active;
            if let Some(l) = limit {
                if self.cur_cpu().cpu.now >= l {
                    return RunExit::TimeLimit;
                }
            }
            self.service_due_events();
            // Timeslice check (lazy; no heap traffic per dispatch).
            if self.cur_cpu().current.is_some()
                && self.cur_cpu().cpu.now >= self.cur_cpu().slice_end
            {
                self.cur_cpu_mut().resched = true;
            }
            // User-mode preemption: between instructions, any pending
            // reschedule takes effect immediately (the kernel itself is
            // what adds latency beyond this point — paper §5.2).
            if self.cur_cpu().resched {
                if let Some(cur) = self.cur_cpu().current {
                    self.preempt_user(cur);
                } else {
                    self.cur_cpu_mut().resched = false;
                }
            }
            let Some(cur) = self.cur_cpu().current else {
                if let Some(next) = self.sched_next() {
                    if self.cfg.big_lock {
                        // Legacy oracle mode: even dispatch serializes on
                        // the big kernel lock.
                        self.big_lock();
                        self.dispatch(next);
                        self.big_unlock();
                    } else {
                        // Fine-grained mode: the run-queue lock was taken
                        // inside `sched_next`; dispatch itself touches
                        // only this CPU's slot and the chosen thread.
                        self.dispatch(next);
                    }
                    continue;
                }
                // Nothing to run here: park until someone kicks us.
                self.cur_cpu_mut().resched = false;
                self.cur_cpu_mut().parked = true;
                continue;
            };
            // Adversarial fault injection (`kfault`): every user-mode
            // instruction boundary is an injection site; the armed one
            // perturbs execution here.
            if self.kfault.is_some() && self.kfault_boundary(cur) {
                continue;
            }
            // Snapshot recorder (`krec`): the same boundary is a snapshot
            // site. Reads state, mutates nothing simulated.
            if self.krec.is_some() {
                self.krec_tick(cur);
            }
            self.execute_current(cur, limit);
        }
    }

    /// The unparked processor with the smallest clock (ties: lowest id).
    fn pick_cpu(&self) -> Option<usize> {
        self.cpus
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.parked)
            .min_by_key(|(i, c)| (c.cpu.now, *i))
            .map(|(i, _)| i)
    }

    /// Preempt the current thread at a user-mode instruction boundary.
    fn preempt_user(&mut self, cur: ThreadId) {
        // Only switch if someone of equal-or-higher priority is waiting;
        // otherwise just start a fresh timeslice.
        let cur_prio = self.threads.get(cur.0).map(|t| t.priority).unwrap_or(0);
        let top = self.sched_top_priority();
        self.cur_cpu_mut().resched = false;
        match top {
            Some(p) if p >= cur_prio => {
                if self.kspan.enabled {
                    let now = self.cur_cpu().cpu.now;
                    self.kspan.on_runnable(cur, now);
                }
                let th = self.threads.get_mut(cur.0).expect("current");
                th.state = RunState::Ready;
                self.sched_push(cur, cur_prio);
                self.cur_cpu_mut().current = None;
                self.stats.user_preemptions += 1;
                self.ktrace(TraceEvent::UserPreempt { thread: cur });
            }
            _ => {
                self.cur_cpu_mut().slice_end = self.cur_cpu_mut().cpu.now + self.cfg.timeslice;
            }
        }
    }

    /// Dispatch a ready thread onto the CPU, charging the model-dependent
    /// context-switch cost.
    pub(crate) fn dispatch(&mut self, t: ThreadId) {
        let interrupt = self.is_interrupt_model();
        let mut cost = self.cost.ctx_switch_cost(interrupt);
        let space = self.threads.get(t.0).and_then(|x| x.space);
        let space_switch = space.is_some() && space != self.cur_cpu_mut().last_space;
        if space_switch {
            cost += self.cost.addr_space_switch;
            self.stats.space_switches += 1;
        }
        self.stats.ctx_switches += 1;
        self.ktrace(TraceEvent::CtxSwitch {
            thread: t,
            space_switch,
        });
        if let Some(s) = space {
            self.cur_cpu_mut().last_space = Some(s);
        }
        let active = self.active;
        let th = self.threads.get_mut(t.0).expect("ready thread");
        th.state = RunState::Running(active);
        // Affinity follows execution: future wakes enqueue where the
        // thread last ran (its state is warm in that CPU's cache).
        th.home_cpu = active;
        self.cur_cpu_mut().current = Some(t);
        // Consume the reschedule that caused this dispatch *before*
        // charging the switch cost: a wake that fires during the switch
        // (serviced inside `charge`) must set a fresh pending reschedule,
        // not be wiped by it.
        self.cur_cpu_mut().resched = false;
        if self.kspan.enabled {
            // On-CPU starts here so the context-switch charge lands in the
            // dispatched request's on-CPU bucket, mirroring kprof.
            let now = self.cur_cpu().cpu.now;
            self.kspan.on_run(t, now);
        }
        self.kprof.enter(Phase::Sched);
        self.charge(cost);
        self.kprof.exit();
        self.cur_cpu_mut().slice_end = self.cur_cpu_mut().cpu.now + self.cfg.timeslice;
        // Consume a pending timer-wake mark: the elapsed span is one
        // event-raised → dispatch preemption-latency observation.
        let wake_pending = {
            let th = self.threads.get_mut(t.0).expect("ready thread");
            std::mem::take(&mut th.wake_pending)
        };
        if self.kprof.enabled && wake_pending > 0 {
            let lat = self.cur_cpu().cpu.now.saturating_sub(wake_pending);
            self.kprof.record_latency(lat);
        }
    }

    /// Run the current thread until its next trap or the next deadline.
    fn execute_current(&mut self, cur: ThreadId, limit: Option<Cycles>) {
        let is_native = matches!(
            self.threads.get(cur.0).map(|t| &t.body),
            Some(Body::Native(_))
        );
        if is_native {
            self.run_native(cur);
            return;
        }
        let now = self.cur_cpu().cpu.now;
        let mut deadline = now + MAX_USER_SLICE;
        if let Some(te) = self.events.next_time() {
            deadline = deadline.min(te.max(now + 1));
        }
        deadline = deadline.min(self.cur_cpu().slice_end.max(now + 1));
        // Multiprocessor causality: do not run far past the next-slowest
        // processor, so cross-CPU wakes and preemptions are observed with
        // bounded skew.
        if self.cfg.num_cpus > 1 {
            const SYNC_QUANTUM: Cycles = 2_000;
            let second = self
                .cpus
                .iter()
                .enumerate()
                .filter(|(i, c)| *i != self.active && !c.parked)
                .map(|(_, c)| c.cpu.now)
                .min();
            if let Some(sec) = second {
                deadline = deadline.min(sec.max(now) + SYNC_QUANTUM);
            }
        }
        if let Some(l) = limit {
            deadline = deadline.min(l.max(now + 1));
        }
        let (text, sid) = {
            let th = self.threads.get(cur.0).expect("current");
            match (&th.text, th.space) {
                (Some(text), Some(sid)) => (text.clone(), sid),
                _ => {
                    self.kill_thread(cur, "user thread without text/space");
                    return;
                }
            }
        };
        let trap = {
            let th = self.threads.get_mut(cur.0).expect("current");
            let Some(space) = self.spaces.get_mut(sid.0) else {
                self.kill_thread(cur, "space destroyed");
                return;
            };
            let mut mem = SpaceMemAdapter {
                space,
                phys: &mut self.phys,
                fast: self.cfg.fast_mem,
            };
            let active = self.active;
            let before = self.cpus[active].cpu.now;
            let out =
                self.cpus[active]
                    .cpu
                    .run_user(&mut th.regs, &text, &mut mem, &self.cost, deadline);
            let used = self.cpus[active].cpu.now - before;
            th.user_cycles += used;
            self.stats.user_cycles += used;
            self.kprof.attr_user(used);
            self.kspan.on_user(cur, used);
            match out {
                StepOutcome::Trapped(t) => Some(t),
                StepOutcome::DeadlineReached => None,
            }
        };
        if let Some(trap) = trap {
            // Kernel entry locks the object class the handler will touch
            // (fine-grained mode) or the whole kernel (`cfg.big_lock`).
            // The key is classified once at entry; a chained entrypoint
            // stays under the original key (chains stay within a family —
            // e.g. `send_over_receive`'s stages share the connection).
            let key = self.trap_lock_key(cur, trap);
            self.kernel_lock(key);
            self.handle_trap(cur, trap);
            self.kernel_unlock(key);
        }
    }

    /// Run a native (kernel-internal) thread body once.
    fn run_native(&mut self, cur: ThreadId) {
        let now = self.cur_cpu_mut().cpu.now;
        let th = self.threads.get_mut(cur.0).expect("current");
        let woken_at = th.woken_at;
        th.woken_at = 0;
        let mut body = std::mem::replace(&mut th.body, Body::User);
        let action = match &mut body {
            Body::Native(b) => b.on_dispatch(woken_at, now, &mut self.stats),
            Body::User => unreachable!("native thread lost its body"),
        };
        let th = self.threads.get_mut(cur.0).expect("current");
        th.body = body;
        match action {
            NativeAction::BlockUntilWoken { work } => {
                self.charge(work);
                let th = self.threads.get_mut(cur.0).expect("current");
                th.state = RunState::Blocked(crate::thread::WaitReason::Sleep);
                self.cur_cpu_mut().current = None;
            }
            NativeAction::Halt { work } => {
                self.charge(work);
                self.halt_thread(cur);
            }
        }
    }

    /// Handle a trap from user mode.
    fn handle_trap(&mut self, cur: ThreadId, trap: Trap) {
        match trap {
            Trap::Syscall => self.syscall_entry(cur),
            Trap::PageFault(f) => {
                let sid = self.threads.get(cur.0).and_then(|t| t.space);
                let Some(sid) = sid else {
                    self.kill_thread(cur, "fault without space");
                    return;
                };
                let write = f.kind == fluke_arch::AccessKind::Write;
                match self.handle_fault(cur, sid, f.addr, write, FaultSide::Other, false, false) {
                    Ok(()) => {
                        // Soft fault resolved: eip still points at the
                        // faulting instruction; it simply re-executes.
                    }
                    Err(SysOutcome::Block) => {
                        // Hard fault: thread now blocked on the pager; it
                        // will retry the instruction when woken.
                    }
                    Err(_) => {
                        // Any outcome other than a resolved fault or a
                        // pager block is fatal to the thread.
                        self.kill_thread(cur, "fatal page fault");
                    }
                }
            }
            Trap::Halt => self.halt_thread(cur),
            Trap::Illegal => self.kill_thread(cur, "illegal instruction"),
        }
    }

    /// The system-call entry/exit path.
    pub(crate) fn syscall_entry(&mut self, cur: ThreadId) {
        let interrupt = self.is_interrupt_model();
        // Process-model in-kernel preemption retained the kernel stack:
        // the re-entry preamble is not re-executed (charges suppressed
        // until the handler reaches new work).
        let retained = {
            let th = self.threads.get_mut(cur.0).expect("current");
            let r = th.kstack_retained;
            th.kstack_retained = false;
            r
        };
        let restarting = self.threads.get(cur.0).and_then(|t| t.inflight).is_some();
        self.flowcheck_entry(cur, restarting);
        if retained {
            self.dispatch_suppress = true;
        }
        if restarting {
            self.stats.restarts += 1;
            self.rollback_active = true;
            self.dispatch_rollback = self.threads.get(cur.0).and_then(|t| t.open_fault);
        }
        if self.kspan.enabled {
            // A restarted entrypoint continues the open request; `on_enter`
            // only opens a span when none is active for the thread.
            let now = self.cur_cpu().cpu.now;
            let sys = self.threads.get(cur.0).expect("current").regs.get(Reg::Eax);
            let class = Sys::from_u32(sys).map(|s| s.name()).unwrap_or("invalid");
            self.kspan.on_enter(cur, class, now);
        }
        if self.trace.enabled {
            let sys = self.threads.get(cur.0).expect("current").regs.get(Reg::Eax);
            let class = Sys::from_u32(sys).map(|s| s.class());
            self.ktrace(if restarting {
                TraceEvent::SyscallRestart {
                    thread: cur,
                    sys,
                    class,
                }
            } else {
                TraceEvent::SyscallEnter {
                    thread: cur,
                    sys,
                    class,
                }
            });
        }
        self.kprof.enter(Phase::Entry);
        self.charge(self.cost.entry_cost(interrupt));
        self.kprof.exit();
        let mut chained = false;
        loop {
            let eax = self.threads.get(cur.0).expect("current").regs.get(Reg::Eax);
            let Some(sys) = Sys::from_u32(eax) else {
                self.finish_syscall(cur, ErrorCode::InvalidEntrypoint, interrupt);
                break;
            };
            // Adversarial fault injection (`kfault`): a transient
            // resource-exhaustion failure abandons this dispatch attempt;
            // the registers still hold the complete continuation, so the
            // retry is a plain re-decode.
            if self.kfault.is_some() && self.kfault_transient(cur) {
                continue;
            }
            self.stats.syscalls += 1;
            self.stats.per_sys.bump(sys);
            // A pending thread_interrupt breaks the thread out of any
            // sleeping entrypoint with a visible Interrupted result; the
            // register continuation stays valid for re-issue.
            let class = sys.class();
            if matches!(class, SysClass::Long | SysClass::MultiStage) && !chained {
                let th = self.threads.get_mut(cur.0).expect("current");
                if th.interrupted {
                    th.interrupted = false;
                    self.finish_syscall(cur, ErrorCode::Interrupted, interrupt);
                    break;
                }
            }
            let out = {
                // Every dispatch-loop iteration is its own audited unit:
                // the entry snapshot is (re-)taken here, so a chained
                // entrypoint starts from its own committed registers.
                let mut cx = super::SysCtx { t: cur, sys };
                self.audit_begin(cur, sys);
                self.kprof.enter(Phase::Dispatch);
                let r = self.dispatch_sys(&mut cx);
                self.kprof.exit();
                self.audit_end();
                r.unwrap_or_else(|o| o)
            };
            match out {
                SysOutcome::Done(code) => {
                    self.progress();
                    self.finish_syscall(cur, code, interrupt);
                    break;
                }
                SysOutcome::Chain => {
                    // Registers were rewritten to the next entrypoint
                    // (paper Figure 4's `set_pc`): dispatch it immediately.
                    let th = self.threads.get_mut(cur.0).expect("current");
                    th.inflight = Sys::from_u32(th.regs.get(Reg::Eax));
                    chained = true;
                    continue;
                }
                SysOutcome::Block | SysOutcome::Preempted => {
                    // The handler brought the registers to a clean restart
                    // point and took the thread off the CPU.
                    break;
                }
                SysOutcome::Kill(r) => {
                    self.kill_thread(cur, r);
                    break;
                }
            }
        }
        self.progress();
        self.rollback_active = false;
    }

    /// Complete the current thread's system call: result code to `eax`,
    /// advance past the trap, charge the exit path, and deliver any latched
    /// preemption (the NP configurations deliver timer interrupts taken in
    /// kernel mode here, at kernel exit).
    fn finish_syscall(&mut self, cur: ThreadId, code: ErrorCode, interrupt_model: bool) {
        // The entrypoint (and thus its class) is still in `eax` here; the
        // result code overwrites it below.
        self.flowcheck_exit(cur, code);
        let class = {
            let th = self.threads.get_mut(cur.0).expect("current");
            let class = Sys::from_u32(th.regs.get(Reg::Eax)).map(|s| s.class());
            th.regs.set(Reg::Eax, code as u32);
            th.regs.eip += 1;
            th.inflight = None;
            th.open_fault = None;
            class
        };
        self.ktrace(TraceEvent::SyscallExit {
            thread: cur,
            code: code as u32,
            class,
        });
        self.progress();
        self.kprof.enter(Phase::Exit);
        self.charge(self.cost.exit_cost(interrupt_model));
        self.kprof.exit();
        if self.kspan.enabled {
            // The request ends after the exit-path charge so those cycles
            // are attributed to it (matching kprof's phase accounting).
            let now = self.cur_cpu().cpu.now;
            self.kspan.on_close(cur, now);
        }
        // Latched reschedules take effect on the way out; the main loop
        // performs the actual switch at the next iteration.
    }
}

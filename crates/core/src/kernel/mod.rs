//! The Fluke kernel proper.
//!
//! One kernel source serves every Table 4 configuration: the execution
//! model and preemption style are consulted only in the entry/exit,
//! context-switch, and preemption-point code — the reproduction of the
//! paper's claim that the two models differ by ~200 instructions of
//! entry/exit code plus ~50 lines of context-switch code.
//!
//! Submodules:
//!
//! * [`mod@self`] — the kernel structure, boot/loader interface, scheduler
//!   primitives, and thread lifecycle;
//! * `mem` — address translation, the mapping-hierarchy walk, soft/hard
//!   fault resolution, and kernel access to user memory;
//! * `run` — the deterministic run loop, trap handling, and the system
//!   call entry/exit paths;
//! * `dispatch` — all non-IPC system call handlers;
//! * `ipc` — connections, the data-transfer pump with its preemption
//!   points, and the IPC entrypoints.

mod dispatch;
mod ipc;
pub(crate) mod mem;
mod run;
mod snapshot;
pub use snapshot::MemRun;
mod submit;
mod sysctx;

pub use sysctx::block_audit_hits;
pub(crate) use sysctx::SysCtx;

use std::collections::BTreeMap;
use std::sync::Arc;

use fluke_api::state::ThreadStateFrame;
use fluke_api::{ErrorCode, Family, Sys};
use fluke_arch::cost::{CostModel, Cycles};
use fluke_arch::{Cpu, Program, ProgramId, Trap, UserRegs};

use crate::config::{Config, ConfigError, ExecModel};
use crate::conn::Connection;
use crate::events::{EventKind, EventQueue};
use crate::ids::{Arena, SpaceId, ThreadId};
use crate::kfault::Kfault;
use crate::kprof::Kprof;
use crate::kspan::Kspan;
use crate::kstat::Stats;
use crate::object::ObjectTable;
use crate::phys::PhysMem;
use crate::sched::{PerCpuQueues, ReadyQueue};
use crate::space::Space;
use crate::thread::{NativeBody, RunState, Thread, WaitReason};
use crate::trace::{TraceEvent, Tracer};

pub use mem::SpaceMemAdapter;
pub use run::RunExit;

/// A debugger-interface memory access hit an unmapped, non-derivable
/// address ([`Kernel::try_read_mem`] / [`Kernel::try_write_mem`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessError {
    /// The first offending virtual address.
    pub addr: u32,
    /// True for a write access, false for a read.
    pub write: bool,
}

impl std::fmt::Display for MemAccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}_mem: {:#x} unmapped",
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for MemAccessError {}

/// Outcome of one system-call handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SysOutcome {
    /// Completed: write the code to `eax`, advance `eip`.
    Done(ErrorCode),
    /// The handler rewrote the registers to a different entrypoint
    /// (`eax` updated); dispatch it immediately without returning to user
    /// mode (e.g. the send stage of `send_over_receive` finishing).
    Chain,
    /// The thread blocked; its registers were first brought to a clean
    /// restart point. The handler already enqueued it and cleared the CPU.
    Block,
    /// A preemption point was taken; the thread is ready (not blocked),
    /// registers at a clean restart point.
    Preempted,
    /// Fatal: destroy the thread.
    Kill(&'static str),
}

/// Shorthand for handler bodies: `?` propagates faults/blocks as outcomes.
pub(crate) type SysResult = Result<SysOutcome, SysOutcome>;

/// One fine-grained kernel lock: an object class plus, for per-object
/// classes, the object's identity. Two CPUs contend only when they hold
/// the *same* key at overlapping simulated times — the whole point of
/// shattering the big lock.
///
/// Lock state is a per-key "busy until" timestamp in [`Kernel`]'s lock
/// table, the same mechanism as the retired big lock: host-side, every
/// critical section executes atomically, and CPUs act in global
/// simulated-time order, so a free-at stamp per key is an exact model of
/// a spinlock per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum LockKey {
    /// The scheduler core: thread lifecycle, priorities, donation.
    Sched,
    /// One CPU's ready queue (fine-grained scheduling + work stealing).
    RunQueue(usize),
    /// One space's handle table (object lookup, creation, destruction).
    Handles(u32),
    /// One space's mapping/page-table state.
    Space(u32),
    /// One IPC connection (protects both ends and the transfer pump).
    Conn(u32),
}

impl LockKey {
    /// Object-class label for `kspan` contention accounting
    /// (`kernel.contention.<object>.*`). Run-queue waits are excluded —
    /// they have their own first-class counters
    /// (`kernel.contention.runq.*`).
    fn class(self) -> &'static str {
        match self {
            LockKey::Sched => "sched",
            LockKey::RunQueue(_) => "runq",
            LockKey::Handles(_) => "handles",
            LockKey::Space(_) => "space",
            LockKey::Conn(_) => "ipc",
        }
    }
}

/// One simulated processor.
#[derive(Debug)]
pub(crate) struct CpuSlot {
    /// Architectural CPU state (the clock).
    pub cpu: Cpu,
    /// Currently running thread.
    pub current: Option<ThreadId>,
    /// A reschedule is pending (latched while in the kernel under NP).
    pub resched: bool,
    /// End of the current timeslice.
    pub slice_end: Cycles,
    /// Space whose page tables are loaded (for address-space switch cost).
    pub last_space: Option<SpaceId>,
    /// Parked: idle with nothing to run; excluded from scheduling until a
    /// wake kicks it (event-driven idling keeps the interleaving
    /// deterministic).
    pub parked: bool,
}

/// The Fluke kernel: all simulated machine and kernel state for one run.
pub struct Kernel {
    /// Active configuration (Table 4 row).
    pub cfg: Config,
    /// Cycle cost model.
    pub cost: CostModel,
    /// The simulated processors (`cfg.num_cpus` of them).
    pub(crate) cpus: Vec<CpuSlot>,
    /// Index of the processor currently acting (always the one with the
    /// smallest clock among unparked CPUs — actions occur in global time
    /// order).
    pub(crate) active: usize,
    /// Big kernel lock: the simulated time until which kernel code on some
    /// processor keeps the kernel busy. Only consulted under the legacy
    /// `cfg.big_lock` oracle mode; the default fine-grained kernel uses
    /// the per-key `locks` table instead.
    pub(crate) kernel_free_at: Cycles,
    /// Fine-grained lock table: per-[`LockKey`] "busy until" timestamps.
    /// Absent keys are free. Only populated when `num_cpus > 1` and
    /// `cfg.big_lock` is off.
    pub(crate) locks: BTreeMap<LockKey, Cycles>,
    pub(crate) threads: Arena<Thread>,
    pub(crate) spaces: Arena<Space>,
    pub(crate) objects: ObjectTable,
    pub(crate) conns: Arena<Connection>,
    pub(crate) programs: Vec<Arc<Program>>,
    pub(crate) phys: PhysMem,
    /// Legacy global ready queue (used only under `cfg.big_lock`).
    pub(crate) ready: ReadyQueue,
    /// Per-CPU ready queues (the default fine-grained scheduler).
    pub(crate) runqs: PerCpuQueues,
    pub(crate) events: EventQueue,
    /// Run statistics (every table is derived from these).
    pub stats: Stats,
    /// The `ktrace` flight recorder (disabled and empty unless
    /// `cfg.trace.enabled`).
    pub trace: Tracer,
    /// The `kprof` cycle-attribution profiler (inert unless `cfg.kprof`).
    pub kprof: Kprof,
    /// The `kspan` causal request-tracing layer (inert unless
    /// `cfg.kspan`).
    pub kspan: Kspan,
    /// The `kfault` adversarial fault-injection engine (armed by
    /// `cfg.kfault`; `None` — and zero-cost — otherwise).
    pub(crate) kfault: Option<Kfault>,
    /// Fault record receiving rollback attribution this dispatch.
    pub(crate) dispatch_rollback: Option<usize>,
    /// True while re-executing a restarted syscall's preamble.
    pub(crate) rollback_active: bool,
    /// True while charges are suppressed because the process model retained
    /// the thread's kernel stack across an in-kernel preemption.
    pub(crate) dispatch_suppress: bool,
    /// Committed-register snapshot for the dispatch in flight (the
    /// atomicity auditor's state; `None` outside a dispatch).
    pub(crate) audit: Option<sysctx::AuditState>,
    /// The `krec` snapshot recorder (armed by `cfg.krec`; `None` — and
    /// zero-cost — otherwise). Host-side state, never part of a snapshot.
    pub(crate) krec: Option<crate::krec::Krec>,
    /// The `flowcheck` syscall-flow integrity checker (enabled by
    /// `cfg.flowcheck`; inert — one branch per completion — otherwise).
    /// Host-side state, never part of a snapshot.
    pub flowcheck: crate::flowcheck::Flowcheck,
}

impl Kernel {
    /// Boot a kernel with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (e.g. interrupt model with
    /// full preemption) — a build error in the original system.
    pub fn new(cfg: Config) -> Self {
        Self::try_new(cfg).expect("invalid kernel configuration")
    }

    /// Boot a kernel, reporting an invalid configuration as a structured
    /// [`ConfigError`] instead of panicking.
    pub fn try_new(cfg: Config) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let trace = Tracer::new(cfg.trace.enabled, cfg.trace.ring_capacity, cfg.num_cpus);
        let cfg_kprof = cfg.kprof;
        let cfg_kspan = cfg.kspan;
        let cfg_kfault = cfg.kfault;
        let cfg_krec = cfg.krec;
        let cfg_flowcheck = cfg.flowcheck;
        let timeslice = cfg.timeslice;
        let cpus = (0..cfg.num_cpus)
            .map(|id| CpuSlot {
                cpu: Cpu::new(id),
                current: None,
                resched: false,
                slice_end: timeslice,
                last_space: None,
                parked: false,
            })
            .collect();
        let num_cpus = cfg.num_cpus;
        Ok(Kernel {
            cfg,
            cost: CostModel::pentium_pro_200(),
            cpus,
            active: 0,
            kernel_free_at: 0,
            locks: BTreeMap::new(),
            threads: Arena::new(),
            spaces: Arena::new(),
            objects: ObjectTable::new(),
            conns: Arena::new(),
            programs: Vec::new(),
            phys: PhysMem::new(),
            ready: ReadyQueue::new(),
            runqs: PerCpuQueues::new(num_cpus),
            events: EventQueue::new(),
            stats: Stats::default(),
            trace,
            kprof: {
                let mut kprof = Kprof::new(cfg_kprof);
                if cfg_kspan {
                    // kspan labels per-request charges by phase path even
                    // when full kprof attribution is off.
                    kprof.enable_path_tracking();
                }
                kprof
            },
            kspan: Kspan::new(cfg_kspan),
            kfault: cfg_kfault.map(Kfault::new),
            dispatch_rollback: None,
            rollback_active: false,
            dispatch_suppress: false,
            audit: None,
            krec: cfg_krec.map(crate::krec::Krec::new),
            flowcheck: crate::flowcheck::Flowcheck::new(cfg_flowcheck),
        })
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> Cycles {
        self.cur_cpu().cpu.now
    }

    /// Sum of every simulated CPU clock. When `kprof` is enabled from
    /// boot, its phase totals account for exactly this many cycles
    /// ([`Kprof::total`] — the sum-exactness invariant).
    pub fn total_cpu_cycles(&self) -> Cycles {
        self.cpus.iter().map(|c| c.cpu.now).sum()
    }

    /// Record a `ktrace` event on the acting CPU at the current simulated
    /// time. A single predictable branch when tracing is off.
    #[inline]
    pub(crate) fn ktrace(&mut self, event: TraceEvent) {
        if self.trace.enabled {
            let at = self.cpus[self.active].cpu.now;
            self.trace.emit(self.active, at, event);
        }
    }

    /// Log a value through the `sys_trace` debug channel: the legacy
    /// `Vec<u32>` view in [`Stats::trace_log`] plus a structured
    /// [`TraceEvent::Mark`].
    pub(crate) fn trace_mark(&mut self, thread: ThreadId, value: u32) {
        self.stats.trace_log.push(value);
        self.ktrace(TraceEvent::Mark { thread, value });
    }

    /// True if the kernel runs the interrupt execution model.
    #[inline]
    pub fn is_interrupt_model(&self) -> bool {
        self.cfg.model.is_interrupt()
    }

    /// The acting processor.
    #[inline]
    pub(crate) fn cur_cpu(&self) -> &CpuSlot {
        &self.cpus[self.active]
    }

    /// The acting processor, mutably.
    #[inline]
    pub(crate) fn cur_cpu_mut(&mut self) -> &mut CpuSlot {
        &mut self.cpus[self.active]
    }

    /// Unpark one idle processor so it can pick up newly runnable work,
    /// advancing its clock to the waking instant.
    pub(crate) fn kick_parked(&mut self, at: Cycles) {
        if let Some(c) = self.cpus.iter_mut().find(|c| c.parked) {
            let d = at.saturating_sub(c.cpu.now);
            self.stats.idle_cycles += d;
            self.kprof.attr_idle(d);
            c.cpu.now = c.cpu.now.max(at);
            c.parked = false;
        }
    }

    /// If `t` is running on some processor, clear that processor's current
    /// slot (used by destruction and state installation, which may target
    /// a thread on another CPU).
    pub(crate) fn clear_running_cpu(&mut self, t: ThreadId) {
        // Scan the slots directly: callers may already have overwritten
        // the thread's run state.
        for slot in &mut self.cpus {
            if slot.current == Some(t) {
                slot.current = None;
            }
        }
    }

    /// Acquire the big kernel lock (legacy `cfg.big_lock` oracle mode):
    /// spin until no other processor is executing kernel code.
    /// Uniprocessor kernels need no locking (Table 4), so this is free
    /// there.
    pub(crate) fn big_lock(&mut self) {
        if self.cfg.num_cpus > 1 {
            let now = self.cur_cpu().cpu.now;
            if self.kernel_free_at > now {
                let wait = self.kernel_free_at - now;
                self.stats.klock_cycles += wait;
                self.stats.klock_wait_cycles += wait;
                self.stats.kernel_cycles += wait;
                self.kprof.attr_lock(wait);
                if self.kspan.enabled {
                    let cur = self.cur_cpu().current;
                    self.kspan.on_lock_wait(cur, "klock", wait);
                }
                self.cur_cpu_mut().cpu.now += wait;
            }
        }
    }

    /// Release the big kernel lock.
    pub(crate) fn big_unlock(&mut self) {
        if self.cfg.num_cpus > 1 {
            let now = self.cur_cpu().cpu.now;
            self.kernel_free_at = self.kernel_free_at.max(now);
        }
    }

    /// Charge fixed lock-path overhead (acquire or release cost) on the
    /// acting CPU, attributed to the `Lock` phase. Mirrors the big lock's
    /// direct charging (no [`Kernel::charge`] — lock costs must not take
    /// the full-preemption surcharge or fire events mid-acquire).
    fn lock_overhead(&mut self, c: Cycles) {
        self.stats.klock_cycles += c;
        self.stats.kernel_cycles += c;
        self.kprof.attr_lock(c);
        self.cur_cpu_mut().cpu.now += c;
    }

    /// Acquire one fine-grained lock: charge the uncontended acquire cost
    /// and, if another CPU holds the same key, wait until it is released.
    /// Free on uniprocessors, exactly like the big lock.
    pub(crate) fn fine_lock(&mut self, key: LockKey) {
        if self.cfg.num_cpus <= 1 {
            return;
        }
        self.lock_overhead(self.cost.mp_lock_acquire);
        let now = self.cur_cpu().cpu.now;
        let free_at = self.locks.get(&key).copied().unwrap_or(0);
        if free_at > now {
            let wait = free_at - now;
            self.stats.klock_cycles += wait;
            self.stats.klock_wait_cycles += wait;
            self.stats.kernel_cycles += wait;
            self.kprof.attr_lock(wait);
            if let LockKey::RunQueue(_) = key {
                self.stats.runq_wait_cycles += wait;
                self.stats.runq_waits += 1;
            } else if self.kspan.enabled {
                let cur = self.cur_cpu().current;
                self.kspan.on_lock_wait(cur, key.class(), wait);
            }
            self.cur_cpu_mut().cpu.now += wait;
        }
    }

    /// Release a fine-grained lock: charge the release cost and stamp the
    /// key busy until now — the simulated-time image of the critical
    /// section that just executed atomically host-side.
    pub(crate) fn fine_unlock(&mut self, key: LockKey) {
        if self.cfg.num_cpus <= 1 {
            return;
        }
        self.lock_overhead(self.cost.mp_lock_release);
        let now = self.cur_cpu().cpu.now;
        let e = self.locks.entry(key).or_insert(0);
        *e = (*e).max(now);
    }

    /// Kernel-entry lock: the big lock under `cfg.big_lock`, else the
    /// fine-grained lock for the object class the entry touches.
    pub(crate) fn kernel_lock(&mut self, key: LockKey) {
        if self.cfg.big_lock {
            self.big_lock();
        } else {
            self.fine_lock(key);
        }
    }

    /// Release the kernel-entry lock taken by [`Kernel::kernel_lock`].
    pub(crate) fn kernel_unlock(&mut self, key: LockKey) {
        if self.cfg.big_lock {
            self.big_unlock();
        } else {
            self.fine_unlock(key);
        }
    }

    /// Classify a trap by the object class its handler will mutate —
    /// the lock a fine-grained kernel takes at entry. IPC entrypoints of
    /// a connected thread lock the connection (so only the two endpoint
    /// CPUs ever contend); memory entrypoints and page faults lock the
    /// faulting space; thread/scheduler entrypoints lock the scheduler;
    /// everything else locks the caller's handle table.
    pub(crate) fn trap_lock_key(&self, t: ThreadId, trap: Trap) -> LockKey {
        let Some(th) = self.threads.get(t.0) else {
            return LockKey::Sched;
        };
        let space = th.space.map(|s| s.0).unwrap_or(0);
        match trap {
            Trap::Syscall => match Sys::from_u32(th.regs.get(fluke_arch::Reg::Eax)) {
                Some(sys) => match sys.family() {
                    Family::Ipc => match th.ipc.conn {
                        Some(c) => LockKey::Conn(c.0),
                        None => LockKey::Handles(space),
                    },
                    Family::Region | Family::Mapping | Family::Space => LockKey::Space(space),
                    Family::Thread => LockKey::Sched,
                    Family::Mutex
                    | Family::Cond
                    | Family::Port
                    | Family::Pset
                    | Family::Ref
                    | Family::Misc => LockKey::Handles(space),
                },
                None => LockKey::Sched,
            },
            Trap::PageFault(_) => LockKey::Space(space),
            Trap::Halt | Trap::Illegal => LockKey::Sched,
        }
    }

    // ------------------------------------------------------------------
    // Scheduler routing: one global queue under `cfg.big_lock`, per-CPU
    // queues with deterministic work stealing otherwise.
    // ------------------------------------------------------------------

    /// True when the fine-grained per-CPU scheduler is active.
    #[inline]
    fn sched_fine(&self) -> bool {
        !self.cfg.big_lock
    }

    /// A thread's home queue, clamped to the configured CPU count.
    fn home_of(&self, t: ThreadId) -> usize {
        self.threads
            .get(t.0)
            .map(|th| th.home_cpu)
            .unwrap_or(0)
            .min(self.cfg.num_cpus - 1)
    }

    /// Enqueue a runnable thread on its home CPU's queue (fine mode,
    /// taking that queue's lock) or the global queue (big-lock mode).
    pub(crate) fn sched_push(&mut self, t: ThreadId, prio: u32) {
        if self.sched_fine() {
            let home = self.home_of(t);
            self.fine_lock(LockKey::RunQueue(home));
            self.runqs.push(home, t, prio);
            self.fine_unlock(LockKey::RunQueue(home));
            self.stats.sched_pushes += 1;
        } else {
            self.ready.push(t, prio);
        }
    }

    /// Loader/boot-time enqueue: same routing as [`Kernel::sched_push`]
    /// but charges no simulated time (the loader is outside time).
    fn sched_push_boot(&mut self, t: ThreadId, prio: u32) {
        if self.sched_fine() {
            let home = self.home_of(t);
            self.runqs.push(home, t, prio);
            self.stats.sched_pushes += 1;
        } else {
            self.ready.push(t, prio);
        }
    }

    /// Enqueue a preempted or yielded-to thread at the head of its level
    /// on the *acting* CPU's queue, re-homing it there — preempted work
    /// continues where it ran, and a directed yield hands the local CPU
    /// over.
    pub(crate) fn sched_push_front_here(&mut self, t: ThreadId, prio: u32) {
        if self.sched_fine() {
            let here = self.active;
            if let Some(th) = self.threads.get_mut(t.0) {
                th.home_cpu = here;
            }
            self.fine_lock(LockKey::RunQueue(here));
            self.runqs.push_front(here, t, prio);
            self.fine_unlock(LockKey::RunQueue(here));
            self.stats.sched_pushes += 1;
        } else {
            self.ready.push_front(t, prio);
        }
    }

    /// Remove a specific thread from whichever ready queue holds it
    /// (destruction, state installation, directed scheduling).
    pub(crate) fn sched_remove(&mut self, t: ThreadId) {
        if self.sched_fine() {
            if let Some(q) = self.runqs.find(t) {
                self.fine_lock(LockKey::RunQueue(q));
                self.runqs.remove(t);
                self.fine_unlock(LockKey::RunQueue(q));
            }
        } else {
            self.ready.remove(t);
        }
    }

    /// Dequeue the next thread for the acting CPU: its own queue first,
    /// then a deterministic steal sweep over the other queues in index
    /// order starting after the thief. A stolen thread is re-homed to the
    /// thief. Returns `None` when every queue is empty.
    pub(crate) fn sched_next(&mut self) -> Option<ThreadId> {
        if !self.sched_fine() {
            return self.ready.pop();
        }
        let here = self.active;
        if !self.runqs.cpu_empty(here) {
            self.fine_lock(LockKey::RunQueue(here));
            let t = self.runqs.pop(here);
            self.fine_unlock(LockKey::RunQueue(here));
            return t;
        }
        if self.cfg.num_cpus > 1 {
            self.stats.sched_steal_attempts += 1;
            if let Some(v) = self.runqs.victim(here) {
                self.fine_lock(LockKey::RunQueue(v));
                let t = self.runqs.pop(v);
                self.fine_unlock(LockKey::RunQueue(v));
                if let Some(t) = t {
                    self.stats.sched_steals += 1;
                    if let Some(th) = self.threads.get_mut(t.0) {
                        th.home_cpu = here;
                    }
                    return Some(t);
                }
            }
        }
        None
    }

    /// Highest priority the acting CPU could run next: its own queue in
    /// fine mode (stealable work elsewhere is picked up when the CPU goes
    /// idle, not by preempting the current thread), the global queue in
    /// big-lock mode.
    pub(crate) fn sched_top_priority(&self) -> Option<u32> {
        if self.sched_fine() {
            self.runqs.top_priority(self.active)
        } else {
            self.ready.top_priority()
        }
    }

    /// Cross-CPU TLB shootdown after a mapping revocation in `sid`:
    /// every *other* unparked CPU whose loaded page tables belong to the
    /// mutated space takes an invalidation IPI. The initiating CPU pays
    /// one send per remote; each remote pays the ack/invalidate cost on
    /// its own clock (attributed to kernel work so kprof's sum-exactness
    /// invariant holds). Parked CPUs are skipped: they reload page tables
    /// on dispatch anyway (lazy shootdown), and bumping a parked clock
    /// would perturb the event-driven idling protocol.
    pub(crate) fn tlb_shootdown(&mut self, sid: SpaceId) {
        if self.cfg.num_cpus <= 1 {
            return;
        }
        let here = self.active;
        let ack = self.cost.tlb_shootdown_ack;
        let mut remotes = 0u64;
        for (i, slot) in self.cpus.iter_mut().enumerate() {
            if i == here || slot.parked || slot.last_space != Some(sid) {
                continue;
            }
            // The acting CPU always holds the minimum clock among unparked
            // CPUs, so advancing a remote clock never reorders the past.
            slot.cpu.now += ack;
            remotes += 1;
        }
        if remotes == 0 {
            return;
        }
        let acks = ack * remotes;
        self.stats.kernel_cycles += acks;
        self.kprof.attr_kernel(acks, false, 0);
        self.stats.tlb_shootdown_ipis += remotes;
        let sends = self.cost.tlb_shootdown_ipi * remotes;
        self.stats.tlb_shootdown_cycles += sends + acks;
        self.charge(sends);
    }

    // ------------------------------------------------------------------
    // Loader / boot interface.
    //
    // These stand in for the boot loader and kernel debugger of the real
    // system: they set up initial spaces, memory, programs and threads, and
    // let tests inspect results. They charge no simulated time.
    // ------------------------------------------------------------------

    /// Register a program image, returning its stable id.
    pub fn register_program(&mut self, p: Program) -> ProgramId {
        self.programs.push(Arc::new(p));
        ProgramId((self.programs.len() - 1) as u64)
    }

    /// Look up a registered program.
    pub fn program(&self, id: ProgramId) -> Option<Arc<Program>> {
        self.programs.get(id.0 as usize).cloned()
    }

    /// Create an empty address space (boot-time).
    pub fn create_space(&mut self) -> SpaceId {
        let id = SpaceId(self.spaces.insert(Space::new(SpaceId(0))));
        self.spaces.get_mut(id.0).unwrap().id = id;
        id
    }

    /// Create a *kernel-alias* space: a space whose threads run in user
    /// mode but with the kernel's view of memory — the paper's technique
    /// for running process-model legacy code (drivers, file systems) under
    /// an interrupt-model kernel (§5.6). Threads in such a space may use
    /// the privileged `sys_stats` selectors ("exported facilities").
    pub fn create_kernel_alias_space(&mut self) -> SpaceId {
        let id = self.create_space();
        self.spaces.get_mut(id.0).unwrap().kernel_alias = true;
        id
    }

    /// Whether a space is a kernel alias (privileged pseudo-kernel space).
    pub fn is_kernel_alias(&self, s: SpaceId) -> bool {
        self.spaces
            .get(s.0)
            .map(|x| x.kernel_alias)
            .unwrap_or(false)
    }

    /// Allocate fresh zeroed frames and map them into `space` at
    /// `[base, base+len)` (boot-time physical memory grant).
    pub fn grant_pages(&mut self, space: SpaceId, base: u32, len: u32, writable: bool) {
        let start = base / fluke_api::abi::PAGE_SIZE;
        let pages = fluke_api::abi::pages_spanning(len.max(1));
        for p in 0..pages {
            let frame = self.phys.alloc();
            let s = self.spaces.get_mut(space.0).expect("space exists");
            s.insert_pte(start + p, crate::space::Pte { frame, writable });
        }
    }

    /// Map `[dst, dst+len)` in `dst_space` onto the frames already backing
    /// `[src, src+len)` in `src_space` (boot-time aliasing helper: the two
    /// ranges share physical memory afterwards).
    ///
    /// # Panics
    ///
    /// Panics if a source page is unmapped and not derivable.
    pub fn alias_pages(
        &mut self,
        dst_space: SpaceId,
        dst: u32,
        src_space: SpaceId,
        src: u32,
        len: u32,
        writable: bool,
    ) {
        let page = fluke_api::abi::PAGE_SIZE;
        let pages = fluke_api::abi::pages_spanning(len.max(1));
        for p in 0..pages {
            let (frame, _) = self
                .debug_translate(src_space, src + p * page, false)
                .expect("alias_pages: source page unmapped");
            let s = self.spaces.get_mut(dst_space.0).expect("space exists");
            s.insert_pte(dst / page + p, crate::space::Pte { frame, writable });
        }
    }

    /// Change the writable bit of the resident page covering `addr`
    /// (boot-time/test helper). Returns false if the page is not resident.
    pub fn protect_page(&mut self, space: SpaceId, addr: u32, writable: bool) -> bool {
        match self.spaces.get_mut(space.0) {
            Some(s) => s.set_vpn_writable(addr / fluke_api::abi::PAGE_SIZE, writable),
            None => false,
        }
    }

    /// Kernel-wide software-TLB counters: retired counters from destroyed
    /// spaces plus the live spaces' counters.
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        let mut total = self.stats.tlb_retired;
        for (_, s) in self.spaces.iter() {
            total.merge(s.tlb_stats());
        }
        total
    }

    /// Checked user-memory view of `space` (the same adapter the CPU core
    /// runs against), honouring the configured fast/reference path. Used by
    /// tests and benchmarks to exercise the memory layer directly.
    pub fn user_mem(&mut self, space: SpaceId) -> Option<SpaceMemAdapter<'_>> {
        let fast = self.cfg.fast_mem;
        let space = self.spaces.get_mut(space.0)?;
        Some(SpaceMemAdapter {
            space,
            phys: &mut self.phys,
            fast,
        })
    }

    /// Debugger translation: direct PTE, or a free hierarchy walk with
    /// PTE installation (the debugger sees what a resolved access would).
    fn debug_translate(&mut self, space: SpaceId, addr: u32, write: bool) -> Option<(u32, u32)> {
        if let Some(hit) = self
            .spaces
            .get(space.0)
            .and_then(|s| s.translate(addr, write))
        {
            return Some(hit);
        }
        match self.walk_hierarchy(space, addr, write) {
            crate::kernel::mem::Walk::Soft {
                frame, writable, ..
            } => {
                self.spaces
                    .get_mut(space.0)?
                    .map_page(addr, frame, writable);
                Some((frame, addr % fluke_api::abi::PAGE_SIZE))
            }
            _ => None,
        }
    }

    /// Debugger write to a space's memory (resolving derivable pages).
    /// Returns the offending address on the first unmapped byte; bytes
    /// before it are already written (the debugger has no transactions).
    pub fn try_write_mem(
        &mut self,
        space: SpaceId,
        addr: u32,
        bytes: &[u8],
    ) -> Result<(), MemAccessError> {
        for (i, b) in bytes.iter().enumerate() {
            let a = addr + i as u32;
            let (f, off) = self.debug_translate(space, a, true).ok_or(MemAccessError {
                addr: a,
                write: true,
            })?;
            self.phys.write_u8(f, off, *b);
        }
        Ok(())
    }

    /// Debugger write to a space's memory (resolving derivable pages).
    ///
    /// # Panics
    ///
    /// Panics if any byte is unmapped (a test/setup error). Fault-tolerant
    /// callers (sweep drivers, fuzzers) use [`Self::try_write_mem`].
    pub fn write_mem(&mut self, space: SpaceId, addr: u32, bytes: &[u8]) {
        self.try_write_mem(space, addr, bytes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Debugger read from a space's memory (resolving derivable pages).
    /// Returns the offending address on the first unmapped byte.
    pub fn try_read_mem(
        &mut self,
        space: SpaceId,
        addr: u32,
        len: u32,
    ) -> Result<Vec<u8>, MemAccessError> {
        (0..len)
            .map(|i| {
                let a = addr + i;
                let (f, off) = self
                    .debug_translate(space, a, false)
                    .ok_or(MemAccessError {
                        addr: a,
                        write: false,
                    })?;
                Ok(self.phys.read_u8(f, off))
            })
            .collect()
    }

    /// Debugger read from a space's memory (resolving derivable pages).
    ///
    /// # Panics
    ///
    /// Panics if any byte is unmapped (a test/setup error). Fault-tolerant
    /// callers (sweep drivers, fuzzers) use [`Self::try_read_mem`].
    pub fn read_mem(&mut self, space: SpaceId, addr: u32, len: u32) -> Vec<u8> {
        self.try_read_mem(space, addr, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Debugger read of a little-endian u32.
    pub fn read_mem_u32(&mut self, space: SpaceId, addr: u32) -> u32 {
        let b = self.read_mem(space, addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Create a user thread (boot-time), runnable immediately.
    pub fn spawn_thread(
        &mut self,
        space: SpaceId,
        program: ProgramId,
        regs: UserRegs,
        priority: u32,
    ) -> ThreadId {
        let id = ThreadId(self.threads.insert(Thread::new_user(ThreadId(0))));
        let text = self.program(program).expect("program registered");
        let t = self.threads.get_mut(id.0).unwrap();
        t.id = id;
        t.space = Some(space);
        t.program = Some(program);
        t.text = Some(text);
        t.regs = regs;
        t.priority = priority;
        // Round-robin home CPU over creation order: deterministic, and
        // spreads independent boot-time workloads across the machine.
        t.home_cpu = self.stats.threads_created as usize % self.cfg.num_cpus;
        t.state = RunState::Ready;
        if let Some(s) = self.spaces.get_mut(space.0) {
            s.threads.push(id);
        }
        self.sched_push_boot(id, priority);
        self.kick_parked(self.now());
        self.note_wake_priority(priority);
        self.stats.threads_created += 1;
        self.stats.kmem_delta(self.cfg.per_thread_kmem() as i64);
        id
    }

    /// Create a native (kernel-internal) thread, initially blocked until
    /// woken or driven by [`Kernel::start_periodic`].
    pub fn spawn_native(&mut self, priority: u32, body: Box<dyn NativeBody>) -> ThreadId {
        let id = ThreadId(
            self.threads
                .insert(Thread::new_native(ThreadId(0), priority, body)),
        );
        let t = self.threads.get_mut(id.0).unwrap();
        t.id = id;
        t.state = RunState::Blocked(WaitReason::Sleep);
        self.stats.threads_created += 1;
        self.stats.kmem_delta(self.cfg.per_thread_kmem() as i64);
        id
    }

    /// Arm a periodic wake for `thread` starting at `first`, every
    /// `interval` cycles (the Table 6 probe schedule).
    pub fn start_periodic(&mut self, thread: ThreadId, first: Cycles, interval: Cycles) {
        self.events
            .push(first, EventKind::Periodic { thread, interval });
    }

    /// Loader: create a kernel object of a simple type (Mutex, Cond, Port,
    /// Portset, Reference) at `vaddr` in `space`.
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses, occupied slots, or non-simple types —
    /// all boot-wiring errors.
    pub fn loader_create(
        &mut self,
        space: SpaceId,
        vaddr: u32,
        ty: fluke_api::ObjType,
    ) -> crate::ids::ObjId {
        let data = crate::object::ObjData::new_simple(ty)
            .unwrap_or_else(|| panic!("loader_create: {ty} is not a simple type"));
        self.loader_insert(space, vaddr, data)
    }

    /// Loader: create a Region exporting `[base, base+size)` of `owner`,
    /// optionally kept by `keeper` (whose fault messages will carry
    /// `vaddr` as the region token).
    pub fn loader_region(
        &mut self,
        owner: SpaceId,
        vaddr: u32,
        base: u32,
        size: u32,
        keeper: Option<crate::ids::ObjId>,
    ) -> crate::ids::ObjId {
        let data = crate::object::ObjData::Region {
            owner,
            base,
            size,
            keeper,
            keeper_token: 0,
            self_token: vaddr,
        };
        let oid = self.loader_insert(owner, vaddr, data);
        if let Some(s) = self.spaces.get_mut(owner.0) {
            s.regions.push(oid);
        }
        oid
    }

    /// Loader: like [`Kernel::loader_region`] but the region *object*
    /// lives at `vaddr` in `home` while exporting memory of `owner` —
    /// the shape a manager uses to export a child's memory.
    #[allow(clippy::too_many_arguments)]
    pub fn loader_region_at(
        &mut self,
        home: SpaceId,
        vaddr: u32,
        owner: SpaceId,
        base: u32,
        size: u32,
        keeper: Option<crate::ids::ObjId>,
    ) -> crate::ids::ObjId {
        let data = crate::object::ObjData::Region {
            owner,
            base,
            size,
            keeper,
            keeper_token: 0,
            self_token: vaddr,
        };
        let oid = self.loader_insert(home, vaddr, data);
        if let Some(s) = self.spaces.get_mut(owner.0) {
            s.regions.push(oid);
        }
        oid
    }

    /// Loader: create a Mapping importing `region` (at `offset`) into
    /// `dest` at `[base, base+size)`. The mapping *object* lives at
    /// `vaddr` in `home` (typically the manager's space — the destination
    /// space may have no memory of its own yet).
    #[allow(clippy::too_many_arguments)]
    pub fn loader_mapping(
        &mut self,
        home: SpaceId,
        vaddr: u32,
        dest: SpaceId,
        base: u32,
        size: u32,
        region: crate::ids::ObjId,
        offset: u32,
        writable: bool,
    ) -> crate::ids::ObjId {
        let data = crate::object::ObjData::Mapping {
            space: dest,
            base,
            size,
            region,
            offset,
            region_token: 0,
            writable,
        };
        let oid = self.loader_insert(home, vaddr, data);
        if let Some(s) = self.spaces.get_mut(dest.0) {
            s.add_mapping(oid, base, size);
        }
        oid
    }

    /// Loader: create a Reference at `vaddr` pointing at `target`.
    pub fn loader_ref(
        &mut self,
        space: SpaceId,
        vaddr: u32,
        target: crate::ids::ObjId,
    ) -> crate::ids::ObjId {
        let data = crate::object::ObjData::Ref {
            target: Some(target),
            target_token: 0,
        };
        self.loader_insert(space, vaddr, data)
    }

    /// Loader: create a Space object at `vaddr` wrapping `sid`.
    pub fn loader_space_object(
        &mut self,
        space: SpaceId,
        vaddr: u32,
        sid: SpaceId,
    ) -> crate::ids::ObjId {
        let oid = self.loader_insert(space, vaddr, crate::object::ObjData::Space(sid));
        if let Some(s) = self.spaces.get_mut(sid.0) {
            s.obj = Some(oid);
        }
        oid
    }

    /// Loader: create a Thread object at `vaddr` wrapping `tid`.
    pub fn loader_thread_object(
        &mut self,
        space: SpaceId,
        vaddr: u32,
        tid: ThreadId,
    ) -> crate::ids::ObjId {
        let oid = self.loader_insert(space, vaddr, crate::object::ObjData::Thread(tid));
        if let Some(th) = self.threads.get_mut(tid.0) {
            th.obj = Some(oid);
        }
        oid
    }

    /// Loader: put `port` into `pset`.
    pub fn loader_join_pset(&mut self, port: crate::ids::ObjId, pset: crate::ids::ObjId) {
        if let Some(crate::object::ObjData::Pset { members, .. }) =
            self.objects.get_mut(pset).map(|o| &mut o.data)
        {
            if !members.contains(&port) {
                members.push(port);
            }
        }
        if let Some(crate::object::ObjData::Port { pset: p, .. }) =
            self.objects.get_mut(port).map(|o| &mut o.data)
        {
            *p = Some(pset);
        }
    }

    /// Loader: look up the object at `vaddr` in `space` (debugger view).
    pub fn object_at(&self, space: SpaceId, vaddr: u32) -> Option<crate::ids::ObjId> {
        let loc = self.spaces.get(space.0)?.translate(vaddr, false)?;
        self.objects.at_loc(loc)
    }

    fn loader_insert(
        &mut self,
        space: SpaceId,
        vaddr: u32,
        data: crate::object::ObjData,
    ) -> crate::ids::ObjId {
        let loc = self
            .spaces
            .get(space.0)
            .and_then(|s| s.translate(vaddr, true))
            .unwrap_or_else(|| panic!("loader: {vaddr:#x} not mapped writable in {space}"));
        self.stats.objects_created += 1;
        self.objects
            .insert(loc, data)
            .unwrap_or_else(|| panic!("loader: object already at {vaddr:#x}"))
    }

    /// One-shot wake of `thread` at time `at`.
    pub fn wake_at(&mut self, thread: ThreadId, at: Cycles) {
        self.events.push(at, EventKind::Wake(thread));
    }

    /// A thread's registers (debugger view).
    pub fn thread_regs(&self, t: ThreadId) -> &UserRegs {
        &self.threads.get(t.0).expect("thread exists").regs
    }

    /// A thread's run state (debugger view).
    pub fn thread_run_state(&self, t: ThreadId) -> RunState {
        self.threads.get(t.0).expect("thread exists").state
    }

    /// A thread's space (debugger view).
    pub fn thread_space(&self, t: ThreadId) -> Option<SpaceId> {
        self.threads.get(t.0).and_then(|t| t.space)
    }

    /// Whether the thread has halted.
    pub fn thread_halted(&self, t: ThreadId) -> bool {
        self.threads.get(t.0).map(|t| t.is_halted()).unwrap_or(true)
    }

    /// A thread's exportable state frame (debugger view; the syscall path
    /// computes the identical frame).
    pub fn thread_frame(&self, t: ThreadId) -> ThreadStateFrame {
        let th = self.threads.get(t.0).expect("thread exists");
        ThreadStateFrame {
            regs: th.regs,
            program: th.program.unwrap_or(ProgramId(u64::MAX)),
            space_token: 0,
            priority: th.priority,
            runnable: if matches!(th.state, RunState::Stopped | RunState::Halted) {
                0
            } else {
                1
            },
            ipc_phase: th.ipc.conn.map(|_| 1).unwrap_or(0),
        }
    }

    // ------------------------------------------------------------------
    // Charging and preemption machinery.
    // ------------------------------------------------------------------

    /// Charge `c` cycles of kernel work, firing any timer events the charge
    /// passes over (their wakeups may set the pending-reschedule flag,
    /// which each preemption configuration consults at its own points).
    pub(crate) fn charge(&mut self, c: Cycles) {
        if self.dispatch_suppress {
            return;
        }
        let mut c = c;
        let mut lock_extra = 0;
        if self.cfg.preempt == crate::config::Preemption::Full {
            // Full preemption protects every kernel data structure with
            // blocking mutexes; the aggregate acquire/release/contention
            // cost is modeled as a 40% surcharge on kernel work,
            // calibrated against Table 5's FP column (flukeperf 1.20,
            // memtest 1.11, gcc 1.05).
            let extra = c * 2 / 5;
            self.stats.klock_cycles += extra;
            lock_extra = extra;
            c += extra;
        }
        self.cur_cpu_mut().cpu.now += c;
        self.stats.kernel_cycles += c;
        self.kprof
            .attr_kernel(c - lock_extra, self.rollback_active, lock_extra);
        if self.kspan.enabled {
            if let Some(t) = self.cur_cpu().current {
                let path = self.kprof.current_code(self.rollback_active);
                self.kspan.on_charge(t, path, c - lock_extra, lock_extra);
            }
        }
        if self.rollback_active {
            self.stats.rollback_cycles += c;
            if self.trace.enabled {
                self.trace.pending_rollback += c;
            }
            if let Some(rec) = self.dispatch_rollback {
                self.stats.fault_records[rec].rollback_cycles += c;
            }
        }
        self.service_due_events();
    }

    /// Mark the point in a handler where *new* work begins: preamble
    /// re-execution (rollback) accounting stops here.
    pub(crate) fn progress(&mut self) {
        if self.trace.enabled && self.trace.pending_rollback > 0 {
            let cycles = std::mem::take(&mut self.trace.pending_rollback);
            if let Some(t) = self.cur_cpu().current {
                self.ktrace(TraceEvent::Rollback { thread: t, cycles });
            }
        }
        self.rollback_active = false;
        self.dispatch_rollback = None;
        self.dispatch_suppress = false;
    }

    /// Acquire+release cost of a kernel lock section. Only the
    /// full-preemption configuration needs kernel locking (Table 4); the
    /// uniprocessor NP/PP kernels run sections with preemption implicitly
    /// excluded.
    pub(crate) fn klock_section(&mut self) {
        if self.cfg.preempt == crate::config::Preemption::Full {
            let c = self.cost.klock_acquire + self.cost.klock_release;
            self.stats.klock_cycles += c;
            self.kprof.lock_begin();
            self.charge(c);
            self.kprof.lock_end();
        }
    }

    /// Fire all events due at or before the current time.
    pub(crate) fn service_due_events(&mut self) {
        let now = self.cur_cpu_mut().cpu.now;
        while let Some(ev) = self.events.pop_due(now) {
            match ev.kind {
                EventKind::Wake(t) => {
                    self.wake_from_sleep(t, ev.at);
                }
                EventKind::Periodic { thread, interval } => {
                    let alive = self
                        .threads
                        .get(thread.0)
                        .map(|t| !t.is_halted())
                        .unwrap_or(false);
                    if !alive {
                        continue; // probe gone: do not re-arm
                    }
                    let blocked = self
                        .threads
                        .get(thread.0)
                        .map(|t| t.is_blocked())
                        .unwrap_or(false);
                    if blocked {
                        self.wake_from_sleep(thread, ev.at);
                    } else {
                        // Still running or queued from the previous period.
                        self.stats.probe_misses += 1;
                    }
                    self.events
                        .push(ev.at + interval, EventKind::Periodic { thread, interval });
                }
                EventKind::TimesliceEnd { .. } => {
                    // Timeslices are tracked lazily via `slice_end`; any
                    // queued events of this kind are stale.
                }
            }
        }
    }

    /// Wake a thread blocked in `Sleep` (or any wait, for timer wakes used
    /// by `thread_sleep`), recording the wake time for latency accounting.
    /// A timer wake *completes* a pending `thread_sleep` call (otherwise
    /// the atomic restart would simply re-enter the sleep).
    fn wake_from_sleep(&mut self, t: ThreadId, at: Cycles) {
        let Some(th) = self.threads.get_mut(t.0) else {
            return;
        };
        if !th.is_blocked() {
            return;
        }
        let sleeping_call = matches!(th.state, RunState::Blocked(WaitReason::Sleep))
            && th.inflight == Some(Sys::ThreadSleep);
        th.woken_at = at;
        // Timer wakes are the "event raised" edge of the kprof
        // preemption-latency probe; written unconditionally (and consumed
        // at dispatch) so the field never influences simulated behavior.
        th.wake_pending = at;
        if sleeping_call {
            self.complete_blocked(t, ErrorCode::Success);
            if let Some(th) = self.threads.get_mut(t.0) {
                th.woken_at = at;
                th.wake_pending = at;
            }
            return;
        }
        self.kspan.on_runnable(t, at);
        let th = self.threads.get_mut(t.0).expect("checked above");
        th.state = RunState::Ready;
        let prio = th.priority;
        self.sched_push(t, prio);
        self.note_wake_priority(prio);
    }

    /// Make an (already unlinked) blocked thread runnable.
    pub(crate) fn unblock(&mut self, t: ThreadId) {
        let now = self.cur_cpu_mut().cpu.now;
        let Some(th) = self.threads.get_mut(t.0) else {
            return;
        };
        debug_assert!(th.is_blocked(), "unblock of non-blocked {t}");
        self.kspan.on_runnable(t, now);
        th.state = RunState::Ready;
        th.woken_at = now;
        let prio = th.priority;
        self.sched_push(t, prio);
        self.ktrace(TraceEvent::Wake { thread: t });
        self.kick_parked(now);
        self.note_wake_priority(prio);
    }

    /// Set the pending-reschedule flag if a newly runnable thread outranks
    /// the current one.
    fn note_wake_priority(&mut self, prio: u32) {
        // Preempt the busy processor running the lowest-priority thread
        // (uniprocessor: the only one).
        let mut target: Option<(usize, u32)> = None;
        for (i, slot) in self.cpus.iter().enumerate() {
            match slot.current.and_then(|c| self.threads.get(c.0)) {
                Some(th) if target.map(|(_, p)| th.priority < p).unwrap_or(true) => {
                    target = Some((i, th.priority));
                }
                Some(_) => {}
                None if !slot.parked => {
                    // An unparked idle CPU will pick the thread up itself.
                    return;
                }
                None => {}
            }
        }
        if let Some((i, p)) = target {
            if prio > p {
                self.cpus[i].resched = true;
                if i != self.active {
                    // A cross-CPU reschedule request is an IPI on real
                    // hardware; counted, not separately costed (it rides
                    // the target's next preemption point).
                    self.stats.sched_ipis += 1;
                }
            }
        } else {
            self.cur_cpu_mut().resched = true;
        }
    }

    /// Block the current thread for `reason`; the caller has already
    /// brought its registers to a clean restart point and enqueued it on
    /// the appropriate wait queue.
    pub(crate) fn block_current(&mut self, t: ThreadId, reason: WaitReason) -> SysOutcome {
        if self.kspan.enabled {
            let now = self.cur_cpu().cpu.now;
            self.kspan.on_block(t, reason, now);
        }
        let th = self.threads.get_mut(t.0).expect("current thread");
        th.state = RunState::Blocked(reason);
        th.inflight = Sys::from_u32(th.regs.get(fluke_arch::Reg::Eax));
        // In both models a blocked thread's continuation is its registers;
        // the process model's retained stack never carries state across a
        // block (paper §5.1), so nothing else is saved.
        th.kstack_retained = false;
        self.cur_cpu_mut().current = None;
        self.ktrace(TraceEvent::Block { thread: t });
        self.audit_block_point(t, false);
        SysOutcome::Block
    }

    /// Take an in-kernel preemption at a clean point: the thread stays
    /// runnable. Under the process model its kernel stack is retained, so
    /// the next dispatch skips the re-entry preamble; under the interrupt
    /// model it restarts from its register continuation.
    pub(crate) fn preempt_current_in_kernel(&mut self, t: ThreadId) -> SysOutcome {
        if self.kspan.enabled {
            let now = self.cur_cpu().cpu.now;
            self.kspan.on_runnable(t, now);
        }
        let retain = self.cfg.model == ExecModel::Process;
        let th = self.threads.get_mut(t.0).expect("current thread");
        th.state = RunState::Ready;
        th.inflight = Sys::from_u32(th.regs.get(fluke_arch::Reg::Eax));
        th.kstack_retained = retain;
        let prio = th.priority;
        self.sched_push_front_here(t, prio);
        self.cur_cpu_mut().current = None;
        self.cur_cpu_mut().resched = false;
        self.stats.kernel_preemptions += 1;
        self.ktrace(TraceEvent::KernelPreempt { thread: t });
        self.audit_block_point(t, true);
        SysOutcome::Preempted
    }

    /// Complete a *blocked* thread's system call in place: write the result
    /// code, advance past the trap instruction, and wake it. This is the
    /// user-visible form of "continuation recognition" (paper §2.2): the
    /// kernel finishes the suspended computation by mutating its explicit
    /// state without ever switching to it.
    pub(crate) fn complete_blocked(&mut self, t: ThreadId, code: ErrorCode) {
        if self.kspan.enabled {
            // Close the span before the wake below: the request ends
            // here, not at the thread's next dispatch.
            let now = self.cur_cpu().cpu.now;
            self.kspan.on_close(t, now);
        }
        // The registers still hold the completed entrypoint and its
        // arguments here — exactly what the flow checker needs.
        self.flowcheck_exit(t, code);
        let Some(th) = self.threads.get_mut(t.0) else {
            return;
        };
        // Read the class of the completed entrypoint before the result
        // code overwrites `eax`.
        let class = Sys::from_u32(th.regs.get(fluke_arch::Reg::Eax)).map(|s| s.class());
        th.regs.set(fluke_arch::Reg::Eax, code as u32);
        th.regs.eip += 1;
        th.inflight = None;
        th.open_fault = None;
        self.ktrace(TraceEvent::SyscallExit {
            thread: t,
            code: code as u32,
            class,
        });
        self.unblock(t);
    }

    /// Unlink a blocked thread from whatever wait bookkeeping holds it.
    /// Its registers remain a complete continuation, so after unlinking it
    /// can be woken (restarting the call) or have new state installed.
    pub(crate) fn unlink_waiter(&mut self, t: ThreadId) {
        let Some(th) = self.threads.get(t.0) else {
            return;
        };
        let RunState::Blocked(reason) = th.state else {
            return;
        };
        let indexed = self.cfg.port_index;
        match reason {
            WaitReason::Mutex(o) => {
                if let Some(crate::object::ObjData::Mutex { waiters, .. }) =
                    self.objects.get_mut(o).map(|ob| &mut ob.data)
                {
                    waiters.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::Cond(o) => {
                if let Some(crate::object::ObjData::Cond { waiters }) =
                    self.objects.get_mut(o).map(|ob| &mut ob.data)
                {
                    waiters.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::PortWait(o) => {
                if let Some(crate::object::ObjData::Port { server_q, .. }) =
                    self.objects.get_mut(o).map(|ob| &mut ob.data)
                {
                    server_q.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::PsetWait(o) => {
                if let Some(crate::object::ObjData::Pset { server_q, .. }) =
                    self.objects.get_mut(o).map(|ob| &mut ob.data)
                {
                    server_q.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::OnewaySend(o) => {
                if let Some(crate::object::ObjData::Port { oneway_senders, .. }) =
                    self.objects.get_mut(o).map(|ob| &mut ob.data)
                {
                    oneway_senders.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::OnewayReceive(o) => {
                if let Some(crate::object::ObjData::Port {
                    oneway_receivers, ..
                }) = self.objects.get_mut(o).map(|ob| &mut ob.data)
                {
                    oneway_receivers.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::IpcConnect(_)
            | WaitReason::IpcSend(_)
            | WaitReason::IpcReceive(_)
            | WaitReason::PagerReply(_) => {
                // Connection-linked waits: the connection state is
                // consistent with a restart; nothing to unlink. (A pending
                // unaccepted connect stays queued on the port; the restart
                // finds it again.)
            }
            WaitReason::Join(target) => {
                if let Some(tt) = self.threads.get_mut(target.0) {
                    tt.joiners.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::SpaceIdle(sid) => {
                if let Some(sp) = self.spaces.get_mut(sid.0) {
                    sp.idle_waiters.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::Donate(d) => {
                if let Some(tt) = self.threads.get_mut(d.0) {
                    tt.donors.cancel(t, indexed, &mut self.stats.waitq);
                }
            }
            WaitReason::Sleep => {}
        }
    }

    /// Halt a thread: wake joiners and space/donation waiters, tear down
    /// its connection, release its kernel memory.
    pub(crate) fn halt_thread(&mut self, t: ThreadId) {
        let Some(th) = self.threads.get_mut(t.0) else {
            return;
        };
        if th.is_halted() {
            return;
        }
        self.kspan.on_abort(t);
        if th.is_blocked() {
            self.unlink_waiter(t);
        }
        let th = self.threads.get_mut(t.0).unwrap();
        if th.is_ready() {
            self.sched_remove(t);
        }
        let th = self.threads.get_mut(t.0).unwrap();
        th.state = RunState::Halted;
        let mut joiners = std::mem::take(&mut th.joiners);
        let mut donor_q = std::mem::take(&mut th.donors);
        let conn = th.ipc.conn.take();
        th.ipc.role = None;
        let space = th.space;
        self.clear_running_cpu(t);
        self.ktrace(TraceEvent::Halt { thread: t });
        self.stats.kmem_delta(-(self.cfg.per_thread_kmem() as i64));
        for j in joiners.drain(&mut self.stats.waitq) {
            self.complete_blocked(j, ErrorCode::Success);
        }
        if let Some(c) = conn {
            self.disconnect(c, ErrorCode::PeerDisconnected);
        }
        // Wake `space_wait_threads` waiters if this was the space's last
        // live thread, and `sched_donate` donors waiting on this thread.
        // Both sets live on wait queues now; the liveness predicate still
        // scans the arena because `space.threads` can go stale across
        // thread-state migration. Wakes are ordered by thread id to match
        // the arena-scan order this replaced.
        if let Some(sid) = space {
            let any_live = self
                .threads
                .iter()
                .any(|(_, x)| x.space == Some(sid) && !x.is_halted());
            if !any_live {
                let mut waiters: Vec<ThreadId> = match self.spaces.get_mut(sid.0) {
                    Some(sp) => sp.idle_waiters.drain(&mut self.stats.waitq),
                    None => Vec::new(),
                };
                waiters.sort_by_key(|w| w.0);
                for w in waiters {
                    self.complete_blocked(w, ErrorCode::Success);
                }
            }
        }
        let mut donors = donor_q.drain(&mut self.stats.waitq);
        donors.sort_by_key(|d| d.0);
        for d in donors {
            self.complete_blocked(d, ErrorCode::Success);
        }
    }

    /// Destroy a thread for a fatal error.
    pub(crate) fn kill_thread(&mut self, t: ThreadId, _reason: &'static str) {
        self.halt_thread(t);
    }

    /// Record a `kspan` causal flow edge for a completed IPC message
    /// transfer from `from`'s span to `to`'s (adopting the receiver into
    /// the sender's request where the stitch rule allows). A single
    /// predictable branch when `kspan` is off.
    #[inline]
    pub(crate) fn kspan_stitch(&mut self, from: ThreadId, to: ThreadId) {
        if self.kspan.enabled {
            let now = self.cur_cpu().cpu.now;
            self.kspan.stitch(from, to, now);
        }
    }
}

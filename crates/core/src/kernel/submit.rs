//! `ipc_submit`: batched one-way IPC submission.
//!
//! A batch is a user-memory ring of four-word descriptors (see
//! [`fluke_api::abi`], `SUBMIT_*`). One kernel entry processes as many
//! descriptors as it can, paying the entry/exit cost once instead of per
//! message. Progress is the `edx` done-count, committed only at
//! descriptor boundaries, so the atomic-API contract holds: a fault or
//! preemption mid-batch leaves `{esi=ring, ecx=count, edx=done}` as a
//! complete continuation and the call restarts at the first unfinished
//! descriptor. Per-descriptor work is idempotent up to its commit
//! (result word written before kernel state changes), so replays after
//! a descriptor-page fault are safe.
//!
//! Submitted sends always *buffer*: the message bytes are copied into a
//! bounded kernel queue on the port ([`PORT_BUF_MSGS`] messages of up to
//! [`SUBMIT_MAX_MSG`] bytes) and the send completes without rendezvous.
//! After each buffered send the submitter flushes the queue into any
//! blocked plain receivers, in its own context — the batched analogue of
//! the pump running in the sender. A descriptor that cannot make
//! progress without sleeping (receive on an empty port, send to a full
//! buffer) is *spilled*: the registers are rewritten to the equivalent
//! plain entrypoint and the dispatch chains to it, exactly the
//! `cond_wait` → `mutex_lock` continuation rewrite — so the blocked
//! thread is indistinguishable from one that called the plain op, and
//! every wait queue holds only plain-shaped continuations. The spilled
//! op's completion is reported through `eax` like any plain call; `edx`
//! still says how many earlier descriptors committed.
//!
//! Ordering: plain receives drain the buffer before rendezvousing with
//! senders, and plain sends flush (or join) the buffer before
//! rendezvousing, so buffered messages never get overtaken on a port.

use fluke_api::abi::{
    ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL, PORT_BUF_MSGS, SUBMIT_DESC_WORDS,
    SUBMIT_DONE, SUBMIT_MAX_MSG, SUBMIT_OP_NOWAIT, SUBMIT_OP_RECV, SUBMIT_RESULT_SHIFT,
};
use fluke_api::{ErrorCode, Sys};
use fluke_arch::Reg;

use crate::ids::{ObjId, ThreadId};
use crate::kstat::FaultSide;
use crate::object::{BufferedMsg, ObjData};
use crate::trace::TraceEvent;

use super::mem::PumpFault;
use super::{Kernel, SysCtx, SysOutcome, SysResult};

impl Kernel {
    /// `ipc_submit(esi=ring, ecx=count, edx=done)`.
    pub(crate) fn sys_ipc_submit(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let ring = cx.arg(self, ARG_SBUF);
        let count = cx.arg(self, ARG_COUNT);
        let mut done = cx.arg(self, ARG_VAL);
        self.charge(self.cost.ipc_setup / 2);
        self.progress();
        self.stats.ipc_submit_batches += 1;
        while done < count {
            let base = ring.wrapping_add(done.wrapping_mul(SUBMIT_DESC_WORDS * 4));
            // Descriptor reads can fault; nothing is committed yet, so the
            // restart replays this descriptor from the top.
            let opflags = self.read_user_u32(t, base)?;
            let port_h = self.read_user_u32(t, base + 4)?;
            let buf = self.read_user_u32(t, base + 8)?;
            let len = self.read_user_u32(t, base + 12)?;
            self.charge(self.cost.ipc_setup / 2);
            self.progress();
            self.stats.ipc_submit_ops += 1;
            if opflags & SUBMIT_OP_RECV != 0 {
                self.submit_recv(cx, opflags, port_h, base, buf, len)?;
            } else {
                self.submit_send(cx, opflags, port_h, base, buf, len)?;
            }
            // Descriptor boundary: commit the advanced cursor. This is
            // also the batch's explicit preemption point — the registers
            // are a clean `ipc_submit` continuation right here.
            done += 1;
            cx.set_reg(self, ARG_VAL, done);
            cx.commit(self);
            if done < count {
                self.charge(self.cost.preempt_check);
                if self.cur_cpu_mut().resched {
                    self.stats.preempt_points_taken += 1;
                    return Ok(cx.preempt(self));
                }
            }
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// Resolve a per-descriptor port handle. Lookup failures complete the
    /// descriptor with the error code (the batch carries on); page faults
    /// propagate and replay the descriptor.
    fn submit_port(
        &mut self,
        t: ThreadId,
        port_h: u32,
        opflags: u32,
        base: u32,
    ) -> Result<Option<ObjId>, SysOutcome> {
        match self.port_handle(t, port_h) {
            Ok(p) => Ok(Some(p)),
            Err(SysOutcome::Done(code)) => {
                self.submit_write_result(t, base, opflags, code)?;
                Ok(None)
            }
            Err(other) => Err(other),
        }
    }

    /// Complete a descriptor: result code and done-bit into word 0.
    fn submit_write_result(
        &mut self,
        t: ThreadId,
        base: u32,
        opflags: u32,
        code: ErrorCode,
    ) -> Result<(), SysOutcome> {
        let word = (opflags & 0xffff) | ((code as u32) << SUBMIT_RESULT_SHIFT) | SUBMIT_DONE;
        self.write_user_u32(t, base, word)
    }

    /// One submitted send: copy the message into the port's kernel buffer
    /// and flush to blocked receivers. Never rendezvouses directly.
    fn submit_send(
        &mut self,
        cx: &mut SysCtx,
        opflags: u32,
        port_h: u32,
        base: u32,
        buf: u32,
        len: u32,
    ) -> Result<(), SysOutcome> {
        let t = cx.t;
        let Some(port) = self.submit_port(t, port_h, opflags, base)? else {
            return Ok(());
        };
        if len > SUBMIT_MAX_MSG {
            return self.submit_write_result(t, base, opflags, ErrorCode::InvalidArg);
        }
        // A plain sender already blocked on the port was sent earlier;
        // buffering now would let this message overtake it (receivers
        // drain the buffer before rendezvousing). Spill behind it instead.
        let senders_queued = matches!(
            self.objects.get(port).map(|o| &o.data),
            Some(ObjData::Port { oneway_senders, .. }) if !oneway_senders.is_empty()
        );
        if senders_queued || self.buffered_len(port) >= PORT_BUF_MSGS {
            if opflags & SUBMIT_OP_NOWAIT != 0 {
                return self.submit_write_result(t, base, opflags, ErrorCode::WouldBlock);
            }
            // Spill: continue as a plain rendezvous send. The blocked
            // thread is then plain-send-shaped; receivers drain the
            // buffer before rendezvousing, so FIFO holds.
            cx.set_reg(self, ARG_HANDLE, port_h);
            cx.set_reg(self, ARG_SBUF, buf);
            cx.set_reg(self, ARG_COUNT, len);
            cx.set_reg(self, Reg::Eax, Sys::IpcSendOneway.num());
            cx.commit(self);
            return Err(SysOutcome::Chain);
        }
        // Copy user→kernel in the submitter's context (faults replay the
        // descriptor; nothing below has happened yet).
        let mut bytes = vec![0u8; len as usize];
        for (i, b) in bytes.iter_mut().enumerate() {
            let (f, off) = self.user_translate(t, buf.wrapping_add(i as u32), false)?;
            *b = self.phys.read_u8(f, off);
        }
        self.kprof.enter(crate::kprof::Phase::IpcCopy);
        self.charge(self.cost.copy_byte_per * len as u64);
        self.kprof.exit();
        // Commit order: result word (replay-idempotent), then the
        // irreversible kernel-state change, then the caller's cursor.
        self.submit_write_result(t, base, opflags, ErrorCode::Success)?;
        let Some(ObjData::Port { buffered, .. }) = self.objects.get_mut(port).map(|o| &mut o.data)
        else {
            return Ok(()); // port died after the result was written
        };
        buffered.push_back(BufferedMsg { bytes, pos: 0 });
        self.stats.ipc_submit_buffered += 1;
        self.flush_buffered(t, port);
        Ok(())
    }

    /// One submitted receive: drain the port's kernel buffer if it has a
    /// message; otherwise spill to the plain receive entrypoint (which
    /// rendezvouses or sleeps) or complete with `WouldBlock`.
    fn submit_recv(
        &mut self,
        cx: &mut SysCtx,
        opflags: u32,
        port_h: u32,
        base: u32,
        buf: u32,
        len: u32,
    ) -> Result<(), SysOutcome> {
        let t = cx.t;
        let Some(port) = self.submit_port(t, port_h, opflags, base)? else {
            return Ok(());
        };
        if self.port_has_buffered(port) {
            // Deliver the head message's tail into this descriptor's
            // buffer. `pos` is only advanced at completion: a fault
            // mid-copy replays the whole descriptor, rewriting the same
            // bytes — idempotent, and immune to cursor drift.
            let (bytes, pos) = {
                let Some(ObjData::Port { buffered, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                else {
                    return self.submit_write_result(t, base, opflags, ErrorCode::InvalidHandle);
                };
                let m = buffered.front().expect("checked non-empty");
                (m.bytes.clone(), m.pos)
            };
            let avail = (bytes.len() - pos) as u32;
            let deliver = avail.min(len);
            for i in 0..deliver {
                let (f, off) = self.user_translate(t, buf.wrapping_add(i), true)?;
                self.phys.write_u8(f, off, bytes[pos + i as usize]);
            }
            self.kprof.enter(crate::kprof::Phase::IpcCopy);
            self.charge(self.cost.copy_byte_per * deliver as u64);
            self.kprof.exit();
            let code = if deliver < avail {
                ErrorCode::Truncated // excess dropped, as in plain one-way
            } else {
                ErrorCode::Success
            };
            self.write_user_u32(t, base + 12, deliver)?;
            self.submit_write_result(t, base, opflags, code)?;
            self.pop_buffered(port);
            self.stats.ipc_bytes += deliver as u64;
            self.stats.ipc_messages += 1;
            self.ktrace(TraceEvent::IpcMessage { thread: t });
            return Ok(());
        }
        let has_sender = matches!(
            self.objects.get(port).map(|o| &o.data),
            Some(ObjData::Port { oneway_senders, .. }) if !oneway_senders.is_empty()
        );
        if !has_sender && opflags & SUBMIT_OP_NOWAIT != 0 {
            return self.submit_write_result(t, base, opflags, ErrorCode::WouldBlock);
        }
        // Spill: rendezvous (or sleep) as the plain receive entrypoint.
        cx.set_reg(self, ARG_HANDLE, port_h);
        cx.set_reg(self, ARG_RBUF, buf);
        cx.set_reg(self, ARG_COUNT, len);
        let entry = if opflags & SUBMIT_OP_NOWAIT != 0 {
            Sys::IpcReceiveOneway
        } else {
            Sys::IpcWaitReceiveOneway
        };
        cx.set_reg(self, Reg::Eax, entry.num());
        cx.commit(self);
        Err(SysOutcome::Chain)
    }

    /// Number of kernel-buffered messages on a port.
    pub(crate) fn buffered_len(&self, port: ObjId) -> usize {
        match self.objects.get(port).map(|o| &o.data) {
            Some(ObjData::Port { buffered, .. }) => buffered.len(),
            _ => 0,
        }
    }

    /// Flush the port's kernel buffer into blocked plain receivers, in
    /// the current thread's context (the batched analogue of the pump
    /// running in the sender). Bounded by the buffer cap. A receiver
    /// that hard-faults goes to its pager with the message's `pos`
    /// preserved; the head message then continues into the next receiver
    /// — the same split-delivery semantics a faulted rendezvous has.
    pub(crate) fn flush_buffered(&mut self, current: ThreadId, port: ObjId) {
        loop {
            let (bytes, mut pos) = {
                let Some(ObjData::Port { buffered, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                else {
                    return;
                };
                match buffered.front() {
                    Some(m) => (m.bytes.clone(), m.pos),
                    None => return,
                }
            };
            let rt = {
                let Some(ObjData::Port {
                    oneway_receivers, ..
                }) = self.objects.get_mut(port).map(|o| &mut o.data)
                else {
                    return;
                };
                match oneway_receivers.pop(&mut self.stats.waitq) {
                    Some(rt) => rt,
                    None => return,
                }
            };
            let mut receiver_parked = false;
            while pos < bytes.len() {
                let r = &self.threads.get(rt.0).expect("receiver").regs;
                let window = r.get(ARG_COUNT);
                let r_ptr = r.get(ARG_RBUF);
                if window == 0 {
                    // Excess dropped; the receiver learns it (plain
                    // one-way truncation semantics).
                    self.pop_buffered(port);
                    self.complete_blocked(rt, ErrorCode::Truncated);
                    receiver_parked = true;
                    break;
                }
                let chunk = ((bytes.len() - pos) as u32)
                    .min(window)
                    .min(fluke_api::abi::PAGE_SIZE - r_ptr % fluke_api::abi::PAGE_SIZE);
                let space = match self.threads.get(rt.0).and_then(|x| x.space) {
                    Some(s) => s,
                    None => {
                        // Receiver died: the message (and any undelivered
                        // tail) goes to the next receiver instead.
                        self.stats.fatal_faults += 1;
                        self.kill_thread(rt, "fatal fault during IPC");
                        receiver_parked = true;
                        break;
                    }
                };
                match self.pump_translate(current, space, r_ptr, true, FaultSide::Client) {
                    Ok((rf, ro)) => {
                        self.phys
                            .write_slice(rf, ro, &bytes[pos..pos + chunk as usize]);
                        self.progress();
                        self.kprof.enter(crate::kprof::Phase::IpcCopy);
                        self.charge(self.cost.copy_byte_per * chunk as u64);
                        self.kprof.exit();
                        self.end_advance_user_recv(rt, chunk);
                        pos += chunk as usize;
                        self.park_buffered_pos(port, pos);
                        self.stats.ipc_bytes += chunk as u64;
                        self.ktrace(TraceEvent::IpcTransfer {
                            thread: current,
                            bytes: chunk,
                        });
                    }
                    Err(PumpFault::SoftCross) => {
                        // Resolved inline; retry the chunk (the page is
                        // mapped now, so this terminates).
                        continue;
                    }
                    Err(PumpFault::Hard {
                        region,
                        offset,
                        keeper,
                        write,
                        side,
                    }) => {
                        self.set_reg_committed(rt, Reg::Eax, Sys::IpcWaitReceiveOneway.num());
                        self.raise_hard_fault(rt, region, offset, write, keeper, side, true, true);
                        receiver_parked = true;
                        break;
                    }
                    Err(PumpFault::Fatal) => {
                        self.stats.fatal_faults += 1;
                        self.kill_thread(rt, "fatal fault during IPC");
                        receiver_parked = true;
                        break;
                    }
                }
            }
            if receiver_parked {
                continue;
            }
            // Message fully delivered.
            self.pop_buffered(port);
            self.stats.ipc_messages += 1;
            self.ktrace(TraceEvent::IpcMessage { thread: current });
            self.kspan_stitch(current, rt);
            self.complete_blocked(rt, ErrorCode::Success);
        }
    }

    /// Record partial delivery progress on the head buffered message.
    fn park_buffered_pos(&mut self, port: ObjId, pos: usize) {
        if let Some(ObjData::Port { buffered, .. }) =
            self.objects.get_mut(port).map(|o| &mut o.data)
        {
            if let Some(m) = buffered.front_mut() {
                m.pos = pos;
            }
        }
    }

    /// Advance a blocked receiver's window registers after a delivery
    /// chunk (the flush-side twin of the pump's `end_advance`).
    fn end_advance_user_recv(&mut self, rt: ThreadId, n: u32) {
        let r = &mut self.threads.get_mut(rt.0).expect("receiver").regs;
        let p = r.get(ARG_RBUF);
        r.set(ARG_RBUF, p.wrapping_add(n));
        let c = r.get(ARG_COUNT);
        r.set(ARG_COUNT, c - n);
    }
}

//! Whole-kernel snapshot encode/decode and the `krec` recorder hooks.
//!
//! Lives inside the `kernel` module so it can serialize the module-private
//! pieces ([`CpuSlot`], [`LockKey`]). The byte format and the per-subsystem
//! `Snap` impls are in [`crate::krec`]; this file owns the *body layout*:
//! every kernel field in declaration order, bracketed by the `"FKSN"` magic,
//! the format version, and the FNV-1a digest trailer.
//!
//! Two states are intentionally outside the contract and rejected up front:
//! host-native thread bodies (Rust closures cannot round-trip bytes) and the
//! debug atomicity auditor's scratch state. The recorder itself
//! ([`crate::krec::Krec`]) is host-side bookkeeping and is never encoded, so
//! a recording kernel and its restored twin produce equal digests.

use std::sync::Arc;

use fluke_arch::program::{Program, ProgramId};

use crate::krec::{
    fnv64, Krec, Recording, Snap, SnapError, SnapReader, SnapWriter, Snapshot, FNV_OFFSET,
    SNAP_MAGIC, SNAP_VERSION,
};
use crate::thread::Body;

use super::{CpuSlot, Kernel, LockKey};

/// One contiguous resident-memory run: `(vaddr, bytes, writable)`
/// (debugger view, see [`Kernel::debug_space_map`]).
pub type MemRun = (u32, u32, bool);

impl Snap for LockKey {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            LockKey::Sched => w.u8(0),
            LockKey::RunQueue(i) => {
                w.u8(1);
                w.usize(i);
            }
            LockKey::Handles(i) => {
                w.u8(2);
                w.u32(i);
            }
            LockKey::Space(i) => {
                w.u8(3);
                w.u32(i);
            }
            LockKey::Conn(i) => {
                w.u8(4);
                w.u32(i);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => LockKey::Sched,
            1 => LockKey::RunQueue(r.usize()?),
            2 => LockKey::Handles(r.u32()?),
            3 => LockKey::Space(r.u32()?),
            4 => LockKey::Conn(r.u32()?),
            t => {
                return Err(SnapError::BadTag {
                    what: "lockkey",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for CpuSlot {
    fn snap(&self, w: &mut SnapWriter) {
        self.cpu.snap(w);
        self.current.snap(w);
        w.bool(self.resched);
        w.u64(self.slice_end);
        self.last_space.snap(w);
        w.bool(self.parked);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CpuSlot {
            cpu: Snap::restore(r)?,
            current: Snap::restore(r)?,
            resched: r.bool()?,
            slice_end: r.u64()?,
            last_space: Snap::restore(r)?,
            parked: r.bool()?,
        })
    }
}

impl Kernel {
    /// Reject states outside the snapshot contract before encoding.
    fn snap_precheck(&self) -> Result<(), SnapError> {
        if self.audit.is_some() {
            return Err(SnapError::AuditActive);
        }
        if self
            .threads
            .iter()
            .any(|(_, t)| matches!(t.body, Body::Native(_)))
        {
            return Err(SnapError::NativeBody);
        }
        Ok(())
    }

    /// Encode every kernel field, in struct declaration order, into `w`.
    /// `krec` and `audit` are deliberately absent (host-side / unsupported).
    fn encode_body(&self, w: &mut SnapWriter) {
        self.cfg.snap(w);
        self.cost.snap(w);
        self.cpus.snap(w);
        w.usize(self.active);
        w.u64(self.kernel_free_at);
        self.locks.snap(w);
        self.threads.snap(w);
        self.spaces.snap(w);
        self.objects.snap(w);
        self.conns.snap(w);
        w.usize(self.programs.len());
        for p in &self.programs {
            p.snap(w);
        }
        self.phys.snap(w);
        self.ready.snap(w);
        self.runqs.snap(w);
        self.events.snap(w);
        self.stats.snap(w);
        self.trace.snap(w);
        self.kprof.snap(w);
        self.kspan.snap(w);
        self.kfault.snap(w);
        self.dispatch_rollback.snap(w);
        w.bool(self.rollback_active);
        w.bool(self.dispatch_suppress);
    }

    /// Serialize the complete kernel state into a versioned, digest-stamped
    /// image. Fails (never panics) if the kernel holds state outside the
    /// snapshot contract (native thread bodies, armed auditor).
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapError> {
        self.snap_precheck()?;
        let mut w = SnapWriter::new();
        w.raw(&SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        self.encode_body(&mut w);
        Ok(w.finish())
    }

    /// The state digest: the FNV-1a-64 a [`Kernel::snapshot_bytes`] image
    /// would carry in its trailer, computed without materializing the bytes.
    pub fn state_digest(&self) -> Result<u64, SnapError> {
        self.snap_precheck()?;
        let mut w = SnapWriter::hash_only();
        w.raw(&SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        self.encode_body(&mut w);
        Ok(w.digest())
    }

    /// Rebuild a kernel from a snapshot image: verify magic, version and
    /// digest trailer, decode every field, rebuild derived indices, and
    /// re-resolve each thread's program text from its [`ProgramId`].
    pub fn restore_from(bytes: &[u8]) -> Result<Kernel, SnapError> {
        if bytes.len() < SNAP_MAGIC.len() + 4 + 8 {
            return Err(SnapError::Truncated);
        }
        if bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let n = bytes.len();
        let stored = u64::from_le_bytes(bytes[n - 8..].try_into().unwrap());
        let computed = fnv64(FNV_OFFSET, &bytes[..n - 8]);
        if stored != computed {
            return Err(SnapError::BadDigest { stored, computed });
        }
        let mut r = SnapReader::new(&bytes[SNAP_MAGIC.len()..n - 8]);
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let cfg = Snap::restore(&mut r)?;
        let cost = Snap::restore(&mut r)?;
        let cpus = Snap::restore(&mut r)?;
        let active = r.usize()?;
        let kernel_free_at = r.u64()?;
        let locks = Snap::restore(&mut r)?;
        let threads = Snap::restore(&mut r)?;
        let spaces = Snap::restore(&mut r)?;
        let objects = Snap::restore(&mut r)?;
        let conns = Snap::restore(&mut r)?;
        let programs = {
            let n = r.usize()?;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(Arc::new(Program::restore(&mut r)?));
            }
            v
        };
        let phys = Snap::restore(&mut r)?;
        let ready = Snap::restore(&mut r)?;
        let runqs = Snap::restore(&mut r)?;
        let events = Snap::restore(&mut r)?;
        let stats = Snap::restore(&mut r)?;
        let trace = Snap::restore(&mut r)?;
        let kprof = Snap::restore(&mut r)?;
        let kspan = Snap::restore(&mut r)?;
        let kfault = Snap::restore(&mut r)?;
        let dispatch_rollback = Snap::restore(&mut r)?;
        let rollback_active = r.bool()?;
        let dispatch_suppress = r.bool()?;
        r.expect_end()?;
        let mut k = Kernel {
            cfg,
            cost,
            cpus,
            active,
            kernel_free_at,
            locks,
            threads,
            spaces,
            objects,
            conns,
            programs,
            phys,
            ready,
            runqs,
            events,
            stats,
            trace,
            kprof,
            kspan,
            kfault,
            dispatch_rollback,
            rollback_active,
            dispatch_suppress,
            audit: None,
            krec: None,
            // Host-side checker: a restored twin boots with it off (the
            // restored config never enables it — see `Snap for Config`).
            flowcheck: crate::flowcheck::Flowcheck::default(),
        };
        if k.active >= k.cpus.len() || k.cpus.len() != k.cfg.num_cpus {
            return Err(SnapError::Invalid("cpu slot count"));
        }
        // Program text is interned by id, not serialized per thread:
        // re-resolve each thread's `text` the way `spawn_thread` does.
        let bindings: Vec<(u32, ProgramId)> = k
            .threads
            .iter()
            .filter_map(|(i, t)| t.program.map(|p| (i, p)))
            .collect();
        for (i, pid) in bindings {
            let text = k
                .program(pid)
                .ok_or(SnapError::Invalid("thread references unregistered program"))?;
            if let Some(t) = k.threads.get_mut(i) {
                t.text = Some(text);
            }
        }
        Ok(k)
    }

    /// The armed recorder, if any.
    pub fn krec(&self) -> Option<&Krec> {
        self.krec.as_ref()
    }

    // ------------------------------------------------------------------
    // Debugger views (read-only enumeration for `kdb` and friends).
    // ------------------------------------------------------------------

    /// Every live thread id, with its program name (debugger view).
    pub fn debug_threads(&self) -> Vec<(crate::ids::ThreadId, String)> {
        self.threads
            .iter()
            .map(|(_, t)| {
                let name = t
                    .text
                    .as_ref()
                    .map(|p| p.name().to_string())
                    .unwrap_or_else(|| "<native>".to_string());
                (t.id, name)
            })
            .collect()
    }

    /// The earliest per-CPU clock. Trace records strictly before this
    /// horizon are final; records at or past it may still be joined by
    /// more as execution continues (debugger view).
    pub fn debug_cycle_horizon(&self) -> u64 {
        self.cpus.iter().map(|c| c.cpu.now).min().unwrap_or(0)
    }

    /// Every live space id (debugger view).
    pub fn debug_spaces(&self) -> Vec<crate::ids::SpaceId> {
        self.spaces.iter().map(|(_, s)| s.id).collect()
    }

    /// A space's resident memory as contiguous `(vaddr, bytes, writable)`
    /// runs, plus its imported mapping-object count (debugger view).
    pub fn debug_space_map(&self, s: crate::ids::SpaceId) -> Option<(Vec<MemRun>, usize)> {
        use fluke_api::abi::PAGE_SIZE;
        let sp = self.spaces.get(s.0)?;
        let mut vpns: Vec<(u32, bool)> = sp.pages_iter().map(|(&v, p)| (v, p.writable)).collect();
        vpns.sort_unstable();
        let mut runs: Vec<(u32, u32, bool)> = Vec::new();
        for (vpn, w) in vpns {
            match runs.last_mut() {
                Some((base, len, rw)) if *rw == w && *base + *len == vpn * PAGE_SIZE => {
                    *len += PAGE_SIZE;
                }
                _ => runs.push((vpn * PAGE_SIZE, PAGE_SIZE, w)),
            }
        }
        Some((runs, sp.mappings().len()))
    }

    /// Take a manual snapshot into the recorder's ring (between `run`
    /// calls). Returns the snapshot's state digest.
    pub fn snapshot_now(&mut self) -> Result<u64, SnapError> {
        if self.krec.is_none() {
            return Err(SnapError::RecorderOff);
        }
        let bytes = self.snapshot_bytes()?;
        let at_cycle = self.cpus.iter().map(|c| c.cpu.now).max().unwrap_or(0);
        let kr = self.krec.as_mut().expect("checked above");
        let snap = Snapshot {
            at_cycle,
            window_index: kr.windows.len(),
            site: kr.sites_seen,
            mid_run: false,
            bytes,
        };
        let digest = snap.digest();
        kr.push_snapshot(snap);
        Ok(digest)
    }

    /// Detach the recorder and hand back everything it captured. The kernel
    /// keeps running (un-recorded) afterwards.
    pub fn take_recording(&mut self) -> Option<Recording> {
        self.krec.take().map(|k| Recording {
            snapshots: k.snapshots.into_iter().collect(),
            windows: k.windows,
        })
    }

    /// Recorder hook at a user-thread dispatch boundary (the same site
    /// enumeration `kfault` sweeps). Observes simulated state but never
    /// mutates it — arming `krec` is zero-perturbation by construction.
    ///
    /// A kernel whose state has drifted outside the snapshot contract (a
    /// native-bodied thread was spawned after arming) skips the capture;
    /// pure-ISA workloads — the only ones worth recording — never hit this.
    pub(crate) fn krec_tick(&mut self, cur: crate::ids::ThreadId) {
        let Some(kr) = self.krec.as_ref() else { return };
        if !matches!(self.threads.get(cur.0).map(|t| &t.body), Some(Body::User)) {
            return;
        }
        let site = kr.sites_seen;
        let now = self.cpus.iter().map(|c| c.cpu.now).max().unwrap_or(0);
        let mut due = false;
        if let Some(n) = kr.cfg.every_sites {
            if site % n == 0 {
                due = true;
            }
        }
        if kr.cfg.at_site == Some(site) {
            due = true;
        }
        let cycle_mark = kr.cfg.every_cycles.zip(kr.next_cycle_due);
        let kr = self.krec.as_mut().expect("checked above");
        kr.sites_seen += 1;
        if let Some((n, mark)) = cycle_mark {
            if now >= mark {
                due = true;
                let mut next = mark;
                while next <= now {
                    next += n;
                }
                kr.next_cycle_due = Some(next);
            }
        }
        if !due {
            return;
        }
        let Ok(bytes) = self.snapshot_bytes() else {
            return;
        };
        let kr = self.krec.as_mut().expect("checked above");
        kr.push_snapshot(Snapshot {
            at_cycle: now,
            window_index: kr.windows.len(),
            site,
            mid_run: true,
            bytes,
        });
    }
}

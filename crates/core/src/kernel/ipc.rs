//! IPC: connections, the data-transfer pump, and all IPC entrypoints.
//!
//! The transfer state of an in-progress IPC lives in the two threads'
//! registers: send pointer in `esi`, receive pointer in `edi`, byte counts
//! in `ecx`, all advanced in place as data moves — exactly the x86
//! string-instruction discipline the paper uses as its model (§4.2). When
//! anything interrupts a transfer (page fault, preemption point, window
//! exhaustion), both threads are *already* at well-defined points: "having
//! transferred some data and about to start an IPC to transfer more."
//!
//! The continuation of a compound operation like
//! `ipc_client_connect_send_over_receive` is likewise register-encoded:
//! the pending receive window rides in pseudo-register `pr0` and the
//! "what happens after the send" bits in `pr1`, so an interrupted compound
//! call restarts at `*_send_more` and still finishes the whole exchange.

use fluke_api::abi::{
    ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL, IPC_PR1_DISCONNECT,
    IPC_PR1_PENDING_RECEIVE, IPC_PR1_PENDING_WAIT, PAGE_SIZE, PR_IPC_FLAGS, PR_RECV_WINDOW,
};
use fluke_api::{ErrorCode, ObjType, Sys};
use fluke_arch::Reg;

use crate::config::{Preemption, PP_CHUNK_BYTES};
use crate::conn::{ClientEnd, Connection, Dir};
use crate::ids::{ConnId, ObjId, ThreadId};
use crate::kstat::FaultSide;
use crate::object::ObjData;
use crate::thread::{IpcRole, RunState, WaitReason};
use crate::trace::TraceEvent;

use super::mem::PumpFault;
use super::{Kernel, SysCtx, SysOutcome, SysResult};

/// Bytes between preemption checks under Full preemption (finer than the
/// Partial configuration's single 8KB point, since FP is preemptible
/// everywhere a lock isn't held).
const FP_CHUNK_BYTES: u32 = 2048;

/// What a send-family entrypoint does after the message completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AfterSend {
    /// Return to the caller.
    Complete,
    /// Reverse direction and receive a reply (window staged in `pr0`).
    Receive,
    /// Keep the connection and wait for the next message on it.
    WaitNext,
    /// Acknowledge and disconnect.
    Disconnect,
    /// Acknowledge, disconnect, then wait for a new request on the portset.
    DisconnectThenWait,
}

impl AfterSend {
    /// Encode into the `pr1` continuation bits.
    fn to_flags(self) -> u32 {
        match self {
            AfterSend::Complete => 0,
            AfterSend::Receive => IPC_PR1_PENDING_RECEIVE,
            AfterSend::WaitNext => IPC_PR1_PENDING_WAIT,
            AfterSend::Disconnect => IPC_PR1_DISCONNECT,
            AfterSend::DisconnectThenWait => IPC_PR1_DISCONNECT | IPC_PR1_PENDING_WAIT,
        }
    }

    /// Decode from the `pr1` continuation bits.
    fn from_flags(f: u32) -> AfterSend {
        let disc = f & IPC_PR1_DISCONNECT != 0;
        let wait = f & IPC_PR1_PENDING_WAIT != 0;
        let recv = f & IPC_PR1_PENDING_RECEIVE != 0;
        match (disc, wait, recv) {
            (true, true, _) => AfterSend::DisconnectThenWait,
            (true, false, _) => AfterSend::Disconnect,
            (false, true, _) => AfterSend::WaitNext,
            (false, false, true) => AfterSend::Receive,
            (false, false, false) => AfterSend::Complete,
        }
    }
}

/// One end of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XferEnd {
    /// A user thread; pointer/count live in its registers.
    User(ThreadId),
    /// The kernel as message source (exception IPC delivery).
    KernelSrc(ConnId),
    /// The kernel as message sink (exception IPC reply).
    KernelSink(ConnId),
}

/// Result of running the pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PumpOut {
    /// The sender's message completed.
    Complete,
    /// The receiver's window filled with the message still open.
    WindowFull,
    /// A hard fault on the current thread's side: the current thread is
    /// already blocked on the pager at a clean restart point.
    BlockedCurrent,
    /// A soft fault on the peer side was remedied; the operation restarts
    /// from the register continuations for revalidation (Table 3's
    /// "server-side soft fault" rollback).
    RestartCurrent,
    /// A hard fault on the peer side: the peer is blocked on the pager;
    /// the current thread should block awaiting transfer resumption.
    PeerFaulted,
    /// A preemption point was taken; the current thread is ready again at
    /// a clean restart point.
    Preempted,
    /// The faulting side was destroyed by a fatal fault.
    FatalCurrent,
    /// The peer was destroyed by a fatal fault.
    FatalPeer,
}

impl Kernel {
    // ------------------------------------------------------------------
    // Connection plumbing.
    // ------------------------------------------------------------------

    /// Resolve a port handle (Port or Reference to a Port) through the
    /// port-namespace index: one handle translation, one `Ref` chase at
    /// most, counted under `kernel.port.index.*`. Every IPC handler that
    /// names a port resolves it here (the single-lookup rule).
    pub(crate) fn port_handle(&mut self, t: ThreadId, vaddr: u32) -> Result<ObjId, SysOutcome> {
        let id = self.lookup_handle(t, vaddr)?;
        self.stats.port_lookups += 1;
        match self.objects.get(id).map(|o| &o.data) {
            Some(ObjData::Port { .. }) => Ok(id),
            Some(ObjData::Ref {
                target: Some(tg), ..
            }) => {
                self.stats.port_ref_chases += 1;
                match self.objects.get(*tg).map(|o| &o.data) {
                    Some(ObjData::Port { .. }) => Ok(*tg),
                    _ => Err(Self::fail(ErrorCode::WrongType)),
                }
            }
            _ => Err(Self::fail(ErrorCode::WrongType)),
        }
    }

    /// Wake one server waiting on the port (or its portset) so it can
    /// accept a newly queued connection.
    pub(crate) fn wake_port_server(&mut self, port: ObjId) {
        let (direct, pset) = match self.objects.get_mut(port).map(|o| &mut o.data) {
            Some(ObjData::Port { server_q, pset, .. }) => {
                (server_q.pop(&mut self.stats.waitq), *pset)
            }
            _ => (None, None),
        };
        if let Some(s) = direct {
            self.unblock(s);
            return;
        }
        if let Some(ps) = pset {
            let w = match self.objects.get_mut(ps).map(|o| &mut o.data) {
                Some(ObjData::Pset { server_q, .. }) => server_q.pop(&mut self.stats.waitq),
                _ => None,
            };
            if let Some(s) = w {
                self.unblock(s);
            }
        }
    }

    /// Try to accept one pending connection from `port` for server `t`.
    /// Returns true if a connection was accepted.
    pub(crate) fn try_accept_from_port(
        &mut self,
        t: ThreadId,
        port: ObjId,
    ) -> Result<bool, SysOutcome> {
        if self.threads.get(t.0).and_then(|x| x.ipc.conn).is_some() {
            return Err(Self::fail(ErrorCode::AlreadyConnected));
        }
        let conn = match self.objects.get_mut(port).map(|o| &mut o.data) {
            Some(ObjData::Port { connect_q, .. }) => connect_q.pop(&mut self.stats.waitq),
            _ => return Err(Self::fail(ErrorCode::InvalidHandle)),
        };
        let Some(conn) = conn else {
            return Ok(false);
        };
        self.charge(self.cost.ipc_setup);
        let client = {
            let c = self.conns.get_mut(conn.0).expect("queued connection");
            c.server = Some(t);
            c.client_thread()
        };
        {
            let th = self.threads.get_mut(t.0).expect("server thread");
            th.ipc.conn = Some(conn);
            th.ipc.role = Some(IpcRole::Server);
        }
        // A user client blocked waiting for acceptance restarts its
        // connect-send and proceeds to the send stage.
        if let Some(c) = client {
            let waiting = matches!(
                self.threads.get(c.0).map(|x| x.state),
                Some(RunState::Blocked(WaitReason::IpcConnect(_)))
            );
            if waiting {
                self.unblock(c);
            }
        }
        Ok(true)
    }

    /// Ensure the current thread has a live client connection to the port
    /// named by `ebx`, creating and queueing one if needed.
    fn ensure_connected(&mut self, cx: &mut SysCtx) -> Result<ConnId, SysOutcome> {
        let t = cx.t;
        if let Some(code) = self.threads.get_mut(t.0).and_then(|x| x.ipc_error.take()) {
            return Err(Self::fail(code));
        }
        let (existing, role) = {
            let th = self.threads.get(t.0).expect("current");
            (th.ipc.conn, th.ipc.role)
        };
        if let Some(conn) = existing {
            if role != Some(IpcRole::Client) {
                return Err(Self::fail(ErrorCode::AlreadyConnected));
            }
            let accepted = self
                .conns
                .get(conn.0)
                .map(|c| c.server.is_some())
                .unwrap_or(false);
            if accepted {
                return Ok(conn);
            }
            // Still waiting for a server: the connection stays queued on
            // the port; sleep again (the restart found us here).
            let port = self.conns.get(conn.0).map(|c| c.port).expect("conn");
            return Err(cx.block(self, WaitReason::IpcConnect(port)));
        }
        let h = cx.arg(self, ARG_HANDLE);
        let port = self.port_handle(t, h)?;
        self.charge(self.cost.ipc_setup);
        self.progress();
        let conn = ConnId(self.conns.insert(Connection::from_thread(t, port)));
        if let Some(ObjData::Port { connect_q, .. }) =
            self.objects.get_mut(port).map(|o| &mut o.data)
        {
            connect_q.enqueue(conn, &mut self.stats.waitq);
        }
        {
            let th = self.threads.get_mut(t.0).expect("current");
            th.ipc.conn = Some(conn);
            th.ipc.role = Some(IpcRole::Client);
        }
        self.wake_port_server(port);
        Err(cx.block(self, WaitReason::IpcConnect(port)))
    }

    /// Tear down a connection; still-blocked peer operations complete with
    /// `code`. Kernel-client (exception IPC) connections finalize their
    /// fault first so the faulting thread retries.
    pub(crate) fn disconnect(&mut self, conn: ConnId, code: ErrorCode) {
        self.disconnect_from(conn, code, None)
    }

    /// [`Kernel::disconnect`] with the initiating thread excluded from
    /// error delivery (a thread tearing down its own connection must not
    /// poison its own next operation).
    pub(crate) fn disconnect_from(
        &mut self,
        conn: ConnId,
        code: ErrorCode,
        initiator: Option<ThreadId>,
    ) {
        self.complete_fault(conn);
        let Some(c) = self.conns.remove(conn.0) else {
            return;
        };
        // Drop from the port's pending queue if never accepted. With the
        // port-namespace index this is an O(1) tombstone instead of the
        // linear sweep the reference path performs — the scan that made
        // connection churn O(pending²) at server scale.
        if let Some(ObjData::Port { connect_q, .. }) =
            self.objects.get_mut(c.port).map(|o| &mut o.data)
        {
            if connect_q.cancel(conn, self.cfg.port_index, &mut self.stats.waitq) {
                if self.cfg.port_index {
                    self.stats.conn_unlinks_fast += 1;
                } else {
                    self.stats.conn_unlinks_linear += 1;
                }
            }
        }
        let mut ends = Vec::new();
        if let ClientEnd::Thread(t) = c.client {
            ends.push(t);
        }
        if let Some(s) = c.server {
            ends.push(s);
        }
        for t in ends {
            let Some(th) = self.threads.get_mut(t.0) else {
                continue;
            };
            if th.ipc.conn == Some(conn) {
                th.ipc.conn = None;
                th.ipc.role = None;
            }
            if Some(t) == initiator {
                continue;
            }
            let blocked_on_conn = matches!(
                th.state,
                RunState::Blocked(WaitReason::IpcSend(c2) | WaitReason::IpcReceive(c2)) if c2 == conn
            ) || matches!(
                th.state,
                RunState::Blocked(WaitReason::IpcConnect(_))
            );
            if blocked_on_conn {
                self.complete_blocked(t, code);
            } else if th
                .inflight
                .map(|s| s.desc().family == fluke_api::Family::Ipc)
                .unwrap_or(false)
            {
                // Torn down between unblocking and re-dispatch: deliver the
                // error at the next IPC entrypoint instead of letting the
                // restart silently re-issue against a dead connection.
                th.ipc_error = Some(code);
            }
        }
    }

    // ------------------------------------------------------------------
    // The transfer pump.
    // ------------------------------------------------------------------

    /// Available bytes and pointer for an end.
    fn end_avail(&self, end: XferEnd) -> (u32, u32) {
        match end {
            XferEnd::User(t) => {
                let r = &self.threads.get(t.0).expect("xfer end").regs;
                (r.get(ARG_COUNT), 0)
            }
            XferEnd::KernelSrc(c) => match &self.conns.get(c.0).expect("conn").client {
                ClientEnd::Kernel(km) => ((km.bytes.len() - km.pos) as u32, 0),
                ClientEnd::Thread(_) => (0, 0),
            },
            XferEnd::KernelSink(_) => (u32::MAX, 0),
        }
    }

    /// The buffer pointer of a user end (send uses `esi`, receive `edi`).
    fn end_ptr(&self, end: XferEnd, sending: bool) -> u32 {
        match end {
            XferEnd::User(t) => {
                let r = &self.threads.get(t.0).expect("xfer end").regs;
                r.get(if sending { ARG_SBUF } else { ARG_RBUF })
            }
            _ => 0,
        }
    }

    /// Advance an end by `n` bytes after a successful copy.
    fn end_advance(&mut self, end: XferEnd, sending: bool, n: u32) {
        match end {
            XferEnd::User(t) => {
                let r = &mut self.threads.get_mut(t.0).expect("xfer end").regs;
                let preg = if sending { ARG_SBUF } else { ARG_RBUF };
                let p = r.get(preg);
                r.set(preg, p.wrapping_add(n));
                let c = r.get(ARG_COUNT);
                r.set(ARG_COUNT, c - n);
            }
            XferEnd::KernelSrc(c) => {
                if let Some(conn) = self.conns.get_mut(c.0) {
                    if let ClientEnd::Kernel(km) = &mut conn.client {
                        km.pos += n as usize;
                    }
                }
            }
            XferEnd::KernelSink(_) => {}
        }
    }

    /// Move `n` bytes between resolved physical locations or kernel
    /// buffers. All ranges are within single pages by construction.
    fn move_bytes(
        &mut self,
        sender: XferEnd,
        s_loc: Option<(u32, u32)>,
        receiver: XferEnd,
        r_loc: Option<(u32, u32)>,
        n: u32,
    ) {
        match (sender, receiver) {
            (XferEnd::User(_), XferEnd::User(_)) => {
                let (sf, so) = s_loc.expect("sender resolved");
                let (rf, ro) = r_loc.expect("receiver resolved");
                if self.cfg.fast_mem {
                    self.phys.copy(sf, so, rf, ro, n);
                } else {
                    // Reference path: byte-at-a-time through a staging
                    // buffer, so a message whose source and destination
                    // alias the same frame with overlapping offsets still
                    // delivers the original source bytes (memmove
                    // semantics, matching `copy`). A chunk never exceeds a
                    // page.
                    let mut buf = [0u8; fluke_api::abi::PAGE_SIZE as usize];
                    for i in 0..n {
                        buf[i as usize] = self.phys.read_u8(sf, so + i);
                    }
                    for i in 0..n {
                        self.phys.write_u8(rf, ro + i, buf[i as usize]);
                    }
                }
            }
            (XferEnd::KernelSrc(c), XferEnd::User(_)) => {
                let (rf, ro) = r_loc.expect("receiver resolved");
                // Disjoint field borrows: read the kernel message in place,
                // no staging allocation.
                match &self.conns.get(c.0).expect("conn").client {
                    ClientEnd::Kernel(km) => {
                        self.phys
                            .write_slice(rf, ro, &km.bytes[km.pos..km.pos + n as usize]);
                    }
                    ClientEnd::Thread(_) => unreachable!("kernel src on user client"),
                }
            }
            (XferEnd::User(_), XferEnd::KernelSink(c)) => {
                let (sf, so) = s_loc.expect("sender resolved");
                if let Some(conn) = self.conns.get_mut(c.0) {
                    if let ClientEnd::Kernel(km) = &mut conn.client {
                        // Grow the reply and read straight into the tail.
                        let at = km.reply.len();
                        km.reply.resize(at + n as usize, 0);
                        self.phys.read_slice(sf, so, &mut km.reply[at..]);
                    }
                }
            }
            _ => unreachable!("kernel-to-kernel transfer"),
        }
    }

    /// The transfer pump: move bytes from `sender` to `receiver` until the
    /// message completes, the window fills, or something interrupts.
    ///
    /// `restarts` are the `eax` values that bring each end to its clean
    /// restart entrypoint; the pump installs them *before* any block or
    /// preemption, maintaining the atomic-API invariant.
    #[allow(clippy::too_many_arguments)]
    fn pump(
        &mut self,
        conn: Option<ConnId>,
        dir: Option<Dir>,
        sender: XferEnd,
        receiver: XferEnd,
        current: ThreadId,
        sender_restart: Sys,
        receiver_restart: Sys,
    ) -> PumpOut {
        let mut since_check: u32 = 0;
        loop {
            let (s_rem, _) = self.end_avail(sender);
            if s_rem == 0 {
                if let (Some(c), Some(d)) = (conn, dir) {
                    if let Some(cc) = self.conns.get_mut(c.0) {
                        cc.set_open(d, false);
                    }
                }
                self.stats.ipc_messages += 1;
                self.ktrace(TraceEvent::IpcMessage { thread: current });
                return PumpOut::Complete;
            }
            let (r_rem, _) = self.end_avail(receiver);
            if r_rem == 0 {
                return PumpOut::WindowFull;
            }
            let s_ptr = self.end_ptr(sender, true);
            let r_ptr = self.end_ptr(receiver, false);
            let mut chunk = s_rem.min(r_rem);
            if matches!(sender, XferEnd::User(_)) {
                chunk = chunk.min(PAGE_SIZE - s_ptr % PAGE_SIZE);
            }
            if matches!(receiver, XferEnd::User(_)) {
                chunk = chunk.min(PAGE_SIZE - r_ptr % PAGE_SIZE);
            }
            match self.cfg.preempt {
                Preemption::Partial => {
                    chunk = chunk.min(PP_CHUNK_BYTES - since_check % PP_CHUNK_BYTES)
                }
                Preemption::Full => {
                    chunk = chunk.min(FP_CHUNK_BYTES - since_check % FP_CHUNK_BYTES)
                }
                Preemption::None => {}
            }
            // Translate both pages, attributing faults to transfer sides.
            let s_loc = match sender {
                XferEnd::User(st) => {
                    let side = self.side_of(conn, st);
                    let space = match self.threads.get(st.0).and_then(|x| x.space) {
                        Some(s) => s,
                        None => return self.pump_fatal(st, current),
                    };
                    match self.pump_translate(current, space, s_ptr, false, side) {
                        Ok(loc) => Some(loc),
                        Err(f) => return self.pump_fault(f, st, current, sender_restart),
                    }
                }
                _ => None,
            };
            let r_loc = match receiver {
                XferEnd::User(rt) => {
                    let side = self.side_of(conn, rt);
                    let space = match self.threads.get(rt.0).and_then(|x| x.space) {
                        Some(s) => s,
                        None => return self.pump_fatal(rt, current),
                    };
                    match self.pump_translate(current, space, r_ptr, true, side) {
                        Ok(loc) => Some(loc),
                        Err(f) => return self.pump_fault(f, rt, current, receiver_restart),
                    }
                }
                _ => None,
            };
            self.move_bytes(sender, s_loc, receiver, r_loc, chunk);
            // New bytes moved: the preamble (rollback) phase is over.
            self.progress();
            self.kprof.enter(crate::kprof::Phase::IpcCopy);
            self.charge(self.cost.copy_byte_per * chunk as u64);
            self.kprof.exit();
            self.end_advance(sender, true, chunk);
            self.end_advance(receiver, false, chunk);
            // The in-place parameter advance *is* the commit: both ends'
            // registers now describe "transferred this much, about to
            // transfer more" (paper §4.2).
            self.audit_commit(current);
            self.stats.ipc_bytes += chunk as u64;
            self.ktrace(TraceEvent::IpcTransfer {
                thread: current,
                bytes: chunk,
            });
            since_check += chunk;
            // Explicit preemption points (Table 4: the PP configurations
            // check after every 8KB on this path; FP checks finer).
            let check = match self.cfg.preempt {
                Preemption::Partial => since_check >= PP_CHUNK_BYTES,
                Preemption::Full => since_check >= FP_CHUNK_BYTES,
                Preemption::None => false,
            };
            if check {
                since_check = 0;
                self.charge(self.cost.preempt_check);
                if self.cur_cpu_mut().resched {
                    self.stats.preempt_points_taken += 1;
                    let restart = if XferEnd::User(current) == sender {
                        sender_restart
                    } else {
                        receiver_restart
                    };
                    self.set_reg_committed(current, Reg::Eax, restart.num());
                    self.preempt_current_in_kernel(current);
                    return PumpOut::Preempted;
                }
            }
        }
    }

    /// Which Table 3 side a thread is on for this connection.
    fn side_of(&self, conn: Option<ConnId>, t: ThreadId) -> FaultSide {
        let Some(c) = conn.and_then(|c| self.conns.get(c.0)) else {
            // One-way transfers: label the sender side as client.
            return FaultSide::Client;
        };
        if c.client_thread() == Some(t) {
            FaultSide::Client
        } else if c.server == Some(t) {
            FaultSide::Server
        } else {
            FaultSide::Other
        }
    }

    /// Destroy an end's thread after a fatal fault.
    fn pump_fatal(&mut self, victim: ThreadId, current: ThreadId) -> PumpOut {
        self.stats.fatal_faults += 1;
        self.kill_thread(victim, "fatal fault during IPC");
        if victim == current {
            PumpOut::FatalCurrent
        } else {
            PumpOut::FatalPeer
        }
    }

    /// Unwind a pump fault to clean points on both sides. Both ends'
    /// registers already reflect exact partial progress (the pump advances
    /// them after every chunk); only the faulting thread's entrypoint
    /// register needs rewriting, to its side's `*_more` restart point.
    fn pump_fault(
        &mut self,
        fault: PumpFault,
        faulter: ThreadId,
        current: ThreadId,
        faulter_restart: Sys,
    ) -> PumpOut {
        match fault {
            PumpFault::SoftCross => {
                // Remedied inline; restart the current call for
                // revalidation. Rollback accrues to the fault record.
                let rec = self.stats.fault_records.len().saturating_sub(1);
                self.rollback_active = true;
                self.dispatch_rollback = Some(rec);
                self.stats.restarts += 1;
                PumpOut::RestartCurrent
            }
            PumpFault::Hard {
                region,
                offset,
                keeper,
                write,
                side,
            } => {
                self.set_reg_committed(faulter, Reg::Eax, faulter_restart.num());
                self.raise_hard_fault(faulter, region, offset, write, keeper, side, true, true);
                if faulter == current {
                    PumpOut::BlockedCurrent
                } else {
                    PumpOut::PeerFaulted
                }
            }
            PumpFault::Fatal => self.pump_fatal(faulter, current),
        }
    }

    // ------------------------------------------------------------------
    // Send-family entrypoints.
    // ------------------------------------------------------------------

    /// `ipc_client_connect(ebx=port_ref)`.
    pub(crate) fn sys_ipc_client_connect(&mut self, cx: &mut SysCtx) -> SysResult {
        let _ = self.ensure_connected(cx)?;
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `ipc_client_connect_send[_over_receive]`: stage the continuation
    /// bits, connect, then send.
    pub(crate) fn sys_ipc_client_connect_send(&mut self, cx: &mut SysCtx, over: bool) -> SysResult {
        self.stage_after_send(
            cx,
            if over {
                AfterSend::Receive
            } else {
                AfterSend::Complete
            },
        );
        let conn = self.ensure_connected(cx)?;
        self.do_send(cx, IpcRole::Client, conn)
    }

    /// `ipc_client_send[_over_receive]`: send on the existing connection.
    pub(crate) fn sys_ipc_client_send(&mut self, cx: &mut SysCtx, over: bool) -> SysResult {
        self.stage_after_send(
            cx,
            if over {
                AfterSend::Receive
            } else {
                AfterSend::Complete
            },
        );
        let conn = self.require_conn(cx.t, IpcRole::Client)?;
        self.do_send(cx, IpcRole::Client, conn)
    }

    /// `ipc_server_send` and friends: send on the server end.
    pub(crate) fn sys_ipc_server_send(&mut self, cx: &mut SysCtx, after: AfterSend) -> SysResult {
        self.stage_after_send(cx, after);
        let conn = self.require_conn(cx.t, IpcRole::Server)?;
        self.do_send(cx, IpcRole::Server, conn)
    }

    /// `ipc_*_send_more`: the restart entrypoints — continuation bits are
    /// already in `pr1`, partial progress in `esi`/`ecx`.
    pub(crate) fn sys_ipc_send_more(&mut self, cx: &mut SysCtx, role: IpcRole) -> SysResult {
        let conn = self.require_conn(cx.t, role)?;
        self.do_send(cx, role, conn)
    }

    /// Record the after-send continuation in the pseudo-registers (paper
    /// §4.4: intermediate multi-stage IPC state lives in two pseudo-
    /// registers, visible to user code only through thread state frames).
    /// Staging is part of bringing the registers to the entrypoint's
    /// canonical form, so it commits immediately: the call restarts
    /// identically whether or not staging already ran.
    fn stage_after_send(&mut self, cx: &mut SysCtx, after: AfterSend) {
        let window = cx.arg(self, ARG_VAL);
        cx.set_pr(self, PR_IPC_FLAGS, after.to_flags());
        if matches!(
            after,
            AfterSend::Receive | AfterSend::WaitNext | AfterSend::DisconnectThenWait
        ) {
            cx.set_pr(self, PR_RECV_WINDOW, window);
        }
        cx.commit(self);
    }

    /// The caller must hold a live, accepted connection in `role`.
    fn require_conn(&mut self, t: ThreadId, role: IpcRole) -> Result<ConnId, SysOutcome> {
        if let Some(code) = self.threads.get_mut(t.0).and_then(|x| x.ipc_error.take()) {
            return Err(Self::fail(code));
        }
        let th = self.threads.get(t.0).expect("current");
        let conn = th.ipc.conn.ok_or(Self::fail(ErrorCode::NotConnected))?;
        if th.ipc.role != Some(role) {
            return Err(Self::fail(ErrorCode::NotConnected));
        }
        // Consume a pending alert.
        let alerted = {
            let c = self
                .conns
                .get_mut(conn.0)
                .ok_or(Self::fail(ErrorCode::NotConnected))?;
            let flag = match role {
                IpcRole::Client => &mut c.alert_client,
                IpcRole::Server => &mut c.alert_server,
            };
            std::mem::take(flag)
        };
        if alerted {
            return Err(Self::fail(ErrorCode::Interrupted));
        }
        Ok(conn)
    }

    /// Common send stage.
    fn do_send(&mut self, cx: &mut SysCtx, role: IpcRole, conn: ConnId) -> SysResult {
        let t = cx.t;
        let dir = match role {
            IpcRole::Client => Dir::ClientToServer,
            IpcRole::Server => Dir::ServerToClient,
        };
        let (sender_restart, receiver_restart) = match role {
            IpcRole::Client => (Sys::IpcClientSendMore, Sys::IpcServerReceiveMore),
            IpcRole::Server => (Sys::IpcServerSendMore, Sys::IpcClientReceiveMore),
        };
        if self.trace.enabled {
            let bytes = self.end_avail(XferEnd::User(t)).0;
            self.ktrace(TraceEvent::IpcSend { thread: t, bytes });
        }
        self.charge(self.cost.ipc_setup / 2);
        {
            let c = self
                .conns
                .get_mut(conn.0)
                .ok_or(Self::fail(ErrorCode::NotConnected))?;
            c.set_open(dir, true);
        }
        // Identify the receiver end.
        let receiver = {
            let c = self.conns.get(conn.0).expect("conn");
            match (role, &c.client) {
                (IpcRole::Server, ClientEnd::Kernel(_)) => Some(XferEnd::KernelSink(conn)),
                (IpcRole::Server, ClientEnd::Thread(ct)) => {
                    let waiting = matches!(
                        self.threads.get(ct.0).map(|x| x.state),
                        Some(RunState::Blocked(WaitReason::IpcReceive(c2))) if c2 == conn
                    );
                    waiting.then_some(XferEnd::User(*ct))
                }
                (IpcRole::Client, _) => {
                    let st = c.server;
                    st.and_then(|st| {
                        let waiting = matches!(
                            self.threads.get(st.0).map(|x| x.state),
                            Some(RunState::Blocked(WaitReason::IpcReceive(c2))) if c2 == conn
                        );
                        waiting.then_some(XferEnd::User(st))
                    })
                }
            }
        };
        let Some(receiver) = receiver else {
            // No window yet: sleep at the *_send_more restart point.
            cx.set_reg_committed(self, Reg::Eax, sender_restart.num());
            return Ok(cx.block(self, WaitReason::IpcSend(conn)));
        };
        let out = self.pump(
            Some(conn),
            Some(dir),
            XferEnd::User(t),
            receiver,
            t,
            sender_restart,
            receiver_restart,
        );
        match out {
            PumpOut::Complete => {
                // Complete the receiver.
                match receiver {
                    XferEnd::User(rt) => {
                        self.kspan_stitch(t, rt);
                        self.complete_blocked(rt, ErrorCode::Success)
                    }
                    XferEnd::KernelSink(c) => self.complete_fault(c),
                    XferEnd::KernelSrc(_) => unreachable!(),
                }
                self.after_send_transition(t, conn)
            }
            PumpOut::WindowFull => {
                // Receiver's window filled mid-message: it completes with
                // Truncated; the sender sleeps awaiting a fresh window.
                if let XferEnd::User(rt) = receiver {
                    self.complete_blocked(rt, ErrorCode::Truncated);
                }
                cx.set_reg_committed(self, Reg::Eax, sender_restart.num());
                Ok(cx.block(self, WaitReason::IpcSend(conn)))
            }
            PumpOut::BlockedCurrent => Ok(SysOutcome::Block),
            PumpOut::RestartCurrent => {
                cx.set_reg(self, Reg::Eax, sender_restart.num());
                Ok(SysOutcome::Chain)
            }
            PumpOut::PeerFaulted => {
                cx.set_reg_committed(self, Reg::Eax, sender_restart.num());
                Ok(cx.block(self, WaitReason::IpcSend(conn)))
            }
            PumpOut::Preempted => Ok(SysOutcome::Preempted),
            PumpOut::FatalCurrent => Ok(SysOutcome::Kill("fatal IPC fault")),
            PumpOut::FatalPeer => {
                self.disconnect(conn, ErrorCode::PeerDisconnected);
                Err(Self::fail(ErrorCode::PeerDisconnected))
            }
        }
    }

    /// After a send completes for the *current* thread: apply the
    /// continuation encoded in `pr1`.
    fn after_send_transition(&mut self, t: ThreadId, conn: ConnId) -> SysResult {
        let flags = self.threads.get(t.0).expect("current").regs.pr[PR_IPC_FLAGS];
        let after = AfterSend::from_flags(flags);
        let role = self
            .threads
            .get(t.0)
            .and_then(|x| x.ipc.role)
            .unwrap_or(IpcRole::Client);
        match after {
            AfterSend::Complete => Ok(SysOutcome::Done(ErrorCode::Success)),
            AfterSend::Receive => {
                let th = self.threads.get_mut(t.0).expect("current");
                let window = th.regs.pr[PR_RECV_WINDOW];
                th.regs.set(ARG_COUNT, window);
                th.regs.pr[PR_IPC_FLAGS] = 0;
                th.regs.set(
                    Reg::Eax,
                    match role {
                        IpcRole::Client => Sys::IpcClientReceive.num(),
                        IpcRole::Server => Sys::IpcServerReceive.num(),
                    },
                );
                Ok(SysOutcome::Chain)
            }
            AfterSend::WaitNext => {
                let th = self.threads.get_mut(t.0).expect("current");
                let window = th.regs.pr[PR_RECV_WINDOW];
                th.regs.set(ARG_COUNT, window);
                th.regs.pr[PR_IPC_FLAGS] = 0;
                th.regs.set(Reg::Eax, Sys::IpcServerReceive.num());
                Ok(SysOutcome::Chain)
            }
            AfterSend::Disconnect => {
                self.raw_set_reg(t, Reg::Eax, 0);
                let th = self.threads.get_mut(t.0).expect("current");
                th.regs.pr[PR_IPC_FLAGS] = 0;
                self.disconnect_from(conn, ErrorCode::PeerDisconnected, Some(t));
                Ok(SysOutcome::Done(ErrorCode::Success))
            }
            AfterSend::DisconnectThenWait => {
                self.disconnect_from(conn, ErrorCode::PeerDisconnected, Some(t));
                let th = self.threads.get_mut(t.0).expect("current");
                let window = th.regs.pr[PR_RECV_WINDOW];
                th.regs.set(ARG_COUNT, window);
                th.regs.pr[PR_IPC_FLAGS] = 0;
                th.regs.set(Reg::Eax, Sys::IpcServerWaitReceive.num());
                Ok(SysOutcome::Chain)
            }
        }
    }

    /// After a blocked sender's message is completed by the receiver:
    /// apply the sender's continuation without running it ("continuation
    /// recognition" on behalf of user code).
    fn blocked_sender_transition(&mut self, sender: ThreadId, conn: ConnId) {
        let flags = self
            .threads
            .get(sender.0)
            .map(|x| x.regs.pr[PR_IPC_FLAGS])
            .unwrap_or(0);
        let after = AfterSend::from_flags(flags);
        let role = self
            .threads
            .get(sender.0)
            .and_then(|x| x.ipc.role)
            .unwrap_or(IpcRole::Client);
        match after {
            AfterSend::Complete => self.complete_blocked(sender, ErrorCode::Success),
            AfterSend::Receive => {
                // Transition Blocked(IpcSend) → Blocked(IpcReceive): the
                // sender is now awaiting the reply; its registers fully
                // describe that wait.
                if self.kspan.enabled {
                    let now = self.cur_cpu().cpu.now;
                    self.kspan
                        .on_block(sender, WaitReason::IpcReceive(conn), now);
                }
                let th = self.threads.get_mut(sender.0).expect("sender");
                let window = th.regs.pr[PR_RECV_WINDOW];
                th.regs.set(ARG_COUNT, window);
                th.regs.pr[PR_IPC_FLAGS] = 0;
                th.regs.set(
                    Reg::Eax,
                    match role {
                        IpcRole::Client => Sys::IpcClientReceiveMore.num(),
                        IpcRole::Server => Sys::IpcServerReceiveMore.num(),
                    },
                );
                th.state = RunState::Blocked(WaitReason::IpcReceive(conn));
                th.inflight = Sys::from_u32(th.regs.get(Reg::Eax));
            }
            AfterSend::WaitNext => {
                if self.kspan.enabled {
                    let now = self.cur_cpu().cpu.now;
                    self.kspan
                        .on_block(sender, WaitReason::IpcReceive(conn), now);
                }
                let th = self.threads.get_mut(sender.0).expect("sender");
                let window = th.regs.pr[PR_RECV_WINDOW];
                th.regs.set(ARG_COUNT, window);
                th.regs.pr[PR_IPC_FLAGS] = 0;
                th.regs.set(Reg::Eax, Sys::IpcServerReceiveMore.num());
                th.state = RunState::Blocked(WaitReason::IpcReceive(conn));
                th.inflight = Sys::from_u32(th.regs.get(Reg::Eax));
            }
            AfterSend::Disconnect => {
                self.complete_blocked(sender, ErrorCode::Success);
                self.disconnect_from(conn, ErrorCode::PeerDisconnected, Some(sender));
            }
            AfterSend::DisconnectThenWait => {
                // Wake the server to go wait for its next request.
                let th = self.threads.get_mut(sender.0).expect("sender");
                let window = th.regs.pr[PR_RECV_WINDOW];
                th.regs.set(ARG_COUNT, window);
                th.regs.pr[PR_IPC_FLAGS] = 0;
                th.regs.set(Reg::Eax, Sys::IpcServerWaitReceive.num());
                th.inflight = Sys::from_u32(th.regs.get(Reg::Eax));
                self.unblock(sender);
                self.disconnect_from(conn, ErrorCode::PeerDisconnected, Some(sender));
            }
        }
    }

    // ------------------------------------------------------------------
    // Receive-family entrypoints.
    // ------------------------------------------------------------------

    /// `ipc_{client,server}_receive[_more]` and `ipc_client_ack_receive`.
    pub(crate) fn sys_ipc_receive(
        &mut self,
        cx: &mut SysCtx,
        role: IpcRole,
        _more: bool,
    ) -> SysResult {
        let conn = self.require_conn(cx.t, role)?;
        self.do_receive(cx, role, conn)
    }

    /// Common receive stage.
    fn do_receive(&mut self, cx: &mut SysCtx, role: IpcRole, conn: ConnId) -> SysResult {
        let t = cx.t;
        let dir = match role {
            IpcRole::Client => Dir::ServerToClient,
            IpcRole::Server => Dir::ClientToServer,
        };
        let (sender_restart, receiver_restart) = match role {
            IpcRole::Client => (Sys::IpcServerSendMore, Sys::IpcClientReceiveMore),
            IpcRole::Server => (Sys::IpcClientSendMore, Sys::IpcServerReceiveMore),
        };
        if self.trace.enabled {
            let window = self.end_avail(XferEnd::User(t)).0;
            self.ktrace(TraceEvent::IpcReceive { thread: t, window });
        }
        self.charge(self.cost.ipc_setup / 2);
        // Identify a ready sender.
        let sender = {
            let c = self
                .conns
                .get(conn.0)
                .ok_or(Self::fail(ErrorCode::NotConnected))?;
            match (role, &c.client) {
                (IpcRole::Server, ClientEnd::Kernel(km)) => {
                    (km.pos < km.bytes.len() || c.open(dir)).then_some(XferEnd::KernelSrc(conn))
                }
                (IpcRole::Server, ClientEnd::Thread(ct)) => {
                    let ready = matches!(
                        self.threads.get(ct.0).map(|x| x.state),
                        Some(RunState::Blocked(WaitReason::IpcSend(c2))) if c2 == conn
                    );
                    (ready && c.open(dir)).then_some(XferEnd::User(*ct))
                }
                (IpcRole::Client, _) => c.server.and_then(|st| {
                    let ready = matches!(
                        self.threads.get(st.0).map(|x| x.state),
                        Some(RunState::Blocked(WaitReason::IpcSend(c2))) if c2 == conn
                    );
                    (ready && c.open(dir)).then_some(XferEnd::User(st))
                }),
            }
        };
        let Some(sender) = sender else {
            cx.set_reg_committed(self, Reg::Eax, receiver_restart.num());
            return Ok(cx.block(self, WaitReason::IpcReceive(conn)));
        };
        let out = self.pump(
            Some(conn),
            Some(dir),
            sender,
            XferEnd::User(t),
            t,
            sender_restart,
            receiver_restart,
        );
        match out {
            PumpOut::Complete => {
                match sender {
                    XferEnd::User(st) => {
                        self.kspan_stitch(st, t);
                        self.blocked_sender_transition(st, conn)
                    }
                    XferEnd::KernelSrc(_) => {}
                    XferEnd::KernelSink(_) => unreachable!(),
                }
                Ok(SysOutcome::Done(ErrorCode::Success))
            }
            PumpOut::WindowFull => Ok(SysOutcome::Done(ErrorCode::Truncated)),
            PumpOut::BlockedCurrent => Ok(SysOutcome::Block),
            PumpOut::RestartCurrent => {
                cx.set_reg(self, Reg::Eax, receiver_restart.num());
                Ok(SysOutcome::Chain)
            }
            PumpOut::PeerFaulted => {
                cx.set_reg_committed(self, Reg::Eax, receiver_restart.num());
                Ok(cx.block(self, WaitReason::IpcReceive(conn)))
            }
            PumpOut::Preempted => Ok(SysOutcome::Preempted),
            PumpOut::FatalCurrent => Ok(SysOutcome::Kill("fatal IPC fault")),
            PumpOut::FatalPeer => {
                self.disconnect(conn, ErrorCode::PeerDisconnected);
                Err(Self::fail(ErrorCode::PeerDisconnected))
            }
        }
    }

    /// `ipc_server_wait_receive(ebx=port|pset, edi=buf, ecx=window)`.
    pub(crate) fn sys_ipc_server_wait_receive(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        // Already connected (e.g. chained from a send): just receive.
        if self.threads.get(t.0).and_then(|x| x.ipc.conn).is_some() {
            let conn = self.require_conn(t, IpcRole::Server)?;
            return self.do_receive(cx, IpcRole::Server, conn);
        }
        let h = cx.arg(self, ARG_HANDLE);
        let id = self.lookup_handle(t, h)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        match self.objects.get(id).map(|o| o.ty()) {
            Some(ObjType::Port) => {
                if self.try_accept_from_port(t, id)? {
                    let conn = self.threads.get(t.0).and_then(|x| x.ipc.conn).unwrap();
                    return self.do_receive(cx, IpcRole::Server, conn);
                }
                let Some(ObjData::Port { server_q, .. }) =
                    self.objects.get_mut(id).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::InvalidHandle));
                };
                server_q.enqueue(t, &mut self.stats.waitq);
                Ok(cx.block(self, WaitReason::PortWait(id)))
            }
            Some(ObjType::Portset) => {
                let members: Vec<ObjId> = match self.objects.get(id).map(|o| &o.data) {
                    Some(ObjData::Pset { members, .. }) => members.clone(),
                    _ => return Err(Self::fail(ErrorCode::InvalidHandle)),
                };
                for m in members {
                    if self.try_accept_from_port(t, m)? {
                        let conn = self.threads.get(t.0).and_then(|x| x.ipc.conn).unwrap();
                        return self.do_receive(cx, IpcRole::Server, conn);
                    }
                }
                let Some(ObjData::Pset { server_q, .. }) =
                    self.objects.get_mut(id).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::InvalidHandle));
                };
                server_q.enqueue(t, &mut self.stats.waitq);
                Ok(cx.block(self, WaitReason::PsetWait(id)))
            }
            _ => Err(Self::fail(ErrorCode::WrongType)),
        }
    }

    // ------------------------------------------------------------------
    // Disconnect and alert.
    // ------------------------------------------------------------------

    /// `ipc_{client,server}_disconnect()`.
    pub(crate) fn sys_ipc_disconnect(&mut self, cx: &mut SysCtx, role: IpcRole) -> SysResult {
        let t = cx.t;
        let th = self.threads.get(t.0).expect("current");
        let Some(conn) = th.ipc.conn else {
            return Ok(SysOutcome::Done(ErrorCode::NotConnected));
        };
        if th.ipc.role != Some(role) {
            return Ok(SysOutcome::Done(ErrorCode::NotConnected));
        }
        self.charge(self.cost.object_op);
        self.progress();
        self.disconnect_from(conn, ErrorCode::PeerDisconnected, Some(t));
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `ipc_{client,server}_alert()`: interrupt the peer's pending IPC
    /// operation promptly (without destroying the connection).
    pub(crate) fn sys_ipc_alert(&mut self, cx: &mut SysCtx, role: IpcRole) -> SysResult {
        let t = cx.t;
        let th = self.threads.get(t.0).expect("current");
        let Some(conn) = th.ipc.conn else {
            return Ok(SysOutcome::Done(ErrorCode::NotConnected));
        };
        if th.ipc.role != Some(role) {
            return Ok(SysOutcome::Done(ErrorCode::NotConnected));
        }
        self.charge(self.cost.object_op);
        self.progress();
        let peer = {
            let c = self
                .conns
                .get(conn.0)
                .ok_or(Self::fail(ErrorCode::NotConnected))?;
            match role {
                IpcRole::Client => c.server,
                IpcRole::Server => c.client_thread(),
            }
        };
        let Some(peer) = peer else {
            return Ok(SysOutcome::Done(ErrorCode::Success));
        };
        let blocked_on_conn = matches!(
            self.threads.get(peer.0).map(|x| x.state),
            Some(RunState::Blocked(WaitReason::IpcSend(c2) | WaitReason::IpcReceive(c2))) if c2 == conn
        );
        if blocked_on_conn {
            self.complete_blocked(peer, ErrorCode::Interrupted);
        } else if let Some(c) = self.conns.get_mut(conn.0) {
            match role {
                IpcRole::Client => c.alert_server = true,
                IpcRole::Server => c.alert_client = true,
            }
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    // ------------------------------------------------------------------
    // One-way messages (connectionless rendezvous on a port).
    // ------------------------------------------------------------------

    /// `ipc_send_oneway(ebx=port_ref, esi=buf, ecx=count)`.
    pub(crate) fn sys_ipc_send_oneway(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let port = self.port_handle(t, h)?;
        self.charge(self.cost.ipc_setup / 2);
        self.progress();
        // Kernel-buffered messages precede this send. Normally the buffer
        // and the receiver queue are never simultaneously non-empty (every
        // buffering site flushes, every receiver-enqueue site drains the
        // buffer first), so this flush is a no-op; it keeps port FIFO
        // robust rather than implicit.
        if self.port_has_buffered(port) {
            self.flush_buffered(t, port);
        }
        let receiver = match self.objects.get_mut(port).map(|o| &mut o.data) {
            Some(ObjData::Port {
                oneway_receivers, ..
            }) => oneway_receivers.pop(&mut self.stats.waitq),
            _ => return Err(Self::fail(ErrorCode::InvalidHandle)),
        };
        let Some(rt) = receiver else {
            let Some(ObjData::Port { oneway_senders, .. }) =
                self.objects.get_mut(port).map(|o| &mut o.data)
            else {
                return Err(Self::fail(ErrorCode::InvalidHandle));
            };
            oneway_senders.enqueue(t, &mut self.stats.waitq);
            cx.set_reg_committed(self, Reg::Eax, Sys::IpcSendOnewayMore.num());
            return Ok(cx.block(self, WaitReason::OnewaySend(port)));
        };
        let out = self.pump(
            None,
            None,
            XferEnd::User(t),
            XferEnd::User(rt),
            t,
            Sys::IpcSendOnewayMore,
            Sys::IpcWaitReceiveOneway,
        );
        match out {
            PumpOut::Complete => {
                self.stats.ipc_messages += 1;
                self.kspan_stitch(t, rt);
                self.complete_blocked(rt, ErrorCode::Success);
                Ok(SysOutcome::Done(ErrorCode::Success))
            }
            PumpOut::WindowFull => {
                // One-way: excess bytes are dropped; both sides learn it.
                self.complete_blocked(rt, ErrorCode::Truncated);
                Ok(SysOutcome::Done(ErrorCode::Truncated))
            }
            PumpOut::BlockedCurrent => {
                // Re-queue the receiver: the transfer restarts when the
                // sender's fault is serviced.
                if let Some(ObjData::Port {
                    oneway_receivers, ..
                }) = self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    oneway_receivers.requeue_front(rt, &mut self.stats.waitq);
                }
                Ok(SysOutcome::Block)
            }
            PumpOut::RestartCurrent => {
                if let Some(ObjData::Port {
                    oneway_receivers, ..
                }) = self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    oneway_receivers.requeue_front(rt, &mut self.stats.waitq);
                }
                cx.set_reg(self, Reg::Eax, Sys::IpcSendOnewayMore.num());
                Ok(SysOutcome::Chain)
            }
            PumpOut::PeerFaulted => {
                let Some(ObjData::Port { oneway_senders, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::InvalidHandle));
                };
                oneway_senders.enqueue(t, &mut self.stats.waitq);
                cx.set_reg_committed(self, Reg::Eax, Sys::IpcSendOnewayMore.num());
                Ok(cx.block(self, WaitReason::OnewaySend(port)))
            }
            PumpOut::Preempted => {
                if let Some(ObjData::Port {
                    oneway_receivers, ..
                }) = self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    oneway_receivers.requeue_front(rt, &mut self.stats.waitq);
                }
                Ok(SysOutcome::Preempted)
            }
            PumpOut::FatalCurrent => Ok(SysOutcome::Kill("fatal IPC fault")),
            PumpOut::FatalPeer => Err(Self::fail(ErrorCode::PeerDisconnected)),
        }
    }

    /// `ipc_[wait_]receive_oneway(ebx=port, edi=buf, ecx=window)`.
    pub(crate) fn sys_ipc_receive_oneway(&mut self, cx: &mut SysCtx, wait: bool) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let port = self.port_handle(t, h)?;
        self.charge(self.cost.ipc_setup / 2);
        self.progress();
        // Kernel-buffered messages (queued by the batched-submission path)
        // deliver before any rendezvous sender: they were sent first. The
        // check is free when the buffer is empty, which it always is for
        // programs that never call `ipc_submit`.
        if self.port_has_buffered(port) {
            return self.receive_buffered(cx, port);
        }
        let sender = match self.objects.get_mut(port).map(|o| &mut o.data) {
            Some(ObjData::Port { oneway_senders, .. }) => oneway_senders.pop(&mut self.stats.waitq),
            _ => return Err(Self::fail(ErrorCode::InvalidHandle)),
        };
        let Some(st) = sender else {
            if !wait {
                return Ok(SysOutcome::Done(ErrorCode::WouldBlock));
            }
            let Some(ObjData::Port {
                oneway_receivers, ..
            }) = self.objects.get_mut(port).map(|o| &mut o.data)
            else {
                return Err(Self::fail(ErrorCode::InvalidHandle));
            };
            oneway_receivers.enqueue(t, &mut self.stats.waitq);
            cx.set_reg_committed(self, Reg::Eax, Sys::IpcWaitReceiveOneway.num());
            return Ok(cx.block(self, WaitReason::OnewayReceive(port)));
        };
        let out = self.pump(
            None,
            None,
            XferEnd::User(st),
            XferEnd::User(t),
            t,
            Sys::IpcSendOnewayMore,
            Sys::IpcWaitReceiveOneway,
        );
        match out {
            PumpOut::Complete => {
                self.stats.ipc_messages += 1;
                self.kspan_stitch(st, t);
                self.complete_blocked(st, ErrorCode::Success);
                Ok(SysOutcome::Done(ErrorCode::Success))
            }
            PumpOut::WindowFull => {
                self.complete_blocked(st, ErrorCode::Truncated);
                Ok(SysOutcome::Done(ErrorCode::Truncated))
            }
            PumpOut::BlockedCurrent => {
                if let Some(ObjData::Port { oneway_senders, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    oneway_senders.requeue_front(st, &mut self.stats.waitq);
                }
                Ok(SysOutcome::Block)
            }
            PumpOut::RestartCurrent => {
                if let Some(ObjData::Port { oneway_senders, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    oneway_senders.requeue_front(st, &mut self.stats.waitq);
                }
                cx.set_reg(self, Reg::Eax, Sys::IpcWaitReceiveOneway.num());
                Ok(SysOutcome::Chain)
            }
            PumpOut::PeerFaulted => {
                let Some(ObjData::Port {
                    oneway_receivers, ..
                }) = self.objects.get_mut(port).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::InvalidHandle));
                };
                oneway_receivers.enqueue(t, &mut self.stats.waitq);
                cx.set_reg_committed(self, Reg::Eax, Sys::IpcWaitReceiveOneway.num());
                Ok(cx.block(self, WaitReason::OnewayReceive(port)))
            }
            PumpOut::Preempted => {
                if let Some(ObjData::Port { oneway_senders, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    oneway_senders.requeue_front(st, &mut self.stats.waitq);
                }
                Ok(SysOutcome::Preempted)
            }
            PumpOut::FatalCurrent => Ok(SysOutcome::Kill("fatal IPC fault")),
            PumpOut::FatalPeer => Err(Self::fail(ErrorCode::PeerDisconnected)),
        }
    }

    // ------------------------------------------------------------------
    // Kernel-buffered one-way messages (batched submission).
    // ------------------------------------------------------------------

    /// Does the port hold kernel-buffered messages from `ipc_submit`?
    pub(crate) fn port_has_buffered(&self, port: ObjId) -> bool {
        matches!(
            self.objects.get(port).map(|o| &o.data),
            Some(ObjData::Port { buffered, .. }) if !buffered.is_empty()
        )
    }

    /// Deliver the head buffered message into the current thread's receive
    /// window. A single-ended version of the pump: the sender already
    /// completed at submit time, so only the receiver can fault, restart,
    /// or get preempted. Partial progress lives in the message's `pos`,
    /// which survives a receiver fault so the restart resumes mid-message.
    pub(crate) fn receive_buffered(&mut self, cx: &mut SysCtx, port: ObjId) -> SysResult {
        let t = cx.t;
        let (bytes, mut pos) = {
            let Some(ObjData::Port { buffered, .. }) =
                self.objects.get_mut(port).map(|o| &mut o.data)
            else {
                return Err(Self::fail(ErrorCode::InvalidHandle));
            };
            let msg = buffered.front().expect("caller checked non-empty");
            (msg.bytes.clone(), msg.pos)
        };
        // Writes the in-flight position back to the queued message before
        // any exit that leaves it at the head.
        macro_rules! park_msg {
            () => {
                if let Some(ObjData::Port { buffered, .. }) =
                    self.objects.get_mut(port).map(|o| &mut o.data)
                {
                    if let Some(m) = buffered.front_mut() {
                        m.pos = pos;
                    }
                }
            };
        }
        let mut since_check: u32 = 0;
        while pos < bytes.len() {
            let r = &self.threads.get(t.0).expect("receiver").regs;
            let window = r.get(ARG_COUNT);
            let r_ptr = r.get(ARG_RBUF);
            if window == 0 {
                // One-way: excess bytes are dropped; the receiver learns it.
                self.pop_buffered(port);
                return Ok(SysOutcome::Done(ErrorCode::Truncated));
            }
            let mut chunk = (bytes.len() - pos) as u32;
            chunk = chunk.min(window);
            chunk = chunk.min(PAGE_SIZE - r_ptr % PAGE_SIZE);
            match self.cfg.preempt {
                Preemption::Partial => {
                    chunk = chunk.min(PP_CHUNK_BYTES - since_check % PP_CHUNK_BYTES)
                }
                Preemption::Full => {
                    chunk = chunk.min(FP_CHUNK_BYTES - since_check % FP_CHUNK_BYTES)
                }
                Preemption::None => {}
            }
            let space = match self.threads.get(t.0).and_then(|x| x.space) {
                Some(s) => s,
                None => {
                    self.pop_buffered(port);
                    return match self.pump_fatal(t, t) {
                        PumpOut::FatalCurrent => Ok(SysOutcome::Kill("fatal IPC fault")),
                        _ => unreachable!("victim is current"),
                    };
                }
            };
            let (rf, ro) = match self.pump_translate(t, space, r_ptr, true, FaultSide::Client) {
                Ok(loc) => loc,
                Err(f) => {
                    park_msg!();
                    return match self.pump_fault(f, t, t, Sys::IpcWaitReceiveOneway) {
                        PumpOut::BlockedCurrent => Ok(SysOutcome::Block),
                        PumpOut::RestartCurrent => {
                            cx.set_reg(self, Reg::Eax, Sys::IpcWaitReceiveOneway.num());
                            Ok(SysOutcome::Chain)
                        }
                        PumpOut::FatalCurrent => Ok(SysOutcome::Kill("fatal IPC fault")),
                        _ => unreachable!("faulter is current"),
                    };
                }
            };
            self.phys
                .write_slice(rf, ro, &bytes[pos..pos + chunk as usize]);
            self.progress();
            self.kprof.enter(crate::kprof::Phase::IpcCopy);
            self.charge(self.cost.copy_byte_per * chunk as u64);
            self.kprof.exit();
            self.end_advance(XferEnd::User(t), false, chunk);
            pos += chunk as usize;
            self.audit_commit(t);
            self.stats.ipc_bytes += chunk as u64;
            self.ktrace(TraceEvent::IpcTransfer {
                thread: t,
                bytes: chunk,
            });
            since_check += chunk;
            let check = match self.cfg.preempt {
                Preemption::Partial => since_check >= PP_CHUNK_BYTES,
                Preemption::Full => since_check >= FP_CHUNK_BYTES,
                Preemption::None => false,
            };
            if check {
                since_check = 0;
                self.charge(self.cost.preempt_check);
                if self.cur_cpu_mut().resched {
                    self.stats.preempt_points_taken += 1;
                    park_msg!();
                    self.set_reg_committed(t, Reg::Eax, Sys::IpcWaitReceiveOneway.num());
                    self.preempt_current_in_kernel(t);
                    return Ok(SysOutcome::Preempted);
                }
            }
        }
        self.pop_buffered(port);
        self.stats.ipc_messages += 1;
        self.ktrace(TraceEvent::IpcMessage { thread: t });
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// Drop the delivered (or truncated) head message.
    pub(crate) fn pop_buffered(&mut self, port: ObjId) {
        if let Some(ObjData::Port { buffered, .. }) =
            self.objects.get_mut(port).map(|o| &mut o.data)
        {
            buffered.pop_front();
        }
    }
}

//! System-call dispatch and all non-IPC handlers.
//!
//! Dispatch is *data-driven*: a `const` table ([`HANDLERS`]) indexed by
//! entrypoint number maps every row of [`fluke_api::SYSCALLS`] to its
//! handler function. The 54 common-object-operation rows (9 types × 6
//! operations) share a single handler that decodes the operation and
//! object type from the entrypoint's [`fluke_api::SysDesc`] row instead
//! of being hand-matched.
//!
//! Handler discipline (the atomic-API author contract, paper §4):
//!
//! 1. Read arguments and resolve handles first — these may fault, roll back
//!    and restart, but they never modify registers.
//! 2. Bring the registers to the next clean restart point *before* any
//!    operation that can block or take an indefinite time.
//! 3. Write results only at completion (`Done`), or by advancing parameter
//!    registers in place at committed progress points.
//!
//! Rule 2 is machine-checked: handlers touch registers only through the
//! [`SysCtx`] they are handed, which keeps the committed-snapshot
//! bookkeeping the atomicity auditor verifies at every block point.

use fluke_api::abi::{self, ARG_COUNT, ARG_HANDLE, ARG_RBUF, ARG_SBUF, ARG_VAL};
use fluke_api::state::{ObjStateFrame, ThreadStateFrame};
use fluke_api::{CommonOp, ErrorCode, ObjType, Sys, SYSCALLS, SYSCALL_COUNT};
use fluke_arch::{ProgramId, Reg};

use crate::config::Preemption;
use crate::ids::{ObjId, ThreadId};
use crate::object::ObjData;
use crate::thread::{IpcRole, RunState, WaitReason};

use super::ipc::AfterSend;
use super::{Kernel, SysCtx, SysOutcome, SysResult};

/// One system-call handler: a row of [`HANDLERS`]. Handlers receive the
/// kernel and the dispatch context; every register access and every
/// block/yield decision goes through the [`SysCtx`].
type Handler = fn(&mut Kernel, &mut SysCtx) -> SysResult;

/// Thin handler functions binding table rows to their implementations
/// (and their row-specific parameters, e.g. the after-send continuation
/// of the server send family).
macro_rules! handlers {
    ($(fn $name:ident($k:ident, $cx:ident) $body:block)*) => {
        $(fn $name($k: &mut Kernel, $cx: &mut SysCtx) -> SysResult $body)*
    };
}

handlers! {
    // The 54 common-object-operation rows share one handler: operation
    // and object type come from the table, not a hand-written match.
    fn h_obj_common(k, cx) {
        let op = cx.sys.common_op().expect("common-op table row");
        let ty = cx.sys.family().obj_type().expect("object family");
        match op {
            CommonOp::Create => k.obj_create(cx, ty),
            CommonOp::Destroy => k.obj_destroy(cx, ty),
            CommonOp::GetState => k.obj_get_state(cx, ty),
            CommonOp::SetState => k.obj_set_state(cx, ty),
            CommonOp::Move => k.obj_move(cx, ty),
            CommonOp::Reference => k.obj_reference(cx, ty),
        }
    }

    // Synchronization.
    fn h_mutex_lock(k, cx) { k.sys_mutex_lock(cx) }
    fn h_mutex_trylock(k, cx) { k.sys_mutex_trylock(cx) }
    fn h_mutex_unlock(k, cx) { k.sys_mutex_unlock(cx) }
    fn h_cond_wait(k, cx) { k.sys_cond_wait(cx) }
    fn h_cond_signal(k, cx) { k.sys_cond_signal(cx) }
    fn h_cond_broadcast(k, cx) { k.sys_cond_broadcast(cx) }

    // Threads and scheduling.
    fn h_thread_self(k, cx) { k.sys_thread_self(cx) }
    fn h_thread_interrupt(k, cx) { k.sys_thread_interrupt(cx) }
    fn h_thread_schedule(k, cx) { k.sys_thread_schedule(cx) }
    fn h_thread_wait(k, cx) { k.sys_thread_wait(cx) }
    fn h_thread_sleep(k, cx) { k.sys_thread_sleep(cx) }
    fn h_space_wait_threads(k, cx) { k.sys_space_wait_threads(cx) }
    fn h_sched_donate(k, cx) { k.sys_sched_donate(cx) }

    // Miscellaneous trivial calls.
    fn h_sys_null(_k, _cx) { Ok(SysOutcome::Done(ErrorCode::Success)) }
    fn h_sys_version(k, cx) {
        cx.set_reg(k, ARG_VAL, 0x0001_0000);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }
    fn h_sys_clock(k, cx) {
        let us = fluke_arch::cycles_to_us(k.now()) as u32;
        cx.set_reg(k, ARG_VAL, us);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }
    fn h_sys_cpu_id(k, cx) {
        cx.set_reg(k, ARG_VAL, 0);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }
    fn h_sys_yield(k, _cx) {
        k.cur_cpu_mut().resched = true;
        Ok(SysOutcome::Done(ErrorCode::Success))
    }
    fn h_sys_trace(k, cx) {
        let v = cx.arg(k, ARG_VAL);
        k.trace_mark(cx.t, v);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }
    fn h_sys_stats(k, cx) { k.sys_stats(cx) }

    // Memory.
    fn h_region_protect(k, cx) { k.sys_region_protect(cx) }
    fn h_mapping_protect(k, cx) { k.sys_mapping_protect(cx) }
    fn h_region_populate(k, cx) { k.sys_region_populate(cx) }
    fn h_region_search(k, cx) { k.sys_region_search(cx) }
    fn h_ref_compare(k, cx) { k.sys_ref_compare(cx) }

    // Ports (server-side waits without data).
    fn h_port_wait(k, cx) { k.sys_port_wait(cx) }
    fn h_pset_wait(k, cx) { k.sys_pset_wait(cx) }

    // IPC (implementations in ipc.rs).
    fn h_ipc_client_connect(k, cx) { k.sys_ipc_client_connect(cx) }
    fn h_ipc_client_connect_send(k, cx) { k.sys_ipc_client_connect_send(cx, false) }
    fn h_ipc_client_connect_send_over_receive(k, cx) { k.sys_ipc_client_connect_send(cx, true) }
    fn h_ipc_client_send(k, cx) { k.sys_ipc_client_send(cx, false) }
    fn h_ipc_client_send_over_receive(k, cx) { k.sys_ipc_client_send(cx, true) }
    fn h_ipc_client_send_more(k, cx) { k.sys_ipc_send_more(cx, IpcRole::Client) }
    fn h_ipc_client_receive(k, cx) { k.sys_ipc_receive(cx, IpcRole::Client, false) }
    fn h_ipc_client_receive_more(k, cx) { k.sys_ipc_receive(cx, IpcRole::Client, true) }
    fn h_ipc_client_disconnect(k, cx) { k.sys_ipc_disconnect(cx, IpcRole::Client) }
    fn h_ipc_client_alert(k, cx) { k.sys_ipc_alert(cx, IpcRole::Client) }
    fn h_ipc_server_wait_receive(k, cx) { k.sys_ipc_server_wait_receive(cx) }
    fn h_ipc_server_receive(k, cx) { k.sys_ipc_receive(cx, IpcRole::Server, false) }
    fn h_ipc_server_receive_more(k, cx) { k.sys_ipc_receive(cx, IpcRole::Server, true) }
    fn h_ipc_server_send(k, cx) { k.sys_ipc_server_send(cx, AfterSend::Complete) }
    fn h_ipc_server_send_wait_receive(k, cx) { k.sys_ipc_server_send(cx, AfterSend::WaitNext) }
    fn h_ipc_server_ack_send(k, cx) { k.sys_ipc_server_send(cx, AfterSend::Disconnect) }
    fn h_ipc_server_ack_send_wait_receive(k, cx) {
        k.sys_ipc_server_send(cx, AfterSend::DisconnectThenWait)
    }
    fn h_ipc_server_send_over_receive(k, cx) { k.sys_ipc_server_send(cx, AfterSend::Receive) }
    fn h_ipc_server_send_more(k, cx) { k.sys_ipc_send_more(cx, IpcRole::Server) }
    fn h_ipc_server_disconnect(k, cx) { k.sys_ipc_disconnect(cx, IpcRole::Server) }
    fn h_ipc_server_alert(k, cx) { k.sys_ipc_alert(cx, IpcRole::Server) }
    fn h_ipc_send_oneway(k, cx) { k.sys_ipc_send_oneway(cx) }
    fn h_ipc_wait_receive_oneway(k, cx) { k.sys_ipc_receive_oneway(cx, true) }
    fn h_ipc_receive_oneway(k, cx) { k.sys_ipc_receive_oneway(cx, false) }
    fn h_ipc_submit(k, cx) { k.sys_ipc_submit(cx) }
}

/// Map a table row to its handler. Evaluated at compile time to build
/// [`HANDLERS`]; the catch-all covers exactly the 54 common-op rows
/// (any future non-common entrypoint routed there trips
/// `h_obj_common`'s decode `expect`, which the test suite exercises for
/// every row).
const fn handler_for(sys: Sys) -> Handler {
    use Sys::*;
    match sys {
        MutexLock => h_mutex_lock,
        MutexTrylock => h_mutex_trylock,
        MutexUnlock => h_mutex_unlock,
        CondWait => h_cond_wait,
        CondSignal => h_cond_signal,
        CondBroadcast => h_cond_broadcast,
        ThreadSelf => h_thread_self,
        ThreadInterrupt => h_thread_interrupt,
        ThreadSchedule => h_thread_schedule,
        ThreadWait => h_thread_wait,
        ThreadSleep => h_thread_sleep,
        SpaceWaitThreads => h_space_wait_threads,
        SchedDonate => h_sched_donate,
        SysNull => h_sys_null,
        SysVersion => h_sys_version,
        SysClock => h_sys_clock,
        SysCpuId => h_sys_cpu_id,
        SysYield => h_sys_yield,
        SysTrace => h_sys_trace,
        SysStats => h_sys_stats,
        RegionProtect => h_region_protect,
        MappingProtect => h_mapping_protect,
        RegionPopulate => h_region_populate,
        RegionSearch => h_region_search,
        RefCompare => h_ref_compare,
        PortWait => h_port_wait,
        PsetWait => h_pset_wait,
        IpcClientConnect => h_ipc_client_connect,
        IpcClientConnectSend => h_ipc_client_connect_send,
        IpcClientConnectSendOverReceive => h_ipc_client_connect_send_over_receive,
        IpcClientSend => h_ipc_client_send,
        IpcClientSendOverReceive => h_ipc_client_send_over_receive,
        IpcClientSendMore => h_ipc_client_send_more,
        IpcClientReceive | IpcClientAckReceive => h_ipc_client_receive,
        IpcClientReceiveMore => h_ipc_client_receive_more,
        IpcClientDisconnect => h_ipc_client_disconnect,
        IpcClientAlert => h_ipc_client_alert,
        IpcServerWaitReceive => h_ipc_server_wait_receive,
        IpcServerReceive => h_ipc_server_receive,
        IpcServerReceiveMore => h_ipc_server_receive_more,
        IpcServerSend => h_ipc_server_send,
        IpcServerSendWaitReceive => h_ipc_server_send_wait_receive,
        IpcServerAckSend => h_ipc_server_ack_send,
        IpcServerAckSendWaitReceive => h_ipc_server_ack_send_wait_receive,
        IpcServerSendOverReceive => h_ipc_server_send_over_receive,
        IpcServerSendMore => h_ipc_server_send_more,
        IpcServerDisconnect => h_ipc_server_disconnect,
        IpcServerAlert => h_ipc_server_alert,
        IpcSendOneway | IpcSendOnewayMore => h_ipc_send_oneway,
        IpcWaitReceiveOneway => h_ipc_wait_receive_oneway,
        IpcReceiveOneway => h_ipc_receive_oneway,
        IpcSubmit => h_ipc_submit,
        _ => h_obj_common,
    }
}

/// The dispatch table: one handler per entrypoint, indexed by number.
const HANDLERS: [Handler; SYSCALL_COUNT] = {
    let mut tab = [h_obj_common as Handler; SYSCALL_COUNT];
    let mut i = 0;
    while i < SYSCALL_COUNT {
        tab[i] = handler_for(SYSCALLS[i].sys);
        i += 1;
    }
    tab
};

impl Kernel {
    /// Dispatch one system call: look the entrypoint up in the handler
    /// table and run it under the dispatch context.
    pub(crate) fn dispatch_sys(&mut self, cx: &mut SysCtx) -> SysResult {
        HANDLERS[cx.sys.num() as usize](self, cx)
    }

    // ------------------------------------------------------------------
    // Common object operations.
    // ------------------------------------------------------------------

    /// `*_create(ebx=vaddr, ...)`: create an object of `ty` at `vaddr` in
    /// the caller's space. The page must be mapped and writable (objects
    /// occupy application memory).
    /// A region/mapping window `[base, base+size)` is valid iff it is
    /// non-empty and its last byte fits in the 32-bit address space.
    /// Enforced wherever geometry enters the kernel (create and
    /// state-install), so the page-range walks downstream can assume
    /// `base + size - 1` never wraps.
    fn valid_window(base: u32, size: u32) -> bool {
        size != 0 && base.checked_add(size - 1).is_some()
    }

    fn obj_create(&mut self, cx: &mut SysCtx, ty: ObjType) -> SysResult {
        let t = cx.t;
        let vaddr = cx.arg(self, ARG_HANDLE);
        let loc = self.user_translate(t, vaddr, true)?;
        self.klock_section();
        self.charge(self.cost.object_create);
        self.progress();
        if self.objects.at_loc(loc).is_some() {
            return Err(Self::fail(ErrorCode::AlreadyExists));
        }
        let data = match ty {
            ObjType::Region => {
                let size = cx.arg(self, ARG_COUNT);
                let base = cx.arg(self, ARG_VAL);
                let keeper_tok = cx.arg(self, ARG_SBUF);
                if !Self::valid_window(base, size) {
                    return Err(Self::fail(ErrorCode::InvalidArg));
                }
                let keeper = if keeper_tok != 0 {
                    Some(self.lookup_typed(t, keeper_tok, ObjType::Port)?)
                } else {
                    None
                };
                let owner = self
                    .threads
                    .get(t.0)
                    .and_then(|x| x.space)
                    .ok_or(SysOutcome::Kill("no space"))?;
                ObjData::Region {
                    owner,
                    base,
                    size,
                    keeper,
                    keeper_token: keeper_tok,
                    self_token: vaddr,
                }
            }
            ObjType::Mapping => {
                let size = cx.arg(self, ARG_COUNT);
                let base = cx.arg(self, ARG_VAL);
                let region_tok = cx.arg(self, ARG_SBUF);
                let offset = cx.arg(self, ARG_RBUF);
                if !Self::valid_window(base, size) {
                    return Err(Self::fail(ErrorCode::InvalidArg));
                }
                let region = self.resolve_region_handle(t, region_tok)?;
                let space = self
                    .threads
                    .get(t.0)
                    .and_then(|x| x.space)
                    .ok_or(SysOutcome::Kill("no space"))?;
                ObjData::Mapping {
                    space,
                    base,
                    size,
                    region,
                    offset,
                    region_token: region_tok,
                    writable: true,
                }
            }
            ObjType::Space => {
                let sid = self.create_space();
                ObjData::Space(sid)
            }
            ObjType::Thread => {
                let caller_space = self.threads.get(t.0).and_then(|x| x.space);
                let id = ThreadId(
                    self.threads
                        .insert(crate::thread::Thread::new_user(ThreadId(0))),
                );
                let th = self.threads.get_mut(id.0).unwrap();
                th.id = id;
                th.space = caller_space;
                self.stats.threads_created += 1;
                self.stats.kmem_delta(self.cfg.per_thread_kmem() as i64);
                if let Some(sid) = caller_space {
                    if let Some(s) = self.spaces.get_mut(sid.0) {
                        s.threads.push(id);
                    }
                }
                ObjData::Thread(id)
            }
            _ => ObjData::new_simple(ty).expect("simple type"),
        };
        let oid = self
            .objects
            .insert(loc, data)
            .expect("checked vacancy above");
        self.stats.objects_created += 1;
        // Record back-links.
        match self.objects.get(oid).map(|o| &o.data) {
            Some(ObjData::Region { owner, .. }) => {
                let owner = *owner;
                if let Some(s) = self.spaces.get_mut(owner.0) {
                    s.regions.push(oid);
                }
            }
            Some(ObjData::Mapping {
                space, base, size, ..
            }) => {
                let (space, base, size) = (*space, *base, *size);
                if let Some(s) = self.spaces.get_mut(space.0) {
                    s.add_mapping(oid, base, size);
                }
            }
            Some(ObjData::Space(sid)) => {
                let sid = *sid;
                if let Some(s) = self.spaces.get_mut(sid.0) {
                    s.obj = Some(oid);
                }
            }
            Some(ObjData::Thread(tid)) => {
                let tid = *tid;
                if let Some(th) = self.threads.get_mut(tid.0) {
                    th.obj = Some(oid);
                }
            }
            _ => {}
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// A region handle may be a Region or a Reference pointing at one.
    fn resolve_region_handle(&mut self, t: ThreadId, vaddr: u32) -> Result<ObjId, SysOutcome> {
        let id = self.lookup_handle(t, vaddr)?;
        match self.objects.get(id).map(|o| &o.data) {
            Some(ObjData::Region { .. }) => Ok(id),
            Some(ObjData::Ref { target, .. }) => {
                let target = target.ok_or(Self::fail(ErrorCode::InvalidHandle))?;
                match self.objects.get(target).map(|o| o.ty()) {
                    Some(ObjType::Region) => Ok(target),
                    _ => Err(Self::fail(ErrorCode::WrongType)),
                }
            }
            _ => Err(Self::fail(ErrorCode::WrongType)),
        }
    }

    /// `*_destroy(ebx=handle)`.
    fn obj_destroy(&mut self, cx: &mut SysCtx, ty: ObjType) -> SysResult {
        let vaddr = cx.arg(self, ARG_HANDLE);
        let oid = self.lookup_typed(cx.t, vaddr, ty)?;
        self.klock_section();
        self.charge(self.cost.object_destroy);
        self.progress();
        self.destroy_object(oid);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// Tear down an object and its linkage.
    pub(crate) fn destroy_object(&mut self, oid: ObjId) {
        let Some(obj) = self.objects.remove(oid) else {
            return;
        };
        match obj.data {
            ObjData::Mutex { mut waiters, .. } | ObjData::Cond { mut waiters } => {
                // Waiters restart their (rewritten) calls and observe the
                // object's absence — no special-case teardown state.
                for w in waiters.drain(&mut self.stats.waitq) {
                    self.unblock(w);
                }
            }
            ObjData::Port {
                pset,
                mut connect_q,
                mut server_q,
                mut oneway_senders,
                mut oneway_receivers,
                ..
            } => {
                for c in connect_q.drain(&mut self.stats.waitq) {
                    self.disconnect(c, ErrorCode::PeerDisconnected);
                }
                for w in server_q
                    .drain(&mut self.stats.waitq)
                    .into_iter()
                    .chain(oneway_senders.drain(&mut self.stats.waitq))
                    .chain(oneway_receivers.drain(&mut self.stats.waitq))
                {
                    self.unblock(w);
                }
                if let Some(p) = pset {
                    if let Some(ObjData::Pset { members, .. }) =
                        self.objects.get_mut(p).map(|o| &mut o.data)
                    {
                        members.retain(|&m| m != oid);
                    }
                }
            }
            ObjData::Pset {
                members,
                mut server_q,
            } => {
                for w in server_q.drain(&mut self.stats.waitq) {
                    self.unblock(w);
                }
                for m in members {
                    if let Some(ObjData::Port { pset, .. }) =
                        self.objects.get_mut(m).map(|o| &mut o.data)
                    {
                        *pset = None;
                    }
                }
            }
            ObjData::Region { owner, .. } => {
                if let Some(s) = self.spaces.get_mut(owner.0) {
                    s.regions.retain(|&r| r != oid);
                }
            }
            ObjData::Mapping {
                space, base, size, ..
            } => {
                if let Some(s) = self.spaces.get_mut(space.0) {
                    s.remove_mapping(oid);
                    // Flush PTEs derived through this mapping's range.
                    let first = base / abi::PAGE_SIZE;
                    let last = (base.saturating_add(size.saturating_sub(1))) / abi::PAGE_SIZE;
                    s.unmap_vpn_range(first, last);
                    self.tlb_shootdown(space);
                }
            }
            ObjData::Space(sid) => {
                let victims: Vec<ThreadId> = self
                    .threads
                    .iter()
                    .filter(|(_, th)| th.space == Some(sid) && !th.is_halted())
                    .map(|(i, _)| ThreadId(i))
                    .collect();
                for v in victims {
                    self.halt_thread(v);
                }
                // Retire the dying space's TLB counters so they survive in
                // the kernel-wide totals.
                if let Some(s) = self.spaces.get(sid.0) {
                    self.stats.tlb_retired.merge(s.tlb_stats());
                }
                self.spaces.remove(sid.0);
            }
            ObjData::Thread(tid) => {
                self.halt_thread(tid);
            }
            ObjData::Ref { .. } => {}
        }
    }

    /// `*_get_state(ebx=handle, esi=buf, ecx=words)`: marshal the object's
    /// complete exportable state into the caller's buffer. Prompt by
    /// construction: a blocked target's registers are already a clean
    /// continuation, so nothing ever waits on user activity.
    fn obj_get_state(&mut self, cx: &mut SysCtx, ty: ObjType) -> SysResult {
        let t = cx.t;
        let vaddr = cx.arg(self, ARG_HANDLE);
        let buf = cx.arg(self, ARG_SBUF);
        let cap = cx.arg(self, ARG_COUNT) as usize;
        let oid = self.lookup_typed(t, vaddr, ty)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let frame = self.export_state(oid, ty)?;
        let words = frame.to_words();
        if words.len() > cap {
            return Err(Self::fail(ErrorCode::BufferTooSmall));
        }
        // The whole destination window must fit below the top of the
        // address space; wrapping would marshal into low memory.
        let bytes = (words.len() as u32) * 4;
        if bytes > 0 && buf.checked_add(bytes - 1).is_none() {
            return Err(Self::fail(ErrorCode::InvalidArg));
        }
        for (i, w) in words.iter().enumerate() {
            self.write_user_u32(t, buf + (i as u32) * 4, *w)?;
        }
        cx.set_reg(self, ARG_VAL, words.len() as u32);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// Build the exportable frame for an object.
    pub(crate) fn export_state(
        &mut self,
        oid: ObjId,
        ty: ObjType,
    ) -> Result<ObjStateFrame, SysOutcome> {
        use fluke_api::state::*;
        let obj = self
            .objects
            .get(oid)
            .ok_or(Self::fail(ErrorCode::InvalidHandle))?;
        Ok(match (&obj.data, ty) {
            (ObjData::Mutex { locked, .. }, _) => ObjStateFrame::Mutex(MutexStateFrame {
                locked: *locked as u32,
            }),
            (ObjData::Cond { .. }, _) => ObjStateFrame::Cond(CondStateFrame::default()),
            (
                ObjData::Mapping {
                    base,
                    size,
                    offset,
                    region_token,
                    ..
                },
                _,
            ) => ObjStateFrame::Mapping(MappingStateFrame {
                base: *base,
                size: *size,
                region_token: *region_token,
                offset: *offset,
            }),
            (
                ObjData::Region {
                    base,
                    size,
                    keeper_token,
                    ..
                },
                _,
            ) => ObjStateFrame::Region(RegionStateFrame {
                base: *base,
                size: *size,
                keeper_token: *keeper_token,
            }),
            (ObjData::Port { pset_token, .. }, _) => ObjStateFrame::Port(PortStateFrame {
                pset_token: *pset_token,
            }),
            (ObjData::Pset { .. }, _) => ObjStateFrame::Pset(PsetStateFrame::default()),
            (ObjData::Space(_), _) => ObjStateFrame::Space(SpaceStateFrame::default()),
            (ObjData::Ref { target_token, .. }, _) => ObjStateFrame::Ref(RefStateFrame {
                target_token: *target_token,
            }),
            (ObjData::Thread(tid), _) => {
                let tid = *tid;
                // Extraction forces the "roll back and restart" contract:
                // a process-model thread preempted in-kernel loses its
                // retained stack so its registers are the whole truth.
                if let Some(th) = self.threads.get_mut(tid.0) {
                    th.kstack_retained = false;
                }
                let th = self
                    .threads
                    .get(tid.0)
                    .ok_or(Self::fail(ErrorCode::InvalidHandle))?;
                ObjStateFrame::Thread(ThreadStateFrame {
                    regs: th.regs,
                    program: th.program.unwrap_or(ProgramId(u64::MAX)),
                    space_token: th.space_token,
                    priority: th.priority,
                    runnable: match th.state {
                        RunState::Stopped | RunState::Halted => 0,
                        _ => 1,
                    },
                    ipc_phase: th.ipc.conn.map(|_| 1).unwrap_or(0),
                })
            }
        })
    }

    /// `*_set_state(ebx=handle, esi=buf, ecx=words)`: install previously
    /// exported state. Restoring a thread frame makes the new thread behave
    /// indistinguishably from the original (the correctness requirement).
    fn obj_set_state(&mut self, cx: &mut SysCtx, ty: ObjType) -> SysResult {
        let t = cx.t;
        let vaddr = cx.arg(self, ARG_HANDLE);
        let buf = cx.arg(self, ARG_SBUF);
        let n = (cx.arg(self, ARG_COUNT) as usize).min(fluke_api::state::MAX_FRAME_WORDS);
        let oid = self.lookup_typed(t, vaddr, ty)?;
        // The whole source window must fit below the top of the address
        // space; wrapping would unmarshal from low memory.
        let bytes = (n as u32) * 4;
        if bytes > 0 && buf.checked_add(bytes - 1).is_none() {
            return Err(Self::fail(ErrorCode::InvalidArg));
        }
        let mut words = Vec::with_capacity(n);
        for i in 0..n {
            words.push(self.read_user_u32(t, buf + (i as u32) * 4)?);
        }
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let frame = ObjStateFrame::from_words(ty, &words).map_err(Self::fail)?;
        self.install_state(t, oid, frame)?;
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// Apply an exported frame to an object.
    pub(crate) fn install_state(
        &mut self,
        caller: ThreadId,
        oid: ObjId,
        frame: ObjStateFrame,
    ) -> Result<(), SysOutcome> {
        match frame {
            ObjStateFrame::Mutex(f) => {
                let wake = {
                    let Some(ObjData::Mutex { locked, waiters }) =
                        self.objects.get_mut(oid).map(|o| &mut o.data)
                    else {
                        return Err(Self::fail(ErrorCode::WrongType));
                    };
                    *locked = f.locked != 0;
                    if !*locked {
                        waiters.pop(&mut self.stats.waitq)
                    } else {
                        None
                    }
                };
                if let Some(w) = wake {
                    self.unblock(w);
                }
            }
            ObjStateFrame::Cond(_) | ObjStateFrame::Pset(_) | ObjStateFrame::Space(_) => {}
            ObjStateFrame::Region(f) => {
                if !Self::valid_window(f.base, f.size) {
                    return Err(Self::fail(ErrorCode::InvalidArg));
                }
                let keeper = if f.keeper_token != 0 {
                    Some(self.lookup_typed(caller, f.keeper_token, ObjType::Port)?)
                } else {
                    None
                };
                let Some(ObjData::Region {
                    base,
                    size,
                    keeper: k,
                    keeper_token,
                    ..
                }) = self.objects.get_mut(oid).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::WrongType));
                };
                *base = f.base;
                *size = f.size;
                *k = keeper;
                *keeper_token = f.keeper_token;
            }
            ObjStateFrame::Mapping(f) => {
                if !Self::valid_window(f.base, f.size) {
                    return Err(Self::fail(ErrorCode::InvalidArg));
                }
                let region = self.resolve_region_handle(caller, f.region_token)?;
                let Some(ObjData::Mapping {
                    space,
                    base,
                    size,
                    region: r,
                    offset,
                    region_token,
                    ..
                }) = self.objects.get_mut(oid).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::WrongType));
                };
                *base = f.base;
                *size = f.size;
                *r = region;
                *offset = f.offset;
                *region_token = f.region_token;
                // Keep the destination space's interval index coherent with
                // the mapping's new window.
                let space = *space;
                if let Some(s) = self.spaces.get_mut(space.0) {
                    s.update_mapping(oid, f.base, f.size);
                }
            }
            ObjStateFrame::Port(f) => {
                let pset = if f.pset_token != 0 {
                    Some(self.lookup_typed(caller, f.pset_token, ObjType::Portset)?)
                } else {
                    None
                };
                if let Some(p) = pset {
                    if let Some(ObjData::Pset { members, .. }) =
                        self.objects.get_mut(p).map(|o| &mut o.data)
                    {
                        if !members.contains(&oid) {
                            members.push(oid);
                        }
                    }
                }
                let Some(ObjData::Port {
                    pset: ps,
                    pset_token,
                    ..
                }) = self.objects.get_mut(oid).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::WrongType));
                };
                *ps = pset;
                *pset_token = f.pset_token;
            }
            ObjStateFrame::Ref(f) => {
                let target = if f.target_token != 0 {
                    Some(self.lookup_handle(caller, f.target_token)?)
                } else {
                    None
                };
                let Some(ObjData::Ref {
                    target: tg,
                    target_token,
                }) = self.objects.get_mut(oid).map(|o| &mut o.data)
                else {
                    return Err(Self::fail(ErrorCode::WrongType));
                };
                *tg = target;
                *target_token = f.target_token;
            }
            ObjStateFrame::Thread(f) => {
                let Some(ObjData::Thread(tid)) = self.objects.get(oid).map(|o| &o.data) else {
                    return Err(Self::fail(ErrorCode::WrongType));
                };
                let tid = *tid;
                self.install_thread_state(caller, tid, f)?;
            }
        }
        Ok(())
    }

    /// Install a thread frame: unlink the target from any wait, replace its
    /// registers wholesale, and start or stop it per the frame.
    fn install_thread_state(
        &mut self,
        caller: ThreadId,
        tid: ThreadId,
        f: ThreadStateFrame,
    ) -> Result<(), SysOutcome> {
        // Installing a frame into the *calling* thread would race the
        // syscall completion path (which writes eax/eip after the handler
        // returns) and double-schedule the caller; managers restore other
        // threads, never themselves.
        if tid == caller {
            return Err(Self::fail(ErrorCode::InvalidArg));
        }
        // Resolve the space handle in the *caller's* naming.
        let new_space = if f.space_token != 0 {
            let sobj = self.lookup_typed(caller, f.space_token, ObjType::Space)?;
            match self.objects.get(sobj).map(|o| &o.data) {
                Some(ObjData::Space(sid)) => Some(*sid),
                _ => return Err(Self::fail(ErrorCode::WrongType)),
            }
        } else {
            None
        };
        let program = if f.program.0 == u64::MAX {
            None
        } else {
            Some(
                self.program(f.program)
                    .ok_or(Self::fail(ErrorCode::InvalidArg))?,
            )
        };
        // Pull the target out of whatever it is doing. Its old state is
        // discarded wholesale — the frame is the complete new truth. Any
        // open request the target carried ends here: the installed frame
        // starts a fresh one at its next kernel entry.
        self.kspan.on_abort(tid);
        self.unlink_waiter(tid);
        {
            let th = self
                .threads
                .get_mut(tid.0)
                .ok_or(Self::fail(ErrorCode::InvalidHandle))?;
            if th.is_ready() {
                self.sched_remove(tid);
            }
        }
        let old_conn = {
            let th = self.threads.get_mut(tid.0).unwrap();
            th.ipc.conn.take()
        };
        if let Some(c) = old_conn {
            self.disconnect(c, ErrorCode::PeerDisconnected);
        }
        let old_space = self.threads.get(tid.0).and_then(|x| x.space);
        let th = self.threads.get_mut(tid.0).unwrap();
        th.regs = f.regs;
        th.priority = f.priority;
        th.inflight = None;
        th.open_fault = None;
        th.kstack_retained = false;
        th.interrupted = false;
        th.space_token = f.space_token;
        if let Some(p) = program {
            th.program = Some(f.program);
            th.text = Some(p);
        }
        if let Some(ns) = new_space {
            th.space = Some(ns);
        }
        let now_space = th.space;
        let runnable = f.runnable != 0;
        let prio = th.priority;
        let was_running = matches!(th.state, RunState::Running(_));
        th.state = if runnable {
            RunState::Ready
        } else {
            RunState::Stopped
        };
        if was_running {
            self.clear_running_cpu(tid);
        }
        if runnable {
            self.sched_push(tid, prio);
            let now = self.now();
            self.kick_parked(now);
        }
        // Maintain space thread lists.
        if old_space != now_space {
            if let Some(os) = old_space.and_then(|s| self.spaces.get_mut(s.0)) {
                os.threads.retain(|&x| x != tid);
            }
            if let Some(ns) = now_space.and_then(|s| self.spaces.get_mut(s.0)) {
                if !ns.threads.contains(&tid) {
                    ns.threads.push(tid);
                }
            }
        }
        Ok(())
    }

    /// `*_move(ebx=old_handle, edx=new_vaddr)`: rename an object to a new
    /// virtual address (the underlying physical slot moves with it).
    fn obj_move(&mut self, cx: &mut SysCtx, ty: ObjType) -> SysResult {
        let t = cx.t;
        let old = cx.arg(self, ARG_HANDLE);
        let new = cx.arg(self, ARG_VAL);
        let oid = self.lookup_typed(t, old, ty)?;
        let new_loc = self.user_translate(t, new, true)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        if self.objects.relocate(oid, new_loc) {
            // Keep self-naming tokens in sync for fault messages.
            if let Some(ObjData::Region { self_token, .. }) =
                self.objects.get_mut(oid).map(|o| &mut o.data)
            {
                *self_token = new;
            }
            Ok(SysOutcome::Done(ErrorCode::Success))
        } else {
            Err(Self::fail(ErrorCode::AlreadyExists))
        }
    }

    /// `*_reference(ebx=target_handle, edx=ref_handle)`: point a Reference
    /// object at the target.
    fn obj_reference(&mut self, cx: &mut SysCtx, ty: ObjType) -> SysResult {
        let t = cx.t;
        let target_tok = cx.arg(self, ARG_HANDLE);
        let ref_tok = cx.arg(self, ARG_VAL);
        let target = self.lookup_typed(t, target_tok, ty)?;
        let r = self.lookup_typed(t, ref_tok, ObjType::Reference)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Ref {
            target: tg,
            target_token,
        }) = self.objects.get_mut(r).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::WrongType));
        };
        *tg = Some(target);
        *target_token = target_tok;
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    // ------------------------------------------------------------------
    // Synchronization.
    // ------------------------------------------------------------------

    /// `mutex_lock(ebx=mutex)` — the canonical "Long" call: acquires or
    /// sleeps. Its registers already *are* the restart continuation, so
    /// blocking requires no bookkeeping beyond the wait-queue entry.
    fn sys_mutex_lock(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let m = self.lookup_typed(t, h, ObjType::Mutex)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Mutex { locked, waiters }) = self.objects.get_mut(m).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        if !*locked {
            *locked = true;
            Ok(SysOutcome::Done(ErrorCode::Success))
        } else {
            waiters.enqueue(t, &mut self.stats.waitq);
            Ok(cx.block(self, WaitReason::Mutex(m)))
        }
    }

    /// `mutex_trylock(ebx=mutex)`.
    fn sys_mutex_trylock(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let m = self.lookup_typed(cx.t, h, ObjType::Mutex)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Mutex { locked, .. }) = self.objects.get_mut(m).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        if !*locked {
            *locked = true;
            Ok(SysOutcome::Done(ErrorCode::Success))
        } else {
            Ok(SysOutcome::Done(ErrorCode::WouldBlock))
        }
    }

    /// `mutex_unlock(ebx=mutex)`.
    fn sys_mutex_unlock(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let m = self.lookup_typed(cx.t, h, ObjType::Mutex)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Mutex { locked, waiters }) = self.objects.get_mut(m).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        *locked = false;
        let next = waiters.pop(&mut self.stats.waitq);
        if let Some(w) = next {
            // The waiter re-executes `mutex_lock` from its register
            // continuation and re-contends.
            self.unblock(w);
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `cond_wait(ebx=cond, edx=mutex)` — the paper's worked example of a
    /// multi-stage call (§4.3): release the mutex, then *rewrite the
    /// thread's entrypoint register to `mutex_lock(mutex)`* and sleep on
    /// the condition queue. Wakeup or interruption automatically retries
    /// only the mutex re-acquisition, never the whole wait.
    fn sys_cond_wait(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let ch = cx.arg(self, ARG_HANDLE);
        let mh = cx.arg(self, ARG_VAL);
        let c = self.lookup_typed(t, ch, ObjType::Cond)?;
        let m = self.lookup_typed(t, mh, ObjType::Mutex)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        // Stage 1: release the mutex (waking one contender).
        let woken = {
            let Some(ObjData::Mutex { locked, waiters }) =
                self.objects.get_mut(m).map(|o| &mut o.data)
            else {
                return Err(Self::fail(ErrorCode::InvalidHandle));
            };
            *locked = false;
            waiters.pop(&mut self.stats.waitq)
        };
        if let Some(w) = woken {
            self.unblock(w);
        }
        // Stage 2: move the continuation to `mutex_lock(mutex)` — a
        // declared commit point — and sleep.
        cx.set_reg(self, Reg::Eax, Sys::MutexLock.num());
        cx.set_reg(self, ARG_HANDLE, mh);
        cx.commit(self);
        let Some(ObjData::Cond { waiters }) = self.objects.get_mut(c).map(|o| &mut o.data) else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        waiters.enqueue(t, &mut self.stats.waitq);
        Ok(cx.block(self, WaitReason::Cond(c)))
    }

    /// `cond_signal(ebx=cond)`.
    fn sys_cond_signal(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let c = self.lookup_typed(cx.t, h, ObjType::Cond)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let woken = {
            let Some(ObjData::Cond { waiters }) = self.objects.get_mut(c).map(|o| &mut o.data)
            else {
                return Err(Self::fail(ErrorCode::InvalidHandle));
            };
            waiters.pop(&mut self.stats.waitq)
        };
        if let Some(w) = woken {
            // The waiter's registers already say `mutex_lock(mutex)`.
            self.unblock(w);
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `cond_broadcast(ebx=cond)`.
    fn sys_cond_broadcast(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let c = self.lookup_typed(cx.t, h, ObjType::Cond)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let woken: Vec<ThreadId> = {
            let Some(ObjData::Cond { waiters }) = self.objects.get_mut(c).map(|o| &mut o.data)
            else {
                return Err(Self::fail(ErrorCode::InvalidHandle));
            };
            waiters.drain(&mut self.stats.waitq)
        };
        for w in woken {
            self.unblock(w);
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    // ------------------------------------------------------------------
    // Threads and scheduling.
    // ------------------------------------------------------------------

    /// `thread_self()` → `edx` = the caller's thread ordinal (the paper's
    /// `getpid` analogue; Trivial: touches nothing that can fault).
    fn sys_thread_self(&mut self, cx: &mut SysCtx) -> SysResult {
        cx.set_reg(self, ARG_VAL, cx.t.0);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `thread_interrupt(ebx=thread)`: break the target out of any sleeping
    /// entrypoint; its next dispatch of a Long/Multi-stage call returns
    /// `Interrupted` with the register continuation intact for re-issue.
    fn sys_thread_interrupt(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let target = self.thread_handle(cx.t, h)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let blocked = self
            .threads
            .get(target.0)
            .map(|x| x.is_blocked())
            .unwrap_or(false);
        if let Some(th) = self.threads.get_mut(target.0) {
            th.interrupted = true;
        }
        if blocked {
            self.unlink_waiter(target);
            self.unblock(target);
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `thread_schedule(ebx=thread)`: directed yield — hand the CPU to the
    /// target if it is ready.
    fn sys_thread_schedule(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let target = self.thread_handle(cx.t, h)?;
        self.charge(self.cost.schedule_op);
        self.progress();
        // Single lookup: a handle may outlive its thread (destruction keeps
        // the arena slot, but future lifecycle changes must not reintroduce
        // a second-`get` panic window here).
        if let Some(th) = self.threads.get(target.0) {
            if th.is_ready() {
                let prio = th.priority;
                self.sched_remove(target);
                self.sched_push_front_here(target, prio);
                self.cur_cpu_mut().resched = true;
            }
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `thread_wait(ebx=thread)`: join — sleep until the target halts.
    fn sys_thread_wait(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let target = self.thread_handle(t, h)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        if target == t {
            return Err(Self::fail(ErrorCode::InvalidArg));
        }
        // Single lookup, for the same reason as `sys_thread_schedule`:
        // a missing or halted target means the join completes immediately.
        let Some(th) = self.threads.get_mut(target.0) else {
            return Ok(SysOutcome::Done(ErrorCode::Success));
        };
        if th.is_halted() {
            return Ok(SysOutcome::Done(ErrorCode::Success));
        }
        th.joiners.enqueue(t, &mut self.stats.waitq);
        Ok(cx.block(self, WaitReason::Join(target)))
    }

    /// `thread_sleep()`: sleep until `thread_interrupt` or a timer wake.
    fn sys_thread_sleep(&mut self, cx: &mut SysCtx) -> SysResult {
        self.charge(self.cost.object_op);
        self.progress();
        Ok(cx.block(self, WaitReason::Sleep))
    }

    /// `space_wait_threads(ebx=space)`: sleep until the space has no live
    /// threads (used by managers to reap children).
    fn sys_space_wait_threads(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let sobj = self.lookup_typed(t, h, ObjType::Space)?;
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Space(sid)) = self.objects.get(sobj).map(|o| &o.data) else {
            return Err(Self::fail(ErrorCode::WrongType));
        };
        let sid = *sid;
        let any_live = self
            .threads
            .iter()
            .any(|(_, x)| x.space == Some(sid) && !x.is_halted() && x.id != t);
        if !any_live {
            return Ok(SysOutcome::Done(ErrorCode::Success));
        }
        // Register on the space's wait queue so the halt path wakes us
        // without scanning the thread arena.
        if let Some(sp) = self.spaces.get_mut(sid.0) {
            sp.idle_waiters.enqueue(t, &mut self.stats.waitq);
        }
        Ok(cx.block(self, WaitReason::SpaceIdle(sid)))
    }

    /// `sched_donate(ebx=thread)`: donate the CPU to the target and sleep
    /// until it blocks or halts.
    fn sys_sched_donate(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let target = self.thread_handle(t, h)?;
        self.charge(self.cost.schedule_op);
        self.progress();
        if target == t {
            return Err(Self::fail(ErrorCode::InvalidArg));
        }
        // Single lookup (same audit as `sys_thread_schedule`).
        let prio = match self.threads.get(target.0) {
            Some(th) if th.is_ready() => th.priority,
            _ => return Err(Self::fail(ErrorCode::WouldBlock)),
        };
        self.sched_remove(target);
        self.sched_push_front_here(target, prio);
        // Register on the donee's wait queue so its halt path wakes us
        // without scanning the thread arena.
        if let Some(th) = self.threads.get_mut(target.0) {
            th.donors.enqueue(t, &mut self.stats.waitq);
        }
        Ok(cx.block(self, WaitReason::Donate(target)))
    }

    /// Resolve a thread handle (Thread object or Reference to one).
    pub(crate) fn thread_handle(
        &mut self,
        t: ThreadId,
        vaddr: u32,
    ) -> Result<ThreadId, SysOutcome> {
        let id = self.lookup_handle(t, vaddr)?;
        let resolved = match self.objects.get(id).map(|o| &o.data) {
            Some(ObjData::Thread(tid)) => *tid,
            Some(ObjData::Ref {
                target: Some(tg), ..
            }) => match self.objects.get(*tg).map(|o| &o.data) {
                Some(ObjData::Thread(tid)) => *tid,
                _ => return Err(Self::fail(ErrorCode::WrongType)),
            },
            _ => return Err(Self::fail(ErrorCode::WrongType)),
        };
        Ok(resolved)
    }

    // ------------------------------------------------------------------
    // Miscellaneous.
    // ------------------------------------------------------------------

    /// `sys_stats(ebx=selector)` → `edx`: read a kernel counter.
    fn sys_stats(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let sel = cx.arg(self, ARG_HANDLE);
        // Selectors >= 0x100 are the "exported facilities" of
        // paper §5.6: privileged pseudo-kernel operations available
        // only to threads of kernel-alias spaces (legacy
        // process-model code running in user mode in the kernel's
        // address space). They jump into supervisor mode, perform a
        // short nonblocking activity, and return.
        if sel >= 0x100 {
            let alias = self
                .threads
                .get(t.0)
                .and_then(|x| x.space)
                .map(|s| {
                    self.spaces
                        .get(s.0)
                        .map(|x| x.kernel_alias)
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            if !alias {
                return Err(Self::fail(ErrorCode::PermissionDenied));
            }
            self.charge(self.cost.object_op);
            self.progress();
            match sel {
                // Allocate a kernel frame and map it writable at
                // the address in esi.
                0x100 => {
                    let vaddr = cx.arg(self, ARG_SBUF);
                    let frame = self.phys.alloc();
                    let sid = self.threads.get(t.0).and_then(|x| x.space).unwrap();
                    if let Some(s) = self.spaces.get_mut(sid.0) {
                        s.map_page(vaddr, frame, true);
                    }
                    cx.set_reg(self, ARG_VAL, frame);
                }
                // "Install an interrupt handler": record the
                // binding (modeled as a trace entry).
                0x101 => {
                    let irq = cx.arg(self, ARG_VAL);
                    self.trace_mark(t, 0x1000_0000 | irq);
                }
                _ => return Err(Self::fail(ErrorCode::InvalidArg)),
            }
            return Ok(SysOutcome::Done(ErrorCode::Success));
        }
        let v = match sel {
            0 => self.stats.syscalls,
            1 => self.stats.ctx_switches,
            2 => self.stats.soft_faults,
            3 => self.stats.hard_faults,
            4 => self.stats.restarts,
            _ => 0,
        } as u32;
        cx.set_reg(self, ARG_VAL, v);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    // ------------------------------------------------------------------
    // Memory operations.
    // ------------------------------------------------------------------

    /// `region_protect(ebx=region, edx=writable)`: set the writability of
    /// the owner's resident pages within the region.
    fn sys_region_protect(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let writable = cx.arg(self, ARG_VAL) != 0;
        let r = self.lookup_typed(cx.t, h, ObjType::Region)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Region {
            owner, base, size, ..
        }) = self.objects.get(r).map(|o| &o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        let (owner, base, size) = (*owner, *base, *size);
        let first = base / abi::PAGE_SIZE;
        // Geometry is validated at create/install; saturate as a backstop.
        let last = base.saturating_add(size.saturating_sub(1)) / abi::PAGE_SIZE;
        let mut touched = 0u64;
        if let Some(s) = self.spaces.get_mut(owner.0) {
            for p in first..=last {
                if s.set_vpn_writable(p, writable) {
                    touched += 1;
                }
            }
        }
        self.charge(self.cost.object_op * touched.max(1) / 4);
        if !writable && touched > 0 {
            // A permission downgrade must be visible machine-wide: remote
            // TLBs may cache the old writable PTEs.
            self.tlb_shootdown(owner);
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `mapping_protect(ebx=mapping, edx=writable)`: set the mapping's
    /// writability and flush PTEs derived through it.
    fn sys_mapping_protect(&mut self, cx: &mut SysCtx) -> SysResult {
        let h = cx.arg(self, ARG_HANDLE);
        let writable = cx.arg(self, ARG_VAL) != 0;
        let m = self.lookup_typed(cx.t, h, ObjType::Mapping)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Mapping {
            space,
            base,
            size,
            writable: w,
            ..
        }) = self.objects.get_mut(m).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        *w = writable;
        let (space, base, size) = (*space, *base, *size);
        let first = base / abi::PAGE_SIZE;
        // Geometry is validated at create/install; saturate as a backstop.
        let last = base.saturating_add(size.saturating_sub(1)) / abi::PAGE_SIZE;
        if let Some(s) = self.spaces.get_mut(space.0) {
            s.unmap_vpn_range(first, last);
        }
        // The flushed PTEs may be cached by remote TLBs.
        self.tlb_shootdown(space);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `region_populate(ebx=region, ecx=len, edx=offset)`: a keeper
    /// (pager) supplies zero-filled memory for its region. This is the
    /// reproduction's stand-in for Fluke's memory-supply protocol: only the
    /// region's owning space may populate it.
    fn sys_region_populate(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let len = cx.arg(self, ARG_COUNT);
        let offset = cx.arg(self, ARG_VAL);
        let r = self.lookup_typed(t, h, ObjType::Region)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let Some(ObjData::Region {
            owner, base, size, ..
        }) = self.objects.get(r).map(|o| &o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        let (owner, base, size) = (*owner, *base, *size);
        let caller_space = self.threads.get(t.0).and_then(|x| x.space);
        if caller_space != Some(owner) {
            return Err(Self::fail(ErrorCode::PermissionDenied));
        }
        if len == 0 || offset.saturating_add(len) > size {
            return Err(Self::fail(ErrorCode::InvalidArg));
        }
        // With the window validated at create/install and
        // `offset + len <= size` checked above, neither sum can wrap; the
        // checked form keeps that invariant local instead of assumed.
        let Some(start) = base.checked_add(offset) else {
            return Err(Self::fail(ErrorCode::InvalidArg));
        };
        let Some(end) = start.checked_add(len - 1) else {
            return Err(Self::fail(ErrorCode::InvalidArg));
        };
        let first = start / abi::PAGE_SIZE;
        let last = end / abi::PAGE_SIZE;
        for p in first..=last {
            let present = self
                .spaces
                .get(owner.0)
                .map(|s| s.has_vpn(p))
                .unwrap_or(false);
            if !present {
                let frame = self.phys.alloc();
                if let Some(s) = self.spaces.get_mut(owner.0) {
                    s.insert_pte(
                        p,
                        crate::space::Pte {
                            frame,
                            writable: true,
                        },
                    );
                }
                // Supplying a page costs its zero-fill plus bookkeeping.
                self.charge(self.cost.object_op + abi::PAGE_SIZE as u64 * self.cost.copy_byte_per);
            }
        }
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    /// `region_search(ebx=space|0, edx=cursor, ecx=limit)`: find the next
    /// kernel object at or after `cursor` in the space's address range.
    /// Multi-stage: the cursor advances in place; the scan is long and —
    /// faithfully to the paper — has **no** explicit preemption point, so
    /// it bounds preemption latency under the Partial configuration
    /// (Table 6's PP "max" column).
    fn sys_region_search(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let sh = cx.arg(self, ARG_HANDLE);
        let cursor = cx.arg(self, ARG_VAL);
        let limit = cx.arg(self, ARG_COUNT);
        let sid = if sh == 0 {
            self.threads
                .get(t.0)
                .and_then(|x| x.space)
                .ok_or(SysOutcome::Kill("no space"))?
        } else {
            let sobj = self.lookup_typed(t, sh, ObjType::Space)?;
            match self.objects.get(sobj).map(|o| &o.data) {
                Some(ObjData::Space(s)) => *s,
                _ => return Err(Self::fail(ErrorCode::WrongType)),
            }
        };
        self.charge(self.cost.object_op);
        self.progress();
        if cursor >= limit {
            cx.set_reg(self, ARG_VAL, limit);
            return Ok(SysOutcome::Done(ErrorCode::NotFound));
        }
        // Invert the page table once, then scan object locations.
        let inv: std::collections::HashMap<crate::phys::FrameId, u32> = match self.spaces.get(sid.0)
        {
            Some(s) => s.pages_iter().map(|(&vpn, pte)| (pte.frame, vpn)).collect(),
            None => return Err(Self::fail(ErrorCode::InvalidHandle)),
        };
        let mut best: Option<(u32, ObjId)> = None;
        for (oid, obj) in self.objects.iter() {
            if let Some(&vpn) = inv.get(&obj.loc.0) {
                let vaddr = vpn * abi::PAGE_SIZE + obj.loc.1;
                let better = best.map(|(b, _)| vaddr < b).unwrap_or(true);
                if vaddr >= cursor && vaddr < limit && better {
                    best = Some((vaddr, oid));
                }
            }
        }
        // Charge proportionally to the range walked — this is the long
        // kernel path of the latency experiment. Faithfully to the paper,
        // the *Partial* configuration has no preemption point here (only
        // the IPC copy path has one), so this loop bounds PP latency;
        // under Full preemption the per-page charges are preemptible like
        // any other unlocked kernel code.
        let walked_to = best.map(|(v, _)| v + 1).unwrap_or(limit);
        let pages = (walked_to.saturating_sub(cursor) / abi::PAGE_SIZE).clamp(1, 4096);
        for page in 0..pages {
            self.charge(self.cost.region_search_page);
            if self.cfg.preempt == Preemption::Full && self.cur_cpu_mut().resched {
                // Clean point: the cursor records exactly how far the scan
                // got; the restarted call continues from there.
                let resume = cursor + page * abi::PAGE_SIZE;
                cx.set_reg_committed(self, ARG_VAL, resume);
                return Ok(cx.preempt(self));
            }
        }
        match best {
            Some((vaddr, oid)) => {
                let ty = self.objects.get(oid).map(|o| o.ty()).unwrap() as u32;
                cx.set_reg(self, ARG_SBUF, vaddr);
                cx.set_reg(self, ARG_RBUF, ty);
                cx.set_reg(self, ARG_VAL, vaddr + 1);
                Ok(SysOutcome::Done(ErrorCode::Success))
            }
            None => {
                cx.set_reg(self, ARG_VAL, limit);
                Ok(SysOutcome::Done(ErrorCode::NotFound))
            }
        }
    }

    /// `ref_compare(ebx=ref1, edx=ref2)` → `edx=1` if both reference the
    /// same object.
    fn sys_ref_compare(&mut self, cx: &mut SysCtx) -> SysResult {
        let h1 = cx.arg(self, ARG_HANDLE);
        let h2 = cx.arg(self, ARG_VAL);
        let r1 = self.lookup_typed(cx.t, h1, ObjType::Reference)?;
        let r2 = self.lookup_typed(cx.t, h2, ObjType::Reference)?;
        self.charge(self.cost.object_op);
        self.progress();
        let t1 = match self.objects.get(r1).map(|o| &o.data) {
            Some(ObjData::Ref { target, .. }) => *target,
            _ => None,
        };
        let t2 = match self.objects.get(r2).map(|o| &o.data) {
            Some(ObjData::Ref { target, .. }) => *target,
            _ => None,
        };
        let same = t1.is_some() && t1 == t2;
        cx.set_reg(self, ARG_VAL, same as u32);
        Ok(SysOutcome::Done(ErrorCode::Success))
    }

    // ------------------------------------------------------------------
    // Port waits (connection without data).
    // ------------------------------------------------------------------

    /// `port_wait(ebx=port)`: accept a pending connection or sleep.
    fn sys_port_wait(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let p = self.port_handle(t, h)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        if self.try_accept_from_port(t, p)? {
            return Ok(SysOutcome::Done(ErrorCode::Success));
        }
        let Some(ObjData::Port { server_q, .. }) = self.objects.get_mut(p).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        server_q.enqueue(t, &mut self.stats.waitq);
        Ok(cx.block(self, WaitReason::PortWait(p)))
    }

    /// `pset_wait(ebx=pset)`: accept from any member port or sleep.
    fn sys_pset_wait(&mut self, cx: &mut SysCtx) -> SysResult {
        let t = cx.t;
        let h = cx.arg(self, ARG_HANDLE);
        let ps = self.lookup_typed(t, h, ObjType::Portset)?;
        self.klock_section();
        self.charge(self.cost.object_op);
        self.progress();
        let members: Vec<ObjId> = match self.objects.get(ps).map(|o| &o.data) {
            Some(ObjData::Pset { members, .. }) => members.clone(),
            _ => return Err(Self::fail(ErrorCode::InvalidHandle)),
        };
        for m in members {
            if self.try_accept_from_port(t, m)? {
                return Ok(SysOutcome::Done(ErrorCode::Success));
            }
        }
        let Some(ObjData::Pset { server_q, .. }) = self.objects.get_mut(ps).map(|o| &mut o.data)
        else {
            return Err(Self::fail(ErrorCode::InvalidHandle));
        };
        server_q.enqueue(t, &mut self.stats.waitq);
        Ok(cx.block(self, WaitReason::PsetWait(ps)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_table_covers_every_entrypoint() {
        // Indexing by any valid entrypoint number must stay in bounds,
        // and every common-op row must decode an operation and a type
        // (the catch-all handler's two `expect`s).
        assert_eq!(HANDLERS.len(), SYSCALL_COUNT);
        for d in SYSCALLS {
            if d.common_op.is_some() {
                assert!(
                    d.family.obj_type().is_some(),
                    "{}: common-op row without an object family",
                    d.name
                );
            }
        }
    }
}

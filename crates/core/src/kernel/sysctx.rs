//! `SysCtx`: the handler-side capability for register access and
//! block/yield decisions, and the atomicity auditor built on it.
//!
//! Handlers no longer touch the kernel's raw register accessors; every
//! read and write goes through a [`SysCtx`], which lets the kernel keep
//! a *committed snapshot* of the calling thread's registers — taken at
//! entry and refreshed at each declared commit point. At every block or
//! in-kernel preemption the auditor then checks, mechanically, the
//! paper's atomic-API contract (§2, §4):
//!
//! 1. **No stale registers.** The live registers equal the committed
//!    snapshot: a handler brought the registers to a clean restart
//!    point (and said so) before giving up the CPU.
//! 2. **The continuation names a real restart.** `eax` decodes to an
//!    entrypoint in the dispatched call's allowed restart set
//!    `{sys, sys.restart_target()}`, and — except for page-fault waits
//!    on a keeper — that entrypoint is a blocking (Long/Multi-stage)
//!    call, per the [`fluke_api::SysDesc`] table.
//! 3. **Extract/reinit is lossless.** The thread round-trips through
//!    `get_state`/`set_state`: its frame is marshalled to words,
//!    unmarshalled, and compared — a reincarnated thread built from the
//!    frame (destroy-style reset, then reinit) would be
//!    indistinguishable from the blocked original, because the restart
//!    machinery consults nothing the frame fails to capture
//!    (`inflight` is derivable from `eax`, and a blocked thread never
//!    retains a kernel stack).
//!
//! The expensive checks compile away outside debug builds; the
//! per-entrypoint hit counters stay on so coverage tests can assert
//! that every blocking entrypoint was actually audited.

use std::sync::atomic::{AtomicU64, Ordering};

use fluke_api::{Sys, SYSCALL_COUNT};
use fluke_arch::{Reg, UserRegs};

use crate::ids::ThreadId;
use crate::thread::WaitReason;

use super::{Kernel, SysOutcome};

/// Handler context for one dispatched system call: the *only* route by
/// which handlers may touch the calling thread's registers or give up
/// the CPU. Mediation keeps the committed-snapshot bookkeeping (held in
/// [`Kernel::audit`]) coherent at every block/yield decision.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SysCtx {
    /// The calling thread.
    pub t: ThreadId,
    /// The dispatched entrypoint (after chaining, the chained one).
    pub sys: Sys,
}

impl SysCtx {
    /// Read an argument register of the calling thread.
    pub fn arg(&self, k: &Kernel, r: Reg) -> u32 {
        k.threads.get(self.t.0).expect("current thread").regs.get(r)
    }

    /// Write a register of the calling thread *without* committing: the
    /// handler must reach a commit point before blocking or yielding.
    pub fn set_reg(&mut self, k: &mut Kernel, r: Reg, v: u32) {
        k.raw_set_reg(self.t, r, v);
    }

    /// Write a pseudo-register of the calling thread (uncommitted).
    pub fn set_pr(&mut self, k: &mut Kernel, i: usize, v: u32) {
        k.threads.get_mut(self.t.0).expect("current thread").regs.pr[i] = v;
    }

    /// Declare a commit point: the registers as they stand are a clean
    /// restart continuation.
    pub fn commit(&mut self, k: &mut Kernel) {
        k.audit_commit(self.t);
    }

    /// Write a register and immediately commit — for the common
    /// "rewrite the continuation, then sleep" step.
    pub fn set_reg_committed(&mut self, k: &mut Kernel, r: Reg, v: u32) {
        k.raw_set_reg(self.t, r, v);
        k.audit_commit(self.t);
    }

    /// Block the calling thread (see [`Kernel::block_current`]); the
    /// auditor checks the atomic-API contract at this point.
    pub fn block(&mut self, k: &mut Kernel, reason: WaitReason) -> SysOutcome {
        k.block_current(self.t, reason)
    }

    /// Take an in-kernel preemption at a clean point (see
    /// [`Kernel::preempt_current_in_kernel`]); audited like a block.
    pub fn preempt(&mut self, k: &mut Kernel) -> SysOutcome {
        k.preempt_current_in_kernel(self.t)
    }
}

/// Committed-snapshot state for the dispatch in flight on the acting
/// CPU (one dispatch runs at a time under the big kernel lock).
#[derive(Debug, Clone)]
pub(crate) struct AuditState {
    /// The audited thread (the dispatch's caller).
    t: ThreadId,
    /// The dispatched entrypoint.
    sys: Sys,
    /// Registers at the last commit point (entry, or later).
    committed: UserRegs,
}

/// Per-entrypoint count of audited block/preempt points, indexed by
/// dispatched entrypoint number. Process-wide: coverage accumulates
/// across every kernel a test binary builds.
static BLOCK_AUDIT_HITS: [AtomicU64; SYSCALL_COUNT] = [const { AtomicU64::new(0) }; SYSCALL_COUNT];

/// How many audited block/preempt points entrypoint `sys` has hit,
/// process-wide, when dispatched as the outermost call.
pub fn block_audit_hits(sys: Sys) -> u64 {
    BLOCK_AUDIT_HITS[sys.num() as usize].load(Ordering::Relaxed)
}

impl Kernel {
    /// Raw register write — the blocking/completion layer's accessor
    /// (waking a peer, finishing a blocked call, installing thread
    /// state). Handlers go through [`SysCtx`] instead.
    pub(crate) fn raw_set_reg(&mut self, t: ThreadId, r: Reg, v: u32) {
        self.threads.get_mut(t.0).expect("thread").regs.set(r, v);
    }

    /// Blocking-layer register write that *is* the commit: the pump and
    /// the fault path advance parameters / rewrite `eax` exactly when
    /// the result is a clean continuation.
    pub(crate) fn set_reg_committed(&mut self, t: ThreadId, r: Reg, v: u32) {
        self.raw_set_reg(t, r, v);
        self.audit_commit(t);
    }

    /// Begin auditing a dispatch: snapshot the caller's registers as the
    /// entry commit point.
    pub(crate) fn audit_begin(&mut self, t: ThreadId, sys: Sys) {
        let regs = self.threads.get(t.0).expect("current thread").regs;
        self.audit = Some(AuditState {
            t,
            sys,
            committed: regs,
        });
    }

    /// End auditing (dispatch completed, chained away, or caller died).
    pub(crate) fn audit_end(&mut self) {
        self.audit = None;
    }

    /// Refresh the committed snapshot for `t`, if it is the audited
    /// thread. Writes to other (blocked) threads never touch the
    /// snapshot — their registers are already complete continuations.
    pub(crate) fn audit_commit(&mut self, t: ThreadId) {
        let regs = match self.threads.get(t.0) {
            Some(th) => th.regs,
            None => return,
        };
        if let Some(a) = self.audit.as_mut() {
            if a.t == t {
                a.committed = regs;
            }
        }
    }

    /// The audit hook: called from [`Kernel::block_current`] and
    /// [`Kernel::preempt_current_in_kernel`] after the thread's state
    /// transition. Counts the hit, then (debug builds) checks the
    /// atomic-API contract.
    pub(crate) fn audit_block_point(&mut self, t: ThreadId, preempted: bool) {
        // Flowcheck records the dispatched entrypoint at every audited
        // block so the next re-entry can be validated against its restart
        // closure; outside a dispatch it clears any stale record.
        match self.audit.as_ref() {
            Some(a) if a.t == t => {
                let sys = a.sys;
                self.flowcheck_note_block(t, Some(sys));
            }
            Some(_) => {}
            None => self.flowcheck_note_block(t, None),
        }
        let Some(a) = self.audit.as_ref() else {
            // Not inside an audited dispatch: a user-mode page fault
            // blocking on its keeper. Registers were never touched, so
            // there is nothing to check.
            return;
        };
        if a.t != t {
            return;
        }
        BLOCK_AUDIT_HITS[a.sys.num() as usize].fetch_add(1, Ordering::Relaxed);
        #[cfg(debug_assertions)]
        self.audit_check(preempted);
        #[cfg(not(debug_assertions))]
        let _ = preempted;
    }

    /// The debug-mode contract checks (see module docs).
    #[cfg(debug_assertions)]
    fn audit_check(&self, preempted: bool) {
        let a = self.audit.as_ref().expect("checked by caller");
        let th = self.threads.get(a.t.0).expect("audited thread");
        let sys = a.sys;

        // (1) No stale registers: every write since the last commit
        // point was declared.
        assert_eq!(
            th.regs,
            a.committed,
            "{}: blocked with register writes past the last commit point",
            sys.name()
        );

        // (2) The continuation names a real restart in the allowed set.
        let eax = th.regs.get(Reg::Eax);
        let cont = Sys::from_u32(eax)
            .unwrap_or_else(|| panic!("{}: blocked with undecodable eax {eax:#x}", sys.name()));
        assert!(
            cont == sys || cont == sys.restart_target(),
            "{}: blocked as {}, outside its restart set {{{}, {}}}",
            sys.name(),
            cont.name(),
            sys.name(),
            sys.restart_target().name()
        );
        let pager_wait = matches!(
            th.state,
            crate::thread::RunState::Blocked(WaitReason::PagerReply(_))
        );
        if !pager_wait {
            assert!(
                cont.may_block(),
                "{}: long-term wait behind non-blocking continuation {}",
                sys.name(),
                cont.name()
            );
        }
        assert_eq!(
            th.inflight,
            Some(cont),
            "{}: inflight does not match the eax continuation",
            sys.name()
        );
        if !preempted {
            // A blocked thread's registers are the *whole* truth: no
            // retained kernel stack (paper §5.1). (An in-kernel
            // preemption legitimately retains the stack under the
            // process model.)
            assert!(
                !th.kstack_retained,
                "{}: blocked with a retained kernel stack",
                sys.name()
            );
        }

        // (3) Extract → reset → reinit round trip. Marshal the thread's
        // frame exactly as `thread_get_state` would, unmarshal it as
        // `thread_set_state` would, and verify the reincarnated view is
        // indistinguishable: same registers (including the IPC
        // pseudo-registers), same schedulability, and a restart that
        // dispatches the same entrypoint.
        use fluke_api::state::ThreadStateFrame;
        use fluke_arch::ProgramId;
        let frame = ThreadStateFrame {
            regs: th.regs,
            program: th.program.unwrap_or(ProgramId(u64::MAX)),
            space_token: th.space_token,
            priority: th.priority,
            runnable: match th.state {
                crate::thread::RunState::Stopped | crate::thread::RunState::Halted => 0,
                _ => 1,
            },
            ipc_phase: th.ipc.conn.map(|_| 1).unwrap_or(0),
        };
        let words = frame.to_words();
        let back = ThreadStateFrame::from_words(&words)
            .unwrap_or_else(|e| panic!("{}: frame unmarshal failed: {e:?}", sys.name()));
        assert_eq!(back, frame, "{}: frame round trip lossy", sys.name());
        // Reinit semantics (`install_thread_state`): registers are the
        // frame's, `inflight` is cleared, the stack is not retained —
        // so the reincarnation re-enters the kernel from `eax`, which
        // must re-dispatch the same continuation the blocked original
        // would restart.
        assert_eq!(
            Sys::from_u32(back.regs.get(Reg::Eax)),
            th.inflight,
            "{}: reincarnated thread would dispatch a different continuation",
            sys.name()
        );
        assert_eq!(
            back.runnable,
            1,
            "{}: blocked thread exported as stopped",
            sys.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_counters_start_indexable_for_every_entrypoint() {
        for d in fluke_api::SYSCALLS {
            // Merely indexable and monotone; coverage is asserted by the
            // integration suite which actually drives the kernel.
            let _ = block_audit_hits(d.sys);
        }
    }
}

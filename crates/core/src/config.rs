//! Kernel build configuration: execution model × preemption.
//!
//! The paper's Table 4 defines five kernel configurations. Fluke selected
//! among them with compile-time options touching only the entry/exit,
//! context-switch and locking code; we reproduce that with a runtime
//! [`Config`] consulted at exactly those points, so a single kernel source
//! serves every configuration (the paper's point (iii)).

use fluke_arch::cost::{ms_to_cycles, Cycles};

use crate::kfault::KfaultConfig;

/// Largest supported simulated-CPU count. The conservative discrete-event
/// scheduler is O(`num_cpus`) per action, so the cap is a cost guard, not
/// a correctness limit; 64 covers the MP-scaling headline experiment.
pub const MAX_CPUS: usize = 64;

/// A structured configuration-validation failure ([`Config::validate`]).
///
/// Carried as data (not a panic) so embedders — benches sweeping CPU
/// counts, config fuzzers — can reject bad configurations gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Full kernel preemption relies on preempted threads retaining
    /// kernel stacks, which the interrupt model does not have (§5.2).
    InterruptModelWithFullPreemption,
    /// `num_cpus == 0`.
    NoCpus,
    /// `num_cpus` above [`MAX_CPUS`].
    TooManyCpus {
        /// The requested CPU count.
        requested: usize,
        /// The supported maximum ([`MAX_CPUS`]).
        max: usize,
    },
    /// Process model with `kstack_bytes == 0`.
    ProcessModelWithoutKstack,
    /// Tracing enabled with a zero-capacity ring.
    ZeroCapacityTraceRing,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InterruptModelWithFullPreemption => {
                write!(
                    f,
                    "full kernel preemption is incompatible with the interrupt model"
                )
            }
            ConfigError::NoCpus => write!(f, "at least one CPU required"),
            ConfigError::TooManyCpus { requested, max } => {
                write!(f, "{requested} CPUs requested; at most {max} supported")
            }
            ConfigError::ProcessModelWithoutKstack => {
                write!(f, "process model requires a per-thread kernel stack")
            }
            ConfigError::ZeroCapacityTraceRing => {
                write!(f, "tracing enabled with a zero-capacity ring")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The kernel's internal execution model (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// One kernel stack per thread; blocked threads retain kernel context,
    /// and context switches save/restore kernel-mode registers.
    Process,
    /// One kernel stack per processor; blocked threads hold *no* kernel
    /// state beyond their user-visible registers, which the atomic API
    /// guarantees are always a complete continuation.
    Interrupt,
}

impl ExecModel {
    /// True for the interrupt model.
    pub fn is_interrupt(self) -> bool {
        matches!(self, ExecModel::Interrupt)
    }
}

/// Kernel preemptibility (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preemption {
    /// No kernel preemption: timer interrupts arriving in kernel mode are
    /// latched and delivered at kernel exit.
    None,
    /// Partial: one explicit preemption point on the IPC data-copy path,
    /// checked after every 8KB transferred. No kernel locking needed.
    Partial,
    /// Full: kernel code preemptible outside the scheduler core; kernel
    /// data protected by blocking mutexes (process model only — full
    /// preemption relies on preempted threads retaining kernel stacks).
    Full,
}

/// Bytes transferred between explicit preemption-point checks in the
/// `Partial` configuration (paper Table 4: "checked after every 8k").
pub const PP_CHUNK_BYTES: u32 = 8192;

/// Configuration of the `ktrace` flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether kernel events are recorded. Off by default: a disabled
    /// tracer costs one predictable branch per emission site and
    /// allocates nothing.
    pub enabled: bool,
    /// Per-CPU ring capacity in records; overflow drops the oldest
    /// records and counts them.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 65_536,
        }
    }
}

/// A complete kernel configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Execution model.
    pub model: ExecModel,
    /// Preemption style.
    pub preempt: Preemption,
    /// Number of simulated processors.
    pub num_cpus: usize,
    /// Per-thread kernel stack size in bytes (process model only). The
    /// paper's Table 7 measures both the 4K "debug/driver" and the 1K
    /// "production" stack size.
    pub kstack_bytes: u32,
    /// Thread control block size in bytes charged per thread (the paper's
    /// interrupt-model Fluke TCB is 300 bytes).
    pub tcb_bytes: u32,
    /// Scheduler timeslice in cycles.
    pub timeslice: Cycles,
    /// Kernel tracing (`ktrace`) knob.
    pub trace: TraceConfig,
    /// Cycle-attribution profiling (`kprof`) knob. Off by default: a
    /// disabled profiler costs one predictable branch per hook and never
    /// perturbs simulated quantities either way (the attribution reads
    /// the same charges the kernel makes regardless).
    pub kprof: bool,
    /// Causal request tracing and critical-path attribution (`kspan`)
    /// knob. Off by default: a disabled layer costs one predictable
    /// branch per hook; enabled, it observes the same simulated clocks
    /// and transitions the kernel performs regardless, so runs are
    /// bit-identical either way (the golden-digest proof obligation).
    pub kspan: bool,
    /// Syscall-flow integrity checking (`flowcheck`) knob. Off by
    /// default: a disabled checker costs one predictable branch per
    /// syscall completion. Enabled, it shadows every object lifecycle
    /// (create → use → move → destroy, per the `SysDesc`-derived flow
    /// graph) and every blocked call's restart re-entry against
    /// `fluke_api::flow`, recording violations as structured data on the
    /// host side — it never changes simulated state, charges, or
    /// results, so runs are bit-identical either way.
    pub flowcheck: bool,
    /// Use the software-TLB + page-run bulk memory fast path (host-side
    /// only: simulated cycle charges, traces and stats are bit-identical
    /// with this on or off). Off selects the uncached byte-at-a-time
    /// reference implementation, kept as a differential-testing oracle and
    /// benchmark baseline.
    pub fast_mem: bool,
    /// Adversarial fault injection (`kfault`) arming. `None` by default:
    /// a disarmed engine is a single predictable branch per hook; an
    /// engine armed in count-only mode changes no simulated quantity
    /// either (the golden-digest proof obligation).
    pub kfault: Option<KfaultConfig>,
    /// Serialize every kernel entry on the legacy big kernel lock and use
    /// one global ready queue. Off by default: multiprocessor kernels use
    /// the fine-grained per-object-class lock model with per-CPU run
    /// queues and deterministic work stealing. Kept (like
    /// `fast_mem(false)`) as a differential oracle and the baseline the
    /// MP-scaling experiment is measured against. Uniprocessor behavior
    /// is bit-identical either way.
    pub big_lock: bool,
    /// Use the O(1) generation-tagged port-namespace index: wait-queue
    /// cancels tombstone instead of linearly sweeping, and connection
    /// unlinks from port connect queues are hash-indexed (host-side only:
    /// simulated cycle charges, traces and stats are bit-identical with
    /// this on or off). Off selects the linear eager-removal reference
    /// path, kept as a differential-testing oracle and benchmark baseline.
    pub port_index: bool,
    /// A short human-readable label ("Process NP" etc.).
    pub label: &'static str,
    /// Deterministic whole-kernel snapshot recording (`krec`) arming.
    /// `None` by default: an unarmed kernel's `run` is byte-for-byte the
    /// pre-krec code path. Armed, the recorder serializes kernel state at
    /// dispatch boundaries into a bounded host-side ring and logs every
    /// `run` call as a digest-bracketed window — all outside the simulated
    /// machine, so runs are bit-identical either way (the golden-digest
    /// proof obligation, pinned by `krec_zero_perturbation.rs`).
    pub krec: Option<crate::krec::KrecConfig>,
}

impl Config {
    /// Process model, no kernel preemption (the paper's baseline;
    /// "comparable to a uniprocessor Unix system").
    pub fn process_np() -> Self {
        Config {
            model: ExecModel::Process,
            preempt: Preemption::None,
            num_cpus: 1,
            kstack_bytes: 4096,
            tcb_bytes: 690, // process-model TCB, folded into stack page in Table 7
            timeslice: ms_to_cycles(10),
            trace: TraceConfig::default(),
            kprof: false,
            kspan: false,
            flowcheck: false,
            fast_mem: true,
            kfault: None,
            big_lock: false,
            port_index: true,
            label: "Process NP",
            krec: None,
        }
    }

    /// Process model with the partial-preemption IPC copy point.
    pub fn process_pp() -> Self {
        Config {
            preempt: Preemption::Partial,
            label: "Process PP",
            ..Self::process_np()
        }
    }

    /// Process model with full kernel preemption (blocking kernel locks).
    pub fn process_fp() -> Self {
        Config {
            preempt: Preemption::Full,
            label: "Process FP",
            ..Self::process_np()
        }
    }

    /// Interrupt model, no kernel preemption.
    pub fn interrupt_np() -> Self {
        Config {
            model: ExecModel::Interrupt,
            preempt: Preemption::None,
            num_cpus: 1,
            kstack_bytes: 0,
            tcb_bytes: 300, // paper Table 7: Fluke interrupt-model TCB
            timeslice: ms_to_cycles(10),
            trace: TraceConfig::default(),
            kprof: false,
            kspan: false,
            flowcheck: false,
            fast_mem: true,
            kfault: None,
            big_lock: false,
            port_index: true,
            label: "Interrupt NP",
            krec: None,
        }
    }

    /// Interrupt model with the partial-preemption IPC copy point.
    pub fn interrupt_pp() -> Self {
        Config {
            preempt: Preemption::Partial,
            label: "Interrupt PP",
            ..Self::interrupt_np()
        }
    }

    /// All five Table 4 configurations, in the paper's order.
    pub fn all_five() -> Vec<Config> {
        vec![
            Self::process_np(),
            Self::process_pp(),
            Self::process_fp(),
            Self::interrupt_np(),
            Self::interrupt_pp(),
        ]
    }

    /// Validate the configuration. Full preemption fundamentally relies on
    /// preempted threads retaining kernel stacks, so it is incompatible
    /// with the interrupt model (paper §5.2). Out-of-range values come
    /// back as structured [`ConfigError`]s, never panics.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.model.is_interrupt() && self.preempt == Preemption::Full {
            return Err(ConfigError::InterruptModelWithFullPreemption);
        }
        if self.num_cpus == 0 {
            return Err(ConfigError::NoCpus);
        }
        if self.num_cpus > MAX_CPUS {
            return Err(ConfigError::TooManyCpus {
                requested: self.num_cpus,
                max: MAX_CPUS,
            });
        }
        if self.model == ExecModel::Process && self.kstack_bytes == 0 {
            return Err(ConfigError::ProcessModelWithoutKstack);
        }
        if self.trace.enabled && self.trace.ring_capacity == 0 {
            return Err(ConfigError::ZeroCapacityTraceRing);
        }
        Ok(())
    }

    /// Kernel memory charged per thread (Table 7 accounting): in the
    /// process model each thread owns a kernel stack; in the interrupt
    /// model only the TCB.
    pub fn per_thread_kmem(&self) -> u64 {
        match self.model {
            ExecModel::Process => self.kstack_bytes as u64,
            ExecModel::Interrupt => self.tcb_bytes as u64,
        }
    }

    /// Use the small "production" 1K kernel stacks (process model).
    pub fn with_small_stacks(mut self) -> Self {
        self.kstack_bytes = 1024;
        self
    }

    /// Select or deselect the memory fast path (see [`Config::fast_mem`]).
    pub fn with_fast_mem(mut self, fast: bool) -> Self {
        self.fast_mem = fast;
        self
    }

    /// Enable the `kprof` cycle-attribution profiler.
    pub fn with_kprof(mut self) -> Self {
        self.kprof = true;
        self
    }

    /// Enable the `kspan` causal request-tracing layer.
    pub fn with_kspan(mut self) -> Self {
        self.kspan = true;
        self
    }

    /// Enable the `flowcheck` syscall-flow integrity checker (see
    /// [`Config::flowcheck`]).
    pub fn with_flowcheck(mut self) -> Self {
        self.flowcheck = true;
        self
    }

    /// Arm the `kfault` deterministic fault-injection engine.
    pub fn with_kfault(mut self, kf: KfaultConfig) -> Self {
        self.kfault = Some(kf);
        self
    }

    /// Arm the `krec` deterministic snapshot recorder (see [`Config::krec`]).
    pub fn with_krec(mut self, kr: crate::krec::KrecConfig) -> Self {
        self.krec = Some(kr);
        self
    }

    /// Enable `ktrace` with per-CPU rings of `ring_capacity` records.
    pub fn with_tracing(mut self, ring_capacity: usize) -> Self {
        self.trace = TraceConfig {
            enabled: true,
            ring_capacity,
        };
        self
    }

    /// Select or deselect the O(1) port-namespace index (see
    /// [`Config::port_index`]). `false` runs the linear eager-removal
    /// reference path as a differential oracle.
    pub fn with_port_index(mut self, indexed: bool) -> Self {
        self.port_index = indexed;
        self
    }

    /// Select the legacy big-kernel-lock execution (see
    /// [`Config::big_lock`]): every kernel entry serializes on one lock
    /// and all CPUs share one global ready queue.
    pub fn with_big_lock(mut self, big: bool) -> Self {
        self.big_lock = big;
        self
    }

    /// Run on `n` simulated processors (up to [`MAX_CPUS`]).
    /// Multiprocessor kernels default to fine-grained per-object-class
    /// locking with per-CPU run queues; `with_big_lock(true)` restores
    /// the serialized legacy behavior (the NP/PP rows of Table 4 need no
    /// locking only on a uniprocessor).
    pub fn with_cpus(mut self, n: usize) -> Self {
        self.num_cpus = n;
        self.label = match (self.label, n > 1) {
            (l, false) => l,
            ("Process NP", _) => "Process NP (MP)",
            ("Process PP", _) => "Process PP (MP)",
            ("Process FP", _) => "Process FP (MP)",
            ("Interrupt NP", _) => "Interrupt NP (MP)",
            ("Interrupt PP", _) => "Interrupt PP (MP)",
            (l, _) => l,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_configurations_validate() {
        let all = Config::all_five();
        assert_eq!(all.len(), 5);
        for c in &all {
            c.validate().unwrap();
        }
        assert_eq!(all[0].label, "Process NP");
        assert_eq!(all[4].label, "Interrupt PP");
    }

    #[test]
    fn interrupt_full_preemption_rejected() {
        let mut c = Config::interrupt_np();
        c.preempt = Preemption::Full;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_cpus_rejected() {
        let mut c = Config::process_np();
        c.num_cpus = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoCpus));
    }

    #[test]
    fn cpu_cap_is_sixty_four_with_structured_error() {
        // Regression: the cap used to be a silent 16; it is now MAX_CPUS
        // (64) and overruns come back as structured data, not a panic.
        assert_eq!(MAX_CPUS, 64);
        for n in [1, 2, 16, 17, 32, 64] {
            Config::process_pp().with_cpus(n).validate().unwrap();
            Config::interrupt_np().with_cpus(n).validate().unwrap();
        }
        let err = Config::process_np().with_cpus(65).validate();
        assert_eq!(
            err,
            Err(ConfigError::TooManyCpus {
                requested: 65,
                max: 64
            })
        );
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("65") && msg.contains("64"), "{msg}");
    }

    #[test]
    fn big_lock_knob_defaults_off() {
        for c in Config::all_five() {
            assert!(!c.big_lock, "{}", c.label);
        }
        let c = Config::process_pp().with_cpus(4).with_big_lock(true);
        assert!(c.big_lock);
        c.validate().unwrap();
    }

    #[test]
    fn port_index_knob_defaults_on() {
        for c in Config::all_five() {
            assert!(c.port_index, "{}", c.label);
        }
        let c = Config::process_pp().with_port_index(false);
        assert!(!c.port_index);
        c.validate().unwrap();
    }

    #[test]
    fn per_thread_memory_matches_table_7() {
        assert_eq!(Config::process_np().per_thread_kmem(), 4096);
        assert_eq!(
            Config::process_np().with_small_stacks().per_thread_kmem(),
            1024
        );
        assert_eq!(Config::interrupt_np().per_thread_kmem(), 300);
    }

    #[test]
    fn tracing_knob_defaults_off_and_validates() {
        let c = Config::process_np();
        assert!(!c.trace.enabled);
        let c = c.with_tracing(1 << 12);
        assert!(c.trace.enabled);
        assert_eq!(c.trace.ring_capacity, 1 << 12);
        c.validate().unwrap();
        let mut bad = Config::process_np().with_tracing(0);
        assert!(bad.validate().is_err());
        bad.trace.enabled = false;
        bad.validate().unwrap();
    }

    #[test]
    fn kprof_knob_defaults_off() {
        for c in Config::all_five() {
            assert!(!c.kprof, "{}", c.label);
        }
        let c = Config::process_np().with_kprof();
        assert!(c.kprof);
        c.validate().unwrap();
    }

    #[test]
    fn kspan_knob_defaults_off() {
        for c in Config::all_five() {
            assert!(!c.kspan, "{}", c.label);
        }
        let c = Config::process_np().with_kspan();
        assert!(c.kspan);
        c.validate().unwrap();
        let c = Config::interrupt_pp().with_kprof().with_kspan();
        assert!(c.kprof && c.kspan);
        c.validate().unwrap();
    }

    #[test]
    fn flowcheck_knob_defaults_off() {
        for c in Config::all_five() {
            assert!(!c.flowcheck, "{}", c.label);
        }
        let c = Config::process_np().with_flowcheck();
        assert!(c.flowcheck);
        c.validate().unwrap();
        let c = Config::interrupt_pp().with_flowcheck().with_kprof();
        assert!(c.flowcheck && c.kprof);
        c.validate().unwrap();
    }

    #[test]
    fn kfault_knob_defaults_off() {
        use crate::kfault::KfaultKind;
        for c in Config::all_five() {
            assert!(c.kfault.is_none(), "{}", c.label);
        }
        let c = Config::process_np().with_kfault(KfaultConfig::at(KfaultKind::Timer, 3));
        assert_eq!(c.kfault, Some(KfaultConfig::at(KfaultKind::Timer, 3)));
        c.validate().unwrap();
        let c =
            Config::interrupt_pp().with_kfault(KfaultConfig::count_sites(KfaultKind::Transient));
        assert_eq!(c.kfault.unwrap().site, KfaultConfig::COUNT_ONLY);
        c.validate().unwrap();
    }

    #[test]
    fn process_model_without_stack_rejected() {
        let mut c = Config::process_np();
        c.kstack_bytes = 0;
        assert!(c.validate().is_err());
    }
}

//! `krec`: deterministic whole-kernel snapshots and time-travel replay.
//!
//! The paper's atomic API guarantees that every thread's long-term state is
//! promptly extractable (§2); this module extends that promise to the whole
//! kernel: *all* simulator state — threads, spaces, objects, wait queues,
//! per-CPU run queues, TLBs, event queue, and every observability
//! accumulator — serializes into a versioned, digest-stamped byte image
//! ([`Kernel::snapshot_bytes`]) and restores to a bit-identical kernel
//! ([`Kernel::restore_from`]).
//!
//! Because the simulator is deterministic (golden-trace digests prove runs
//! bit-identical), a snapshot plus the sequence of `run(limit)` calls that
//! followed it is a *recording*: restoring the snapshot and re-issuing the
//! same calls re-executes history exactly. [`Recording`] captures the call
//! sequence as [`RunWindow`]s (each stamped with start/end state digests),
//! and [`Replayer`] drives re-execution with divergence checking — the
//! substrate for the `kdb` time-travel debugger and the `krec_sweep`
//! restore-and-diverge-check harness.
//!
//! # Format
//!
//! A snapshot is `"FKSN"` magic, a `u32` version, the body (every kernel
//! field in declaration order, little-endian, length-prefixed collections in
//! canonical order), and a trailing FNV-1a-64 digest of all preceding
//! bytes. The digest doubles as the *state digest*: hashing an encode
//! without materializing it ([`Kernel::state_digest`]) yields the same
//! value, so "two kernels are in the same state" is one u64 comparison.
//!
//! Canonicalization rules (so snapshot→restore→snapshot is byte-identical):
//! hash-ordered maps are serialized sorted by key; derived indices (the
//! object table's location index, the ready-queue bitmap, the map-index
//! prefix maxima) are rebuilt on restore, not stored; host-side recorder
//! state ([`Krec`] itself, including the `Config::krec` arming) is *never*
//! encoded, so a recording kernel and its replayed twin produce equal
//! digests.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Mutex, OnceLock};

use fluke_api::{ErrorCode, ObjType, Sys, SysClass};
use fluke_arch::cost::{CostModel, Cycles};
use fluke_arch::cpu::Cpu;
use fluke_arch::isa::{Cond, Instr};
use fluke_arch::program::{Program, ProgramId};
use fluke_arch::regs::{Reg, UserRegs};

use crate::config::{Config, ExecModel, Preemption, TraceConfig};
use crate::kernel::{Kernel, RunExit};
use crate::kfault::{KfaultConfig, KfaultKind};

/// Snapshot file magic: `"FKSN"`.
pub const SNAP_MAGIC: [u8; 4] = *b"FKSN";
/// Current snapshot format version.
pub const SNAP_VERSION: u32 = 1;

/// FNV-1a 64-bit offset basis (shared with the sweep harnesses' digests).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a-64 accumulator.
pub fn fnv64(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

/// A structured snapshot encode/decode failure. Carried as data, never a
/// panic: embedders decide whether a non-serializable kernel is fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the decoder was done.
    Truncated,
    /// The stream does not start with the `"FKSN"` magic.
    BadMagic,
    /// The stream's format version is not [`SNAP_VERSION`].
    BadVersion(u32),
    /// The trailing digest does not match the stream contents.
    BadDigest {
        /// Digest recorded in the trailer.
        stored: u64,
        /// Digest recomputed over the stream.
        computed: u64,
    },
    /// An enum tag byte was out of range for the named type.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u32,
    },
    /// The kernel holds a thread with a host-native body (a Rust closure),
    /// which cannot be serialized. Snapshot workloads must be pure-ISA.
    NativeBody,
    /// The kernel has the debug-mode atomicity auditor armed; auditor
    /// scratch state is intentionally outside the snapshot contract.
    AuditActive,
    /// A `kspan` class name in the stream is not a known entrypoint name.
    UnknownClass,
    /// Snapshot requested on a kernel whose config never armed `krec`.
    RecorderOff,
    /// A structural invariant failed while rebuilding (duplicate object
    /// location, dangling program id, ...).
    Invalid(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot stream truncated"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(f, "snapshot version {v} unsupported (want {SNAP_VERSION})")
            }
            SnapError::BadDigest { stored, computed } => write!(
                f,
                "snapshot digest mismatch: trailer {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::BadTag { what, tag } => {
                write!(f, "bad {what} tag {tag} in snapshot stream")
            }
            SnapError::NativeBody => {
                write!(
                    f,
                    "kernel has a native-bodied thread; snapshots need pure-ISA workloads"
                )
            }
            SnapError::AuditActive => {
                write!(
                    f,
                    "kernel has the atomicity auditor armed; snapshots unsupported"
                )
            }
            SnapError::UnknownClass => write!(f, "unknown kspan class name in snapshot"),
            SnapError::RecorderOff => write!(f, "krec recorder not armed (Config::with_krec)"),
            SnapError::Invalid(what) => write!(f, "invalid snapshot structure: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Byte-stream encoder: accumulates bytes and an FNV-1a digest of everything
/// written. In `hash_only` mode nothing is buffered — the same encode walk
/// then computes a state digest with no allocation.
pub struct SnapWriter {
    buf: Vec<u8>,
    digest: u64,
    hash_only: bool,
}

impl SnapWriter {
    /// A writer that materializes bytes (and hashes them).
    pub fn new() -> Self {
        SnapWriter {
            buf: Vec::new(),
            digest: FNV_OFFSET,
            hash_only: false,
        }
    }

    /// A writer that only hashes: `finish` is meaningless, `digest` is the
    /// point.
    pub fn hash_only() -> Self {
        SnapWriter {
            buf: Vec::new(),
            digest: FNV_OFFSET,
            hash_only: true,
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        self.digest = fnv64(self.digest, bytes);
        if !self.hash_only {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.put(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }

    /// Append a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a `bool` (one byte).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.put(s.as_bytes());
    }

    /// Append raw bytes (length *not* prefixed; callers write their own).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.put(bytes);
    }

    /// The FNV-1a digest of everything written so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Bytes written so far (0 in hash-only mode).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seal the stream: append the digest trailer and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let d = self.digest;
        // The trailer itself is not part of the digested range.
        if !self.hash_only {
            self.buf.extend_from_slice(&d.to_le_bytes());
        }
        self.buf
    }
}

impl Default for SnapWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Byte-stream decoder over a snapshot body.
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `bytes` (body only; magic/version/trailer handled by
    /// [`Kernel::restore_from`]).
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapReader { bytes, pos: 0 }
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid("usize overflow"))
    }

    /// Read a `bool`.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag {
                what: "bool",
                tag: t as u32,
            }),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Invalid("non-utf8 string"))
    }

    /// Whether the reader consumed every byte.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Error unless every byte was consumed.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(SnapError::Invalid("trailing bytes after snapshot body"))
        }
    }
}

// ---------------------------------------------------------------------------
// The Snap trait + primitive impls
// ---------------------------------------------------------------------------

/// A type that round-trips through the snapshot byte stream.
///
/// Contract: `restore(snap(x)) == x` *and* `snap(restore(bytes)) == bytes`
/// (canonical encodings — the round-trip property test pins the latter).
pub trait Snap: Sized {
    /// Encode `self` into the stream.
    fn snap(&self, w: &mut SnapWriter);
    /// Decode one value from the stream.
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_prim {
    ($ty:ty, $wm:ident, $rm:ident) => {
        impl Snap for $ty {
            fn snap(&self, w: &mut SnapWriter) {
                w.$wm(*self);
            }
            fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$rm()
            }
        }
    };
}

snap_prim!(u8, u8, u8);
snap_prim!(u16, u16, u16);
snap_prim!(u32, u32, u32);
snap_prim!(u64, u64, u64);
snap_prim!(usize, usize, usize);
snap_prim!(bool, bool, bool);

impl Snap for i32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(*self as u32);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.u32()? as i32)
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            t => Err(SnapError::BadTag {
                what: "option",
                tag: t as u32,
            }),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut out = VecDeque::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Box<T> {
    fn snap(&self, w: &mut SnapWriter) {
        (**self).snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::restore(r)?))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// HashMaps are serialized sorted by key so the encoding is canonical
// regardless of hasher seed or insertion history.
impl<K: Snap + Ord + Eq + Hash, V: Snap> Snap for HashMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        w.usize(keys.len());
        for k in keys {
            k.snap(w);
            self[k].snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut out = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap, D: Snap> Snap for (A, B, C, D) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
        self.3.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((
            A::restore(r)?,
            B::restore(r)?,
            C::restore(r)?,
            D::restore(r)?,
        ))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::restore(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Invalid("array length"))
    }
}

// ---------------------------------------------------------------------------
// Arch + API types
// ---------------------------------------------------------------------------

impl Snap for Reg {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let t = r.u8()?;
        Reg::ALL.get(t as usize).copied().ok_or(SnapError::BadTag {
            what: "reg",
            tag: t as u32,
        })
    }
}

impl Snap for Cond {
    fn snap(&self, w: &mut SnapWriter) {
        let t = match self {
            Cond::Always => 0u8,
            Cond::Eq => 1,
            Cond::Ne => 2,
            Cond::Lt => 3,
            Cond::Ge => 4,
        };
        w.u8(t);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Cond::Always,
            1 => Cond::Eq,
            2 => Cond::Ne,
            3 => Cond::Lt,
            4 => Cond::Ge,
            t => {
                return Err(SnapError::BadTag {
                    what: "cond",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for Instr {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            Instr::MovI(a, b) => {
                w.u8(0);
                a.snap(w);
                w.u32(b);
            }
            Instr::Mov(a, b) => {
                w.u8(1);
                a.snap(w);
                b.snap(w);
            }
            Instr::Add(a, b) => {
                w.u8(2);
                a.snap(w);
                b.snap(w);
            }
            Instr::AddI(a, b) => {
                w.u8(3);
                a.snap(w);
                w.u32(b);
            }
            Instr::Sub(a, b) => {
                w.u8(4);
                a.snap(w);
                b.snap(w);
            }
            Instr::SubI(a, b) => {
                w.u8(5);
                a.snap(w);
                w.u32(b);
            }
            Instr::Mul(a, b) => {
                w.u8(6);
                a.snap(w);
                b.snap(w);
            }
            Instr::Xor(a, b) => {
                w.u8(7);
                a.snap(w);
                b.snap(w);
            }
            Instr::AndI(a, b) => {
                w.u8(8);
                a.snap(w);
                w.u32(b);
            }
            Instr::ShrI(a, b) => {
                w.u8(9);
                a.snap(w);
                w.u32(b);
            }
            Instr::ShlI(a, b) => {
                w.u8(10);
                a.snap(w);
                w.u32(b);
            }
            Instr::Cmp(a, b) => {
                w.u8(11);
                a.snap(w);
                b.snap(w);
            }
            Instr::CmpI(a, b) => {
                w.u8(12);
                a.snap(w);
                w.u32(b);
            }
            Instr::Jmp(c, t) => {
                w.u8(13);
                c.snap(w);
                w.u32(t);
            }
            Instr::Load(a, b, o) => {
                w.u8(14);
                a.snap(w);
                b.snap(w);
                o.snap(w);
            }
            Instr::Store(b, o, s) => {
                w.u8(15);
                b.snap(w);
                o.snap(w);
                s.snap(w);
            }
            Instr::LoadB(a, b, o) => {
                w.u8(16);
                a.snap(w);
                b.snap(w);
                o.snap(w);
            }
            Instr::StoreB(b, o, s) => {
                w.u8(17);
                b.snap(w);
                o.snap(w);
                s.snap(w);
            }
            Instr::Push(a) => {
                w.u8(18);
                a.snap(w);
            }
            Instr::Pop(a) => {
                w.u8(19);
                a.snap(w);
            }
            Instr::RepMovsB => w.u8(20),
            Instr::RepStosB => w.u8(21),
            Instr::Syscall => w.u8(22),
            Instr::Compute(n) => {
                w.u8(23);
                w.u32(n);
            }
            Instr::Halt => w.u8(24),
            Instr::Nop => w.u8(25),
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Instr::MovI(Reg::restore(r)?, r.u32()?),
            1 => Instr::Mov(Reg::restore(r)?, Reg::restore(r)?),
            2 => Instr::Add(Reg::restore(r)?, Reg::restore(r)?),
            3 => Instr::AddI(Reg::restore(r)?, r.u32()?),
            4 => Instr::Sub(Reg::restore(r)?, Reg::restore(r)?),
            5 => Instr::SubI(Reg::restore(r)?, r.u32()?),
            6 => Instr::Mul(Reg::restore(r)?, Reg::restore(r)?),
            7 => Instr::Xor(Reg::restore(r)?, Reg::restore(r)?),
            8 => Instr::AndI(Reg::restore(r)?, r.u32()?),
            9 => Instr::ShrI(Reg::restore(r)?, r.u32()?),
            10 => Instr::ShlI(Reg::restore(r)?, r.u32()?),
            11 => Instr::Cmp(Reg::restore(r)?, Reg::restore(r)?),
            12 => Instr::CmpI(Reg::restore(r)?, r.u32()?),
            13 => Instr::Jmp(Cond::restore(r)?, r.u32()?),
            14 => Instr::Load(Reg::restore(r)?, Reg::restore(r)?, i32::restore(r)?),
            15 => Instr::Store(Reg::restore(r)?, i32::restore(r)?, Reg::restore(r)?),
            16 => Instr::LoadB(Reg::restore(r)?, Reg::restore(r)?, i32::restore(r)?),
            17 => Instr::StoreB(Reg::restore(r)?, i32::restore(r)?, Reg::restore(r)?),
            18 => Instr::Push(Reg::restore(r)?),
            19 => Instr::Pop(Reg::restore(r)?),
            20 => Instr::RepMovsB,
            21 => Instr::RepStosB,
            22 => Instr::Syscall,
            23 => Instr::Compute(r.u32()?),
            24 => Instr::Halt,
            25 => Instr::Nop,
            t => {
                return Err(SnapError::BadTag {
                    what: "instr",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for UserRegs {
    fn snap(&self, w: &mut SnapWriter) {
        self.gpr.snap(w);
        w.u32(self.eip);
        w.u32(self.eflags);
        self.pr.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(UserRegs {
            gpr: Snap::restore(r)?,
            eip: r.u32()?,
            eflags: r.u32()?,
            pr: Snap::restore(r)?,
        })
    }
}

impl Snap for ProgramId {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ProgramId(r.u64()?))
    }
}

impl Snap for Program {
    fn snap(&self, w: &mut SnapWriter) {
        w.str(self.name());
        w.usize(self.instrs().len());
        for i in self.instrs() {
            i.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let name = r.str()?;
        let n = r.usize()?;
        let mut instrs = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            instrs.push(Instr::restore(r)?);
        }
        Ok(Program::new(name, instrs))
    }
}

impl Snap for Cpu {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.id);
        w.u64(self.now);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let id = r.usize()?;
        let now = r.u64()?;
        let mut c = Cpu::new(id);
        c.now = now;
        Ok(c)
    }
}

impl Snap for CostModel {
    fn snap(&self, w: &mut SnapWriter) {
        for v in [
            self.user_instr,
            self.user_string_byte_per,
            self.hw_trap_enter,
            self.hw_trap_exit,
            self.sw_entry_common,
            self.interrupt_entry_extra,
            self.interrupt_exit_extra,
            self.ctx_switch_base,
            self.ctx_switch_kernel_regs,
            self.addr_space_switch,
            self.copy_byte_per,
            self.ipc_setup,
            self.klock_acquire,
            self.klock_release,
            self.mp_lock_acquire,
            self.mp_lock_release,
            self.tlb_shootdown_ipi,
            self.tlb_shootdown_ack,
            self.schedule_op,
            self.soft_fault_resolve,
            self.server_fault_extra,
            self.hard_fault_kernel,
            self.object_create,
            self.object_destroy,
            self.object_op,
            self.region_search_page,
            self.preempt_check,
            self.timer_irq,
            self.timeslice,
        ] {
            w.u64(v);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CostModel {
            user_instr: r.u64()?,
            user_string_byte_per: r.u64()?,
            hw_trap_enter: r.u64()?,
            hw_trap_exit: r.u64()?,
            sw_entry_common: r.u64()?,
            interrupt_entry_extra: r.u64()?,
            interrupt_exit_extra: r.u64()?,
            ctx_switch_base: r.u64()?,
            ctx_switch_kernel_regs: r.u64()?,
            addr_space_switch: r.u64()?,
            copy_byte_per: r.u64()?,
            ipc_setup: r.u64()?,
            klock_acquire: r.u64()?,
            klock_release: r.u64()?,
            mp_lock_acquire: r.u64()?,
            mp_lock_release: r.u64()?,
            tlb_shootdown_ipi: r.u64()?,
            tlb_shootdown_ack: r.u64()?,
            schedule_op: r.u64()?,
            soft_fault_resolve: r.u64()?,
            server_fault_extra: r.u64()?,
            hard_fault_kernel: r.u64()?,
            object_create: r.u64()?,
            object_destroy: r.u64()?,
            object_op: r.u64()?,
            region_search_page: r.u64()?,
            preempt_check: r.u64()?,
            timer_irq: r.u64()?,
            timeslice: r.u64()?,
        })
    }
}

impl Snap for Sys {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.num());
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32()?;
        Sys::from_u32(n).ok_or(SnapError::BadTag {
            what: "sys",
            tag: n,
        })
    }
}

impl Snap for SysClass {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(self.index() as u8);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let t = r.u8()?;
        SysClass::ALL
            .get(t as usize)
            .copied()
            .ok_or(SnapError::BadTag {
                what: "sysclass",
                tag: t as u32,
            })
    }
}

impl Snap for ObjType {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(*self as u32);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32()?;
        ObjType::from_u32(n).ok_or(SnapError::BadTag {
            what: "objtype",
            tag: n,
        })
    }
}

impl Snap for ErrorCode {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(*self as u32);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32()?;
        ErrorCode::from_u32(n).ok_or(SnapError::BadTag {
            what: "errorcode",
            tag: n,
        })
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

impl Snap for ExecModel {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            ExecModel::Process => 0,
            ExecModel::Interrupt => 1,
        });
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => ExecModel::Process,
            1 => ExecModel::Interrupt,
            t => {
                return Err(SnapError::BadTag {
                    what: "execmodel",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for Preemption {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(match self {
            Preemption::None => 0,
            Preemption::Partial => 1,
            Preemption::Full => 2,
        });
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Preemption::None,
            1 => Preemption::Partial,
            2 => Preemption::Full,
            t => {
                return Err(SnapError::BadTag {
                    what: "preemption",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for TraceConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.enabled);
        w.usize(self.ring_capacity);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TraceConfig {
            enabled: r.bool()?,
            ring_capacity: r.usize()?,
        })
    }
}

impl Snap for KfaultKind {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(self.index() as u8);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let t = r.u8()?;
        KfaultKind::ALL
            .get(t as usize)
            .copied()
            .ok_or(SnapError::BadTag {
                what: "kfaultkind",
                tag: t as u32,
            })
    }
}

impl Snap for KfaultConfig {
    fn snap(&self, w: &mut SnapWriter) {
        self.kind.snap(w);
        w.u64(self.site);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let kind = KfaultKind::restore(r)?;
        let site = r.u64()?;
        Ok(KfaultConfig::at(kind, site))
    }
}

/// Config labels that exist as compile-time literals; restore interns
/// against these before falling back to a leaked (deduplicated) string.
const KNOWN_LABELS: &[&str] = &[
    "Process NP",
    "Process PP",
    "Process FP",
    "Interrupt NP",
    "Interrupt PP",
    "Process NP (MP)",
    "Process PP (MP)",
    "Process FP (MP)",
    "Interrupt NP (MP)",
    "Interrupt PP (MP)",
];

/// Intern an owned string as `&'static str`: known labels map to their
/// compile-time literal; anything else leaks exactly once per unique value
/// (a process-wide dedup cache bounds the leak to distinct labels seen).
pub(crate) fn intern_static(s: String) -> &'static str {
    if let Some(k) = KNOWN_LABELS.iter().find(|k| ***k == s) {
        return k;
    }
    static CACHE: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap();
    if let Some(&v) = map.get(&s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
    map.insert(s, leaked);
    leaked
}

/// Intern a `kspan` class name: entrypoint names come from the static
/// [`fluke_api::SYSCALLS`] table; `"invalid"` is the bad-entrypoint class.
pub(crate) fn intern_class(s: &str) -> Result<&'static str, SnapError> {
    if s == "invalid" {
        return Ok("invalid");
    }
    fluke_api::SYSCALLS
        .iter()
        .map(|d| d.sys.name())
        .find(|n| *n == s)
        .ok_or(SnapError::UnknownClass)
}

impl Snap for Config {
    fn snap(&self, w: &mut SnapWriter) {
        self.model.snap(w);
        self.preempt.snap(w);
        w.usize(self.num_cpus);
        w.u32(self.kstack_bytes);
        w.u32(self.tcb_bytes);
        w.u64(self.timeslice);
        self.trace.snap(w);
        w.bool(self.kprof);
        w.bool(self.kspan);
        w.bool(self.fast_mem);
        self.kfault.snap(w);
        w.bool(self.big_lock);
        w.bool(self.port_index);
        w.str(self.label);
        // `krec` is deliberately not encoded: the recorder is host-side
        // state, and a recording kernel must digest-match its replayed twin
        // (whose config never arms krec).
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Config {
            model: Snap::restore(r)?,
            preempt: Snap::restore(r)?,
            num_cpus: r.usize()?,
            kstack_bytes: r.u32()?,
            tcb_bytes: r.u32()?,
            timeslice: r.u64()?,
            trace: Snap::restore(r)?,
            kprof: r.bool()?,
            kspan: r.bool()?,
            fast_mem: r.bool()?,
            kfault: Snap::restore(r)?,
            big_lock: r.bool()?,
            port_index: r.bool()?,
            label: intern_static(r.str()?),
            krec: None,
            // `flowcheck`, like `krec`, is host-side observability and is
            // not part of the snapshot contract: a restored twin boots
            // with the checker off and digest-matches either way.
            flowcheck: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Recorder configuration and state
// ---------------------------------------------------------------------------

/// Arming configuration for the snapshot recorder ([`Config::with_krec`]).
///
/// Triggers compose: a snapshot is taken at a dispatch boundary whenever any
/// armed trigger fires. All triggers observe only simulated state (cycle
/// clocks, dispatch-site ordinals), so arming them never perturbs the run —
/// the recorder is host-side bookkeeping outside the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KrecConfig {
    /// Snapshot at the first dispatch boundary at or after every `n`
    /// simulated cycles.
    pub every_cycles: Option<Cycles>,
    /// Snapshot at every `n`-th user-thread dispatch boundary (the same
    /// site enumeration `kfault` uses), starting with site 0.
    pub every_sites: Option<u64>,
    /// Snapshot at exactly this dispatch-site ordinal.
    pub at_site: Option<u64>,
    /// Bounded snapshot-ring capacity; the oldest snapshot is dropped (and
    /// counted) when a new one would exceed it.
    pub ring: usize,
}

/// Default snapshot-ring capacity.
pub const DEFAULT_SNAP_RING: usize = 8;

impl KrecConfig {
    /// Record run windows only; snapshots are taken manually via
    /// [`Kernel::snapshot_now`].
    pub fn manual() -> Self {
        KrecConfig {
            every_cycles: None,
            every_sites: None,
            at_site: None,
            ring: DEFAULT_SNAP_RING,
        }
    }

    /// Snapshot every `n` simulated cycles (at dispatch boundaries).
    pub fn every_cycles(n: Cycles) -> Self {
        KrecConfig {
            every_cycles: Some(n.max(1)),
            ..Self::manual()
        }
    }

    /// Snapshot every `n`-th user dispatch site (site 0, n, 2n, ...).
    pub fn every_sites(n: u64) -> Self {
        KrecConfig {
            every_sites: Some(n.max(1)),
            ..Self::manual()
        }
    }

    /// Snapshot at exactly dispatch site `s`.
    pub fn at_site(s: u64) -> Self {
        KrecConfig {
            at_site: Some(s),
            ..Self::manual()
        }
    }

    /// Set the snapshot-ring capacity (minimum 1).
    pub fn with_ring(mut self, n: usize) -> Self {
        self.ring = n.max(1);
        self
    }
}

/// One serialized kernel state, stamped with where in the run it was taken.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated cycle at capture (max over CPU clocks).
    pub at_cycle: Cycles,
    /// Index of the [`RunWindow`] this snapshot belongs to: the window
    /// running at capture (mid-run triggers) or the next window to start
    /// (manual snapshots between `run` calls).
    pub window_index: usize,
    /// Dispatch-site ordinal at capture (next site to dispatch).
    pub site: u64,
    /// Whether the snapshot was taken inside a `run` call (at a dispatch
    /// boundary) rather than between calls.
    pub mid_run: bool,
    /// The full serialized image (including magic/version/digest trailer).
    pub bytes: Vec<u8>,
}

impl Snapshot {
    /// The state digest stamped in the image's trailer.
    pub fn digest(&self) -> u64 {
        let n = self.bytes.len();
        u64::from_le_bytes(self.bytes[n - 8..].try_into().unwrap())
    }
}

/// One recorded `Kernel::run(limit)` call: the limit to re-issue and the
/// state digests that bracket it. `limit` is an *absolute* cycle deadline,
/// so re-issuing it from any intermediate state inside the window
/// deterministically lands on the same window end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunWindow {
    /// The limit passed to `run` (absolute cycle deadline, or none).
    pub limit: Option<Cycles>,
    /// Simulated cycle at window start.
    pub start_cycle: Cycles,
    /// Simulated cycle at window end.
    pub end_cycle: Cycles,
    /// State digest at window start.
    pub start_digest: u64,
    /// State digest at window end.
    pub end_digest: u64,
    /// How the window's `run` call returned.
    pub exit: RunExit,
}

/// Live recorder state, held by the kernel when `Config::with_krec` armed
/// it. Everything here is host-side: none of it is part of the snapshot
/// image, so recorded and replayed kernels digest-match.
#[derive(Debug)]
pub struct Krec {
    /// The arming configuration.
    pub cfg: KrecConfig,
    pub(crate) snapshots: VecDeque<Snapshot>,
    pub(crate) windows: Vec<RunWindow>,
    pub(crate) sites_seen: u64,
    pub(crate) next_cycle_due: Option<Cycles>,
    pub(crate) taken: u64,
    pub(crate) dropped: u64,
    pub(crate) bytes_total: u64,
}

impl Krec {
    pub(crate) fn new(cfg: KrecConfig) -> Self {
        Krec {
            next_cycle_due: cfg.every_cycles,
            cfg,
            snapshots: VecDeque::new(),
            windows: Vec::new(),
            sites_seen: 0,
            taken: 0,
            dropped: 0,
            bytes_total: 0,
        }
    }

    pub(crate) fn push_snapshot(&mut self, s: Snapshot) {
        self.taken += 1;
        self.bytes_total += s.bytes.len() as u64;
        if self.snapshots.len() >= self.cfg.ring {
            self.snapshots.pop_front();
            self.dropped += 1;
        }
        self.snapshots.push_back(s);
    }

    /// Snapshots currently in the ring (oldest first).
    pub fn snapshots(&self) -> &VecDeque<Snapshot> {
        &self.snapshots
    }

    /// Run windows recorded so far.
    pub fn windows(&self) -> &[RunWindow] {
        &self.windows
    }

    /// User-thread dispatch-boundary sites seen so far (the snapshot-site
    /// space a sweep strides over).
    pub fn sites_seen(&self) -> u64 {
        self.sites_seen
    }

    /// Snapshots taken over the recorder's lifetime.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Snapshots evicted from the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total serialized bytes across all snapshots taken.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }
}

/// A finished recording: the snapshot ring plus the run-window log, taken
/// off a kernel with [`Kernel::take_recording`].
#[derive(Debug, Default)]
pub struct Recording {
    /// Snapshots, oldest first.
    pub snapshots: Vec<Snapshot>,
    /// Every `run` call, in order.
    pub windows: Vec<RunWindow>,
}

impl Recording {
    /// The exclusive end of the replayable *epoch* starting at window
    /// `start`: windows re-execute deterministically until the first window
    /// whose start digest differs from its predecessor's end digest (the
    /// host mutated kernel state between those `run` calls).
    pub fn epoch_end(&self, start: usize) -> usize {
        let mut j = start + 1;
        while j < self.windows.len() {
            if self.windows[j].start_digest != self.windows[j - 1].end_digest {
                return j;
            }
            j += 1;
        }
        self.windows.len()
    }

    /// Index of the latest snapshot taken at or before `cycle`, if any.
    pub fn snapshot_at_or_before(&self, cycle: Cycles) -> Option<usize> {
        self.snapshots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.at_cycle <= cycle)
            .max_by_key(|(i, s)| (s.at_cycle, *i))
            .map(|(i, _)| i)
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// A re-execution diverged from the recording: same snapshot, same `run`
/// limits, different resulting state. In a deterministic simulator this is
/// a hard error (a serialization gap or host-dependent behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the diverging window.
    pub window: usize,
    /// Recorded end-of-window state digest.
    pub expected_digest: u64,
    /// Re-executed end-of-window state digest.
    pub got_digest: u64,
    /// Recorded end-of-window cycle.
    pub expected_cycle: Cycles,
    /// Re-executed end-of-window cycle.
    pub got_cycle: Cycles,
    /// Recorded `run` exit.
    pub expected_exit: RunExit,
    /// Re-executed `run` exit.
    pub got_exit: RunExit,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at window {}: digest {:#018x} -> {:#018x}, \
             cycle {} -> {}, exit {:?} -> {:?}",
            self.window,
            self.expected_digest,
            self.got_digest,
            self.expected_cycle,
            self.got_cycle,
            self.expected_exit,
            self.got_exit
        )
    }
}

/// A structured replay failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// Snapshot decode failed.
    Snap(SnapError),
    /// Re-execution did not reproduce the recording.
    Divergence(Divergence),
    /// The requested snapshot index does not exist.
    NoSuchSnapshot(usize),
    /// A manual snapshot's state does not match the start of the window it
    /// claims to precede (the host mutated the kernel in between).
    SnapshotNotAtWindowStart {
        /// The window the snapshot points at.
        window: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Snap(e) => write!(f, "snapshot error: {e}"),
            ReplayError::Divergence(d) => d.fmt(f),
            ReplayError::NoSuchSnapshot(i) => write!(f, "no snapshot at index {i}"),
            ReplayError::SnapshotNotAtWindowStart { window } => write!(
                f,
                "snapshot state does not match the start of window {window} \
                 (kernel was mutated between snapshot and run)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SnapError> for ReplayError {
    fn from(e: SnapError) -> Self {
        ReplayError::Snap(e)
    }
}

/// Drives deterministic re-execution of a [`Recording`] from one of its
/// snapshots, verifying each re-executed window against the recorded
/// digests.
pub struct Replayer<'a> {
    rec: &'a Recording,
    /// The restored kernel being re-executed. Public so debuggers can
    /// inspect (and slice-run) it between windows.
    pub kernel: Kernel,
    widx: usize,
    epoch_end: usize,
    verified: usize,
}

impl<'a> Replayer<'a> {
    /// Restore snapshot `snap_index` and prepare to re-execute its epoch.
    pub fn start(rec: &'a Recording, snap_index: usize) -> Result<Self, ReplayError> {
        let snap = rec
            .snapshots
            .get(snap_index)
            .ok_or(ReplayError::NoSuchSnapshot(snap_index))?;
        let kernel = Kernel::restore_from(&snap.bytes)?;
        let widx = snap.window_index;
        if !snap.mid_run {
            // A between-runs snapshot must exactly match the start of the
            // window it points at, else the host mutated state after it.
            if let Some(w) = rec.windows.get(widx) {
                if snap.digest() != w.start_digest {
                    return Err(ReplayError::SnapshotNotAtWindowStart { window: widx });
                }
            }
        }
        let epoch_end = rec.epoch_end(widx);
        Ok(Replayer {
            rec,
            kernel,
            widx,
            epoch_end,
            verified: 0,
        })
    }

    /// Index of the next window to (re-)execute.
    pub fn window_index(&self) -> usize {
        self.widx
    }

    /// Exclusive end of the replayable epoch.
    pub fn epoch_end(&self) -> usize {
        self.epoch_end
    }

    /// Whether the epoch is fully re-executed.
    pub fn done(&self) -> bool {
        self.widx >= self.epoch_end
    }

    /// Windows re-executed and digest-verified so far.
    pub fn windows_verified(&self) -> usize {
        self.verified
    }

    /// The window about to be (re-)executed, if any.
    pub fn current_window(&self) -> Option<&'a RunWindow> {
        if self.done() {
            None
        } else {
            Some(&self.rec.windows[self.widx])
        }
    }

    /// Re-execute the current window to its end and verify digest, cycle
    /// and exit against the recording. Returns the verified window, or
    /// `None` at epoch end.
    pub fn step_window(&mut self) -> Result<Option<&'a RunWindow>, ReplayError> {
        let Some(w) = self.current_window() else {
            return Ok(None);
        };
        let exit = self.kernel.run(w.limit);
        self.check_window_end(w, exit)?;
        self.widx += 1;
        self.verified += 1;
        Ok(Some(w))
    }

    /// Advance re-execution inside the current window up to (at least)
    /// simulated cycle `target`, without crossing the window end. Returns
    /// `true` if the window completed (end verified) in the process.
    ///
    /// Sub-slicing a window with tighter limits is behavior-neutral: the
    /// run loop's stop condition is a pure function of state and the
    /// absolute deadline (the double-run digest tests pin this).
    pub fn run_to_cycle(&mut self, target: Cycles) -> Result<bool, ReplayError> {
        let Some(w) = self.current_window() else {
            return Ok(false);
        };
        if target >= w.end_cycle {
            self.step_window()?;
            return Ok(true);
        }
        let lim = match w.limit {
            Some(l) => Some(l.min(target)),
            None => Some(target),
        };
        self.kernel.run(lim);
        Ok(false)
    }

    fn check_window_end(&self, w: &RunWindow, exit: RunExit) -> Result<(), ReplayError> {
        let got = self.kernel.state_digest()?;
        let now = self.kernel.now();
        if got != w.end_digest || now != w.end_cycle || exit != w.exit {
            return Err(ReplayError::Divergence(Divergence {
                window: self.widx,
                expected_digest: w.end_digest,
                got_digest: got,
                expected_cycle: w.end_cycle,
                got_cycle: now,
                expected_exit: w.exit,
                got_exit: exit,
            }));
        }
        Ok(())
    }

    /// Re-execute every remaining window of the epoch, verifying each.
    /// Returns the number of windows verified.
    pub fn run_to_epoch_end(&mut self) -> Result<usize, ReplayError> {
        let mut n = 0;
        while self.step_window()?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

/// FNV-1a digest of the kernel's merged trace suffix: every record with
/// `at >= since`, in merged (at, cpu, seq) order. Replay re-fills trace
/// rings identically, so equal suffix digests certify bit-identical
/// re-execution at the event level, not just the end state.
pub fn trace_suffix_digest(k: &Kernel, since: Cycles) -> u64 {
    let mut w = SnapWriter::hash_only();
    for rec in k.trace.merged() {
        if rec.at >= since {
            rec.snap(&mut w);
        }
    }
    w.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.finish();
        let body = &bytes[..bytes.len() - 8];
        let mut r = SnapReader::new(body);
        let back = T::restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(&back, v);
        // Canonical: re-encode is byte-identical.
        let mut w2 = SnapWriter::new();
        back.snap(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&0xabcdu16);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&(-7i32));
        roundtrip(&true);
        roundtrip(&String::from("héllo"));
        roundtrip(&Some(42u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&VecDeque::from([9u32, 8, 7]));
        roundtrip(&BTreeMap::from([(1u32, 2u64), (3, 4)]));
        roundtrip(&(1u32, true, String::from("x")));
        roundtrip(&[1u64, 2, 3, 4]);
    }

    #[test]
    fn hashmap_encoding_is_sorted() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..64u32 {
            a.insert(i, i * 2);
        }
        for i in (0..64u32).rev() {
            b.insert(i, i * 2);
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        a.snap(&mut wa);
        b.snap(&mut wb);
        assert_eq!(wa.finish(), wb.finish());
        roundtrip(&a);
    }

    #[test]
    fn arch_types_roundtrip() {
        roundtrip(&Reg::Esi);
        roundtrip(&Cond::Ge);
        for i in [
            Instr::MovI(Reg::Eax, 7),
            Instr::Store(Reg::Ebp, -4, Reg::Ecx),
            Instr::Jmp(Cond::Ne, 12),
            Instr::RepMovsB,
            Instr::Syscall,
            Instr::Halt,
        ] {
            roundtrip(&i);
        }
        let mut regs = UserRegs::new();
        regs.set(Reg::Edx, 99);
        regs.eip = 3;
        regs.pr = [5, 6];
        roundtrip(&regs);
        roundtrip(&Program::new("p", vec![Instr::Nop, Instr::Halt]));
        roundtrip(&CostModel::pentium_pro_200());
        let mut c = Cpu::new(2);
        c.now = 12345;
        let mut w = SnapWriter::new();
        c.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 8]);
        let back = Cpu::restore(&mut r).unwrap();
        assert_eq!((back.id, back.now), (2, 12345));
    }

    #[test]
    fn api_types_roundtrip() {
        roundtrip(&Sys::from_u32(0).unwrap());
        roundtrip(&SysClass::ALL[3]);
        roundtrip(&ErrorCode::Success);
        roundtrip(&ObjType::Port);
    }

    #[test]
    fn config_roundtrip_drops_krec() {
        let mut cfg = Config::process_pp()
            .with_tracing(1 << 12)
            .with_kprof()
            .with_kspan()
            .with_cpus(4);
        cfg.krec = Some(KrecConfig::every_sites(10));
        let mut w = SnapWriter::new();
        cfg.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 8]);
        let back = Config::restore(&mut r).unwrap();
        r.expect_end().unwrap();
        assert!(back.krec.is_none());
        assert_eq!(back.label, "Process PP (MP)");
        assert_eq!(back.num_cpus, 4);
        assert!(back.trace.enabled && back.kprof && back.kspan);
        // Encoding is identical whether or not krec is armed.
        let mut plain = cfg.clone();
        plain.krec = None;
        let mut w2 = SnapWriter::new();
        plain.snap(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn label_interning_reuses_literals() {
        let a = intern_static(String::from("Process NP"));
        assert_eq!(a, "Process NP");
        let b = intern_static(String::from("custom label"));
        let c = intern_static(String::from("custom label"));
        assert!(std::ptr::eq(b, c));
    }

    #[test]
    fn digest_trailer_matches_stream() {
        let mut w = SnapWriter::new();
        w.u64(0x1122_3344_5566_7788);
        w.str("trailer");
        let d = w.digest();
        let bytes = w.finish();
        let n = bytes.len();
        assert_eq!(u64::from_le_bytes(bytes[n - 8..].try_into().unwrap()), d);
        assert_eq!(fnv64(FNV_OFFSET, &bytes[..n - 8]), d);
    }

    #[test]
    fn hash_only_writer_matches_materialized() {
        let mut a = SnapWriter::new();
        let mut b = SnapWriter::hash_only();
        for w in [&mut a, &mut b] {
            w.u32(7);
            w.str("same");
            w.bool(true);
        }
        assert_eq!(a.digest(), b.digest());
        assert!(b.finish().is_empty());
    }

    #[test]
    fn epoch_detection_splits_on_digest_gap() {
        let mk = |s: u64, e: u64| RunWindow {
            limit: None,
            start_cycle: 0,
            end_cycle: 0,
            start_digest: s,
            end_digest: e,
            exit: RunExit::AllHalted,
        };
        let rec = Recording {
            snapshots: vec![],
            windows: vec![mk(1, 2), mk(2, 3), mk(99, 4), mk(4, 5)],
        };
        assert_eq!(rec.epoch_end(0), 2);
        assert_eq!(rec.epoch_end(2), 4);
    }
}

//! The kernel object table.
//!
//! Kernel objects live *in application memory*: an object is created at a
//! virtual address in the caller's space, and that address is its handle
//! (paper §4.3). Internally the kernel keys objects by their **physical**
//! location `(frame, offset)`, so any space that maps the underlying page
//! can name the same object through its own virtual address — which is how
//! a manager operates on the objects of its children.

use std::collections::{HashMap, VecDeque};

use fluke_api::ObjType;

use crate::ids::{ConnId, ObjId, SpaceId, ThreadId};
use crate::phys::FrameId;
use crate::waitq::WaitQueue;

/// A one-way message buffered in the kernel on a port, queued by the
/// batched-submission path (`ipc_submit`; bounded — see
/// [`fluke_api::abi::PORT_BUF_MSGS`]). `pos` tracks delivery progress into
/// a receiver so a fault mid-delivery resumes where it left off.
#[derive(Debug)]
pub struct BufferedMsg {
    /// The message payload, captured at submit time.
    pub bytes: Vec<u8>,
    /// Bytes already delivered to the receiving thread.
    pub pos: usize,
}

/// Type-specific object payload.
///
/// The `Port` variant dominates the size (wait queues plus the buffered
/// submission queue); objects are stored behind the table's own
/// indirection, so boxing the large variant would only add a pointer
/// chase on the hottest IPC paths.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ObjData {
    /// Mutex: lock flag plus the queue of blocked lockers. The queue is
    /// kernel bookkeeping, not exportable state: each waiter's registers
    /// independently say "about to call `mutex_lock`".
    Mutex {
        /// Whether the mutex is held.
        locked: bool,
        /// Blocked lockers, FIFO.
        waiters: WaitQueue<ThreadId>,
    },
    /// Condition variable: the queue of waiters.
    Cond {
        /// Blocked waiters, FIFO.
        waiters: WaitQueue<ThreadId>,
    },
    /// Mapping: imports `size` bytes of `region` (at `offset`) into `space`
    /// at `base`.
    Mapping {
        /// Destination space.
        space: SpaceId,
        /// Destination base address.
        base: u32,
        /// Length in bytes.
        size: u32,
        /// Source region object.
        region: ObjId,
        /// Offset into the source region.
        offset: u32,
        /// The region handle as named at creation (for state export).
        region_token: u32,
        /// Whether stores through this mapping are permitted.
        writable: bool,
    },
    /// Region: exports `[base, base+size)` of its owner space.
    Region {
        /// Owning (exporting) space.
        owner: SpaceId,
        /// Base address in the owner space.
        base: u32,
        /// Length in bytes.
        size: u32,
        /// Keeper port: hard faults on imported copies of this memory
        /// become exception IPC to this port.
        keeper: Option<ObjId>,
        /// The keeper-port handle as named at creation (for state export
        /// and fault messages).
        keeper_token: u32,
        /// The region's own handle at creation, included in fault messages
        /// so the keeper can identify it.
        self_token: u32,
    },
    /// Port: server-side IPC endpoint.
    Port {
        /// Portset this port belongs to, if any.
        pset: Option<ObjId>,
        /// The pset handle as named when joined (for state export).
        pset_token: u32,
        /// Connections awaiting a server.
        connect_q: WaitQueue<ConnId>,
        /// Threads blocked in `port_wait`-style calls on this port.
        server_q: WaitQueue<ThreadId>,
        /// Pending one-way senders blocked on this port.
        oneway_senders: WaitQueue<ThreadId>,
        /// Threads blocked waiting for a one-way message on this port.
        oneway_receivers: WaitQueue<ThreadId>,
        /// Bounded ring of kernel-buffered one-way messages queued by the
        /// batched-submission path. Always empty unless `ipc_submit` is
        /// used, so pre-existing programs never observe it.
        buffered: VecDeque<BufferedMsg>,
    },
    /// Portset: a group of ports a server waits on together.
    Pset {
        /// Member ports.
        members: Vec<ObjId>,
        /// Threads blocked in `pset_wait`-style calls.
        server_q: WaitQueue<ThreadId>,
    },
    /// Space object (payload lives in the space arena).
    Space(SpaceId),
    /// Thread object (payload lives in the thread arena).
    Thread(ThreadId),
    /// Reference: a cross-process handle on another object.
    Ref {
        /// The referenced object.
        target: Option<ObjId>,
        /// The target handle as named when pointed (for state export).
        target_token: u32,
    },
}

impl ObjData {
    /// Fresh payload for a newly created object of type `ty`.
    /// `Mapping`, `Region`, `Space` and `Thread` carry parameters and are
    /// constructed explicitly by their create handlers.
    pub fn new_simple(ty: ObjType) -> Option<ObjData> {
        Some(match ty {
            ObjType::Mutex => ObjData::Mutex {
                locked: false,
                waiters: WaitQueue::new(),
            },
            ObjType::Cond => ObjData::Cond {
                waiters: WaitQueue::new(),
            },
            ObjType::Port => ObjData::Port {
                pset: None,
                pset_token: 0,
                connect_q: WaitQueue::new(),
                server_q: WaitQueue::new(),
                oneway_senders: WaitQueue::new(),
                oneway_receivers: WaitQueue::new(),
                buffered: VecDeque::new(),
            },
            ObjType::Portset => ObjData::Pset {
                members: Vec::new(),
                server_q: WaitQueue::new(),
            },
            ObjType::Reference => ObjData::Ref {
                target: None,
                target_token: 0,
            },
            _ => return None,
        })
    }

    /// The object type of this payload.
    pub fn ty(&self) -> ObjType {
        match self {
            ObjData::Mutex { .. } => ObjType::Mutex,
            ObjData::Cond { .. } => ObjType::Cond,
            ObjData::Mapping { .. } => ObjType::Mapping,
            ObjData::Region { .. } => ObjType::Region,
            ObjData::Port { .. } => ObjType::Port,
            ObjData::Pset { .. } => ObjType::Portset,
            ObjData::Space(_) => ObjType::Space,
            ObjData::Thread(_) => ObjType::Thread,
            ObjData::Ref { .. } => ObjType::Reference,
        }
    }
}

/// A kernel object: its physical location (identity) plus payload.
#[derive(Debug)]
pub struct Object {
    /// Physical location: the object's identity across spaces.
    pub loc: (FrameId, u32),
    /// Type-specific payload.
    pub data: ObjData,
}

impl Object {
    /// The object's type.
    pub fn ty(&self) -> ObjType {
        self.data.ty()
    }
}

/// The object table: arena of objects plus the physical-location index.
#[derive(Debug, Default)]
pub struct ObjectTable {
    objects: crate::ids::Arena<Object>,
    by_loc: HashMap<(FrameId, u32), ObjId>,
}

impl ObjectTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an object at physical location `loc`.
    ///
    /// Returns `None` if an object already exists there.
    pub fn insert(&mut self, loc: (FrameId, u32), data: ObjData) -> Option<ObjId> {
        if self.by_loc.contains_key(&loc) {
            return None;
        }
        let id = ObjId(self.objects.insert(Object { loc, data }));
        self.by_loc.insert(loc, id);
        Some(id)
    }

    /// Look up the object at a physical location.
    pub fn at_loc(&self, loc: (FrameId, u32)) -> Option<ObjId> {
        self.by_loc.get(&loc).copied()
    }

    /// Get an object.
    pub fn get(&self, id: ObjId) -> Option<&Object> {
        self.objects.get(id.0)
    }

    /// Get an object mutably.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut Object> {
        self.objects.get_mut(id.0)
    }

    /// Remove an object.
    pub fn remove(&mut self, id: ObjId) -> Option<Object> {
        let obj = self.objects.remove(id.0)?;
        self.by_loc.remove(&obj.loc);
        Some(obj)
    }

    /// Move an object to a new physical location (the `*_move` "rename"
    /// operation). Fails if the destination is occupied.
    pub fn relocate(&mut self, id: ObjId, new_loc: (FrameId, u32)) -> bool {
        if self.by_loc.contains_key(&new_loc) {
            return false;
        }
        let Some(obj) = self.objects.get_mut(id.0) else {
            return false;
        };
        let old = obj.loc;
        obj.loc = new_loc;
        self.by_loc.remove(&old);
        self.by_loc.insert(new_loc, id);
        true
    }

    /// Iterate over live objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objects.iter().map(|(i, o)| (ObjId(i), o))
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for BufferedMsg {
    fn snap(&self, w: &mut SnapWriter) {
        self.bytes.snap(w);
        w.usize(self.pos);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let bytes: Vec<u8> = Snap::restore(r)?;
        let pos = r.usize()?;
        if pos > bytes.len() {
            return Err(SnapError::Invalid("buffered message position"));
        }
        Ok(BufferedMsg { bytes, pos })
    }
}

impl Snap for ObjData {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            ObjData::Mutex { locked, waiters } => {
                w.u8(0);
                w.bool(*locked);
                waiters.snap(w);
            }
            ObjData::Cond { waiters } => {
                w.u8(1);
                waiters.snap(w);
            }
            ObjData::Mapping {
                space,
                base,
                size,
                region,
                offset,
                region_token,
                writable,
            } => {
                w.u8(2);
                space.snap(w);
                w.u32(*base);
                w.u32(*size);
                region.snap(w);
                w.u32(*offset);
                w.u32(*region_token);
                w.bool(*writable);
            }
            ObjData::Region {
                owner,
                base,
                size,
                keeper,
                keeper_token,
                self_token,
            } => {
                w.u8(3);
                owner.snap(w);
                w.u32(*base);
                w.u32(*size);
                keeper.snap(w);
                w.u32(*keeper_token);
                w.u32(*self_token);
            }
            ObjData::Port {
                pset,
                pset_token,
                connect_q,
                server_q,
                oneway_senders,
                oneway_receivers,
                buffered,
            } => {
                w.u8(4);
                pset.snap(w);
                w.u32(*pset_token);
                connect_q.snap(w);
                server_q.snap(w);
                oneway_senders.snap(w);
                oneway_receivers.snap(w);
                buffered.snap(w);
            }
            ObjData::Pset { members, server_q } => {
                w.u8(5);
                members.snap(w);
                server_q.snap(w);
            }
            ObjData::Space(s) => {
                w.u8(6);
                s.snap(w);
            }
            ObjData::Thread(t) => {
                w.u8(7);
                t.snap(w);
            }
            ObjData::Ref {
                target,
                target_token,
            } => {
                w.u8(8);
                target.snap(w);
                w.u32(*target_token);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => ObjData::Mutex {
                locked: r.bool()?,
                waiters: Snap::restore(r)?,
            },
            1 => ObjData::Cond {
                waiters: Snap::restore(r)?,
            },
            2 => ObjData::Mapping {
                space: Snap::restore(r)?,
                base: r.u32()?,
                size: r.u32()?,
                region: Snap::restore(r)?,
                offset: r.u32()?,
                region_token: r.u32()?,
                writable: r.bool()?,
            },
            3 => ObjData::Region {
                owner: Snap::restore(r)?,
                base: r.u32()?,
                size: r.u32()?,
                keeper: Snap::restore(r)?,
                keeper_token: r.u32()?,
                self_token: r.u32()?,
            },
            4 => ObjData::Port {
                pset: Snap::restore(r)?,
                pset_token: r.u32()?,
                connect_q: Snap::restore(r)?,
                server_q: Snap::restore(r)?,
                oneway_senders: Snap::restore(r)?,
                oneway_receivers: Snap::restore(r)?,
                buffered: Snap::restore(r)?,
            },
            5 => ObjData::Pset {
                members: Snap::restore(r)?,
                server_q: Snap::restore(r)?,
            },
            6 => ObjData::Space(Snap::restore(r)?),
            7 => ObjData::Thread(Snap::restore(r)?),
            8 => ObjData::Ref {
                target: Snap::restore(r)?,
                target_token: r.u32()?,
            },
            t => {
                return Err(SnapError::BadTag {
                    what: "ObjData",
                    tag: t as u32,
                })
            }
        })
    }
}

impl Snap for Object {
    fn snap(&self, w: &mut SnapWriter) {
        self.loc.snap(w);
        self.data.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Object {
            loc: Snap::restore(r)?,
            data: Snap::restore(r)?,
        })
    }
}

// The by-location index is derived state, rebuilt on restore so the
// encoding is canonical regardless of hash-map iteration order.
impl Snap for ObjectTable {
    fn snap(&self, w: &mut SnapWriter) {
        self.objects.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let objects: crate::ids::Arena<Object> = Snap::restore(r)?;
        let mut by_loc = HashMap::new();
        for (i, o) in objects.iter() {
            if by_loc.insert(o.loc, ObjId(i)).is_some() {
                return Err(SnapError::Invalid("duplicate object location"));
            }
        }
        Ok(ObjectTable { objects, by_loc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = ObjectTable::new();
        let id = t
            .insert((1, 64), ObjData::new_simple(ObjType::Mutex).unwrap())
            .unwrap();
        assert_eq!(t.at_loc((1, 64)), Some(id));
        assert_eq!(t.get(id).unwrap().ty(), ObjType::Mutex);
        // Same location rejected.
        assert!(t
            .insert((1, 64), ObjData::new_simple(ObjType::Cond).unwrap())
            .is_none());
        let obj = t.remove(id).unwrap();
        assert_eq!(obj.loc, (1, 64));
        assert_eq!(t.at_loc((1, 64)), None);
    }

    #[test]
    fn relocate_rekeys() {
        let mut t = ObjectTable::new();
        let id = t
            .insert((2, 0), ObjData::new_simple(ObjType::Port).unwrap())
            .unwrap();
        let other = t
            .insert((2, 32), ObjData::new_simple(ObjType::Cond).unwrap())
            .unwrap();
        // Occupied destination fails.
        assert!(!t.relocate(id, (2, 32)));
        assert!(t.relocate(id, (3, 128)));
        assert_eq!(t.at_loc((2, 0)), None);
        assert_eq!(t.at_loc((3, 128)), Some(id));
        assert_eq!(t.at_loc((2, 32)), Some(other));
    }

    #[test]
    fn simple_payloads_only_for_simple_types() {
        assert!(ObjData::new_simple(ObjType::Mutex).is_some());
        assert!(ObjData::new_simple(ObjType::Reference).is_some());
        assert!(ObjData::new_simple(ObjType::Thread).is_none());
        assert!(ObjData::new_simple(ObjType::Space).is_none());
        assert!(ObjData::new_simple(ObjType::Region).is_none());
        assert!(ObjData::new_simple(ObjType::Mapping).is_none());
    }

    #[test]
    fn payload_types_report_correctly() {
        for ty in [
            ObjType::Mutex,
            ObjType::Cond,
            ObjType::Port,
            ObjType::Portset,
            ObjType::Reference,
        ] {
            assert_eq!(ObjData::new_simple(ty).unwrap().ty(), ty);
        }
        assert_eq!(ObjData::Space(SpaceId(0)).ty(), ObjType::Space);
        assert_eq!(ObjData::Thread(ThreadId(0)).ty(), ObjType::Thread);
    }
}

//! `kfault`: deterministic adversarial fault injection for the atomic API.
//!
//! The paper's central claim (§2) is that the purely atomic API keeps every
//! thread's complete long-term state extractable — and reinstallable — at
//! *any* instant: the user registers are the whole continuation. The
//! workloads and the §12 auditor only check the interleavings that happen
//! to occur; `kfault` attacks the claim systematically. An armed kernel
//! counts **injection sites** (user-mode instruction boundaries, or syscall
//! dispatch points for [`KfaultKind::Transient`]) and, at exactly one
//! selected site, perturbs execution with one of four adversarial events:
//!
//! * [`KfaultKind::Timer`] — a spurious timer interrupt: a reschedule is
//!   latched at the boundary, exactly as if the timer had fired there.
//! * [`KfaultKind::ExtractRestore`] — the §2 correctness test: the current
//!   thread's state frame is extracted ([`ThreadStateFrame`]), round-tripped
//!   through its serialized word form, the thread's kernel-side incidentals
//!   are destroyed, and the frame is reinstalled; the thread must behave
//!   indistinguishably from one that was never touched.
//! * [`KfaultKind::PageFlush`] — every *re-derivable* translation of the
//!   victim's space is dropped, forcing soft faults (and mid-string-
//!   instruction restarts with done-count semantics) on the next touch.
//! * [`KfaultKind::Transient`] — a simulated transient resource-exhaustion
//!   failure at syscall dispatch; the atomic API makes the call trivially
//!   retryable from its own registers, so the kernel retries it.
//!
//! Everything is deterministic: a site index fully reproduces a
//! perturbation. With the engine disarmed — or armed in count-only mode
//! ([`KfaultConfig::COUNT_ONLY`]) — no simulated state, cycle, or trace
//! byte changes: the blessed golden digests are the proof obligation, the
//! same one `kprof` carries.

use fluke_api::state::ThreadStateFrame;
use fluke_arch::{ProgramId, UserRegs};

use crate::ids::ThreadId;
use crate::kernel::mem::Walk;
use crate::kernel::{Kernel, LockKey};
use crate::thread::{Body, RunState};
use crate::trace::TraceEvent;

/// The four adversarial perturbations `kfault` can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KfaultKind {
    /// Spurious timer interrupt at a user instruction boundary.
    Timer,
    /// Extract → destroy → recreate → restore of the current thread via
    /// its state frame (the paper's §2 correctness test).
    ExtractRestore,
    /// Drop every re-derivable translation of the victim's address space.
    PageFlush,
    /// Transient resource-exhaustion failure at syscall dispatch, retried.
    Transient,
}

impl KfaultKind {
    /// All kinds, in counter-index order.
    pub const ALL: [KfaultKind; 4] = [
        KfaultKind::Timer,
        KfaultKind::ExtractRestore,
        KfaultKind::PageFlush,
        KfaultKind::Transient,
    ];

    /// Stable human-readable name (used in kstat keys and reports).
    pub fn name(self) -> &'static str {
        match self {
            KfaultKind::Timer => "timer",
            KfaultKind::ExtractRestore => "extract_restore",
            KfaultKind::PageFlush => "page_flush",
            KfaultKind::Transient => "transient",
        }
    }

    /// Index into [`crate::kstat::Stats::faults_injected`].
    pub fn index(self) -> usize {
        match self {
            KfaultKind::Timer => 0,
            KfaultKind::ExtractRestore => 1,
            KfaultKind::PageFlush => 2,
            KfaultKind::Transient => 3,
        }
    }
}

/// Static arming of the injection engine: which perturbation, and at which
/// site index it fires. See [`crate::config::Config::with_kfault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KfaultConfig {
    /// The perturbation to inject.
    pub kind: KfaultKind,
    /// Zero-based site index at which to fire (once), or
    /// [`KfaultConfig::COUNT_ONLY`] to count sites without firing.
    pub site: u64,
}

impl KfaultConfig {
    /// Sentinel site index: run every hook, count every site, fire never.
    /// Used to enumerate a workload's site space — and to prove the armed
    /// hooks themselves are zero-perturbation.
    pub const COUNT_ONLY: u64 = u64::MAX;

    /// Fire `kind` at site `site`.
    pub fn at(kind: KfaultKind, site: u64) -> Self {
        KfaultConfig { kind, site }
    }

    /// Count `kind`'s sites without ever firing.
    pub fn count_sites(kind: KfaultKind) -> Self {
        KfaultConfig {
            kind,
            site: Self::COUNT_ONLY,
        }
    }
}

/// Live engine state, owned by the kernel when armed.
#[derive(Debug)]
pub struct Kfault {
    cfg: KfaultConfig,
    sites_seen: u64,
    fired: bool,
}

impl Kfault {
    /// Arm a fresh engine.
    pub(crate) fn new(cfg: KfaultConfig) -> Self {
        Kfault {
            cfg,
            sites_seen: 0,
            fired: false,
        }
    }

    /// The arming configuration.
    pub fn config(&self) -> KfaultConfig {
        self.cfg
    }

    /// Injection sites encountered so far (eligible boundaries for the
    /// armed kind — the sweep driver's site space).
    pub fn sites_seen(&self) -> u64 {
        self.sites_seen
    }

    /// Whether the selected site was reached and the injection fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Count one site; `true` exactly when this is the selected one.
    fn arm(&mut self) -> bool {
        let idx = self.sites_seen;
        self.sites_seen += 1;
        if !self.fired && idx == self.cfg.site {
            self.fired = true;
            true
        } else {
            false
        }
    }
}

impl Kernel {
    /// The armed `kfault` engine, if any (for sweep drivers to read site
    /// counts and fire status after a run).
    pub fn kfault(&self) -> Option<&Kfault> {
        self.kfault.as_ref()
    }

    /// Run-loop hook at a user-mode instruction boundary, called just
    /// before the current thread executes. Counts the site and fires the
    /// armed boundary perturbation at the selected one. Returns `true`
    /// when this dispatch iteration must be skipped (the victim was pulled
    /// off the CPU, or the perturbation must take effect before any user
    /// instruction runs).
    #[inline]
    pub(crate) fn kfault_boundary(&mut self, cur: ThreadId) -> bool {
        let Some(kf) = self.kfault.as_ref() else {
            return false;
        };
        let kind = kf.cfg.kind;
        if kind == KfaultKind::Transient {
            return false;
        }
        // Only user-body threads are eligible victims: native (in-kernel)
        // threads have no exportable state to attack.
        if !matches!(self.threads.get(cur.0).map(|t| &t.body), Some(Body::User)) {
            return false;
        }
        let kf = self.kfault.as_mut().expect("checked above");
        let site = kf.cfg.site;
        if !kf.arm() {
            return false;
        }
        match kind {
            KfaultKind::Timer => {
                self.inject_timer(cur, site);
                // The latched reschedule must preempt at *this* boundary,
                // before another user instruction runs.
                true
            }
            KfaultKind::ExtractRestore => {
                self.inject_extract_restore(cur, site);
                true
            }
            KfaultKind::PageFlush => {
                self.inject_page_flush(cur, site);
                false
            }
            KfaultKind::Transient => unreachable!("filtered above"),
        }
    }

    /// Dispatch-loop hook at each syscall decode point. At the selected
    /// site, simulates a transient resource-exhaustion failure deep in the
    /// handler: the attempt is abandoned and — because the registers still
    /// hold the complete continuation at dispatch — the kernel retries the
    /// call from scratch. Returns `true` when the decode should be rerun.
    #[inline]
    pub(crate) fn kfault_transient(&mut self, cur: ThreadId) -> bool {
        let Some(kf) = self.kfault.as_mut() else {
            return false;
        };
        if kf.cfg.kind != KfaultKind::Transient {
            return false;
        }
        let site = kf.cfg.site;
        if !kf.arm() {
            return false;
        }
        self.stats.faults_injected[KfaultKind::Transient.index()] += 1;
        self.ktrace(TraceEvent::FaultInjected {
            thread: cur,
            kind: KfaultKind::Transient.index() as u32,
            site,
        });
        true
    }

    /// Inject a spurious timer interrupt: latch a reschedule exactly as
    /// the timer tick does. The run loop delivers it at this boundary —
    /// requeue if an equal-or-higher-priority thread waits, else a fresh
    /// timeslice.
    fn inject_timer(&mut self, victim: ThreadId, site: u64) {
        self.cur_cpu_mut().resched = true;
        self.stats.faults_injected[KfaultKind::Timer.index()] += 1;
        self.ktrace(TraceEvent::FaultInjected {
            thread: victim,
            kind: KfaultKind::Timer.index() as u32,
            site,
        });
    }

    /// The §2 correctness test: extract the victim's state frame, round-
    /// trip it through the serialized word form a manager would see,
    /// destroy the thread's kernel-side incidentals, and reinstall the
    /// frame. Mirrors `thread_get_state` + `thread_set_state` semantics
    /// exactly; identity-linked *pair* state (the IPC connection end,
    /// joiners, the object-table backlink) is preserved, because a real
    /// manager checkpoints both ends of a pair wholesale — `kfault` tests
    /// the thread-local claim.
    fn inject_extract_restore(&mut self, victim: ThreadId, site: u64) {
        self.kernel_lock(LockKey::Sched);
        // Extraction forces the roll-back-and-restart contract: a retained
        // process-model kernel stack is discarded, so the registers are
        // the complete truth (same rule as `obj_get_state`).
        let frame = {
            let th = self.threads.get_mut(victim.0).expect("current");
            th.kstack_retained = false;
            ThreadStateFrame {
                regs: th.regs,
                program: th.program.unwrap_or(ProgramId(u64::MAX)),
                space_token: th.space_token,
                priority: th.priority,
                runnable: match th.state {
                    RunState::Stopped | RunState::Halted => 0,
                    _ => 1,
                },
                ipc_phase: th.ipc.conn.map(|_| 1).unwrap_or(0),
            }
        };
        let words = frame.to_words();
        let frame = ThreadStateFrame::from_words(&words).expect("own frame round-trips");
        {
            // Destroy: wipe everything the frame does not capture, the way
            // `install_thread_state` discards the target's old state.
            let th = self.threads.get_mut(victim.0).expect("current");
            th.regs = UserRegs::new();
            th.inflight = None;
            th.open_fault = None;
            th.kstack_retained = false;
            th.interrupted = false;
            // Restore: the frame is the complete new truth.
            th.regs = frame.regs;
            th.priority = frame.priority;
            th.state = RunState::Ready;
        }
        self.cur_cpu_mut().current = None;
        self.sched_push(victim, frame.priority);
        let now = self.now();
        // The victim keeps its open span across the round-trip (the frame
        // is the same request's continuation); it just waits to run again.
        self.kspan.on_runnable(victim, now);
        self.kick_parked(now);
        self.stats.faults_injected[KfaultKind::ExtractRestore.index()] += 1;
        self.ktrace(TraceEvent::FaultInjected {
            thread: victim,
            kind: KfaultKind::ExtractRestore.index() as u32,
            site,
        });
        self.kernel_unlock(LockKey::Sched);
    }

    /// Drop every translation of the victim's space that the mapping
    /// hierarchy can re-derive, in sorted-vpn order (the page table is a
    /// hash map; iteration order must not leak into behavior). PTEs
    /// installed directly by `grant_pages` have no backing mapping and are
    /// left alone — flushing them would lose memory, not add latency.
    fn inject_page_flush(&mut self, victim: ThreadId, site: u64) {
        let sid_opt = self.threads.get(victim.0).and_then(|t| t.space);
        let key = match sid_opt {
            Some(sid) => LockKey::Space(sid.0),
            None => LockKey::Sched,
        };
        self.kernel_lock(key);
        if let Some(sid) = sid_opt {
            let mut vpns: Vec<u32> = self
                .spaces
                .get(sid.0)
                .map(|s| s.pages_iter().map(|(vpn, _)| *vpn).collect())
                .unwrap_or_default();
            vpns.sort_unstable();
            for vpn in vpns {
                let addr = vpn * fluke_api::abi::PAGE_SIZE;
                let Some(pte) = self.spaces.get(sid.0).and_then(|s| s.pte(addr)) else {
                    continue;
                };
                // Conservative predicate: flush only if a fresh walk at
                // the PTE's own permission re-derives the identical
                // translation.
                if let Walk::Soft {
                    frame, writable, ..
                } = self.walk_hierarchy(sid, addr, pte.writable)
                {
                    if frame == pte.frame && writable == pte.writable {
                        if let Some(s) = self.spaces.get_mut(sid.0) {
                            s.unmap_page(addr);
                        }
                    }
                }
            }
            // Remote CPUs running this space may cache the dropped PTEs.
            self.tlb_shootdown(sid);
        }
        self.stats.faults_injected[KfaultKind::PageFlush.index()] += 1;
        self.ktrace(TraceEvent::FaultInjected {
            thread: victim,
            kind: KfaultKind::PageFlush.index() as u32,
            site,
        });
        self.kernel_unlock(key);
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Kfault {
    fn snap(&self, w: &mut SnapWriter) {
        self.cfg.snap(w);
        w.u64(self.sites_seen);
        w.bool(self.fired);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Kfault {
            cfg: Snap::restore(r)?,
            sites_seen: r.u64()?,
            fired: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_stable() {
        for (i, k) in KfaultKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let names: Vec<_> = KfaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["timer", "extract_restore", "page_flush", "transient"]
        );
    }

    #[test]
    fn count_only_never_fires() {
        let mut f = Kfault::new(KfaultConfig::count_sites(KfaultKind::Timer));
        for _ in 0..1000 {
            assert!(!f.arm());
        }
        assert_eq!(f.sites_seen(), 1000);
        assert!(!f.fired());
    }

    #[test]
    fn fires_exactly_once_at_selected_site() {
        let mut f = Kfault::new(KfaultConfig::at(KfaultKind::Transient, 7));
        let fired: Vec<u64> = (0..20u64).filter(|_| f.arm()).collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(f.sites_seen(), 20);
        assert!(f.fired());
        // The 8th arm() call (index 7) is the one that fired.
        let mut g = Kfault::new(KfaultConfig::at(KfaultKind::Transient, 7));
        for i in 0..20u64 {
            assert_eq!(g.arm(), i == 7);
        }
    }
}

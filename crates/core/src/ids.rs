//! Typed identifiers for kernel entities.
//!
//! All kernel data structures are arena-allocated and referred to by typed
//! indices, never by pointers — the borrow-friendly idiom for a simulator
//! that must mutate several entities (two IPC peers, a wait queue, the
//! scheduler) in a single operation.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a thread control block.
    ThreadId
}
id_type! {
    /// Identifies an address space.
    SpaceId
}
id_type! {
    /// Identifies a kernel object (an entry in the object table).
    ObjId
}
id_type! {
    /// Identifies an IPC connection.
    ConnId
}

/// A growable arena of `T` with stable typed indices and tombstone removal.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena { slots: Vec::new() }
    }

    /// Insert a value, returning its index.
    pub fn insert(&mut self, value: T) -> u32 {
        self.slots.push(Some(value));
        (self.slots.len() - 1) as u32
    }

    /// Get a live entry.
    pub fn get(&self, idx: u32) -> Option<&T> {
        self.slots.get(idx as usize).and_then(|s| s.as_ref())
    }

    /// Get a live entry mutably.
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut T> {
        self.slots.get_mut(idx as usize).and_then(|s| s.as_mut())
    }

    /// Remove an entry, returning it.
    pub fn remove(&mut self, idx: u32) -> Option<T> {
        self.slots.get_mut(idx as usize).and_then(|s| s.take())
    }

    /// Iterate over live entries with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether there are no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_insert_get_remove() {
        let mut a: Arena<&str> = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.get(x), Some(&"x"));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(x), Some("x"));
        assert_eq!(a.get(x), None);
        assert_eq!(a.remove(x), None);
        assert_eq!(a.get(y), Some(&"y"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn arena_iter_skips_tombstones() {
        let mut a: Arena<u32> = Arena::new();
        let i0 = a.insert(10);
        a.insert(20);
        a.remove(i0);
        let items: Vec<_> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec![20]);
    }

    #[test]
    fn id_display() {
        assert_eq!(format!("{}", ThreadId(3)), "ThreadId#3");
        assert_eq!(ObjId(7).index(), 7);
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

macro_rules! id_snap {
    ($name:ident) => {
        impl Snap for $name {
            fn snap(&self, w: &mut SnapWriter) {
                w.u32(self.0);
            }
            fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok($name(r.u32()?))
            }
        }
    };
}

id_snap!(ThreadId);
id_snap!(SpaceId);
id_snap!(ObjId);
id_snap!(ConnId);

// Arenas serialize their full slot vector, tombstones included: indices are
// identities, so destroyed-handle holes must survive the round trip.
impl<T: Snap> Snap for Arena<T> {
    fn snap(&self, w: &mut SnapWriter) {
        self.slots.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arena {
            slots: Snap::restore(r)?,
        })
    }
}

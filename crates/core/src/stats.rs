//! Kernel instrumentation: every number the paper's tables report is
//! derived from these counters.

use fluke_arch::cost::{cycles_to_us, Cycles};

use crate::tlb::TlbStats;
use crate::trace::Histogram;

/// Which side of an IPC transfer a fault occurred on (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSide {
    /// The fault was in the client's address space.
    Client,
    /// The fault was in the server's address space.
    Server,
    /// The fault was outside any IPC transfer.
    Other,
}

/// Fault severity (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The kernel derived a page-table entry from an entry higher in the
    /// memory mapping hierarchy.
    Soft,
    /// An RPC to a user-level memory manager was required.
    Hard,
}

/// One fault event during the run, with its measured costs.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Side of the transfer the faulting address belonged to.
    pub side: FaultSide,
    /// Soft or hard.
    pub kind: FaultKind,
    /// Cycles spent servicing the fault (hierarchy walk, or the full pager
    /// round trip for hard faults).
    pub remedy_cycles: Cycles,
    /// Cycles of previously-done work thrown away and re-executed because
    /// the operation rolled back to its register continuation.
    pub rollback_cycles: Cycles,
    /// Whether the fault interrupted an IPC transfer.
    pub during_ipc: bool,
    /// Simulated time the fault was raised.
    pub at: Cycles,
}

/// Aggregated kernel statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total system calls dispatched (including restarts).
    pub syscalls: u64,
    /// System call restarts after a block, fault or preemption.
    pub restarts: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Address-space switches performed.
    pub space_switches: u64,
    /// Soft page faults resolved.
    pub soft_faults: u64,
    /// Hard page faults (pager RPCs) raised.
    pub hard_faults: u64,
    /// Fatal (unresolvable) faults.
    pub fatal_faults: u64,
    /// Cycles spent executing user-mode instructions.
    pub user_cycles: Cycles,
    /// Cycles spent in the kernel.
    pub kernel_cycles: Cycles,
    /// Cycles the CPU sat idle waiting for an event.
    pub idle_cycles: Cycles,
    /// Cycles spent re-executing rolled-back work.
    pub rollback_cycles: Cycles,
    /// Cycles spent acquiring/releasing kernel locks (Full preemption).
    pub klock_cycles: Cycles,
    /// Bytes moved by the IPC copy path.
    pub ipc_bytes: u64,
    /// IPC messages completed.
    pub ipc_messages: u64,
    /// Explicit preemption points taken on the IPC copy path.
    pub preempt_points_taken: u64,
    /// In-kernel preemptions (Full preemption configuration).
    pub kernel_preemptions: u64,
    /// Preemptions of user-mode execution.
    pub user_preemptions: u64,
    /// Latency-probe observations: cycles from wakeup to dispatch,
    /// aggregated into a constant-memory histogram (exact count/sum/max;
    /// log-linear percentiles for Table 6's p50/p95/p99 columns).
    pub probe_hist: Histogram,
    /// Times the latency probe ran.
    pub probe_runs: u64,
    /// Times the probe was still pending when its next period arrived.
    pub probe_misses: u64,
    /// Every fault, with measured remedy/rollback costs (Table 3).
    pub fault_records: Vec<FaultRecord>,
    /// Current kernel memory charged for thread management (TCBs + stacks).
    pub thread_kmem: u64,
    /// Peak of [`Stats::thread_kmem`] over the run.
    pub thread_kmem_peak: u64,
    /// Threads created over the run.
    pub threads_created: u64,
    /// Kernel objects created over the run.
    pub objects_created: u64,
    /// Values logged by the `sys_trace` entrypoint (a test/debug channel).
    pub trace_log: Vec<u32>,
    /// Software-TLB counters retired from destroyed spaces (host-side
    /// observability only; live spaces' counters are added on top by
    /// [`crate::Kernel::tlb_stats`]).
    pub tlb_retired: TlbStats,
}

impl Stats {
    /// Record a change in thread-management kernel memory.
    pub fn kmem_delta(&mut self, delta: i64) {
        self.thread_kmem = self.thread_kmem.saturating_add_signed(delta);
        self.thread_kmem_peak = self.thread_kmem_peak.max(self.thread_kmem);
    }

    /// Average probe latency in microseconds (Table 6 "avg"). Exact: the
    /// histogram keeps the true count and sum.
    pub fn probe_avg_us(&self) -> f64 {
        if self.probe_hist.is_empty() {
            return 0.0;
        }
        cycles_to_us(self.probe_hist.sum()) / self.probe_hist.count() as f64
    }

    /// Maximum probe latency in microseconds (Table 6 "max"). Exact.
    pub fn probe_max_us(&self) -> f64 {
        cycles_to_us(self.probe_hist.max())
    }

    /// A probe-latency percentile in microseconds (Table 6 p50/p95/p99).
    /// Within the histogram's ~3% bucket error.
    pub fn probe_percentile_us(&self, p: f64) -> f64 {
        cycles_to_us(self.probe_hist.percentile(p))
    }

    /// Total busy (non-idle) cycles.
    pub fn busy_cycles(&self) -> Cycles {
        self.user_cycles + self.kernel_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmem_tracks_peak() {
        let mut s = Stats::default();
        s.kmem_delta(4096);
        s.kmem_delta(4096);
        assert_eq!(s.thread_kmem, 8192);
        assert_eq!(s.thread_kmem_peak, 8192);
        s.kmem_delta(-4096);
        assert_eq!(s.thread_kmem, 4096);
        assert_eq!(s.thread_kmem_peak, 8192);
    }

    #[test]
    fn probe_latency_summaries() {
        let mut s = Stats::default();
        assert_eq!(s.probe_avg_us(), 0.0);
        for c in [200, 400, 600] {
            s.probe_hist.record(c); // 1µs, 2µs, 3µs
        }
        assert!((s.probe_avg_us() - 2.0).abs() < 1e-9);
        assert!((s.probe_max_us() - 3.0).abs() < 1e-9);
        // p100 is the exact max; lower percentiles stay within bucket error.
        assert!((s.probe_percentile_us(100.0) - 3.0).abs() < 1e-9);
        assert!(s.probe_percentile_us(50.0) <= s.probe_percentile_us(99.0));
    }

    #[test]
    fn kmem_never_underflows() {
        let mut s = Stats::default();
        s.kmem_delta(-100);
        assert_eq!(s.thread_kmem, 0);
    }
}

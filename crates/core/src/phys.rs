//! Simulated physical memory: page frames allocated on demand.

use fluke_api::abi::PAGE_SIZE;

/// A physical frame number.
pub type FrameId = u32;

/// Physical memory as a growable set of 4KB frames.
///
/// Frames store real bytes so IPC transfers, checkpoints and workloads can
/// be verified for data integrity, not just accounted for.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: Vec<Box<[u8; PAGE_SIZE as usize]>>,
}

impl PhysMem {
    /// An empty physical memory.
    pub fn new() -> Self {
        PhysMem { frames: Vec::new() }
    }

    /// Allocate a zeroed frame.
    pub fn alloc(&mut self) -> FrameId {
        self.frames.push(Box::new([0; PAGE_SIZE as usize]));
        (self.frames.len() - 1) as FrameId
    }

    /// Number of frames allocated.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Read one byte from a frame.
    #[inline]
    pub fn read_u8(&self, frame: FrameId, offset: u32) -> u8 {
        self.frames[frame as usize][offset as usize]
    }

    /// Write one byte to a frame.
    #[inline]
    pub fn write_u8(&mut self, frame: FrameId, offset: u32, val: u8) {
        self.frames[frame as usize][offset as usize] = val;
    }

    /// Read a slice out of one frame (must not cross the frame boundary).
    pub fn read_slice(&self, frame: FrameId, offset: u32, out: &mut [u8]) {
        let off = offset as usize;
        out.copy_from_slice(&self.frames[frame as usize][off..off + out.len()]);
    }

    /// Write a slice into one frame (must not cross the frame boundary).
    pub fn write_slice(&mut self, frame: FrameId, offset: u32, data: &[u8]) {
        let off = offset as usize;
        self.frames[frame as usize][off..off + data.len()].copy_from_slice(data);
    }

    /// Copy `len` bytes between frames (ranges must not cross frame
    /// boundaries; the IPC pump guarantees this by chunking at page edges).
    pub fn copy(
        &mut self,
        src_frame: FrameId,
        src_off: u32,
        dst_frame: FrameId,
        dst_off: u32,
        len: u32,
    ) {
        debug_assert!(src_off + len <= PAGE_SIZE && dst_off + len <= PAGE_SIZE);
        if src_frame == dst_frame {
            let f = &mut self.frames[src_frame as usize];
            f.copy_within(src_off as usize..(src_off + len) as usize, dst_off as usize);
        } else {
            let mut tmp = [0u8; PAGE_SIZE as usize];
            let chunk = &mut tmp[..len as usize];
            self.read_slice(src_frame, src_off, chunk);
            self.write_slice(dst_frame, dst_off, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_frames() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        assert_eq!(p.read_u8(f, 0), 0);
        assert_eq!(p.read_u8(f, PAGE_SIZE - 1), 0);
        assert_eq!(p.frame_count(), 1);
    }

    #[test]
    fn byte_and_slice_io() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        p.write_u8(f, 7, 0x5a);
        assert_eq!(p.read_u8(f, 7), 0x5a);
        p.write_slice(f, 100, &[1, 2, 3]);
        let mut out = [0u8; 3];
        p.read_slice(f, 100, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn copy_between_frames_both_orders() {
        let mut p = PhysMem::new();
        let a = p.alloc();
        let b = p.alloc();
        p.write_slice(a, 0, &[9, 8, 7]);
        p.copy(a, 0, b, 10, 3);
        let mut out = [0u8; 3];
        p.read_slice(b, 10, &mut out);
        assert_eq!(out, [9, 8, 7]);
        // Now copy from the higher-numbered frame back to the lower.
        p.write_slice(b, 20, &[4, 5, 6]);
        p.copy(b, 20, a, 30, 3);
        p.read_slice(a, 30, &mut out);
        assert_eq!(out, [4, 5, 6]);
    }

    #[test]
    fn copy_within_one_frame() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        p.write_slice(f, 0, &[1, 2, 3, 4]);
        p.copy(f, 0, f, 8, 4);
        let mut out = [0u8; 4];
        p.read_slice(f, 8, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }
}

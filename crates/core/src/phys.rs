//! Simulated physical memory: page frames allocated on demand.

use fluke_api::abi::PAGE_SIZE;

/// A physical frame number.
pub type FrameId = u32;

/// Physical memory as a growable set of 4KB frames.
///
/// Frames store real bytes so IPC transfers, checkpoints and workloads can
/// be verified for data integrity, not just accounted for.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: Vec<Box<[u8; PAGE_SIZE as usize]>>,
}

impl PhysMem {
    /// An empty physical memory.
    pub fn new() -> Self {
        PhysMem { frames: Vec::new() }
    }

    /// Allocate a zeroed frame.
    pub fn alloc(&mut self) -> FrameId {
        self.frames.push(Box::new([0; PAGE_SIZE as usize]));
        (self.frames.len() - 1) as FrameId
    }

    /// Number of frames allocated.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Read one byte from a frame.
    #[inline]
    pub fn read_u8(&self, frame: FrameId, offset: u32) -> u8 {
        self.frames[frame as usize][offset as usize]
    }

    /// Write one byte to a frame.
    #[inline]
    pub fn write_u8(&mut self, frame: FrameId, offset: u32, val: u8) {
        self.frames[frame as usize][offset as usize] = val;
    }

    /// Read a slice out of one frame (must not cross the frame boundary).
    pub fn read_slice(&self, frame: FrameId, offset: u32, out: &mut [u8]) {
        debug_assert!(
            offset as usize + out.len() <= PAGE_SIZE as usize,
            "read_slice crosses frame boundary: offset {} + len {} > PAGE_SIZE",
            offset,
            out.len()
        );
        let off = offset as usize;
        out.copy_from_slice(&self.frames[frame as usize][off..off + out.len()]);
    }

    /// Write a slice into one frame (must not cross the frame boundary).
    pub fn write_slice(&mut self, frame: FrameId, offset: u32, data: &[u8]) {
        debug_assert!(
            offset as usize + data.len() <= PAGE_SIZE as usize,
            "write_slice crosses frame boundary: offset {} + len {} > PAGE_SIZE",
            offset,
            data.len()
        );
        let off = offset as usize;
        self.frames[frame as usize][off..off + data.len()].copy_from_slice(data);
    }

    /// Copy `len` bytes between frames (ranges must not cross frame
    /// boundaries; the IPC pump guarantees this by chunking at page edges).
    ///
    /// Same-frame copies (aliased mappings) use `copy_within`, i.e. memmove
    /// semantics: overlapping ranges copy as if through an intermediate
    /// buffer.
    pub fn copy(
        &mut self,
        src_frame: FrameId,
        src_off: u32,
        dst_frame: FrameId,
        dst_off: u32,
        len: u32,
    ) {
        debug_assert!(
            src_off + len <= PAGE_SIZE && dst_off + len <= PAGE_SIZE,
            "copy crosses frame boundary: src {}+{} / dst {}+{} vs PAGE_SIZE",
            src_off,
            len,
            dst_off,
            len
        );
        if src_frame == dst_frame {
            let f = &mut self.frames[src_frame as usize];
            f.copy_within(src_off as usize..(src_off + len) as usize, dst_off as usize);
        } else {
            // Distinct frames: borrow both and copy directly, no staging
            // buffer.
            let (lo, hi) = (
                src_frame.min(dst_frame) as usize,
                src_frame.max(dst_frame) as usize,
            );
            let (head, tail) = self.frames.split_at_mut(hi);
            let (a, b) = (&mut head[lo], &mut tail[0]);
            let (src, dst) = if src_frame < dst_frame {
                (a, b)
            } else {
                (b, a)
            };
            dst[dst_off as usize..(dst_off + len) as usize]
                .copy_from_slice(&src[src_off as usize..(src_off + len) as usize]);
        }
    }
}

// --- krec snapshot support ------------------------------------------------

use crate::krec::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for PhysMem {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.frames.len());
        for f in &self.frames {
            w.raw(&f[..]);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut frames = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let bytes = r.take(PAGE_SIZE as usize)?;
            let mut f = Box::new([0u8; PAGE_SIZE as usize]);
            f.copy_from_slice(bytes);
            frames.push(f);
        }
        Ok(PhysMem { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_frames() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        assert_eq!(p.read_u8(f, 0), 0);
        assert_eq!(p.read_u8(f, PAGE_SIZE - 1), 0);
        assert_eq!(p.frame_count(), 1);
    }

    #[test]
    fn byte_and_slice_io() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        p.write_u8(f, 7, 0x5a);
        assert_eq!(p.read_u8(f, 7), 0x5a);
        p.write_slice(f, 100, &[1, 2, 3]);
        let mut out = [0u8; 3];
        p.read_slice(f, 100, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn copy_between_frames_both_orders() {
        let mut p = PhysMem::new();
        let a = p.alloc();
        let b = p.alloc();
        p.write_slice(a, 0, &[9, 8, 7]);
        p.copy(a, 0, b, 10, 3);
        let mut out = [0u8; 3];
        p.read_slice(b, 10, &mut out);
        assert_eq!(out, [9, 8, 7]);
        // Now copy from the higher-numbered frame back to the lower.
        p.write_slice(b, 20, &[4, 5, 6]);
        p.copy(b, 20, a, 30, 3);
        p.read_slice(a, 30, &mut out);
        assert_eq!(out, [4, 5, 6]);
    }

    #[test]
    fn copy_within_one_frame() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        p.write_slice(f, 0, &[1, 2, 3, 4]);
        p.copy(f, 0, f, 8, 4);
        let mut out = [0u8; 4];
        p.read_slice(f, 8, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn copy_within_one_frame_overlapping_is_memmove() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        p.write_slice(f, 0, &[1, 2, 3, 4, 5, 6]);
        // Forward overlap: dst = src + 2 inside the source range.
        p.copy(f, 0, f, 2, 6);
        let mut out = [0u8; 8];
        p.read_slice(f, 0, &mut out);
        assert_eq!(out, [1, 2, 1, 2, 3, 4, 5, 6]);
        // Backward overlap.
        p.copy(f, 2, f, 0, 6);
        p.read_slice(f, 0, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 5, 6]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "crosses frame boundary")]
    fn read_slice_rejects_boundary_crossing() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        let mut out = [0u8; 8];
        p.read_slice(f, PAGE_SIZE - 4, &mut out);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "crosses frame boundary")]
    fn write_slice_rejects_boundary_crossing() {
        let mut p = PhysMem::new();
        let f = p.alloc();
        p.write_slice(f, PAGE_SIZE - 4, &[0u8; 8]);
    }
}
